package strip_test

import (
	"fmt"
	"time"

	"repro/strip"
)

// The basic loop: define views, feed updates, run a deadline-bearing
// transaction.
func ExampleDB_Exec() {
	db, _ := strip.Open(strip.Config{
		Policy:  strip.OnDemand,
		MaxAge:  time.Second,
		OnStale: strip.Warn,
	})
	defer db.Close()

	db.DefineView("DEM/USD", strip.High)
	db.ApplyUpdate(strip.Update{Object: "DEM/USD", Value: 1.6612, Generated: time.Now()})

	res := db.Exec(strip.TxnSpec{
		Value:    2.0,
		Deadline: time.Now().Add(100 * time.Millisecond),
		Func: func(tx *strip.Tx) error {
			px, err := tx.Read("DEM/USD")
			if err != nil {
				return err
			}
			tx.Set("last", px.Value)
			return nil
		},
	})
	fmt.Println(res.State)
	// Output: committed
}

// Derived views recompute whenever a dependency installs.
func ExampleDB_DefineDerived() {
	db, _ := strip.Open(strip.Config{Policy: strip.UpdatesFirst})
	defer db.Close()

	db.DefineView("bid", strip.High)
	db.DefineView("ask", strip.High)
	db.DefineDerived("mid", []string{"bid", "ask"}, func(v []float64) float64 {
		return (v[0] + v[1]) / 2
	})

	db.ApplyUpdate(strip.Update{Object: "bid", Value: 99})
	db.ApplyUpdate(strip.Update{Object: "ask", Value: 101})

	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if e, _ := db.Peek("mid"); e.Value == 100 {
			fmt.Println(e.Value)
			return
		}
		time.Sleep(time.Millisecond)
	}
	// Output: 100
}

// The query language filters and orders the view snapshot.
func ExampleDB_Query() {
	db, _ := strip.Open(strip.Config{Policy: strip.UpdatesFirst})
	defer db.Close()

	for i, v := range []float64{10, 30, 20} {
		name := fmt.Sprintf("s%d", i)
		db.DefineView(name, strip.Low)
		db.ApplyUpdate(strip.Update{Object: name, Value: v})
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if db.Stats().UpdatesInstalled == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	rows, _ := db.Query("SELECT * FROM views WHERE value > 15 ORDER BY value DESC")
	for _, r := range rows {
		fmt.Println(r.Object, r.Value)
	}
	// Output:
	// s1 30
	// s2 20
}

// The wire format used by Serve and WriteUpdate.
func ExampleParseUpdateLine() {
	u, _ := strip.ParseUpdateLine("IBM 1700000000000000000 191.25")
	fmt.Println(u.Object, u.Value, u.Generated.UTC().Year())
	// Output: IBM 191.25 2023
}
