// Package strip is a soft real-time, in-memory database that ingests
// external update streams while running value- and deadline-bearing
// transactions — a working implementation of the system modelled in
// Adelberg, Garcia-Molina and Kao, "Applying Update Streams in a Soft
// Real-Time Database System" (SIGMOD 1995), and of the STRIP system
// that paper was written for.
//
// The database holds two kinds of data. View objects mirror an
// external world (market prices, sensor readings); they are refreshed
// exclusively by the update stream and are read-only to transactions.
// General data is ordinary key/value state read and written by
// transactions.
//
// A single scheduler goroutine plays the role of the paper's
// controller and CPU: it multiplexes between installing updates and
// executing transactions according to a scheduling policy
// (UpdatesFirst, TransactionsFirst, SplitUpdates, OnDemand), tracks
// data staleness under a configurable criterion (maximum age or
// unapplied-update), and enforces firm transaction deadlines.
// Transactions execute as closures on the scheduler goroutine; view
// reads are the cooperative scheduling points at which update
// installation can "preempt" a transaction, mirroring the model's
// preemption semantics.
//
// A minimal session:
//
//	db, _ := strip.Open(strip.Config{
//		Policy:  strip.OnDemand,
//		MaxAge:  5 * time.Second,
//		OnStale: strip.Warn,
//	})
//	defer db.Close()
//	db.DefineView("DEM/USD.LON", strip.High)
//	db.ApplyUpdate(strip.Update{Object: "DEM/USD.LON", Value: 1.6612, Generated: time.Now()})
//
//	res := db.Exec(strip.TxnSpec{
//		Value:    2.0,
//		Deadline: time.Now().Add(50 * time.Millisecond),
//		Func: func(tx *strip.Tx) error {
//			px, err := tx.Read("DEM/USD.LON")
//			if err != nil {
//				return err
//			}
//			tx.Set("last-price", px.Value)
//			return nil
//		},
//	})
package strip

import (
	"errors"
	"fmt"
	"time"

	"repro/strip/fault"
	"repro/strip/obs"
)

// Policy selects how the scheduler divides time between installing
// updates and running transactions (§4 of the paper).
type Policy int

const (
	// UpdatesFirst installs every pending update before and during
	// (at read points) any transaction work.
	UpdatesFirst Policy = iota
	// TransactionsFirst runs transactions whenever any are queued;
	// updates are installed only in idle time.
	TransactionsFirst
	// SplitUpdates treats updates to High-importance views like
	// UpdatesFirst and updates to Low-importance views like
	// TransactionsFirst.
	SplitUpdates
	// OnDemand is TransactionsFirst plus in-line refresh: a
	// transaction reading a stale view first applies a suitable
	// pending update from the queue.
	OnDemand
)

// String returns the paper's abbreviation.
func (p Policy) String() string {
	switch p {
	case UpdatesFirst:
		return "UF"
	case TransactionsFirst:
		return "TF"
	case SplitUpdates:
		return "SU"
	case OnDemand:
		return "OD"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Importance classifies view objects for the SplitUpdates policy and
// for monitoring.
type Importance int

const (
	// Low importance views may go stale under pressure.
	Low Importance = iota
	// High importance views are kept fresh by SplitUpdates.
	High
)

// String returns "low" or "high".
func (i Importance) String() string {
	if i == High {
		return "high"
	}
	return "low"
}

// StaleAction selects what a transaction does when it reads a stale
// view (§2 of the paper).
type StaleAction int

const (
	// Ignore completes the transaction normally; staleness is only
	// visible in Result.ReadStale and the statistics.
	Ignore StaleAction = iota
	// Warn completes the transaction but records the stale object
	// names in Result.StaleReads — the paper's "red light".
	Warn
	// Abort fails the read with ErrStaleRead and dooms the
	// transaction (under OnDemand, only when no queued update could
	// refresh the object).
	Abort
)

// String names the action.
func (a StaleAction) String() string {
	switch a {
	case Warn:
		return "warn"
	case Abort:
		return "abort"
	default:
		return "ignore"
	}
}

// Errors returned by the database.
var (
	// ErrClosed reports use of a closed database.
	ErrClosed = errors.New("strip: database closed")
	// ErrUnknownObject reports a read of an undefined view object.
	ErrUnknownObject = errors.New("strip: unknown view object")
	// ErrStaleRead reports a stale view read under the Abort action.
	ErrStaleRead = errors.New("strip: stale read")
	// ErrDeadlineExceeded reports that the transaction's firm
	// deadline passed.
	ErrDeadlineExceeded = errors.New("strip: transaction deadline exceeded")
	// ErrDuplicateObject reports a second DefineView for a name.
	ErrDuplicateObject = errors.New("strip: view object already defined")
	// ErrInTransaction reports a nested Exec from inside a
	// transaction function.
	ErrInTransaction = errors.New("strip: nested transactions are not supported")
	// ErrDurability reports that a commit could not be made durable:
	// the write-ahead log failed to record it. The failed batch is not
	// applied — the caller sees consistent all-or-nothing behaviour —
	// and the database enters degraded mode: further commits fail fast
	// with this error while view ingest and reads continue (view data
	// is re-derivable from the update stream and does not need the
	// log). A successful Checkpoint heals the log and ends degraded
	// mode. Test with errors.Is.
	ErrDurability = errors.New("strip: durability failure")
)

// Config configures a database. The zero value is usable: policy
// OnDemand semantics are the paper's recommendation, but the zero
// Policy is UpdatesFirst by enum order, so set Policy explicitly.
type Config struct {
	// Policy is the scheduling algorithm (default UpdatesFirst).
	Policy Policy
	// MaxAge, when positive, enables the MA staleness criterion: a
	// view is stale when now - generation time exceeds MaxAge. When
	// zero, the UU criterion is used instead: a view is stale while
	// an update for it waits in the queue.
	MaxAge time.Duration
	// OnStale is the action on stale view reads (default Ignore).
	OnStale StaleAction
	// QueueCapacity bounds the update queue; the oldest update is
	// dropped on overflow. Default 8192.
	QueueCapacity int
	// IngestBuffer is the capacity of the arrival buffer between
	// producers and the scheduler (the paper's OS queue). Arrivals
	// beyond it are dropped and counted. Default 4096.
	IngestBuffer int
	// LIFO installs queued updates newest-generation-first. The
	// default is FIFO (oldest first).
	LIFO bool
	// Coalesce keeps only the newest queued update per object (the
	// paper's proposed hash-indexed queue). Recommended; default off
	// to match the paper's baseline. Coalescing drops superseded
	// partial updates wholesale, so leave it off for views fed by
	// partial updates.
	Coalesce bool
	// HistoryDepth, when positive, keeps that many past versions of
	// every view object and enables Tx.ReadAsOf — the paper's
	// "historical views" future-work item. Zero disables history.
	HistoryDepth int
	// WALPath, when set, enables a write-ahead log for general data:
	// committed Set operations are logged and replayed on the next
	// Open with the same path. View data is not logged — it is
	// re-derivable from the update stream.
	WALPath string
	// FS overrides the filesystem the write-ahead log and checkpoint
	// machinery write through; nil means the real filesystem. Tests
	// substitute a fault.MemFS to inject write errors, torn writes,
	// failed syncs and byte-exact crash points.
	FS fault.FS
	// Clock overrides the time source (tests). Default time.Now.
	Clock func() time.Time
	// ReplicationEpoch identifies this database instance's replication
	// history in the resume handshake (see strip/repl): a replica
	// presenting a sequence from a different epoch is re-bootstrapped
	// from a snapshot instead of resuming into a stream its numbers do
	// not describe. Zero derives an epoch from the Clock at Open.
	ReplicationEpoch uint64
	// Metrics, when set, is the registry the database registers its
	// metric series into (see DB.Metrics); pass one shared registry to
	// expose the database next to repl/elect series on one endpoint.
	// Nil creates a private registry — the series always exist.
	Metrics *obs.Registry
	// TraceDepth, when positive, keeps a ring of that many recent
	// end-to-end update traces, readable via DB.Traces. Zero disables
	// tracing; per-stage latency histograms are unaffected (except the
	// trigger span, which is only measured while tracing is active —
	// see install).
	TraceDepth int

	// defaultedClock records that fill substituted time.Now for a nil
	// Clock. The instrumentation then reads time through the monotonic
	// clock (time.Since from Open) instead of a full time.Now, which
	// costs roughly half as much per reading on the kernels this was
	// measured on — and the hot path takes two readings per install.
	defaultedClock bool
}

func (c *Config) fill() {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 8192
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 4096
	}
	if c.Clock == nil {
		c.Clock = time.Now
		c.defaultedClock = true
	}
}

// validate rejects configurations that cannot work.
func (c *Config) validate() error {
	switch c.Policy {
	case UpdatesFirst, TransactionsFirst, SplitUpdates, OnDemand:
	default:
		return fmt.Errorf("strip: unknown policy %v", c.Policy)
	}
	switch c.OnStale {
	case Ignore, Warn, Abort:
	default:
		return fmt.Errorf("strip: unknown stale action %v", c.OnStale)
	}
	if c.MaxAge < 0 {
		return fmt.Errorf("strip: negative MaxAge %v", c.MaxAge)
	}
	if c.HistoryDepth < 0 {
		return fmt.Errorf("strip: negative HistoryDepth %d", c.HistoryDepth)
	}
	return nil
}

// Update is one element of an external update stream: a complete new
// value for a single view object.
type Update struct {
	// Object names the view object to refresh.
	Object string
	// Value is the new value.
	Value float64
	// Fields optionally carries named attributes for record views.
	// On a complete update (Partial false) the attribute set replaces
	// the stored one; on a partial update only the named attributes
	// change.
	Fields map[string]float64
	// Partial marks a §2 partial update: only Fields are applied;
	// Value and unnamed attributes are retained.
	Partial bool
	// Generated is when the external source produced the value. A
	// zero time means "now" at ingest.
	Generated time.Time
}

// Entry is a view object's current value and its provenance.
type Entry struct {
	// Object is the view object name.
	Object string
	// Value is the installed value.
	Value float64
	// Fields holds the record view's named attributes, nil for plain
	// scalar views. The map is a copy and safe to retain.
	Fields map[string]float64
	// Generated is the generation time of the installed value; zero
	// if never updated.
	Generated time.Time
	// Stale reports whether the value was stale at read time.
	Stale bool
}

// Stats is a snapshot of database counters.
type Stats struct {
	// UpdatesReceived counts updates accepted into the system.
	UpdatesReceived uint64
	// UpdatesDropped counts arrivals rejected by a full ingest
	// buffer.
	UpdatesDropped uint64
	// UpdatesInstalled counts values written into views.
	UpdatesInstalled uint64
	// UpdatesSkipped counts updates superseded by a newer generation
	// (worthiness check) or coalesced away.
	UpdatesSkipped uint64
	// UpdatesExpired counts queued updates discarded for exceeding
	// MaxAge.
	UpdatesExpired uint64
	// UpdatesEvicted counts updates dropped by queue overflow.
	UpdatesEvicted uint64
	// QueueLen is the current update-queue length.
	QueueLen int

	// TxnsSubmitted counts Exec calls admitted.
	TxnsSubmitted uint64
	// TxnsCommitted counts transactions that committed by their
	// deadline.
	TxnsCommitted uint64
	// TxnsCommittedStale counts commits that read stale data.
	TxnsCommittedStale uint64
	// TxnsAbortedDeadline counts firm-deadline aborts.
	TxnsAbortedDeadline uint64
	// TxnsAbortedStale counts aborts due to stale reads.
	TxnsAbortedStale uint64
	// TxnsFailed counts transactions whose function returned an
	// unrelated error.
	TxnsFailed uint64
	// TxnsFailedDurability counts transactions that failed because
	// their commit could not be made durable (ErrDurability); they are
	// a subset of TxnsFailed.
	TxnsFailedDurability uint64
	// ValueCommitted sums the value of committed transactions.
	ValueCommitted float64

	// WALErrors counts write-ahead log I/O failures (append, sync or
	// rotation).
	WALErrors uint64
	// Degraded reports the database is in degraded durability mode:
	// commits fail fast with ErrDurability until a Checkpoint heals
	// the log.
	Degraded bool
	// DegradedHeals counts degraded episodes ended by a successful
	// Checkpoint.
	DegradedHeals uint64

	// ReplicationSeq is the replication sequence number: how many
	// events (worthy installs and committed batches) this database has
	// published to its replication sink.
	ReplicationSeq uint64
	// ReplBatchesApplied counts write batches applied from a primary.
	ReplBatchesApplied uint64
	// ReplSnapshotsInstalled counts bootstrap snapshots installed from
	// a primary.
	ReplSnapshotsInstalled uint64
	// ReplicaLagSeconds is the MA replication lag: the seconds by
	// which the most out-of-date view trails the newest generation
	// received from the primary (§2's maximum-age criterion applied to
	// the imported stream).
	ReplicaLagSeconds float64
	// ReplicaLagUpdates is the UU replication lag: replicated updates
	// received but not yet installed (§2's unapplied-update criterion).
	ReplicaLagUpdates int
}
