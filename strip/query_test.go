package strip

import (
	"errors"
	"testing"
	"time"
)

// queryDB builds a database with a few populated views for query tests.
func queryDB(t *testing.T) *DB {
	t.Helper()
	clock := newFakeClock()
	db := mustOpen(t, Config{
		Policy: UpdatesFirst,
		MaxAge: 10 * time.Second,
		Clock:  clock.Now,
	})
	now := clock.Now()
	seed := []struct {
		name  string
		value float64
		age   time.Duration
		bid   float64
	}{
		{"FX01", 100, time.Second, 99.5},
		{"FX02", 200, 2 * time.Second, 199.5},
		{"EQ01", 50, 3 * time.Second, 0},
		{"EQ02", 75, 8 * time.Second, 0},
	}
	for _, s := range seed {
		if err := db.DefineView(s.name, High); err != nil {
			t.Fatal(err)
		}
		u := Update{Object: s.name, Value: s.value, Generated: now.Add(-s.age)}
		if s.bid > 0 {
			u.Fields = map[string]float64{"bid": s.bid}
		}
		if err := db.ApplyUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesInstalled == 4 })
	// Advance past installation: ages become 6, 7, 8 and 13 s, so
	// only EQ02 exceeds the 10 s maximum age.
	clock.Advance(5 * time.Second)
	return db
}

func names(entries []Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Object
	}
	return out
}

func TestQuerySelectAll(t *testing.T) {
	db := queryDB(t)
	got, err := db.Query("SELECT * FROM views")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d rows, want 4", len(got))
	}
}

func TestQueryWhereValue(t *testing.T) {
	db := queryDB(t)
	got, err := db.Query("SELECT * FROM views WHERE value > 75")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %v", names(got))
	}
}

func TestQueryWhereLike(t *testing.T) {
	db := queryDB(t)
	got, err := db.Query("SELECT * FROM views WHERE object LIKE 'FX%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Object[:2] != "FX" {
		t.Fatalf("rows = %v", names(got))
	}
	got, err = db.Query("SELECT * FROM views WHERE object LIKE '%01'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("suffix match rows = %v", names(got))
	}
	got, err = db.Query("SELECT * FROM views WHERE object LIKE '%X0%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("contains match rows = %v", names(got))
	}
	got, err = db.Query("SELECT * FROM views WHERE object LIKE 'EQ01'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("exact match rows = %v", names(got))
	}
}

func TestQueryStaleAndAge(t *testing.T) {
	db := queryDB(t)
	got, err := db.Query("SELECT * FROM views WHERE stale")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Object != "EQ02" {
		t.Fatalf("stale rows = %v", names(got))
	}
	got, err = db.Query("SELECT * FROM views WHERE age < 7.5 AND NOT stale")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("young rows = %v", names(got))
	}
	got, err = db.Query("SELECT * FROM views WHERE stale = false")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("fresh rows = %v", names(got))
	}
}

func TestQueryFields(t *testing.T) {
	db := queryDB(t)
	got, err := db.Query("SELECT * FROM views WHERE field.bid >= 99.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("field rows = %v", names(got))
	}
}

func TestQueryOrderAndLimit(t *testing.T) {
	db := queryDB(t)
	got, err := db.Query("SELECT * FROM views ORDER BY value DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Object != "FX02" || got[1].Object != "FX01" {
		t.Fatalf("ordered rows = %v", names(got))
	}
	got, err = db.Query("SELECT * FROM views ORDER BY object ASC")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Object != "EQ01" || got[3].Object != "FX02" {
		t.Fatalf("string-ordered rows = %v", names(got))
	}
}

func TestQueryParensAndLogic(t *testing.T) {
	db := queryDB(t)
	got, err := db.Query(
		"SELECT * FROM views WHERE (value > 150 OR value < 60) AND NOT stale")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %v", names(got))
	}
}

func TestQueryObjectEquality(t *testing.T) {
	db := queryDB(t)
	got, err := db.Query("SELECT * FROM views WHERE object = 'EQ01'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != 50 {
		t.Fatalf("rows = %v", got)
	}
	got, err = db.Query("SELECT * FROM views WHERE object != 'EQ01' LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("LIMIT 0 should return nothing")
	}
}

func TestQueryErrors(t *testing.T) {
	db := queryDB(t)
	for _, q := range []string{
		"",
		"SELECT value FROM views",              // only * projection
		"SELECT * FROM tables",                 // wrong source
		"SELECT * FROM views WHERE",            // missing expr
		"SELECT * FROM views WHERE value >",    // missing operand
		"SELECT * FROM views WHERE (value > 1", // unbalanced paren
		"SELECT * FROM views WHERE nosuch > 1",
		"SELECT * FROM views WHERE value AND stale", // non-boolean AND
		"SELECT * FROM views WHERE NOT value",
		"SELECT * FROM views WHERE value > 'abc'",  // type mismatch
		"SELECT * FROM views WHERE stale > true",   // bool ordering
		"SELECT * FROM views WHERE value LIKE 'x'", // LIKE on number
		"SELECT * FROM views ORDER BY",
		"SELECT * FROM views LIMIT x",
		"SELECT * FROM views LIMIT -1",
		"SELECT * FROM views WHERE 'unterminated",
		"SELECT * FROM views trailing garbage",
		"SELECT * FROM views WHERE value ! 1",
	} {
		if _, err := db.Query(q); !errors.Is(err, ErrQuery) {
			t.Errorf("Query(%q) = %v, want ErrQuery", q, err)
		}
	}
}

func TestQueryCaseInsensitiveKeywords(t *testing.T) {
	db := queryDB(t)
	got, err := db.Query("select * from views where VALUE > 75 order by value desc limit 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Object != "FX02" {
		t.Fatalf("rows = %v", names(got))
	}
}

func TestQueryEmptyDatabase(t *testing.T) {
	db := mustOpen(t, Config{})
	got, err := db.Query("SELECT * FROM views WHERE value > 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("rows = %v", got)
	}
}

func FuzzQueryParser(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM views",
		"SELECT * FROM views WHERE stale AND value > 100 ORDER BY age DESC LIMIT 5",
		"SELECT * FROM views WHERE object LIKE 'FX%' AND field.bid >= 99",
		"SELECT * FROM views WHERE (a = 1 OR b != 2) AND NOT c",
		"SELECT * FROM views WHERE value > 1e-3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, q string) {
		// The parser must never panic, whatever the input.
		_, err := parseQuery(q)
		_ = err
	})
}
