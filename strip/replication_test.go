package strip_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/strip"
)

func openReplDB(t *testing.T, cfg strip.Config) *strip.DB {
	t.Helper()
	db, err := strip.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func replWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// eventLog records sink events; the sink runs under the database's
// write lock, the test reads concurrently.
type eventLog struct {
	mu     sync.Mutex
	events []strip.ReplEvent
}

func (l *eventLog) sink(ev strip.ReplEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *eventLog) snapshot() []strip.ReplEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]strip.ReplEvent(nil), l.events...)
}

// TestReplicationSequenceTotalOrder verifies the core contract: every
// worthy install and every committed batch gets the next sequence
// number, with no gaps, across both the scheduler and committer paths.
func TestReplicationSequenceTotalOrder(t *testing.T) {
	db := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := db.DefineView("obj", strip.High); err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	db.SetReplicationSink(log.sink)

	base := time.Now()
	const n = 25
	for i := 0; i < n; i++ {
		err := db.ApplyUpdate(strip.Update{
			Object: "obj", Value: float64(i), Generated: base.Add(time.Duration(i) * time.Millisecond),
		})
		if err != nil {
			t.Fatalf("ApplyUpdate %d: %v", i, err)
		}
		if i%5 == 0 {
			res := db.Exec(strip.TxnSpec{
				Value:    1,
				Deadline: time.Now().Add(5 * time.Second),
				Func: func(tx *strip.Tx) error {
					tx.Set("counter", float64(i))
					return nil
				},
			})
			if !res.Committed() {
				t.Fatalf("transaction %d: %v", i, res.Err)
			}
		}
	}
	const want = n + n/5
	replWaitFor(t, "all events to publish", func() bool { return db.Sequence() == want })

	events := log.snapshot()
	if len(events) != want {
		t.Fatalf("sink saw %d events, want %d", len(events), want)
	}
	updates, batches := 0, 0
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d carries seq %d; sequence must be contiguous from 1", i, ev.Seq)
		}
		switch ev.Kind {
		case strip.ReplUpdate:
			updates++
			if ev.Object != "obj" || ev.Importance != strip.High {
				t.Errorf("update event %d: object %q importance %v", i, ev.Object, ev.Importance)
			}
		case strip.ReplBatch:
			batches++
			if len(ev.Writes) != 1 || ev.Writes[0].Key != "counter" {
				t.Errorf("batch event %d: writes %v", i, ev.Writes)
			}
		}
	}
	if updates != n || batches != n/5 {
		t.Errorf("saw %d updates and %d batches, want %d and %d", updates, batches, n, n/5)
	}
	if got := db.Stats().ReplicationSeq; got != want {
		t.Errorf("Stats.ReplicationSeq = %d, want %d", got, want)
	}

	// Detaching the sink must NOT pause sequence numbering: the
	// sequence numbers the database's history itself, so a change
	// applied while detached still consumes a number and a replica
	// resuming from before it cannot silently skip it.
	db.SetReplicationSink(nil)
	if err := db.ApplyUpdate(strip.Update{Object: "obj", Value: 99, Generated: base.Add(time.Second)}); err != nil {
		t.Fatal(err)
	}
	replWaitFor(t, "detached install", func() bool {
		e, err := db.Peek("obj")
		return err == nil && e.Value == 99
	})
	if got := db.Sequence(); got != want+1 {
		t.Errorf("sequence = %d after a detached install, want %d (numbering continues without a sink)", got, want+1)
	}
	if got := len(log.snapshot()); got != want {
		t.Errorf("detached sink received %d events, want %d (no delivery after detach)", got, want)
	}
}

// TestApplyReplicatedAutoDefine checks that a replica imports unknown
// view objects from the stream instead of rejecting them.
func TestApplyReplicatedAutoDefine(t *testing.T) {
	db := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	gen := time.Now()
	err := db.ApplyReplicated(strip.Update{
		Object: "imported", Value: 1.5, Generated: gen,
		Fields: map[string]float64{"bid": 1.4},
	}, strip.High)
	if err != nil {
		t.Fatalf("ApplyReplicated: %v", err)
	}
	replWaitFor(t, "imported view to install", func() bool {
		e, err := db.Peek("imported")
		return err == nil && e.Value == 1.5
	})
	e, err := db.Peek("imported")
	if err != nil {
		t.Fatal(err)
	}
	if e.Fields["bid"] != 1.4 {
		t.Errorf("fields not carried: %v", e.Fields)
	}
	if !e.Generated.Equal(time.Unix(0, gen.UnixNano())) {
		t.Errorf("generation time %v, want %v (exact nanos preserved)", e.Generated, gen)
	}
	if ma, uu := db.ReplicaLag(); ma != 0 || uu != 0 {
		t.Errorf("lag after install = (%v, %d), want (0, 0)", ma, uu)
	}

	// A duplicate (same generation) is unworthy: skipped, and the lag
	// accounting must not leak a pending count.
	if err := db.ApplyReplicated(strip.Update{Object: "imported", Value: 2, Generated: gen}, strip.High); err != nil {
		t.Fatal(err)
	}
	replWaitFor(t, "duplicate to be skipped", func() bool {
		_, uu := db.ReplicaLag()
		return uu == 0
	})
	if e, _ := db.Peek("imported"); e.Value != 1.5 {
		t.Errorf("unworthy duplicate overwrote the view: %v", e.Value)
	}
}

// TestApplyReplicatedDerivedRejected: derived views are computed, not
// imported.
func TestApplyReplicatedDerivedRejected(t *testing.T) {
	db := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := db.DefineView("base", strip.High); err != nil {
		t.Fatal(err)
	}
	err := db.DefineDerived("double", []string{"base"}, func(v []float64) float64 { return 2 * v[0] })
	if err != nil {
		t.Fatal(err)
	}
	err = db.ApplyReplicated(strip.Update{Object: "double", Value: 1, Generated: time.Now()}, strip.Low)
	if !errors.Is(err, strip.ErrDerivedUpdate) {
		t.Errorf("ApplyReplicated to derived view = %v, want ErrDerivedUpdate", err)
	}
}

// TestApplyReplicatedBatch applies a committed batch and checks it is
// re-published for chaining.
func TestApplyReplicatedBatch(t *testing.T) {
	db := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	log := &eventLog{}
	db.SetReplicationSink(log.sink)
	writes := []strip.KeyValue{{Key: "a", Value: 1}, {Key: "b", Value: 2}}
	if err := db.ApplyReplicatedBatch(writes); err != nil {
		t.Fatalf("ApplyReplicatedBatch: %v", err)
	}
	res := db.Exec(strip.TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(5 * time.Second),
		Func: func(tx *strip.Tx) error {
			for _, kv := range writes {
				if v, ok := tx.Get(kv.Key); !ok || v != kv.Value {
					t.Errorf("Get(%s) = %v, %v; want %v", kv.Key, v, ok, kv.Value)
				}
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("read-back transaction: %v", res.Err)
	}
	events := log.snapshot()
	if len(events) != 1 || events[0].Kind != strip.ReplBatch {
		t.Fatalf("batch not re-published: %v", events)
	}
	if !reflect.DeepEqual(events[0].Writes, writes) {
		t.Errorf("re-published writes %v, want %v", events[0].Writes, writes)
	}
	if got := db.Stats().ReplBatchesApplied; got != 1 {
		t.Errorf("Stats.ReplBatchesApplied = %d, want 1", got)
	}
}

// TestSnapshotRoundTripBetweenDatabases moves state via
// ReplicaSnapshot/InstallSnapshot and compares the resulting cuts.
func TestSnapshotRoundTripBetweenDatabases(t *testing.T) {
	src := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := src.DefineView("v1", strip.High); err != nil {
		t.Fatal(err)
	}
	if err := src.DefineView("v2", strip.Low); err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	for i := 0; i < 6; i++ {
		obj := "v1"
		if i%2 == 1 {
			obj = "v2"
		}
		err := src.ApplyUpdate(strip.Update{
			Object: obj, Value: float64(i), Generated: base.Add(time.Duration(i) * time.Millisecond),
			Fields: map[string]float64{"f": float64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	replWaitFor(t, "source installs", func() bool { return src.Stats().UpdatesInstalled == 6 })
	res := src.Exec(strip.TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(5 * time.Second),
		Func:     func(tx *strip.Tx) error { tx.Set("g", 7); return nil },
	})
	if !res.Committed() {
		t.Fatal(res.Err)
	}

	snap := src.ReplicaSnapshot()
	dst := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := dst.InstallSnapshot(snap); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	got := dst.ReplicaSnapshot()
	snap.Seq, got.Seq = 0, 0
	if !reflect.DeepEqual(snap, got) {
		t.Errorf("snapshot round trip diverged:\n src %+v\n dst %+v", snap, got)
	}
	if got := dst.Stats().ReplSnapshotsInstalled; got != 1 {
		t.Errorf("Stats.ReplSnapshotsInstalled = %d, want 1", got)
	}

	// Installing the same snapshot again must be idempotent (equal
	// generations are not newer).
	if err := dst.InstallSnapshot(snap); err != nil {
		t.Fatalf("re-InstallSnapshot: %v", err)
	}
	again := dst.ReplicaSnapshot()
	again.Seq = 0
	if !reflect.DeepEqual(snap, again) {
		t.Errorf("re-installing a snapshot changed state")
	}
}

// TestInstallSnapshotRepublishes verifies that a database applying a
// bootstrap snapshot re-publishes the applied state to its own sink,
// so replicas chained below a re-bootstrapped mid-tier see it.
func TestInstallSnapshotRepublishes(t *testing.T) {
	src := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	base := time.Now()
	for i, obj := range []string{"v1", "v2"} {
		if err := src.DefineView(obj, strip.High); err != nil {
			t.Fatal(err)
		}
		err := src.ApplyUpdate(strip.Update{
			Object: obj, Value: float64(i + 1), Generated: base.Add(time.Duration(i) * time.Millisecond),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	replWaitFor(t, "source installs", func() bool { return src.Stats().UpdatesInstalled == 2 })
	res := src.Exec(strip.TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(5 * time.Second),
		Func:     func(tx *strip.Tx) error { tx.Set("g", 7); return nil },
	})
	if !res.Committed() {
		t.Fatal(res.Err)
	}

	dst := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	log := &eventLog{}
	dst.SetReplicationSink(log.sink)
	if err := dst.InstallSnapshot(src.ReplicaSnapshot()); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}

	events := log.snapshot()
	if len(events) != 3 {
		t.Fatalf("sink saw %d events, want 2 view updates + 1 batch: %+v", len(events), events)
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d carries seq %d; re-published events must be contiguous", i, ev.Seq)
		}
	}
	for i, obj := range []string{"v1", "v2"} {
		if events[i].Kind != strip.ReplUpdate || events[i].Object != obj || events[i].Value != float64(i+1) {
			t.Errorf("event %d = %+v, want update of %s", i, events[i], obj)
		}
	}
	if events[2].Kind != strip.ReplBatch || len(events[2].Writes) != 1 || events[2].Writes[0].Key != "g" {
		t.Errorf("event 2 = %+v, want the general-data batch", events[2])
	}
}

// TestOnDemandMixedFeedSettlesLag pins the OnDemand refresh accounting
// for a mixed local/replicated queue: when a newer local update
// supersedes an older replicated one, the replicated entry's pending
// count must settle (UU back to zero) and the local install must clear
// the MA lag.
func TestOnDemandMixedFeedSettlesLag(t *testing.T) {
	db := openReplDB(t, strip.Config{Policy: strip.OnDemand})
	if err := db.DefineView("obj", strip.High); err != nil {
		t.Fatal(err)
	}

	// Park the scheduler so both updates queue before any read.
	gate := make(chan struct{})
	started := make(chan struct{})
	go db.Exec(strip.TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(5 * time.Second),
		Func: func(tx *strip.Tx) error {
			close(started)
			<-gate
			return nil
		},
	})
	<-started

	base := time.Now()
	if err := db.ApplyReplicated(strip.Update{Object: "obj", Value: 1, Generated: base}, strip.High); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyUpdate(strip.Update{Object: "obj", Value: 2, Generated: base.Add(time.Second)}); err != nil {
		t.Fatal(err)
	}

	type readResult struct {
		e   strip.Entry
		err error
	}
	readDone := make(chan readResult, 1)
	go func() {
		var rr readResult
		res := db.Exec(strip.TxnSpec{
			Value:    1,
			Deadline: time.Now().Add(5 * time.Second),
			Func: func(tx *strip.Tx) error {
				rr.e, rr.err = tx.Read("obj")
				return rr.err
			},
		})
		if !res.Committed() {
			rr.err = res.Err
		}
		readDone <- rr
	}()
	time.Sleep(20 * time.Millisecond)
	close(gate)

	rr := <-readDone
	if rr.err != nil {
		t.Fatalf("reader transaction: %v", rr.err)
	}
	if rr.e.Value != 2 {
		t.Errorf("read value %v, want 2 (the newer local update)", rr.e.Value)
	}
	s := db.Stats()
	if s.UpdatesInstalled != 1 || s.UpdatesSkipped != 1 {
		t.Errorf("installed/skipped = %d/%d, want 1/1", s.UpdatesInstalled, s.UpdatesSkipped)
	}
	if s.ReplicaLagUpdates != 0 {
		t.Errorf("ReplicaLagUpdates = %d, want 0 (superseded replicated entry must settle)", s.ReplicaLagUpdates)
	}
	if s.ReplicaLagSeconds != 0 {
		t.Errorf("ReplicaLagSeconds = %v, want 0 (local install is newer than everything received)", s.ReplicaLagSeconds)
	}
}

// TestObjectLag exercises the per-object lag probe.
func TestObjectLag(t *testing.T) {
	db := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if _, _, err := db.ObjectLag("nope"); !errors.Is(err, strip.ErrUnknownObject) {
		t.Errorf("ObjectLag(unknown) = %v, want ErrUnknownObject", err)
	}
	if err := db.ApplyReplicated(strip.Update{Object: "o", Value: 1, Generated: time.Now()}, strip.Low); err != nil {
		t.Fatal(err)
	}
	replWaitFor(t, "install", func() bool {
		_, uu, err := db.ObjectLag("o")
		return err == nil && uu == 0
	})
	ma, uu, err := db.ObjectLag("o")
	if err != nil || ma != 0 || uu != 0 {
		t.Errorf("ObjectLag after install = (%v, %d, %v), want (0, 0, nil)", ma, uu, err)
	}
}
