package strip

import "repro/internal/model"

// Watch subscribes to installs of one view object ("" for all views)
// and returns a channel of installed entries plus a cancel function.
// The channel has the given buffer; when a subscriber falls behind,
// newer entries overwrite the channel's backlog head (latest-wins, so
// slow consumers see fresh data rather than an ever-growing lag),
// mirroring how the update queue prefers new generations.
//
// Cancel is idempotent. The channel is closed on cancel and on
// database Close.
func (db *DB) Watch(object string, buffer int) (<-chan Entry, func(), error) {
	if buffer <= 0 {
		buffer = 16
	}
	ch := make(chan Entry, buffer)
	w := &watcher{ch: ch}

	if err := db.addWatcher(object, w); err != nil {
		close(ch)
		return ch, func() {}, err
	}

	cancel := func() {
		db.mu.Lock()
		defer db.mu.Unlock()
		w.closeOnce()
	}
	return ch, cancel, nil
}

// addWatcher registers the subscription under the write lock.
func (db *DB) addWatcher(object string, w *watcher) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if object == "" {
		db.watchers = append(db.watchers, w)
		return nil
	}
	id, ok := db.names[object]
	if !ok {
		return ErrUnknownObject
	}
	if db.watchersByID == nil {
		db.watchersByID = make(map[model.ObjectID][]*watcher)
	}
	db.watchersByID[id] = append(db.watchersByID[id], w)
	return nil
}

// watcher is one Watch subscription.
type watcher struct {
	ch     chan Entry
	closed bool
}

// closeOnce closes the channel exactly once. Callers hold db.mu.
func (w *watcher) closeOnce() {
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
}

// deliver pushes an entry latest-wins. Callers hold db.mu.
func (w *watcher) deliver(e Entry) {
	if w.closed {
		return
	}
	for {
		select {
		case w.ch <- e:
			return
		default:
			// Full: drop the oldest backlog entry and retry.
			select {
			case <-w.ch:
			default:
			}
		}
	}
}

// notifyWatchers delivers an installed entry to the object's and the
// global subscribers. Runs on the scheduler goroutine.
func (db *DB) notifyWatchers(id model.ObjectID, e Entry) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, w := range db.watchers {
		w.deliver(e)
	}
	for _, w := range db.watchersByID[id] {
		w.deliver(e)
	}
	return len(db.watchers)+len(db.watchersByID[id]) > 0
}

// closeWatchers shuts every subscription down (database Close).
func (db *DB) closeWatchers() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, w := range db.watchers {
		w.closeOnce()
	}
	for _, ws := range db.watchersByID {
		for _, w := range ws {
			w.closeOnce()
		}
	}
}
