package strip

import (
	"math"
	"strings"

	"repro/internal/model"
)

// Aggregate evaluates an aggregate SELECT over the view objects and
// returns a single number:
//
//	SELECT COUNT(*)        FROM views [WHERE <expr>]
//	SELECT AVG(<field>)    FROM views [WHERE <expr>]
//	SELECT SUM(<field>)    FROM views [WHERE <expr>]
//	SELECT MIN(<field>)    FROM views [WHERE <expr>]
//	SELECT MAX(<field>)    FROM views [WHERE <expr>]
//
// <field> is any numeric query field (value, age, field.NAME). The
// WHERE grammar is shared with Query. MIN/MAX of an empty selection
// return NaN; AVG of an empty selection returns NaN; COUNT and SUM
// return 0.
//
//	frac, _ := db.Aggregate("SELECT AVG(age) FROM views WHERE stale")
func (db *DB) Aggregate(q string) (float64, error) {
	fn, field, where, err := parseAggregate(q)
	if err != nil {
		return 0, err
	}

	now := db.now()
	db.mu.RLock()
	snapshot := make([]Entry, 0, len(db.defs))
	for id, def := range db.defs {
		e := db.entries[id]
		snapshot = append(snapshot, Entry{
			Object:    def.name,
			Value:     e.value,
			Fields:    copyFields(e.fields),
			Generated: e.generated,
			Stale:     db.staleLocked(model.ObjectID(id), now),
		})
	}
	db.mu.RUnlock()

	count := 0
	sum := 0.0
	minV := math.Inf(1)
	maxV := math.Inf(-1)
	fx := fieldExpr{name: field}
	for i := range snapshot {
		keep, err := where.evalBool(&snapshot[i], now)
		if err != nil {
			return 0, err
		}
		if !keep {
			continue
		}
		count++
		if fn == "count" {
			continue
		}
		v, err := fx.eval(&snapshot[i], now)
		if err != nil {
			return 0, err
		}
		if v.kind != 'n' {
			return 0, queryErrf("%s needs a numeric field, got %q", strings.ToUpper(fn), field)
		}
		sum += v.num
		if v.num < minV {
			minV = v.num
		}
		if v.num > maxV {
			maxV = v.num
		}
	}

	switch fn {
	case "count":
		return float64(count), nil
	case "sum":
		return sum, nil
	case "avg":
		if count == 0 {
			return math.NaN(), nil
		}
		return sum / float64(count), nil
	case "min":
		if count == 0 {
			return math.NaN(), nil
		}
		return minV, nil
	case "max":
		if count == 0 {
			return math.NaN(), nil
		}
		return maxV, nil
	}
	return 0, queryErrf("unknown aggregate %q", fn)
}

// parseAggregate parses "SELECT fn(field) FROM views [WHERE ...]".
func parseAggregate(q string) (fn, field string, where whereExpr, err error) {
	p := &parser{lex: lexer{src: []rune(q)}}
	if err = p.advance(); err != nil {
		return
	}
	if err = p.expectIdent("SELECT"); err != nil {
		return
	}
	if p.tok.kind != "ident" {
		err = queryErrf("expected aggregate function, got %q", p.tok.text)
		return
	}
	fn = strings.ToLower(p.tok.text)
	switch fn {
	case "count", "avg", "sum", "min", "max":
	default:
		err = queryErrf("unknown aggregate %q", fn)
		return
	}
	if err = p.advance(); err != nil {
		return
	}
	if p.tok.kind != "op" || p.tok.text != "(" {
		err = queryErrf("expected ( after %s", strings.ToUpper(fn))
		return
	}
	if err = p.advance(); err != nil {
		return
	}
	if p.tok.kind != "ident" {
		err = queryErrf("expected field inside %s(...)", strings.ToUpper(fn))
		return
	}
	field = strings.ToLower(p.tok.text)
	if fn == "count" && field != "*" {
		err = queryErrf("COUNT supports only *")
		return
	}
	if fn != "count" && field == "*" {
		err = queryErrf("%s needs a field, not *", strings.ToUpper(fn))
		return
	}
	if err = p.advance(); err != nil {
		return
	}
	if p.tok.kind != "op" || p.tok.text != ")" {
		err = queryErrf("missing ) in aggregate")
		return
	}
	if err = p.advance(); err != nil {
		return
	}
	if err = p.expectIdent("FROM"); err != nil {
		return
	}
	if err = p.expectIdent("views"); err != nil {
		return
	}
	if p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "WHERE") {
		if err = p.advance(); err != nil {
			return
		}
		var e expr
		e, err = p.parseOr()
		if err != nil {
			return
		}
		where.inner = e
	}
	if p.tok.kind != "eof" {
		err = queryErrf("unexpected trailing input %q", p.tok.text)
	}
	return
}
