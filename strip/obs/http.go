package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewMux returns an HTTP mux serving the registry:
//
//	/metrics       Prometheus-compatible text exposition
//	/debug/traces  recent update traces, newest first (when traces != nil)
//	/debug/pprof/  the standard pprof surface
//
// pprof routes are registered explicitly so the mux works without
// importing the package for its DefaultServeMux side effect.
func NewMux(reg *Registry, traces func() []Trace) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	if traces != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeTraces(w, traces())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeTraces renders one line per trace: seq, object, arrival stamp,
// then visited stage=duration pairs in pipeline order.
func writeTraces(w http.ResponseWriter, ts []Trace) {
	for _, t := range ts {
		fmt.Fprintf(w, "seq=%d object=%s arrival_ns=%d", t.Seq, t.Object, t.ArrivalNanos)
		for i, span := range t.Spans {
			if span < 0 {
				continue
			}
			fmt.Fprintf(w, " %s=%sns", Stage(i), strconv.FormatInt(span, 10))
		}
		fmt.Fprintln(w)
	}
}
