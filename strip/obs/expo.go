package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WriteText renders every registered series in the Prometheus text
// exposition format, in registration order. Counter/gauge values and
// histogram buckets are read atomically per series (the snapshot is
// not a consistent cut across series — no scrape format offers that
// without stopping the world). Equal states render to identical
// bytes, which the determinism tests rely on.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range r.snapshot() {
		if s.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(s.name)
			bw.WriteByte(' ')
			bw.WriteString(s.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(s.name)
		switch s.kind {
		case kindCounter, kindCounterFunc:
			bw.WriteString(" counter\n")
		case kindGauge, kindGaugeFunc:
			bw.WriteString(" gauge\n")
		case kindHistogram:
			bw.WriteString(" histogram\n")
		}
		switch s.kind {
		case kindCounter:
			writeSample(bw, s.name, float64(s.counter.Value()))
		case kindCounterFunc:
			writeSample(bw, s.name, float64(s.counterFn()))
		case kindGauge:
			writeSample(bw, s.name, s.gauge.Value())
		case kindGaugeFunc:
			writeSample(bw, s.name, s.gaugeFn())
		case kindHistogram:
			writeHistogram(bw, s.name, s.hist)
		}
	}
	return bw.Flush()
}

func writeSample(bw *bufio.Writer, name string, v float64) {
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// writeHistogram emits cumulative _bucket lines, then _sum and
// _count, matching the Prometheus histogram convention.
func writeHistogram(bw *bufio.Writer, name string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		bw.WriteString(name)
		bw.WriteString(`_bucket{le="`)
		bw.WriteString(formatFloat(float64(bound) / h.perUnit))
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	bw.WriteString(name)
	bw.WriteString(`_bucket{le="+Inf"} `)
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_sum ")
	bw.WriteString(formatFloat(h.Sum()))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_count ")
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
}

// formatFloat uses the shortest round-trippable representation, so
// integral values print without a trailing ".0" and bucket edges like
// 2.5e-06 stay stable across runs.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
