// Package obs is the strip runtime's observability layer: a
// zero-dependency metrics registry (counters, gauges and fixed-bucket
// histograms with a deterministic snapshot order), a bounded ring of
// recent end-to-end update traces, a Prometheus-compatible text
// exposition, and an HTTP mux serving it next to net/http/pprof.
//
// The paper's entire contribution is *measuring* freshness — MA/UU
// staleness under different scheduling policies — so the database
// cannot settle for point-in-time counters: distributions (a
// commit-latency tail, a staleness histogram, per-stage pipeline
// spans) are what make a soft real-time engine tunable. The package
// is deliberately independent of the strip package so the database,
// the replication subsystem, the election engine and the WAL can all
// register into one registry without an import cycle.
//
// Hot-path cost is the design constraint throughout: Counter.Inc and
// Histogram.Observe are a handful of atomic operations with zero
// allocations, series are pre-registered at construction time, and
// the text exposition walks the registration-order slice so equal
// states serialize to equal bytes (the determinism tests compare
// snapshots bit for bit).
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent
// use. The zero value is ready; NewCounter exists for symmetry and
// for callers that register the counter indirectly via CounterFunc.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone counter, useful for subsystems that
// count unconditionally and register into a registry only when one is
// supplied (via Registry.CounterFunc over Value).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, safe for concurrent
// use. The zero value reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge (see NewCounter).
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// kind discriminates the series types a registry holds.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// series is one registered metric: exactly one of the typed fields is
// set, per kind.
type series struct {
	name string
	help string
	kind kind

	counter   *Counter
	gauge     *Gauge
	counterFn func() uint64
	gaugeFn   func() float64
	hist      *Histogram
}

// Registry holds a fixed set of named series. Registration normally
// happens once at construction time (strip.Open, repl.NewPrimary,
// stripd startup); reads — Inc/Observe through the returned handles —
// are lock-free. Snapshots (WriteText, Value, HistogramFor) iterate
// the series in registration order, which is what makes two snapshots
// of equal states byte-identical.
type Registry struct {
	mu     sync.Mutex
	series []*series
	byName map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*series)}
}

// add registers one series, panicking on an invalid or duplicate
// name: both are programmer errors at construction time, not runtime
// conditions to handle.
func (r *Registry) add(s *series) {
	if !validName(s.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", s.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[s.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", s.name))
	}
	r.byName[s.name] = s
	r.series = append(r.series, s)
}

// validName enforces the Prometheus metric-name charset:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := NewCounter()
	r.add(&series{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := NewGauge()
	r.add(&series{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time. It is the mirroring hook for subsystems that already
// keep their own counters (db.Stats, a standalone Counter): the hot
// path pays nothing twice, the scrape pays one call.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.add(&series{name: name, help: help, kind: kindCounterFunc, counterFn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time (see CounterFunc).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&series{name: name, help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// Value returns the current value of a counter or gauge series (the
// func-backed variants call through). Histograms report false; use
// HistogramFor.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	s := r.byName[name]
	r.mu.Unlock()
	if s == nil {
		return 0, false
	}
	switch s.kind {
	case kindCounter:
		return float64(s.counter.Value()), true
	case kindGauge:
		return s.gauge.Value(), true
	case kindCounterFunc:
		return float64(s.counterFn()), true
	case kindGaugeFunc:
		return s.gaugeFn(), true
	default:
		return 0, false
	}
}

// HistogramFor returns a registered histogram by name.
func (r *Registry) HistogramFor(name string) (*Histogram, bool) {
	r.mu.Lock()
	s := r.byName[name]
	r.mu.Unlock()
	if s == nil || s.kind != kindHistogram {
		return nil, false
	}
	return s.hist, true
}

// snapshot copies the series list so exposition can run without the
// registry lock: series handles are immutable after registration and
// their values are atomics or snapshot-time funcs, so holding mu
// while writing to a (possibly slow network) writer would be a
// block-under-lock hazard for nothing.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[:len(r.series):len(r.series)]
}
