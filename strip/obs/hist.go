package obs

import "sync/atomic"

// Histogram is a fixed-bucket histogram over int64 observations
// (typically nanoseconds). Bounds are inclusive upper edges in
// ascending order, with an implicit +Inf bucket at the end. Observe
// is allocation-free: one linear scan over a small bound slice plus
// two atomic adds, cheap enough for the install path.
//
// A per-unit divisor converts raw observations to exposition units at
// snapshot time — latency histograms observe nanoseconds and expose
// seconds (perUnit 1e9) so the hot path never touches floating point,
// and integer division keeps bucket edges like 1e-06 exact in the
// text format.
type Histogram struct {
	bounds  []int64
	perUnit float64
	counts  []atomic.Uint64
	sum     atomic.Int64
}

func newHistogram(bounds []int64, perUnit int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	if perUnit <= 0 {
		panic("obs: histogram perUnit must be positive")
	}
	return &Histogram{
		bounds:  bounds,
		perUnit: float64(perUnit),
		counts:  make([]atomic.Uint64, len(bounds)+1),
	}
}

// Histogram registers and returns a new histogram. bounds are
// inclusive upper edges in the observation's raw unit; perUnit is the
// number of raw units per exposed unit (1e9 for nanoseconds exposed
// as seconds, 1 for dimensionless counts).
func (r *Registry) Histogram(name, help string, bounds []int64, perUnit int64) *Histogram {
	h := newHistogram(bounds, perUnit)
	r.add(&series{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// Observe records one value. Negative values (possible when spans are
// computed across an injected clock that did not advance, or from a
// stepping wall clock) clamp to zero rather than corrupting the sum.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observations in exposed units.
func (h *Histogram) Sum() float64 {
	return float64(h.sum.Load()) / h.perUnit
}

// Quantile returns an upper-bound estimate of the q-quantile in
// exposed units: the bucket edge at or above which the q-fraction of
// observations falls. The +Inf bucket reports the last finite edge
// (the histogram cannot resolve beyond it). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i >= len(h.bounds) {
				return float64(h.bounds[len(h.bounds)-1]) / h.perUnit
			}
			return float64(h.bounds[i]) / h.perUnit
		}
	}
	return float64(h.bounds[len(h.bounds)-1]) / h.perUnit
}

// LatencyBuckets covers pipeline-stage and commit latencies: 1µs to
// 10s in roughly 1-2.5-5 steps, observed in nanoseconds, exposed in
// seconds with scale 1e-9.
func LatencyBuckets() []int64 {
	return []int64{
		1e3, 2_500, 5e3, // 1µs 2.5µs 5µs
		1e4, 25e3, 5e4, // 10µs 25µs 50µs
		1e5, 25e4, 5e5, // 100µs 250µs 500µs
		1e6, 25e5, 5e6, // 1ms 2.5ms 5ms
		1e7, 25e6, 5e7, // 10ms 25ms 50ms
		1e8, 25e7, 5e8, // 100ms 250ms 500ms
		1e9, 25e8, 5e9, 1e10, // 1s 2.5s 5s 10s
	}
}

// AgeBuckets covers staleness (install-time age of a value): 1ms to
// 60s, observed in nanoseconds, exposed in seconds with perUnit 1e9.
// Staleness is bounded below by feed cadence, not syscall latency, so
// the low edges start coarser than LatencyBuckets.
func AgeBuckets() []int64 {
	return []int64{
		1e6, 5e6, // 1ms 5ms
		1e7, 5e7, // 10ms 50ms
		1e8, 25e7, 5e8, // 100ms 250ms 500ms
		1e9, 25e8, 5e9, // 1s 2.5s 5s
		1e10, 3e10, 6e10, // 10s 30s 60s
	}
}

// CountBuckets covers discrete sizes (queue backlogs): powers of two
// from 1 to 8192 plus a zero bucket, perUnit 1 (exposed as-is).
func CountBuckets() []int64 {
	return []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
}
