package obs

import "sync"

// Stage identifies one hop in an update's life between feed arrival
// and visibility. The enum order is pipeline order; NumStages sizes
// the span arrays.
type Stage int

const (
	// StageDecode: parsing one feed line into a model.Update.
	StageDecode Stage = iota
	// StageQueueWait: from arrival stamp to the scheduler popping the
	// update off the uqueue (covers ingest-channel wait + queue wait +
	// dispatch, the paper's UU interval).
	StageQueueWait
	// StageInstall: applying the update to the registry under the
	// database write lock, including WAL append and repl publish.
	StageInstall
	// StageTrigger: firing triggers and recomputing derived objects
	// after install.
	StageTrigger
	// StageWALAppend: encoding and buffering the WAL record.
	StageWALAppend
	// StageWALFsync: the group-commit fsync.
	StageWALFsync
	// StageReplPublish: handing the encoded event to the replication
	// sink (ring append + subscriber wakeup).
	StageReplPublish
	// StageReplicaApply: on a replica, from frame decode to the update
	// entering the local ingest queue.
	StageReplicaApply

	// NumStages is the number of pipeline stages.
	NumStages int = iota
)

var stageNames = [NumStages]string{
	"decode",
	"queue_wait",
	"install",
	"trigger",
	"wal_append",
	"wal_fsync",
	"repl_publish",
	"replica_apply",
}

// String returns the snake_case stage name used in metric names.
func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Trace is one update's end-to-end record: which object, when it
// arrived, and how long each stage took. Spans are nanoseconds; -1
// means the stage was not visited (e.g. no replication sink, WAL
// disabled, trace captured on a replica).
type Trace struct {
	Seq          uint64
	Object       string
	ArrivalNanos int64
	Spans        [NumStages]int64
}

// NewTrace returns a Trace with every span marked unvisited.
func NewTrace() Trace {
	var t Trace
	for i := range t.Spans {
		t.Spans[i] = -1
	}
	return t
}

// TraceRing is a bounded ring of recent traces. Record overwrites the
// oldest entry once full; Snapshot returns newest-first copies. All
// methods are nil-safe so call sites don't branch on whether tracing
// is enabled.
type TraceRing struct {
	mu    sync.Mutex
	slots []Trace
	next  int
	full  bool
}

// NewTraceRing returns a ring holding up to depth traces, or nil when
// depth <= 0 (tracing disabled).
func NewTraceRing(depth int) *TraceRing {
	if depth <= 0 {
		return nil
	}
	return &TraceRing{slots: make([]Trace, depth)}
}

// Record stores one trace, overwriting the oldest when full. Trace is
// a value type, so recording does not allocate.
func (r *TraceRing) Record(t Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.slots[r.next] = t
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the recorded traces, newest first.
func (r *TraceRing) Snapshot() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.slots)
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.slots)
		}
		out = append(out, r.slots[idx])
	}
	return out
}
