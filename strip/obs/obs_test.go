package obs

import (
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_events_total", "events seen")
	g := reg.Gauge("test_depth", "current depth")

	c.Inc()
	c.Add(4)
	g.Set(2.5)

	if v, ok := reg.Value("test_events_total"); !ok || v != 5 {
		t.Fatalf("counter value = %v, %v; want 5, true", v, ok)
	}
	if v, ok := reg.Value("test_depth"); !ok || v != 2.5 {
		t.Fatalf("gauge value = %v, %v; want 2.5, true", v, ok)
	}
	if _, ok := reg.Value("test_missing"); ok {
		t.Fatal("missing series reported a value")
	}
}

func TestFuncSeries(t *testing.T) {
	reg := NewRegistry()
	n := uint64(7)
	reg.CounterFunc("test_fn_total", "", func() uint64 { return n })
	reg.GaugeFunc("test_fn_gauge", "", func() float64 { return float64(n) / 2 })

	if v, _ := reg.Value("test_fn_total"); v != 7 {
		t.Fatalf("counter func = %v, want 7", v)
	}
	n = 9
	if v, _ := reg.Value("test_fn_gauge"); v != 4.5 {
		t.Fatalf("gauge func = %v, want 4.5", v)
	}
}

func TestDuplicateAndInvalidNamesPanic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "")
	mustPanic(t, "duplicate", func() { reg.Gauge("dup_total", "") })
	mustPanic(t, "invalid char", func() { reg.Counter("bad-name", "") })
	mustPanic(t, "leading digit", func() { reg.Counter("0bad", "") })
	mustPanic(t, "empty", func() { reg.Counter("", "") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestHistogramObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_lat_seconds", "", []int64{10, 100, 1000}, 1e9)

	h.Observe(5)    // bucket le=10
	h.Observe(10)   // inclusive edge: le=10
	h.Observe(50)   // le=100
	h.Observe(5000) // +Inf
	h.Observe(-3)   // clamps to 0, le=10

	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	wantSum := float64(5+10+50+5000) / 1e9
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %g, want %g", got, wantSum)
	}
	counts := []uint64{h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load(), h.counts[3].Load()}
	want := []uint64{3, 1, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if hh, ok := reg.HistogramFor("test_lat_seconds"); !ok || hh != h {
		t.Fatal("HistogramFor lookup failed")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000}, 1)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %v, want 10", q)
	}
	if q := h.Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %v, want 1000", q)
	}
	h.Observe(1e9) // +Inf bucket reports last finite edge
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %v, want 1000", q)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	mustPanic(t, "empty bounds", func() { newHistogram(nil, 1) })
	mustPanic(t, "non-ascending", func() { newHistogram([]int64{10, 10}, 1) })
}

// TestWriteTextGolden pins the exposition format byte for byte: this
// is the contract stripd serves and the determinism test diffs.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("demo_updates_total", "updates received")
	g := reg.Gauge("demo_queue_len", "queue length")
	reg.CounterFunc("demo_fn_total", "", func() uint64 { return 3 })
	h := reg.Histogram("demo_wait_seconds", "queue wait", []int64{1000, 1000000}, 1e9)

	c.Add(12)
	g.Set(4)
	h.Observe(500)
	h.Observe(2000)
	h.Observe(5_000_000)

	const want = `# HELP demo_updates_total updates received
# TYPE demo_updates_total counter
demo_updates_total 12
# HELP demo_queue_len queue length
# TYPE demo_queue_len gauge
demo_queue_len 4
# TYPE demo_fn_total counter
demo_fn_total 3
# HELP demo_wait_seconds queue wait
# TYPE demo_wait_seconds histogram
demo_wait_seconds_bucket{le="1e-06"} 1
demo_wait_seconds_bucket{le="0.001"} 2
demo_wait_seconds_bucket{le="+Inf"} 3
demo_wait_seconds_sum 0.0050025
demo_wait_seconds_count 3
`
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	build := func() string {
		reg := NewRegistry()
		reg.Counter("a_total", "x").Add(2)
		reg.Histogram("b_seconds", "y", LatencyBuckets(), 1e9).Observe(1234)
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("identical registries rendered differently:\n%s\nvs\n%s", a, b)
	}
}

func TestTraceRing(t *testing.T) {
	if r := NewTraceRing(0); r != nil {
		t.Fatal("depth 0 should disable the ring")
	}
	var nilRing *TraceRing
	nilRing.Record(NewTrace()) // nil-safe
	if got := nilRing.Snapshot(); got != nil {
		t.Fatalf("nil ring snapshot = %v, want nil", got)
	}

	r := NewTraceRing(3)
	for seq := uint64(1); seq <= 5; seq++ {
		tr := NewTrace()
		tr.Seq = seq
		tr.Spans[StageInstall] = int64(seq * 10)
		r.Record(tr)
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, wantSeq := range []uint64{5, 4, 3} {
		if got[i].Seq != wantSeq {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, got[i].Seq, wantSeq)
		}
		if got[i].Spans[StageInstall] != int64(wantSeq*10) {
			t.Fatalf("snapshot[%d] install span = %d", i, got[i].Spans[StageInstall])
		}
		if got[i].Spans[StageDecode] != -1 {
			t.Fatal("unvisited span should be -1")
		}
	}
}

func TestStageString(t *testing.T) {
	want := []string{
		"decode", "queue_wait", "install", "trigger",
		"wal_append", "wal_fsync", "repl_publish", "replica_apply",
	}
	if NumStages != len(want) {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Fatalf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if Stage(-1).String() != "unknown" || Stage(NumStages).String() != "unknown" {
		t.Fatal("out-of-range stage should stringify as unknown")
	}
}

func TestBucketHelpersAscending(t *testing.T) {
	for _, tc := range []struct {
		name   string
		bounds []int64
	}{
		{"latency", LatencyBuckets()},
		{"age", AgeBuckets()},
		{"count", CountBuckets()},
	} {
		for i := 1; i < len(tc.bounds); i++ {
			if tc.bounds[i] <= tc.bounds[i-1] {
				t.Fatalf("%s bounds not ascending at %d: %v", tc.name, i, tc.bounds)
			}
		}
	}
}
