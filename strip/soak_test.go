package strip

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoakConcurrentLoad hammers one database from many goroutines at
// once — feed producers, transaction submitters, queries, watches and
// monitoring — and checks the counters reconcile at the end. Run with
// -race; this is the library's concurrency certification.
func TestSoakConcurrentLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test takes a second")
	}
	db := mustOpen(t, Config{
		Policy:       OnDemand,
		MaxAge:       500 * time.Millisecond,
		OnStale:      Warn,
		HistoryDepth: 8,
	})
	const nViews = 64
	for i := 0; i < nViews; i++ {
		if err := db.DefineView(fmt.Sprintf("v%02d", i), Importance(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DefineDerived("sum01", []string{"v00", "v01"},
		func(vs []float64) float64 { return vs[0] + vs[1] }); err != nil {
		t.Fatal(err)
	}

	var triggerFires atomic.Int64
	db.OnInstall("", func(Entry) { triggerFires.Add(1) })

	watchCh, cancelWatch, err := db.Watch("", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelWatch()
	var watched atomic.Int64
	go func() {
		for range watchCh {
			watched.Add(1)
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Three feed producers.
	var produced atomic.Int64
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed+1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := db.ApplyUpdate(Update{
					Object:    fmt.Sprintf("v%02d", rng.IntN(nViews)),
					Value:     rng.Float64() * 100,
					Generated: time.Now(),
				})
				if err == nil {
					produced.Add(1)
				}
				time.Sleep(time.Duration(rng.IntN(300)) * time.Microsecond)
			}
		}(uint64(p) + 1)
	}

	// Four transaction submitters.
	var committed, aborted atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed+7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				obj := fmt.Sprintf("v%02d", rng.IntN(nViews))
				res := db.Exec(TxnSpec{
					Value:    rng.Float64() * 5,
					Deadline: time.Now().Add(time.Duration(2+rng.IntN(20)) * time.Millisecond),
					Func: func(tx *Tx) error {
						e, err := tx.Read(obj)
						if err != nil {
							return err
						}
						if _, err := tx.Read("sum01"); err != nil {
							return err
						}
						tx.Set("last."+obj, e.Value)
						return nil
					},
				})
				switch res.State {
				case Committed:
					committed.Add(1)
				case AbortedDeadline, AbortedStale:
					aborted.Add(1)
				case Failed:
					t.Errorf("unexpected failure: %v", res.Err)
					return
				}
			}
		}(uint64(w) + 11)
	}

	// A monitoring goroutine issuing queries and peeks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Query("SELECT * FROM views WHERE stale LIMIT 5"); err != nil {
				t.Errorf("query failed: %v", err)
				return
			}
			if _, err := db.Aggregate("SELECT COUNT(*) FROM views WHERE NOT stale"); err != nil {
				t.Errorf("aggregate failed: %v", err)
				return
			}
			db.Peek("v00")
			db.Stats()
			time.Sleep(500 * time.Microsecond)
		}
	}()

	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()

	s := db.Stats()
	if produced.Load() == 0 || committed.Load() == 0 {
		t.Fatalf("soak did no work: produced=%d committed=%d", produced.Load(), committed.Load())
	}
	// Conservation: received + dropped = produced (every accepted
	// ApplyUpdate either entered the buffer or was counted dropped).
	if got := s.UpdatesReceived + s.UpdatesDropped; got > uint64(produced.Load()) {
		t.Fatalf("accounted %d updates > produced %d", got, produced.Load())
	}
	if s.TxnsCommitted != uint64(committed.Load()) {
		t.Fatalf("stats committed %d != observed %d", s.TxnsCommitted, committed.Load())
	}
	if s.TxnsAbortedDeadline+s.TxnsAbortedStale != uint64(aborted.Load()) {
		t.Fatalf("stats aborts %d != observed %d",
			s.TxnsAbortedDeadline+s.TxnsAbortedStale, aborted.Load())
	}
	// Triggers fire exactly once per install (scalar views) plus the
	// derived recomputations.
	if triggerFires.Load() < int64(s.UpdatesInstalled) {
		t.Fatalf("trigger fires %d < installs %d", triggerFires.Load(), s.UpdatesInstalled)
	}
	if watched.Load() == 0 {
		t.Fatal("watch channel saw nothing")
	}
	t.Logf("soak: produced=%d installed=%d committed=%d aborted=%d triggers=%d watched=%d",
		produced.Load(), s.UpdatesInstalled, committed.Load(), aborted.Load(),
		triggerFires.Load(), watched.Load())
}

// TestCloseUnderLoad closes the database while transactions are
// queued behind a blocker: every Exec must return (no deadlock, no
// panic) with a legitimate terminal state, and the queued ones must
// see the shutdown.
func TestCloseUnderLoad(t *testing.T) {
	db, err := Open(Config{Policy: TransactionsFirst})
	if err != nil {
		t.Fatal(err)
	}
	db.DefineView("x", Low)

	// The blocker holds the scheduler so everything behind it queues.
	gate := make(chan struct{})
	started := make(chan struct{})
	blockerRes := make(chan Result, 1)
	go func() {
		blockerRes <- db.Exec(TxnSpec{
			Deadline: time.Now().Add(5 * time.Second),
			Func: func(tx *Tx) error {
				close(started)
				<-gate
				return nil
			},
		})
	}()
	<-started

	var wg sync.WaitGroup
	states := make(chan State, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				res := db.Exec(TxnSpec{
					Deadline: time.Now().Add(5 * time.Second),
					Func: func(tx *Tx) error {
						_, err := tx.Read("x")
						return err
					},
				})
				states <- res.State
			}
		}()
	}
	// Let the submitters queue up behind the blocker, then shut down
	// while releasing the blocker.
	time.Sleep(20 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- db.Close() }()
	close(gate)
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(states)

	if res := <-blockerRes; !res.Committed() {
		t.Fatalf("blocker result = %+v", res)
	}
	var committed, failed, other int
	for s := range states {
		switch s {
		case Committed:
			committed++
		case Failed, AbortedDeadline:
			failed++
		default:
			other++
		}
	}
	if other != 0 {
		t.Fatalf("unexpected states: %d", other)
	}
	if failed == 0 {
		t.Fatal("queued transactions should have been failed by Close")
	}
	t.Logf("close under load: %d committed, %d failed/aborted", committed, failed)
}
