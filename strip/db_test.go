package strip

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a race-safe manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func mustOpen(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// waitFor polls until cond returns true or the deadline expires.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestOpenCloseIdempotent(t *testing.T) {
	db, err := Open(Config{Policy: OnDemand})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("second Close should be a no-op, got", err)
	}
}

func TestDefineViewValidation(t *testing.T) {
	db := mustOpen(t, Config{})
	if err := db.DefineView("x", Low); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineView("x", High); !errors.Is(err, ErrDuplicateObject) {
		t.Fatalf("duplicate define: %v", err)
	}
	views := db.Views()
	if len(views) != 1 || views[0] != "x" {
		t.Fatalf("Views = %v", views)
	}
}

func TestApplyUpdateUnknownObject(t *testing.T) {
	db := mustOpen(t, Config{})
	if err := db.ApplyUpdate(Update{Object: "nope", Value: 1}); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateVisibleToTransaction(t *testing.T) {
	db := mustOpen(t, Config{Policy: OnDemand})
	if err := db.DefineView("px", High); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyUpdate(Update{Object: "px", Value: 101.5}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		e, _ := db.Peek("px")
		return e.Value == 101.5
	})
	res := db.Exec(TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			e, err := tx.Read("px")
			if err != nil {
				return err
			}
			if e.Value != 101.5 {
				t.Errorf("read %v, want 101.5", e.Value)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
}

func TestReadUnknownObject(t *testing.T) {
	db := mustOpen(t, Config{})
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			_, err := tx.Read("ghost")
			return err
		},
	})
	if res.State != Failed || !errors.Is(res.Err, ErrUnknownObject) {
		t.Fatalf("result = %+v", res)
	}
}

func TestGeneralDataCommit(t *testing.T) {
	db := mustOpen(t, Config{})
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			if _, ok := tx.Get("count"); ok {
				t.Error("unexpected existing key")
			}
			tx.Set("count", 7)
			// A transaction observes its own writes.
			if v, ok := tx.Get("count"); !ok || v != 7 {
				t.Errorf("own write invisible: %v %v", v, ok)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	res = db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			if v, ok := tx.Get("count"); !ok || v != 7 {
				t.Errorf("committed write invisible: %v %v", v, ok)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
}

func TestFailedTransactionWritesDiscarded(t *testing.T) {
	db := mustOpen(t, Config{})
	boom := errors.New("boom")
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			tx.Set("k", 1)
			return boom
		},
	})
	if res.State != Failed || !errors.Is(res.Err, boom) {
		t.Fatalf("result = %+v", res)
	}
	res = db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			if _, ok := tx.Get("k"); ok {
				t.Error("aborted write leaked")
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatal("verification txn failed")
	}
}

func TestPastDeadlineAbortsWithoutRunning(t *testing.T) {
	db := mustOpen(t, Config{})
	ran := false
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(-time.Second),
		Func: func(tx *Tx) error {
			ran = true
			return nil
		},
	})
	if res.State != AbortedDeadline {
		t.Fatalf("state = %v", res.State)
	}
	if ran {
		t.Fatal("hopeless transaction should not run")
	}
}

func TestFeasibleDeadlineAbort(t *testing.T) {
	db := mustOpen(t, Config{})
	ran := false
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(10 * time.Millisecond),
		Estimate: time.Second, // cannot finish in time
		Func: func(tx *Tx) error {
			ran = true
			return nil
		},
	})
	if res.State != AbortedDeadline || ran {
		t.Fatalf("state = %v ran = %v", res.State, ran)
	}
}

func TestDeadlinePassesMidTransaction(t *testing.T) {
	db := mustOpen(t, Config{})
	db.DefineView("x", Low)
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(20 * time.Millisecond),
		Func: func(tx *Tx) error {
			time.Sleep(40 * time.Millisecond)
			_, err := tx.Read("x") // read point detects the miss
			return err
		},
	})
	if res.State != AbortedDeadline || !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("result = %+v", res)
	}
}

func TestCommitCheckCatchesLateFinish(t *testing.T) {
	db := mustOpen(t, Config{})
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(15 * time.Millisecond),
		Func: func(tx *Tx) error {
			time.Sleep(40 * time.Millisecond)
			return nil // never touched the DB, but finished late
		},
	})
	if res.State != AbortedDeadline {
		t.Fatalf("state = %v, want aborted-deadline", res.State)
	}
}

func TestExecNilFunc(t *testing.T) {
	db := mustOpen(t, Config{})
	if res := db.Exec(TxnSpec{}); res.State != Failed {
		t.Fatalf("state = %v", res.State)
	}
}

func TestExecAfterClose(t *testing.T) {
	db, _ := Open(Config{})
	db.Close()
	res := db.Exec(TxnSpec{Func: func(tx *Tx) error { return nil }})
	if res.State != Failed || !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("result = %+v", res)
	}
	if err := db.ApplyUpdate(Update{Object: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ApplyUpdate after close: %v", err)
	}
	if err := db.DefineView("x", Low); !errors.Is(err, ErrClosed) {
		t.Fatalf("DefineView after close: %v", err)
	}
}

func TestTxHandleInvalidOutsideFunc(t *testing.T) {
	db := mustOpen(t, Config{})
	db.DefineView("x", Low)
	var leaked *Tx
	db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			leaked = tx
			return nil
		},
	})
	if _, err := leaked.Read("x"); err == nil {
		t.Fatal("escaped Tx should be unusable")
	}
	if _, ok := leaked.Get("k"); ok {
		t.Fatal("escaped Get should fail")
	}
}

func TestStatsAccumulate(t *testing.T) {
	db := mustOpen(t, Config{Policy: TransactionsFirst})
	db.DefineView("x", Low)
	db.ApplyUpdate(Update{Object: "x", Value: 1})
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesInstalled == 1 })
	db.Exec(TxnSpec{
		Value:    3,
		Deadline: time.Now().Add(time.Second),
		Func:     func(tx *Tx) error { return nil },
	})
	s := db.Stats()
	if s.UpdatesReceived != 1 || s.UpdatesInstalled != 1 {
		t.Fatalf("update stats = %+v", s)
	}
	if s.TxnsSubmitted != 1 || s.TxnsCommitted != 1 || s.ValueCommitted != 3 {
		t.Fatalf("txn stats = %+v", s)
	}
}

func TestValueDensityOrdering(t *testing.T) {
	db := mustOpen(t, Config{Policy: TransactionsFirst})
	// Block the scheduler so both contenders queue up.
	gate := make(chan struct{})
	started := make(chan struct{})
	go db.Exec(TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			close(started)
			<-gate
			return nil
		},
	})
	<-started

	order := make(chan string, 2)
	var wg sync.WaitGroup
	submit := func(name string, value float64, est time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			db.Exec(TxnSpec{
				Name:     name,
				Value:    value,
				Estimate: est,
				Deadline: time.Now().Add(2 * time.Second),
				Func: func(tx *Tx) error {
					order <- name
					return nil
				},
			})
		}()
	}
	submit("low", 1, 10*time.Millisecond)
	submit("high", 50, 10*time.Millisecond)
	// Give both submissions time to reach the queue, then release.
	time.Sleep(30 * time.Millisecond)
	close(gate)
	wg.Wait()
	if first := <-order; first != "high" {
		t.Fatalf("first txn = %s, want the higher value density", first)
	}
}

func TestPeekUnknown(t *testing.T) {
	db := mustOpen(t, Config{})
	if _, err := db.Peek("nope"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}
