package strip

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
	"repro/strip/obs"
)

// ApplyUpdate submits one update to the stream. It never blocks: when
// the ingest buffer (the paper's OS queue) is full the update is
// dropped and counted in Stats.UpdatesDropped. Updates for undefined
// objects are rejected with ErrUnknownObject.
func (db *DB) ApplyUpdate(u Update) error {
	id, imp, err := db.updateTarget(u.Object)
	if err != nil {
		return err
	}

	now := db.now()
	gen := u.Generated
	if gen.IsZero() {
		gen = now
	}
	db.mu.Lock()
	db.arrival++
	seq := db.arrival
	db.mu.Unlock()

	//striplint:ignore alloc-in-hotpath -- the update outlives ApplyUpdate by design: it escapes into the scheduler queue and is installed later
	mu := &model.Update{
		Seq:         seq,
		Object:      id,
		Class:       model.Importance(imp),
		GenTime:     db.secs(gen),
		ArrivalTime: db.secs(now),
		Payload:     u.Value,
		WallGen:     gen.UnixNano(),
	}
	if u.Fields != nil {
		if u.Partial {
			mu.Aux = partialFields(copyFields(u.Fields))
		} else {
			mu.Aux = completeFields(copyFields(u.Fields))
		}
	}
	select {
	case db.ingestCh <- mu:
		return nil
	default:
		db.mu.Lock()
		db.stats.UpdatesDropped++
		db.mu.Unlock()
		return nil
	}
}

// updateTarget resolves an update's object under the read lock,
// rejecting closed databases, unknown objects and derived views.
func (db *DB) updateTarget(name string) (model.ObjectID, Importance, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0, 0, ErrClosed
	}
	id, ok := db.names[name]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownObject, name)
	}
	if db.defs[id].derived {
		return 0, 0, fmt.Errorf("%w: %q", ErrDerivedUpdate, name)
	}
	return id, db.defs[id].importance, nil
}

// IngestChannel forwards updates from ch until it is closed or the
// database shuts down. It returns immediately; forwarding happens on
// a new goroutine.
func (db *DB) IngestChannel(ch <-chan Update) {
	go func() {
		for {
			select {
			case u, ok := <-ch:
				if !ok {
					return
				}
				_ = db.ApplyUpdate(u)
			case <-db.stopCh:
				return
			}
		}
	}()
}

// Serve accepts connections on l and speaks the line protocol on
// each:
//
//   - an update line "<object> <gen-unixnanos> <value>" ingests an
//     update (see ParseUpdateLine); nothing is written back,
//   - "QUERY <select...>" evaluates a row query (see Query) and
//     writes one "ROW <object> <gen-unixnanos> <value> <stale>" line
//     per result followed by "OK <n>", or "ERR <message>",
//   - "AGG <select...>" evaluates an aggregate (see Aggregate) and
//     writes "VAL <number>", or "ERR <message>".
//
// It blocks until the listener fails or the database closes; callers
// typically run it on its own goroutine. Closing the database closes
// the listener.
func (db *DB) Serve(l net.Listener) error {
	go func() {
		<-db.stopCh
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-db.stopCh:
				return ErrClosed
			default:
				return err
			}
		}
		go db.serveConn(conn)
	}
}

func (db *DB) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "QUERY "):
			db.serveQuery(w, strings.TrimPrefix(line, "QUERY "))
		case strings.HasPrefix(line, "AGG "):
			db.serveAggregate(w, strings.TrimPrefix(line, "AGG "))
		default:
			start := db.nowNanos()
			u, err := ParseUpdateLine(line)
			if err != nil {
				continue // malformed lines are skipped, the stream goes on
			}
			db.obs.stage[obs.StageDecode].Observe(db.nowNanos() - start)
			if db.ApplyUpdate(u) == ErrClosed {
				return
			}
		}
		if w.Flush() != nil {
			return
		}
	}
}

func (db *DB) serveQuery(w io.Writer, q string) {
	rows, err := db.Query(q)
	if err != nil {
		fmt.Fprintf(w, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	for _, e := range rows {
		nanos := int64(0)
		if !e.Generated.IsZero() {
			nanos = e.Generated.UnixNano()
		}
		fmt.Fprintf(w, "ROW %s %d %s %v\n",
			e.Object, nanos, strconv.FormatFloat(e.Value, 'g', -1, 64), e.Stale)
	}
	fmt.Fprintf(w, "OK %d\n", len(rows))
}

func (db *DB) serveAggregate(w io.Writer, q string) {
	v, err := db.Aggregate(q)
	if err != nil {
		fmt.Fprintf(w, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	fmt.Fprintf(w, "VAL %s\n", strconv.FormatFloat(v, 'g', -1, 64))
}

// ParseUpdateLine decodes the wire format used by Serve: three
// space-separated fields,
//
//	<object> <generated-unix-nanoseconds> <value>
//
// A generated time of 0 means "now at ingest".
func ParseUpdateLine(line string) (Update, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return Update{}, fmt.Errorf("strip: update line has %d fields, want 3", len(fields))
	}
	nanos, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Update{}, fmt.Errorf("strip: bad generation timestamp %q: %v", fields[1], err)
	}
	value, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Update{}, fmt.Errorf("strip: bad value %q: %v", fields[2], err)
	}
	u := Update{Object: fields[0], Value: value}
	if nanos != 0 {
		u.Generated = time.Unix(0, nanos)
	}
	return u, nil
}

// FormatUpdateLine encodes an update in the Serve wire format,
// without a trailing newline.
func FormatUpdateLine(u Update) string {
	nanos := int64(0)
	if !u.Generated.IsZero() {
		nanos = u.Generated.UnixNano()
	}
	return fmt.Sprintf("%s %d %s", u.Object, nanos, strconv.FormatFloat(u.Value, 'g', -1, 64))
}

// WriteUpdate writes one update in the wire format to w, newline
// terminated. Feed producers use it to talk to Serve.
func WriteUpdate(w io.Writer, u Update) error {
	_, err := io.WriteString(w, FormatUpdateLine(u)+"\n")
	return err
}
