package strip

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Triggers ---

func TestOnInstallTrigger(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("x", Low)
	var mu sync.Mutex
	var fired []Entry
	if err := db.OnInstall("x", func(e Entry) {
		mu.Lock()
		fired = append(fired, e)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	db.ApplyUpdate(Update{Object: "x", Value: 5})
	waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(fired) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if fired[0].Object != "x" || fired[0].Value != 5 {
		t.Fatalf("trigger entry = %+v", fired[0])
	}
}

func TestGlobalTrigger(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("a", Low)
	db.DefineView("b", Low)
	var mu sync.Mutex
	seen := map[string]int{}
	db.OnInstall("", func(e Entry) {
		mu.Lock()
		seen[e.Object]++
		mu.Unlock()
	})
	db.ApplyUpdate(Update{Object: "a", Value: 1})
	db.ApplyUpdate(Update{Object: "b", Value: 2})
	waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return seen["a"] == 1 && seen["b"] == 1
	})
}

func TestTriggerUnknownObject(t *testing.T) {
	db := mustOpen(t, Config{})
	if err := db.OnInstall("ghost", func(Entry) {}); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestTriggerNotFiredOnSkip(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("x", Low)
	var mu sync.Mutex
	count := 0
	db.OnInstall("x", func(Entry) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	now := time.Now()
	db.ApplyUpdate(Update{Object: "x", Value: 2, Generated: now})
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesInstalled == 1 })
	// Older generation: skipped by the worthiness check, no trigger.
	db.ApplyUpdate(Update{Object: "x", Value: 1, Generated: now.Add(-time.Second)})
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesSkipped == 1 })
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("trigger fired %d times, want 1", count)
	}
}

// --- Derived views ---

func TestDerivedViewRecomputes(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("a", Low)
	db.DefineView("b", Low)
	if err := db.DefineDerived("avg", []string{"a", "b"}, func(vs []float64) float64 {
		return (vs[0] + vs[1]) / 2
	}); err != nil {
		t.Fatal(err)
	}
	db.ApplyUpdate(Update{Object: "a", Value: 10})
	db.ApplyUpdate(Update{Object: "b", Value: 20})
	waitFor(t, time.Second, func() bool {
		e, _ := db.Peek("avg")
		return e.Value == 15
	})
	// A transaction can read the derived view like any other.
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			e, err := tx.Read("avg")
			if err != nil {
				return err
			}
			if e.Value != 15 {
				t.Errorf("derived read = %v", e.Value)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
}

func TestDerivedGenerationIsOldestDep(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("a", Low)
	db.DefineView("b", Low)
	db.DefineDerived("sum", []string{"a", "b"}, func(vs []float64) float64 {
		return vs[0] + vs[1]
	})
	old := time.Now().Add(-time.Minute)
	newer := time.Now()
	db.ApplyUpdate(Update{Object: "a", Value: 1, Generated: old})
	db.ApplyUpdate(Update{Object: "b", Value: 2, Generated: newer})
	waitFor(t, time.Second, func() bool {
		e, _ := db.Peek("sum")
		return e.Value == 3
	})
	e, _ := db.Peek("sum")
	if !e.Generated.Equal(old) {
		t.Fatalf("derived generation = %v, want the oldest dep %v", e.Generated, old)
	}
}

func TestDerivedStaleWhenDepStale(t *testing.T) {
	clock := newFakeClock()
	db := mustOpen(t, Config{
		Policy: UpdatesFirst,
		MaxAge: time.Second,
		Clock:  clock.Now,
	})
	db.DefineView("a", Low)
	db.DefineDerived("d", []string{"a"}, func(vs []float64) float64 { return vs[0] })
	db.ApplyUpdate(Update{Object: "a", Value: 1, Generated: clock.Now()})
	waitFor(t, time.Second, func() bool {
		e, _ := db.Peek("d")
		return e.Value == 1
	})
	if e, _ := db.Peek("d"); e.Stale {
		t.Fatal("derived view should be fresh")
	}
	clock.Advance(2 * time.Second)
	if e, _ := db.Peek("d"); !e.Stale {
		t.Fatal("derived view should be stale once its dependency ages out")
	}
}

func TestDerivedValidation(t *testing.T) {
	db := mustOpen(t, Config{})
	db.DefineView("a", Low)
	if err := db.DefineDerived("d", nil, func([]float64) float64 { return 0 }); err == nil {
		t.Fatal("empty deps should fail")
	}
	if err := db.DefineDerived("d", []string{"a"}, nil); err == nil {
		t.Fatal("nil compute should fail")
	}
	if err := db.DefineDerived("d", []string{"ghost"}, func([]float64) float64 { return 0 }); !errors.Is(err, ErrUnknownDependency) {
		t.Fatalf("unknown dep: %v", err)
	}
	if err := db.DefineDerived("a", []string{"a"}, func([]float64) float64 { return 0 }); !errors.Is(err, ErrDuplicateObject) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := db.DefineDerived("d", []string{"a"}, func(vs []float64) float64 { return vs[0] }); err != nil {
		t.Fatal(err)
	}
	// Chained derivation is rejected.
	if err := db.DefineDerived("dd", []string{"d"}, func(vs []float64) float64 { return vs[0] }); err == nil {
		t.Fatal("derived-on-derived should fail")
	}
	// External updates to derived views are rejected.
	if err := db.ApplyUpdate(Update{Object: "d", Value: 1}); !errors.Is(err, ErrDerivedUpdate) {
		t.Fatalf("update to derived: %v", err)
	}
}

// --- Historical views ---

func TestReadAsOf(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst, HistoryDepth: 8})
	db.DefineView("x", Low)
	base := time.Now()
	for i := 1; i <= 3; i++ {
		db.ApplyUpdate(Update{
			Object:    "x",
			Value:     float64(i * 10),
			Generated: base.Add(time.Duration(i) * time.Second),
		})
	}
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesInstalled == 3 })

	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			// As of t=2.5s: the second version.
			e, err := tx.ReadAsOf("x", base.Add(2500*time.Millisecond))
			if err != nil {
				return err
			}
			if e.Value != 20 {
				t.Errorf("as-of read = %v, want 20", e.Value)
			}
			// As of well after everything: the newest version.
			e, err = tx.ReadAsOf("x", base.Add(time.Hour))
			if err != nil {
				return err
			}
			if e.Value != 30 {
				t.Errorf("latest as-of = %v, want 30", e.Value)
			}
			// Before the first version: no history.
			if _, err := tx.ReadAsOf("x", base); !errors.Is(err, ErrNoHistory) {
				t.Errorf("too-old as-of: %v", err)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
}

func TestHistoryDepthBounded(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst, HistoryDepth: 3})
	db.DefineView("x", Low)
	base := time.Now()
	for i := 1; i <= 10; i++ {
		db.ApplyUpdate(Update{Object: "x", Value: float64(i), Generated: base.Add(time.Duration(i) * time.Millisecond)})
	}
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesInstalled == 10 })
	hist, err := db.History("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	if hist[0].Value != 8 || hist[2].Value != 10 {
		t.Fatalf("history = %+v, want the newest three", hist)
	}
}

func TestHistoryDisabled(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("x", Low)
	if _, err := db.HistoryAt("x", time.Now()); !errors.Is(err, ErrNoHistory) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.HistoryAt("ghost", time.Now()); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

// --- Partial updates (record views) ---

func TestPartialUpdateMergesFields(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("quote", Low)
	base := time.Now()
	// Complete update establishes the record.
	db.ApplyUpdate(Update{
		Object:    "quote",
		Value:     100,
		Fields:    map[string]float64{"bid": 99.5, "ask": 100.5, "volume": 1000},
		Generated: base,
	})
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesInstalled == 1 })
	// Partial update changes only the bid.
	db.ApplyUpdate(Update{
		Object:    "quote",
		Fields:    map[string]float64{"bid": 99.75},
		Partial:   true,
		Generated: base.Add(time.Millisecond),
	})
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesInstalled == 2 })
	e, _ := db.Peek("quote")
	if e.Value != 100 {
		t.Fatalf("partial update clobbered the scalar value: %v", e.Value)
	}
	if e.Fields["bid"] != 99.75 || e.Fields["ask"] != 100.5 || e.Fields["volume"] != 1000 {
		t.Fatalf("fields after partial = %v", e.Fields)
	}
}

func TestCompleteUpdateReplacesFields(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("quote", Low)
	base := time.Now()
	db.ApplyUpdate(Update{
		Object: "quote", Value: 1,
		Fields:    map[string]float64{"a": 1, "b": 2},
		Generated: base,
	})
	db.ApplyUpdate(Update{
		Object: "quote", Value: 2,
		Fields:    map[string]float64{"c": 3},
		Generated: base.Add(time.Millisecond),
	})
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesInstalled == 2 })
	e, _ := db.Peek("quote")
	if e.Value != 2 || len(e.Fields) != 1 || e.Fields["c"] != 3 {
		t.Fatalf("complete update should replace the record: %+v", e)
	}
}

// --- WAL and recovery ---

func walConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{Policy: TransactionsFirst, WALPath: filepath.Join(dir, "strip.wal")}
}

func setKey(t *testing.T, db *DB, key string, v float64) {
	t.Helper()
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			tx.Set(key, v)
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("set %s failed: %+v", key, res)
	}
}

func getKey(t *testing.T, db *DB, key string) (float64, bool) {
	t.Helper()
	var v float64
	var ok bool
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			v, ok = tx.Get(key)
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("get %s failed: %+v", key, res)
	}
	return v, ok
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(t, dir)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setKey(t, db, "balance", 1234.5)
	setKey(t, db, "weird key \"quoted\"\n", -1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok := getKey(t, db2, "balance"); !ok || v != 1234.5 {
		t.Fatalf("recovered balance = %v %v", v, ok)
	}
	if v, ok := getKey(t, db2, "weird key \"quoted\"\n"); !ok || v != -1 {
		t.Fatalf("recovered quoted key = %v %v", v, ok)
	}
}

func TestWALCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(t, dir)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setKey(t, db, "a", 1)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint rotated to a fresh active segment: only the
	// generation header remains, and the sealed predecessor is pruned.
	data, err := os.ReadFile(cfg.WALPath)
	if err != nil || !strings.HasPrefix(string(data), "wal ") || strings.Contains(string(data), "set ") {
		t.Fatalf("WAL after checkpoint: %q err=%v", data, err)
	}
	if _, err := os.Stat(cfg.WALPath + ".g00000001"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("sealed segment not pruned after checkpoint: %v", err)
	}
	setKey(t, db, "b", 2) // lands in the fresh WAL
	db.Close()

	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok := getKey(t, db2, "a"); !ok || v != 1 {
		t.Fatalf("snapshot value lost: %v %v", v, ok)
	}
	if v, ok := getKey(t, db2, "b"); !ok || v != 2 {
		t.Fatalf("post-checkpoint value lost: %v %v", v, ok)
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(t, dir)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setKey(t, db, "good", 1)
	db.Close()
	// Simulate a crash mid-append: a set without its commit.
	f, err := os.OpenFile(cfg.WALPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("set \"torn\" 99\n")
	f.Close()

	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok := getKey(t, db2, "good"); !ok || v != 1 {
		t.Fatalf("committed value lost: %v %v", v, ok)
	}
	if _, ok := getKey(t, db2, "torn"); ok {
		t.Fatal("uncommitted tail applied at recovery")
	}
}

func TestCheckpointWithoutWAL(t *testing.T) {
	db := mustOpen(t, Config{})
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint without WAL should be a no-op: %v", err)
	}
}

func TestWALFreshDatabaseEmpty(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(walConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, ok := getKey(t, db, "anything"); ok {
		t.Fatal("fresh database should be empty")
	}
}
