package strip

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/model"
)

// State is a transaction's terminal outcome.
type State int

const (
	// Committed: the function returned nil before the deadline.
	Committed State = iota
	// AbortedDeadline: the firm deadline passed (before or during
	// execution), or the feasible-deadline test failed.
	AbortedDeadline
	// AbortedStale: a stale view read under the Abort action.
	AbortedStale
	// Failed: the transaction function returned an unrelated error,
	// or the database closed.
	Failed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Committed:
		return "committed"
	case AbortedDeadline:
		return "aborted-deadline"
	case AbortedStale:
		return "aborted-stale"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// TxnSpec describes a transaction submission.
type TxnSpec struct {
	// Name is an optional label for diagnostics.
	Name string
	// Value is the benefit of committing before the deadline; it
	// drives value-density scheduling against other transactions.
	Value float64
	// Deadline is the firm deadline. A zero deadline means "no
	// deadline" and is normalized to one hour from submission.
	Deadline time.Time
	// Estimate, when positive, is the expected execution time; it
	// enables precise value density and the feasible-deadline abort.
	Estimate time.Duration
	// Func is the transaction body. It runs on the scheduler
	// goroutine; it must not call Exec (no nesting) and must return
	// any error received from Tx methods.
	Func func(tx *Tx) error
}

// Result is a transaction's outcome.
type Result struct {
	// State is the terminal state.
	State State
	// ReadStale reports whether any view read observed a stale value.
	ReadStale bool
	// StaleReads lists the stale objects read, under the Warn action.
	StaleReads []string
	// Err is the error that ended a non-committed transaction.
	Err error
	// Started and Finished bound the execution (zero if never run).
	Started, Finished time.Time
}

// Committed reports whether the transaction committed.
func (r Result) Committed() bool { return r.State == Committed }

// Tx is the handle a transaction function uses to access the
// database. It is only valid during the function's execution.
type Tx struct {
	db         *DB
	spec       *TxnSpec
	deadline   time.Time
	readStale  bool
	staleReads []string
	writes     map[string]float64
	abortErr   error
	active     bool
}

// Exec submits a transaction and blocks until it commits or aborts.
// It must not be called from inside a transaction function.
func (db *DB) Exec(spec TxnSpec) Result {
	if spec.Func == nil {
		return Result{State: Failed, Err: errors.New("strip: TxnSpec.Func is nil")}
	}
	db.mu.RLock()
	closed := db.closed
	db.mu.RUnlock()
	if closed {
		return Result{State: Failed, Err: ErrClosed}
	}
	now := db.now()
	if spec.Deadline.IsZero() {
		spec.Deadline = now.Add(time.Hour)
	}
	db.mu.Lock()
	db.stats.TxnsSubmitted++
	db.mu.Unlock()
	req := &txnReq{spec: spec, res: make(chan Result, 1), enqueued: now}
	select {
	case db.txnCh <- req:
	case <-db.stopCh:
		return Result{State: Failed, Err: ErrClosed}
	}
	select {
	case res := <-req.res:
		return res
	case <-db.done:
		// The scheduler exited; it drained the queue first, so a
		// result may still be buffered.
		select {
		case res := <-req.res:
			return res
		default:
			return Result{State: Failed, Err: ErrClosed}
		}
	}
}

// execute runs one admitted transaction on the scheduler goroutine.
func (db *DB) execute(req *txnReq) {
	now := db.now()
	if db.hopeless(req, now) {
		db.finish(req, Result{State: AbortedDeadline, Err: ErrDeadlineExceeded})
		return
	}
	tx := &Tx{
		db:       db,
		spec:     &req.spec,
		deadline: req.spec.Deadline,
		active:   true,
	}
	started := now
	err := req.spec.Func(tx)
	tx.active = false
	finished := db.now()

	res := Result{
		ReadStale:  tx.readStale,
		StaleReads: tx.staleReads,
		Started:    started,
		Finished:   finished,
	}
	switch {
	case tx.abortErr != nil:
		// A sticky abort (stale read under Abort, or deadline hit
		// mid-run) dooms the transaction even if Func returned nil.
		res.Err = tx.abortErr
		if errors.Is(tx.abortErr, ErrStaleRead) {
			res.State = AbortedStale
		} else {
			res.State = AbortedDeadline
		}
	case err != nil:
		res.Err = err
		res.State = Failed
	case finished.After(tx.deadline):
		res.Err = ErrDeadlineExceeded
		res.State = AbortedDeadline
	default:
		if cerr := tx.commit(); cerr != nil {
			res.Err = cerr
			res.State = Failed
		} else {
			res.State = Committed
		}
	}
	db.finish(req, res)
}

// commit logs and applies the transaction's buffered general-data
// writes. The WAL append, the in-memory apply and the replication
// publish happen under one critical section so Checkpoint and
// ReplicaSnapshot see a consistent cut (see applyWritesLocked).
func (tx *Tx) commit() error {
	if len(tx.writes) == 0 {
		return nil
	}
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	return tx.db.applyWritesLocked(tx.writes)
}

// checkState validates that the handle is usable and the deadline has
// not passed.
func (tx *Tx) checkState() error {
	if !tx.active {
		return errors.New("strip: Tx used outside its transaction function")
	}
	if tx.abortErr != nil {
		return tx.abortErr
	}
	if tx.db.now().After(tx.deadline) {
		tx.abortErr = ErrDeadlineExceeded
		return tx.abortErr
	}
	return nil
}

// Read returns a view object's current value, applying the configured
// staleness criterion and action. A Read is a cooperative scheduling
// point: pending updates are received, and under UpdatesFirst /
// SplitUpdates they are installed before the value is returned
// (update "preemption"); under OnDemand a stale object is refreshed
// from the queue if possible.
func (tx *Tx) Read(name string) (Entry, error) {
	if err := tx.checkState(); err != nil {
		return Entry{}, err
	}
	db := tx.db
	id, ok := db.lookup(name)
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q", ErrUnknownObject, name)
	}

	// Receive arrivals; install per policy at this yield point.
	db.drainIngest()
	switch db.cfg.Policy {
	case UpdatesFirst:
		db.installAll(-1)
	case SplitUpdates:
		db.installAll(int(model.High))
	}

	now := db.now()
	stale := db.isStale(id, now)
	if stale && db.cfg.Policy == OnDemand {
		db.refreshOnDemand(id)
		stale = db.isStale(id, db.now())
	}

	db.mu.RLock()
	e := Entry{
		Object:    name,
		Value:     db.entries[id].value,
		Fields:    copyFields(db.entries[id].fields),
		Generated: db.entries[id].generated,
		Stale:     stale,
	}
	db.mu.RUnlock()

	if stale {
		tx.readStale = true
		switch db.cfg.OnStale {
		case Warn:
			tx.staleReads = append(tx.staleReads, name)
		case Abort:
			tx.abortErr = ErrStaleRead
			return e, ErrStaleRead
		}
	}
	return e, nil
}

// Get reads general data, observing the transaction's own writes.
func (tx *Tx) Get(key string) (float64, bool) {
	if tx.checkState() != nil {
		return 0, false
	}
	if v, ok := tx.writes[key]; ok {
		return v, true
	}
	tx.db.mu.RLock()
	v, ok := tx.db.general[key]
	tx.db.mu.RUnlock()
	return v, ok
}

// Set buffers a general-data write, applied atomically at commit.
func (tx *Tx) Set(key string, v float64) {
	if tx.checkState() != nil {
		return
	}
	if tx.writes == nil {
		tx.writes = make(map[string]float64)
	}
	tx.writes[key] = v
}

// Deadline returns the transaction's firm deadline.
func (tx *Tx) Deadline() time.Time { return tx.deadline }

// Remaining returns the time left until the deadline.
func (tx *Tx) Remaining() time.Duration { return tx.deadline.Sub(tx.db.now()) }
