package strip

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// The write-ahead log makes general data durable: every committed
// transaction's Set operations are appended as one record, and Open
// replays the log (on top of the latest checkpoint snapshot) before
// accepting work. View data is deliberately not logged — it mirrors
// the external world and is re-derivable from the update stream, the
// same reasoning STRIP applied.
//
// On-disk format, one token-quoted line per operation:
//
//	set <quoted-key> <value>     (one per write in the batch)
//	commit                       (seals the batch)
//
// A batch without its commit line (a crash mid-append) is ignored at
// replay. Checkpoint writes the full general store to <path>.snap and
// truncates the log.

// walWriter appends committed batches to the log file.
type walWriter struct {
	f   *os.File
	buf *bufio.Writer
}

func openWAL(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("strip: opening WAL: %w", err)
	}
	return &walWriter{f: f, buf: bufio.NewWriter(f)}, nil
}

// appendBatch logs one committed transaction's writes. The batch is
// flushed to the OS before it is considered durable; fsync is left to
// Close/Checkpoint (group durability, not per-commit).
func (w *walWriter) appendBatch(writes map[string]float64) error {
	for k, v := range writes {
		if _, err := fmt.Fprintf(w.buf, "set %s %s\n",
			strconv.Quote(k), strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
	}
	if _, err := w.buf.WriteString("commit\n"); err != nil {
		return err
	}
	return w.buf.Flush()
}

func (w *walWriter) sync() error {
	if err := w.buf.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *walWriter) close() error {
	ferr := w.sync()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// snapPath is the checkpoint snapshot file for a WAL path.
func snapPath(walPath string) string { return walPath + ".snap" }

// recoverGeneral loads the general store from the checkpoint snapshot
// and the WAL. Missing files mean an empty starting state.
func recoverGeneral(walPath string) (map[string]float64, error) {
	general := make(map[string]float64)
	if err := loadSnapshot(snapPath(walPath), general); err != nil {
		return nil, err
	}
	if err := replayWAL(walPath, general); err != nil {
		return nil, err
	}
	return general, nil
}

func loadSnapshot(path string, into map[string]float64) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("strip: opening snapshot: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		key, value, err := parseSetLine(sc.Text())
		if err != nil {
			return fmt.Errorf("strip: corrupt snapshot %s: %w", path, err)
		}
		into[key] = value
	}
	return sc.Err()
}

func replayWAL(path string, into map[string]float64) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("strip: opening WAL: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	pending := make(map[string]float64)
	for sc.Scan() {
		line := sc.Text()
		if line == "commit" {
			for k, v := range pending {
				into[k] = v
			}
			clear(pending)
			continue
		}
		key, value, err := parseSetLine(line)
		if err != nil {
			// A torn final record: everything before the last commit
			// is already applied; stop here.
			return nil
		}
		pending[key] = value
	}
	// Trailing writes without a commit are discarded.
	return sc.Err()
}

// parseSetLine decodes `set <quoted-key> <value>`.
func parseSetLine(line string) (string, float64, error) {
	rest, ok := strings.CutPrefix(line, "set ")
	if !ok {
		return "", 0, fmt.Errorf("bad record %q", line)
	}
	key, tail, err := unquoteToken(rest)
	if err != nil {
		return "", 0, err
	}
	value, err := strconv.ParseFloat(strings.TrimSpace(tail), 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return key, value, nil
}

// unquoteToken reads one Go-quoted string from the front of s and
// returns it with the remainder.
func unquoteToken(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("missing quoted key in %q", s)
	}
	// Find the closing quote, honouring escapes.
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			key, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return key, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted key in %q", s)
}

// Checkpoint writes the whole general store to the snapshot file and
// truncates the WAL, bounding recovery time. It is a no-op without a
// configured WAL.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return nil
	}
	// Snapshot the general store.
	db.mu.RLock()
	pairs := make(map[string]float64, len(db.general))
	for k, v := range db.general {
		pairs[k] = v
	}
	db.mu.RUnlock()

	tmp := snapPath(db.cfg.WALPath) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for k, v := range pairs {
		if _, err := fmt.Fprintf(w, "set %s %s\n",
			strconv.Quote(k), strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, snapPath(db.cfg.WALPath)); err != nil {
		return err
	}
	// Truncate the log: everything it held is now in the snapshot.
	// Writes are serialized with the scheduler via db.mu in commit,
	// so truncation is safe under the same lock.
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.wal.sync(); err != nil {
		return err
	}
	if err := db.wal.f.Truncate(0); err != nil {
		return err
	}
	_, err = db.wal.f.Seek(0, 0)
	return err
}
