package strip

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/strip/fault"
	"repro/strip/obs"
)

// The write-ahead log makes general data durable: every committed
// transaction's Set operations are appended as one record, and Open
// replays the log (on top of the latest checkpoint snapshot) before
// accepting work. View data is deliberately not logged — it mirrors
// the external world and is re-derivable from the update stream, the
// same reasoning STRIP applied.
//
// The log is a sequence of generation-numbered segments. The active
// segment lives at Config.WALPath; sealed segments live beside it as
// <path>.gNNNNNNNN. Every segment opens with a header line naming its
// generation, and the checkpoint snapshot (<path>.snap) opens with a
// header naming the first generation it does NOT cover:
//
//	wal <gen>                    (segment header)
//	set <quoted-key> <value>     (one per write in the batch)
//	commit                       (seals the batch)
//
//	snap <gen>                   (snapshot header)
//	set <quoted-key> <value>     (one per key, sorted)
//
// Records are written in sorted key order, so equal states produce
// byte-identical files. Checkpoint never rewrites a file in place: it
// seals the active segment with a rename, starts a fresh one, and
// only then writes the snapshot. Commits that land while the snapshot
// is being written go to the new segment, which the snapshot does not
// cover — nothing is ever truncated away, so no committed write can
// be lost to a checkpoint and no stale bytes can resurrect after a
// crash. Recovery loads the snapshot, then replays the sealed
// segments it does not cover plus the active segment, applying whole
// batches only.
//
// A batch without its terminated commit line (a crash or torn write
// mid-append) is ignored at replay — but only when it is the final
// record of the log. Corruption followed by later records cannot be
// explained by a crash and surfaces as a *WALCorruptError. Headerless
// files written by earlier versions are read as generation 0.
//
// Tolerating a torn tail obliges recovery to remove it: the tail's
// bytes are still in the file, and appending new commits after them
// would either merge uncommitted writes into the next batch or turn
// the tolerated tail into mid-log damage that bricks the next Open.
// So recovery truncates the segment holding the torn or uncommitted
// tail back to its last terminated commit before the writer reopens
// it — the discarded bytes are exactly the ones replay ignores.

// WALCorruptError reports damage to the write-ahead log or snapshot
// that cannot be explained by a crash mid-append: a record that fails
// to parse, or a torn batch followed by later intact records.
// Recovery refuses to guess and returns it from Open.
type WALCorruptError struct {
	// File is the corrupt segment or snapshot path.
	File string
	// Line is the 1-based line number of the bad record.
	Line int
	// Offset is the byte offset of the bad record's first byte.
	Offset int64
	// Reason describes the damage.
	Reason string
}

func (e *WALCorruptError) Error() string {
	return fmt.Sprintf("strip: corrupt WAL %s:%d (byte %d): %s", e.File, e.Line, e.Offset, e.Reason)
}

// walWriter appends committed batches to the active log segment. It
// is guarded by db.mu. After any append, sync or rotation failure the
// writer is poisoned: broken holds the first cause, the buffer is
// discarded (a partial batch must never reach the file later), and
// every call fails fast until a checkpoint rotates to a fresh
// segment.
type walWriter struct {
	fs   fault.FS
	path string
	gen  uint64
	f    fault.File
	buf  *bufio.Writer
	// sealed means rotation renamed the active segment for gen away
	// but failed before creating its successor: the active path does
	// not exist, and the next rotation must skip straight to creating
	// the fresh segment instead of renaming again.
	sealed bool
	broken error
	// kvScratch and encScratch are reused across appendBatch calls so
	// a steady-state commit encodes its records with zero allocations.
	kvScratch  []KeyValue
	encScratch []byte
}

// walState is what recovery learned about the on-disk log, consumed
// by openWAL.
type walState struct {
	snapGen   uint64 // first generation not covered by the snapshot
	activeGen uint64 // generation of the usable active segment
	activeOK  bool   // the active segment exists and can be appended to
	nextGen   uint64 // generation for a fresh active segment otherwise
}

// openWAL opens the active segment for appending, creating a fresh
// generation-headed one when recovery found none usable.
func openWAL(fsys fault.FS, path string, st walState) (*walWriter, error) {
	if st.activeOK {
		f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("strip: opening WAL: %w", err)
		}
		return &walWriter{fs: fsys, path: path, gen: st.activeGen, f: f, buf: bufio.NewWriter(f)}, nil
	}
	f, err := newActiveSegment(fsys, path, st.nextGen)
	if err != nil {
		return nil, fmt.Errorf("strip: creating WAL: %w", err)
	}
	return &walWriter{fs: fsys, path: path, gen: st.nextGen, f: f, buf: bufio.NewWriter(f)}, nil
}

// newActiveSegment creates a fresh active segment with a synced
// generation header, so a crash immediately after leaves a parsable
// file.
func newActiveSegment(fsys fault.FS, path string, gen uint64) (fault.File, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(f, "wal %d\n", gen); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// poison marks the writer broken with its first failure and discards
// buffered bytes: after a torn append, whatever prefix reached the
// file must stay a final torn tail — flushing the rest later would
// turn it into mid-log garbage.
func (w *walWriter) poison(err error) error {
	if w.broken == nil {
		w.broken = err
		w.buf.Reset(io.Discard)
	}
	return err
}

// appendBatch logs one committed transaction's writes in sorted key
// order. The batch is flushed to the OS before it is considered
// applied; fsync is left to Sync/Close/Checkpoint (group durability,
// not per-commit).
func (w *walWriter) appendBatch(writes map[string]float64) error {
	if w.broken != nil {
		return w.broken
	}
	// Encode into reused scratch instead of fmt.Fprintf: byte-for-byte
	// the same records ("set <quoted-key> <floatG>\n"), without the
	// per-record format parsing, boxing and intermediate strings. The
	// torture tests compare WAL bytes, so the encoding must not drift.
	w.kvScratch = appendSortedKVs(w.kvScratch[:0], writes)
	for _, kv := range w.kvScratch {
		w.encScratch = append(w.encScratch[:0], "set "...)
		w.encScratch = strconv.AppendQuote(w.encScratch, kv.Key)
		w.encScratch = append(w.encScratch, ' ')
		w.encScratch = strconv.AppendFloat(w.encScratch, kv.Value, 'g', -1, 64)
		w.encScratch = append(w.encScratch, '\n')
		if _, err := w.buf.Write(w.encScratch); err != nil {
			return w.poison(err)
		}
	}
	if _, err := w.buf.WriteString("commit\n"); err != nil {
		return w.poison(err)
	}
	if err := w.buf.Flush(); err != nil {
		return w.poison(err)
	}
	return nil
}

func (w *walWriter) sync() error {
	if w.broken != nil {
		return w.broken
	}
	if err := w.buf.Flush(); err != nil {
		return w.poison(err)
	}
	if err := w.f.Sync(); err != nil {
		return w.poison(err)
	}
	return nil
}

func (w *walWriter) close() error {
	serr := w.sync()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// snapPath is the checkpoint snapshot file for a WAL path.
func snapPath(walPath string) string { return walPath + ".snap" }

// segmentName is the sealed name of generation gen.
func segmentName(walPath string, gen uint64) string {
	return fmt.Sprintf("%s.g%08d", walPath, gen)
}

// sealedSegment is one sealed segment found on disk.
type sealedSegment struct {
	name string
	gen  uint64
}

// sealedSegments lists the sealed segments beside a WAL path, in
// ascending generation order.
func sealedSegments(fsys fault.FS, walPath string) ([]sealedSegment, error) {
	dir := filepath.Dir(walPath)
	names, err := fsys.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("strip: listing WAL segments: %w", err)
	}
	prefix := filepath.Base(walPath) + ".g"
	var segs []sealedSegment
	for _, name := range names {
		// Any run of digits after the prefix is a generation: %08d
		// pads short generations to 8 digits but grows past 8 at
		// generation 1e8, and an exact-length check would silently
		// drop those segments (and their committed data) at replay.
		if !strings.HasPrefix(name, prefix) || len(name) == len(prefix) {
			continue
		}
		gen, err := strconv.ParseUint(name[len(prefix):], 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, sealedSegment{name: filepath.Join(dir, name), gen: gen})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].gen < segs[j].gen })
	return segs, nil
}

// recoverGeneral loads the general store from the checkpoint snapshot
// and the log segments it does not cover. Missing files mean an empty
// starting state. Replay is staged: batches are collected first and
// applied only when the whole log has parsed clean, so an error never
// leaves a partial state behind. A torn or uncommitted tail in the
// last segment with records is truncated away before returning, so
// the writer never appends after bytes replay discarded.
func recoverGeneral(fsys fault.FS, path string) (map[string]float64, walState, error) {
	general := make(map[string]float64)
	var st walState

	snapGen, err := loadSnapshot(fsys, snapPath(path), general)
	if err != nil {
		return nil, st, err
	}
	st.snapGen = snapGen

	segs, err := sealedSegments(fsys, path)
	if err != nil {
		return nil, st, err
	}

	rs := &replayState{}
	// The segment with a tolerated torn/uncommitted tail, and the
	// offset of its last terminated commit — everything past it is
	// discarded bytes that must not survive on disk.
	tailFile := ""
	tailEnd := int64(0)
	var maxSealed uint64
	haveSealed := false
	for _, sg := range segs {
		if sg.gen >= maxSealed {
			maxSealed = sg.gen
			haveSealed = true
		}
		if sg.gen < snapGen {
			// Covered by the snapshot; awaiting pruning.
			continue
		}
		data, err := readFileAll(fsys, sg.name)
		if err != nil {
			return nil, st, fmt.Errorf("strip: reading WAL segment: %w", err)
		}
		commitEnd, err := replaySegment(sg.name, data, sg.gen, rs)
		if err != nil {
			return nil, st, err
		}
		if rs.torn != nil && tailFile == "" {
			tailFile, tailEnd = sg.name, commitEnd
		}
	}

	// The active segment is always replayed: by construction its
	// generation is never below the snapshot's.
	data, err := readFileAll(fsys, path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Crash between sealing and creating the next segment.
	case err != nil:
		return nil, st, fmt.Errorf("strip: reading WAL: %w", err)
	default:
		gen, usable, herr := activeHeader(path, data)
		if herr != nil {
			return nil, st, herr
		}
		if usable {
			st.activeOK = true
			st.activeGen = gen
			commitEnd, err := replaySegment(path, data, gen, rs)
			if err != nil {
				return nil, st, err
			}
			// The active segment is reopened for appending, so even a
			// cleanly-parsing uncommitted tail (set lines without
			// their commit) must go: appending the next batch after
			// it would merge the discarded writes into that batch's
			// commit.
			if tailFile == "" && commitEnd < int64(len(data)) {
				tailFile, tailEnd = path, commitEnd
			}
		}
	}

	st.nextGen = snapGen
	if haveSealed && maxSealed+1 > st.nextGen {
		st.nextGen = maxSealed + 1
	}
	if st.nextGen == 0 {
		// Generation 0 is reserved for headerless legacy files.
		st.nextGen = 1
	}

	if tailFile != "" {
		if err := truncateTail(fsys, tailFile, tailEnd); err != nil {
			return nil, st, err
		}
	}

	for _, b := range rs.batches {
		for k, v := range b {
			general[k] = v
		}
	}
	return general, st, nil
}

// truncateTail cuts a recovered segment back to the end of its last
// terminated commit, removing a torn or uncommitted tail replay has
// already discarded. Failing to do so is unsafe — later appends would
// land after the dead bytes — so an error here fails the Open.
func truncateTail(fsys fault.FS, name string, size int64) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("strip: truncating torn WAL tail: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return fmt.Errorf("strip: truncating torn WAL tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("strip: syncing truncated WAL tail: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("strip: truncating torn WAL tail: %w", err)
	}
	return nil
}

// activeHeader classifies the active segment's first line: its
// generation, and whether the file is usable for appending. An empty
// file or a lone torn header (a crash during segment creation) is
// discarded and recreated; a headerless file with data is a legacy
// generation-0 log.
func activeHeader(path string, data []byte) (gen uint64, usable bool, err error) {
	lines, _, term := splitLines(data)
	if len(lines) == 0 {
		return 0, false, nil
	}
	if !strings.HasPrefix(lines[0], "wal ") {
		return 0, true, nil
	}
	if len(lines) == 1 && !term {
		return 0, false, nil
	}
	gen, perr := strconv.ParseUint(lines[0][len("wal "):], 10, 64)
	if perr != nil {
		return 0, false, &WALCorruptError{File: path, Line: 1, Offset: 0,
			Reason: fmt.Sprintf("bad segment header %q", lines[0])}
	}
	return gen, true, nil
}

// replayState accumulates committed batches across the segment chain.
// torn records the first unparsable or unterminated record; it is
// tolerated only while nothing follows it — a later record proves the
// damage is mid-log, which a crash cannot produce.
type replayState struct {
	batches []map[string]float64
	torn    *WALCorruptError
}

// replaySegment parses one segment's batches into rs. expectGen is
// the generation the segment's header must carry (headerless is
// tolerated for generation 0, the legacy format). commitEnd is the
// byte offset just past the segment's last terminated commit line (or
// past the header when no batch committed): the truncation point that
// removes a torn or uncommitted tail without touching committed data.
func replaySegment(name string, data []byte, expectGen uint64, rs *replayState) (commitEnd int64, err error) {
	lines, offs, term := splitLines(data)
	start := 0
	if len(lines) > 0 && strings.HasPrefix(lines[0], "wal ") {
		if len(lines) == 1 && !term {
			// Torn header: the segment died at birth, nothing in it.
			return 0, nil
		}
		gen, err := strconv.ParseUint(lines[0][len("wal "):], 10, 64)
		if err != nil || gen != expectGen {
			return 0, &WALCorruptError{File: name, Line: 1, Offset: 0,
				Reason: fmt.Sprintf("segment header %q does not name generation %d", lines[0], expectGen)}
		}
		start = 1
		commitEnd = int64(len(lines[0])) + 1
	} else if len(lines) > 0 && expectGen != 0 {
		return 0, &WALCorruptError{File: name, Line: 1, Offset: 0,
			Reason: fmt.Sprintf("missing generation header (want %d)", expectGen)}
	}

	pending := map[string]float64(nil)
	for i := start; i < len(lines); i++ {
		if rs.torn != nil {
			rs.torn.Reason += fmt.Sprintf("; later record at %s:%d proves mid-log damage", name, i+1)
			return 0, rs.torn
		}
		line := lines[i]
		unterminated := i == len(lines)-1 && !term
		if line == "commit" && !unterminated {
			rs.batches = append(rs.batches, pending)
			pending = nil
			commitEnd = offs[i] + int64(len(line)) + 1
			continue
		}
		key, value, err := parseSetLine(line)
		switch {
		case unterminated:
			// Even a record that happens to parse is untrustworthy
			// without its newline: the append never finished, so the
			// batch never committed.
			rs.torn = &WALCorruptError{File: name, Line: i + 1, Offset: offs[i],
				Reason: fmt.Sprintf("unterminated record %q", line)}
		case err != nil:
			rs.torn = &WALCorruptError{File: name, Line: i + 1, Offset: offs[i],
				Reason: err.Error()}
		default:
			if pending == nil {
				pending = make(map[string]float64)
			}
			pending[key] = value
		}
	}
	// Writes without a terminated commit are a torn batch: discarded.
	return commitEnd, nil
}

// loadSnapshot reads the checkpoint snapshot, returning the first
// generation it does not cover. Snapshots are written to a temp file,
// synced and renamed into place, so unlike the log they are never
// legitimately torn: any damage is an error.
func loadSnapshot(fsys fault.FS, path string, into map[string]float64) (uint64, error) {
	data, err := readFileAll(fsys, path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("strip: reading snapshot: %w", err)
	}
	lines, offs, term := splitLines(data)
	var gen uint64
	start := 0
	if len(lines) > 0 && strings.HasPrefix(lines[0], "snap ") {
		gen, err = strconv.ParseUint(lines[0][len("snap "):], 10, 64)
		if err != nil {
			return 0, &WALCorruptError{File: path, Line: 1, Offset: 0,
				Reason: fmt.Sprintf("bad snapshot header %q", lines[0])}
		}
		start = 1
	}
	for i := start; i < len(lines); i++ {
		if i == len(lines)-1 && !term {
			return 0, &WALCorruptError{File: path, Line: i + 1, Offset: offs[i],
				Reason: "unterminated snapshot record"}
		}
		key, value, err := parseSetLine(lines[i])
		if err != nil {
			return 0, &WALCorruptError{File: path, Line: i + 1, Offset: offs[i],
				Reason: err.Error()}
		}
		into[key] = value
	}
	return gen, nil
}

// readFileAll reads a whole file through the fault surface.
func readFileAll(fsys fault.FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// splitLines breaks data into newline-delimited lines with their byte
// offsets, reporting whether the final line had its newline. The
// distinction matters: a final line missing its terminator is a torn
// append, even when its bytes happen to parse.
func splitLines(data []byte) (lines []string, offs []int64, terminated bool) {
	terminated = true
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			lines = append(lines, string(data[start:i]))
			offs = append(offs, int64(start))
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, string(data[start:]))
		offs = append(offs, int64(start))
		terminated = false
	}
	return lines, offs, terminated
}

// parseSetLine decodes `set <quoted-key> <value>`.
func parseSetLine(line string) (string, float64, error) {
	rest, ok := strings.CutPrefix(line, "set ")
	if !ok {
		return "", 0, fmt.Errorf("bad record %q", line)
	}
	key, tail, err := unquoteToken(rest)
	if err != nil {
		return "", 0, err
	}
	value, err := strconv.ParseFloat(strings.TrimSpace(tail), 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return key, value, nil
}

// unquoteToken reads one Go-quoted string from the front of s and
// returns it with the remainder.
func unquoteToken(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("missing quoted key in %q", s)
	}
	// Find the closing quote, honouring escapes.
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			key, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return key, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted key in %q", s)
}

// rotateWALLocked seals the active segment and starts generation+1.
// Callers hold db.mu for writing, so no commit can interleave: the
// sealed segment plus all earlier state is exactly the cut the
// caller's snapshot will cover. A poisoned writer is healed by the
// rotation — the fresh segment is clean — but the database stays
// degraded until the caller's snapshot lands, because a torn tail in
// the sealed segment is only safely ignorable while nothing commits
// after it.
func (db *DB) rotateWALLocked() (sealedGen uint64, err error) {
	w := db.wal
	sealedGen = w.gen
	if !w.sealed {
		if w.broken == nil {
			if err := w.sync(); err != nil {
				return 0, db.walFailedLocked(err)
			}
			if err := w.f.Close(); err != nil {
				w.broken = err
				return 0, db.walFailedLocked(err)
			}
		} else {
			// Poisoned segment: persist what the OS will still take and
			// seal it as-is. The snapshot about to be written supersedes
			// it; its torn tail is batches that already failed.
			//striplint:ignore err-drop -- segment already poisoned: best-effort persist before sealing; the snapshot about to land supersedes it
			w.f.Sync()
			w.f.Close()
		}
		if err := db.fs.Rename(w.path, segmentName(w.path, w.gen)); err != nil {
			w.broken = err // the old handle is closed; the writer is unusable
			return 0, db.walFailedLocked(err)
		}
		// From here the active path no longer exists: a failure below
		// must not make the next rotation rename (and fail) again —
		// it resumes at creating the successor segment.
		w.sealed = true
	}
	f, err := newActiveSegment(db.fs, w.path, w.gen+1)
	if err != nil {
		w.broken = err
		return 0, db.walFailedLocked(err)
	}
	w.f = f
	w.buf = bufio.NewWriter(f)
	w.gen++
	w.sealed = false
	w.broken = nil
	return sealedGen, nil
}

// writeSnapshot writes the snapshot covering everything below gen:
// temp file, sorted records, sync, atomic rename.
func writeSnapshot(fsys fault.FS, walPath string, gen uint64, pairs []KeyValue) error {
	tmp := snapPath(walPath) + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("strip: creating snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "snap %d\n", gen)
	for _, kv := range pairs {
		fmt.Fprintf(w, "set %s %s\n",
			strconv.Quote(kv.Key), strconv.FormatFloat(kv.Value, 'g', -1, 64))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("strip: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("strip: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("strip: closing snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, snapPath(walPath)); err != nil {
		return fmt.Errorf("strip: installing snapshot: %w", err)
	}
	return nil
}

// pruneSegments removes sealed segments the snapshot covers. Failures
// are ignored: a leftover segment below the snapshot generation is
// skipped at recovery and retried at the next checkpoint.
func pruneSegments(fsys fault.FS, walPath string, snapGen uint64) {
	segs, err := sealedSegments(fsys, walPath)
	if err != nil {
		return
	}
	for _, sg := range segs {
		if sg.gen < snapGen {
			//striplint:ignore err-drop -- prune is best-effort by contract: a leftover segment is skipped at recovery and retried next checkpoint
			fsys.Remove(sg.name)
		}
	}
}

// Checkpoint bounds recovery time: it seals the active WAL segment,
// writes the full general store to the snapshot file and prunes the
// segments the snapshot covers. Only the rotation runs under the
// database lock; commits arriving while the snapshot is written land
// in the new segment, which the snapshot does not claim to cover — so
// the lost-write window of a truncate-style checkpoint cannot exist.
// A successful Checkpoint also heals degraded mode (see ErrDurability):
// the fresh segment plus the new snapshot re-establish the durability
// contract. It is a no-op without a configured WAL.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	//striplint:ignore block-under-lock -- ckptMu only serialises checkpoints; commits and reads proceed under db.mu while the rotation syncs
	pairs, snapGen, err := db.checkpointRotate()
	if err != nil {
		return err
	}
	//striplint:ignore block-under-lock -- snapshot I/O deliberately runs under ckptMu alone; db.mu was released after the rotation
	if err := writeSnapshot(db.fs, db.cfg.WALPath, snapGen, pairs); err != nil {
		// The WAL itself is intact: the old snapshot plus the sealed
		// segments still cover everything. Durability is not degraded
		// by a failed snapshot — but it is not healed either.
		return err
	}
	pruneSegments(db.fs, db.cfg.WALPath, snapGen)
	db.checkpointHeal()
	return nil
}

// checkpointRotate runs Checkpoint's locked phase: seal the active
// segment, start a fresh one, and copy the general store — the exact
// cut the snapshot will cover, since no commit can interleave.
func (db *DB) checkpointRotate() (pairs []KeyValue, snapGen uint64, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, 0, ErrClosed
	}
	//striplint:ignore block-under-lock -- sealing must be atomic with the commit path: group-commit accepts one segment fsync under db.mu per checkpoint
	sealedGen, err := db.rotateWALLocked()
	if err != nil {
		return nil, 0, err
	}
	return sortedKVs(db.general), sealedGen + 1, nil
}

// checkpointHeal ends degraded mode after a successful snapshot —
// unless the WAL broke again while the snapshot was being written.
func (db *DB) checkpointHeal() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal.broken == nil {
		db.dur.Heal()
	}
}

// Sync forces every committed batch so far to stable storage. Commits
// are durable across a crash only after a successful Sync, Checkpoint
// or Close (group durability); a failed Sync poisons the WAL and
// degrades the database.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.wal == nil {
		return nil
	}
	if db.dur.Degraded() {
		return db.degradedErrLocked()
	}
	start := db.nowNanos()
	//striplint:ignore block-under-lock -- Sync's contract is group durability: the fsync must exclude commits, so it holds db.mu by design
	err := db.wal.sync()
	db.obs.stage[obs.StageWALFsync].Observe(db.nowNanos() - start)
	if err != nil {
		return db.walFailedLocked(err)
	}
	return nil
}

// walFailedLocked records a WAL failure, degrades the database and
// wraps the cause in ErrDurability. Callers hold db.mu for writing.
func (db *DB) walFailedLocked(err error) error {
	db.dur.Failure()
	return fmt.Errorf("%w: %v", ErrDurability, err)
}

// degradedErrLocked is the fail-fast commit error while degraded.
// Callers hold db.mu.
func (db *DB) degradedErrLocked() error {
	if db.wal != nil && db.wal.broken != nil {
		return fmt.Errorf("%w: %v", ErrDurability, db.wal.broken)
	}
	return fmt.Errorf("%w: write-ahead log degraded, checkpoint pending", ErrDurability)
}
