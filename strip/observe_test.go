package strip

import (
	"bytes"
	"testing"
	"time"

	"repro/strip/obs"
)

// TestMetricsSnapshotDeterministic pins the exposition contract end to
// end: two databases fed the same scripted history under the same
// injected clock must produce byte-identical /metrics snapshots. A
// per-scheduler-pass observation, a map-order leak in the registry, or
// a wall-clock read anywhere in the pipeline instrumentation shows up
// here as a diff.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	runOnce := func() []byte {
		clock := newFakeClock()
		reg := obs.NewRegistry()
		db := mustOpen(t, Config{
			Policy:     UpdatesFirst,
			MaxAge:     time.Second,
			Clock:      clock.Now,
			Metrics:    reg,
			TraceDepth: 8,
		})
		db.DefineView("a", Low)
		db.DefineView("b", High)
		ch, cancel, err := db.Watch("", 16)
		if err != nil {
			t.Fatal(err)
		}
		defer cancel()
		// Lockstep: wait for each install before the next arrival, so
		// both runs observe identical queue lengths and stage spans.
		for i := 0; i < 5; i++ {
			db.ApplyUpdate(Update{Object: "a", Value: float64(i), Generated: clock.Now()})
			<-ch
			clock.Advance(10 * time.Millisecond)
		}
		db.ApplyUpdate(Update{Object: "b", Value: 42, Generated: clock.Now()})
		<-ch
		res := db.Exec(TxnSpec{
			Name:     "t",
			Value:    3,
			Deadline: clock.Now().Add(time.Minute),
			Func: func(tx *Tx) error {
				_, err := tx.Read("a")
				return err
			},
		})
		if !res.Committed() {
			t.Fatalf("txn state = %v (%v)", res.State, res.Err)
		}
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := runOnce(), runOnce()
	if !bytes.Equal(first, second) {
		t.Errorf("metrics snapshots differ between identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestMaxStalenessPerObject pins the per-object staleness high-water
// mark: an update installed well past its generation time must raise
// the object's maximum, and other objects must be unaffected.
func TestMaxStalenessPerObject(t *testing.T) {
	clock := newFakeClock()
	db := mustOpen(t, Config{
		Policy: UpdatesFirst,
		// Generous MaxAge: the 2s-old update must be stale-ish yet
		// still young enough to install rather than expire.
		MaxAge: 10 * time.Second,
		Clock:  clock.Now,
	})
	db.DefineView("old", Low)
	db.DefineView("fresh", Low)
	ch, cancel, err := db.Watch("", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	db.ApplyUpdate(Update{Object: "old", Value: 1, Generated: clock.Now().Add(-2 * time.Second)})
	<-ch
	db.ApplyUpdate(Update{Object: "fresh", Value: 1, Generated: clock.Now()})
	<-ch

	got, err := db.MaxStaleness("old")
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.9 || got > 2.1 {
		t.Errorf("MaxStaleness(old) = %v, want about 2s", got)
	}
	got, err = db.MaxStaleness("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.1 {
		t.Errorf("MaxStaleness(fresh) = %v, want about 0", got)
	}
	if _, err := db.MaxStaleness("nosuch"); err == nil {
		t.Error("MaxStaleness on an unknown object should fail")
	}
}

// TestTraceRingCapturesPipeline pins the per-update trace: with
// TraceDepth set, every installed update leaves a trace whose install
// and trigger spans are stamped, newest first.
func TestTraceRingCapturesPipeline(t *testing.T) {
	clock := newFakeClock()
	db := mustOpen(t, Config{
		Policy:     UpdatesFirst,
		MaxAge:     time.Second,
		Clock:      clock.Now,
		TraceDepth: 4,
	})
	db.DefineView("a", Low)
	ch, cancel, err := db.Watch("", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	for i := 0; i < 6; i++ {
		// Each generation must be newer than the last or the install
		// is skipped as superseded and never reaches the ring.
		clock.Advance(time.Millisecond)
		db.ApplyUpdate(Update{Object: "a", Value: float64(i), Generated: clock.Now()})
		<-ch
	}
	traces := db.Traces()
	if len(traces) != 4 {
		t.Fatalf("Traces() returned %d traces, want ring depth 4", len(traces))
	}
	for i, tr := range traces {
		if tr.Object != "a" {
			t.Errorf("trace %d object = %q", i, tr.Object)
		}
		if tr.Spans[obs.StageQueueWait] < 0 {
			t.Errorf("trace %d missing queue-wait span", i)
		}
		if tr.Spans[obs.StageInstall] < 0 {
			t.Errorf("trace %d missing install span", i)
		}
		if tr.Spans[obs.StageTrigger] < 0 {
			t.Errorf("trace %d missing trigger span", i)
		}
		// No WAL or replication in this setup: those spans stay unset.
		if tr.Spans[obs.StageWALFsync] >= 0 || tr.Spans[obs.StageReplPublish] >= 0 {
			t.Errorf("trace %d has spans for stages that never ran: %v", i, tr.Spans)
		}
	}
}
