package strip

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/strip/fault"
)

func FuzzParseUpdateLine(f *testing.F) {
	f.Add("DEM/USD 1700000000000000000 1.6612")
	f.Add("x 0 3.5")
	f.Add("a b c")
	f.Add("")
	f.Add("obj 123 -1e308")
	f.Fuzz(func(t *testing.T, line string) {
		u, err := ParseUpdateLine(line)
		if err != nil {
			return
		}
		// A successfully parsed update must round-trip.
		out, err2 := ParseUpdateLine(FormatUpdateLine(u))
		if err2 != nil {
			t.Fatalf("round trip of %q failed: %v", line, err2)
		}
		if out.Object != u.Object {
			t.Fatalf("object changed: %q -> %q", u.Object, out.Object)
		}
		// NaN values do not compare equal; everything else must.
		if out.Value != u.Value && u.Value == u.Value {
			t.Fatalf("value changed: %v -> %v", u.Value, out.Value)
		}
	})
}

func FuzzParseSetLine(f *testing.F) {
	f.Add(`set "key" 1.5`)
	f.Add(`set "weird \"key\"" -2`)
	f.Add(`commit`)
	f.Add(`set x 1`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, line string) {
		key, value, err := parseSetLine(line)
		if err != nil {
			return
		}
		_ = key
		_ = value
	})
}

func FuzzWALRoundTrip(f *testing.F) {
	f.Add("plain", 1.5)
	f.Add("key with spaces", -2.25)
	f.Add("quotes\"and\\slashes", 0.0)
	f.Add("newline\nkey", 9e99)
	f.Fuzz(func(t *testing.T, key string, val float64) {
		if val != val {
			return // NaN never compares equal
		}
		dir := t.TempDir()
		cfg := Config{WALPath: dir + "/w.wal"}
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := db.Exec(TxnSpec{
			Deadline: time.Now().Add(time.Second),
			Func: func(tx *Tx) error {
				tx.Set(key, val)
				return nil
			},
		})
		if !res.Committed() {
			db.Close()
			t.Fatalf("commit failed: %+v", res)
		}
		db.Close()

		db2, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer db2.Close()
		var got float64
		var ok bool
		db2.Exec(TxnSpec{
			Deadline: time.Now().Add(time.Second),
			Func: func(tx *Tx) error {
				got, ok = tx.Get(key)
				return nil
			},
		})
		if !ok || got != val {
			t.Fatalf("recovered %q = %v (%v), want %v", key, got, ok, val)
		}
	})
}

// referenceReplay is a deliberately straightforward model of the
// active-segment replay contract, independent of the staged
// implementation in wal.go: batches apply only with a terminated
// commit line, the final record may be torn (unparsable or missing
// its newline), and any record after a torn one is mid-log corruption.
// It returns corrupt=true where recovery must fail.
func referenceReplay(data []byte) (state map[string]float64, corrupt bool) {
	lines, _, term := splitLines(data)
	state = map[string]float64{}
	start := 0
	if len(lines) > 0 && strings.HasPrefix(lines[0], "wal ") {
		if len(lines) == 1 && !term {
			return state, false // torn header: segment died at birth
		}
		if _, err := strconv.ParseUint(lines[0][len("wal "):], 10, 64); err != nil {
			return nil, true
		}
		start = 1
	}
	batch := map[string]float64{}
	torn := false
	for i := start; i < len(lines); i++ {
		if torn {
			return nil, true // a record after damage proves it mid-log
		}
		last := i == len(lines)-1 && !term
		if lines[i] == "commit" && !last {
			for k, v := range batch {
				state[k] = v
			}
			batch = map[string]float64{}
			continue
		}
		key, value, err := parseSetLine(lines[i])
		if last || err != nil {
			torn = true // tolerated only as the final record
			continue
		}
		batch[key] = value
	}
	return state, false
}

// FuzzReplayWAL feeds arbitrary bytes to recovery as the active WAL
// segment and checks it against referenceReplay: recovery must never
// panic, must fail with a typed *WALCorruptError exactly when the
// model says the log is corrupt, and must otherwise produce exactly
// the model's state.
func FuzzReplayWAL(f *testing.F) {
	f.Add([]byte("wal 1\nset \"a\" 1\ncommit\n"))
	f.Add([]byte("wal 1\nset \"a\" 1\ncommit\nset \"b\" 2\nGARB"))
	f.Add([]byte("wal 1\nset \"a\" 1\ncommit\nGARBAGE\nset \"b\" 2\ncommit\n"))
	f.Add([]byte("set \"legacy\" 3\ncommit\n")) // headerless generation 0
	f.Add([]byte("wal 1\nset \"a\" 1\ncommit")) // unterminated commit token
	f.Add([]byte("wal x\n"))
	f.Add([]byte("wal 2"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := fault.NewMemFS()
		if err := fs.WriteFile("wal", data); err != nil {
			t.Fatal(err)
		}
		got, _, err := recoverGeneral(fs, "wal")
		want, corrupt := referenceReplay(data)
		if corrupt {
			var ce *WALCorruptError
			if err == nil || !errors.As(err, &ce) {
				t.Fatalf("corrupt log %q: recovery returned %v, want *WALCorruptError", data, err)
			}
			if got != nil {
				t.Fatalf("corrupt log %q: recovery leaked partial state %v", data, got)
			}
			return
		}
		if err != nil {
			t.Fatalf("clean log %q: recovery failed: %v", data, err)
		}
		if len(got) != len(want) {
			t.Fatalf("log %q: recovered %v, want %v", data, got, want)
		}
		for k, v := range want {
			if gv, ok := got[k]; !ok || (gv != v && v == v) {
				t.Fatalf("log %q: recovered %v, want %v", data, got, want)
			}
		}
		// Recovery repairs a torn tail in place (truncating discarded
		// bytes so later appends cannot land after them); the repair
		// must be idempotent and must not change the recovered state.
		again, _, err := recoverGeneral(fs, "wal")
		if err != nil {
			t.Fatalf("log %q: second recovery failed after tail repair: %v", data, err)
		}
		if len(again) != len(got) {
			t.Fatalf("log %q: tail repair changed state: %v vs %v", data, again, got)
		}
		for k, v := range got {
			if gv, ok := again[k]; !ok || (gv != v && v == v) {
				t.Fatalf("log %q: tail repair changed state: %v vs %v", data, again, got)
			}
		}
	})
}

func TestLikeMatchTable(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       bool
	}{
		{"FX01", "FX%", true},
		{"FX01", "%01", true},
		{"FX01", "%X0%", true},
		{"FX01", "FX01", true},
		{"FX01", "EQ%", false},
		{"FX01", "%02", false},
		{"FX01", "%", true}, // empty core matches anything
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "abc%", true},
		{"abc", "%abc", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pattern); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pattern, got, c.want)
		}
	}
}

func TestUnquoteToken(t *testing.T) {
	key, rest, err := unquoteToken(`"hello" world`)
	if err != nil || key != "hello" || strings.TrimSpace(rest) != "world" {
		t.Fatalf("unquoteToken = %q, %q, %v", key, rest, err)
	}
	if _, _, err := unquoteToken(`nope`); err == nil {
		t.Fatal("missing quote should fail")
	}
	if _, _, err := unquoteToken(`"unterminated`); err == nil {
		t.Fatal("unterminated quote should fail")
	}
	key, _, err = unquoteToken(`"with \"escape\"" 1`)
	if err != nil || key != `with "escape"` {
		t.Fatalf("escaped key = %q, %v", key, err)
	}
}
