package strip_test

import (
	"errors"
	"testing"
	"time"

	"repro/strip"
)

func TestAdoptReplicationEpoch(t *testing.T) {
	db := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := db.AdoptReplicationEpoch(0); err == nil {
		t.Fatalf("zero epoch accepted")
	}
	if err := db.AdoptReplicationEpoch(7); err != nil {
		t.Fatalf("AdoptReplicationEpoch: %v", err)
	}
	if got := db.ReplicationEpoch(); got != 7 {
		t.Fatalf("ReplicationEpoch = %d, want 7", got)
	}
	db.Close()
	if err := db.AdoptReplicationEpoch(8); !errors.Is(err, strip.ErrClosed) {
		t.Fatalf("adoption after close: %v, want ErrClosed", err)
	}
}

// TestResetToSnapshotReplaces pins the replace-vs-merge distinction:
// a reset installs every snapshot view even over newer local state,
// blanks views the snapshot omits, and swaps the general store
// wholesale.
func TestResetToSnapshotReplaces(t *testing.T) {
	src := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	for _, v := range []string{"v1", "v2"} {
		if err := src.DefineView(v, strip.High); err != nil {
			t.Fatal(err)
		}
	}
	base := time.Now()
	for i, v := range []string{"v1", "v2"} {
		err := src.ApplyUpdate(strip.Update{Object: v, Value: float64(i + 1), Generated: base})
		if err != nil {
			t.Fatal(err)
		}
	}
	replWaitFor(t, "source installs", func() bool { return src.Stats().UpdatesInstalled == 2 })
	res := src.Exec(strip.TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(5 * time.Second),
		Func:     func(tx *strip.Tx) error { tx.Set("g", 7); return nil },
	})
	if !res.Committed() {
		t.Fatal(res.Err)
	}

	// The divergent node: v2 carries a NEWER generation than the
	// snapshot (a deposed primary's write), v3 exists only locally,
	// and the general store holds a key the snapshot lacks.
	dst := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	for _, v := range []string{"v2", "v3"} {
		if err := dst.DefineView(v, strip.High); err != nil {
			t.Fatal(err)
		}
	}
	err := dst.ApplyUpdate(strip.Update{Object: "v2", Value: 999, Generated: base.Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	err = dst.ApplyUpdate(strip.Update{Object: "v3", Value: 333, Generated: base})
	if err != nil {
		t.Fatal(err)
	}
	replWaitFor(t, "divergent installs", func() bool { return dst.Stats().UpdatesInstalled == 2 })
	res = dst.Exec(strip.TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(5 * time.Second),
		Func:     func(tx *strip.Tx) error { tx.Set("h", 13); return nil },
	})
	if !res.Committed() {
		t.Fatal(res.Err)
	}

	if err := dst.ResetToSnapshot(src.ReplicaSnapshot()); err != nil {
		t.Fatalf("ResetToSnapshot: %v", err)
	}

	got := dst.ReplicaSnapshot()
	want := map[string]float64{"v1": 1, "v2": 2, "v3": 0}
	for _, v := range got.Views {
		expect, ok := want[v.Name]
		if !ok {
			t.Errorf("unexpected view %q after reset", v.Name)
			continue
		}
		delete(want, v.Name)
		if v.Value != expect {
			t.Errorf("view %s = %v after reset, want %v", v.Name, v.Value, expect)
		}
		if v.Name == "v3" && !v.Generated.IsZero() {
			t.Errorf("blanked view v3 kept generation %v", v.Generated)
		}
	}
	for v := range want {
		t.Errorf("view %q missing after reset", v)
	}
	if len(got.General) != 1 || got.General[0].Key != "g" || got.General[0].Value != 7 {
		t.Errorf("general store after reset = %+v, want only g=7", got.General)
	}
	if n := dst.Stats().ReplSnapshotsInstalled; n != 1 {
		t.Errorf("Stats.ReplSnapshotsInstalled = %d, want 1", n)
	}
}

// TestResetBarrierDiscardsQueuedReplicated checks that replicated
// updates admitted before a reset — the deposed stream's tail sitting
// in the scheduler queue — are discarded when the scheduler finally
// gets to them, instead of resurrecting over the adopted state.
func TestResetBarrierDiscardsQueuedReplicated(t *testing.T) {
	src := openReplDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := src.DefineView("v1", strip.High); err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	if err := src.ApplyUpdate(strip.Update{Object: "v1", Value: 5, Generated: base}); err != nil {
		t.Fatal(err)
	}
	replWaitFor(t, "source installs", func() bool { return src.Stats().UpdatesInstalled == 1 })

	dst := openReplDB(t, strip.Config{Policy: strip.OnDemand})
	if err := dst.DefineView("v1", strip.High); err != nil {
		t.Fatal(err)
	}
	// Pin the scheduler inside a transaction so the stream update is
	// still waiting in the ingest path when the reset lands — the
	// exact window the barrier exists for. (Transactions run on the
	// scheduler goroutine; while Func blocks, nothing installs.)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan strip.Result, 1)
	go func() {
		done <- dst.Exec(strip.TxnSpec{
			Value:    1,
			Deadline: time.Now().Add(30 * time.Second),
			Func: func(tx *strip.Tx) error {
				close(started)
				<-release
				return nil
			},
		})
	}()
	<-started
	err := dst.ApplyReplicated(strip.Update{
		Object: "v1", Value: 999, Generated: base.Add(time.Hour), // newer than the snapshot
	}, strip.High)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ResetToSnapshot(src.ReplicaSnapshot()); err != nil {
		t.Fatalf("ResetToSnapshot: %v", err)
	}
	close(release)
	if res := <-done; !res.Committed() {
		t.Fatal(res.Err)
	}

	// The scheduler now drains the pre-reset update; the barrier must
	// discard it instead of letting it clobber the adopted state.
	replWaitFor(t, "stale update discarded", func() bool { return dst.Stats().UpdatesSkipped == 1 })
	res := dst.Exec(strip.TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(5 * time.Second),
		Func: func(tx *strip.Tx) error {
			e, err := tx.Read("v1")
			if err != nil {
				return err
			}
			if e.Value != 5 {
				t.Errorf("read %v after reset, want the snapshot value 5", e.Value)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatal(res.Err)
	}
}
