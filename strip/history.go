package strip

import "time"

// ReadAsOf returns the newest version of the view object generated at
// or before t — the paper's "historical views" future-work item. It
// requires Config.HistoryDepth > 0; values older than the retained
// depth are gone, and ErrNoHistory is returned when no retained
// version is old enough. ReadAsOf is a plain historical lookup: it
// does not trigger update installation and never counts as a stale
// read (the caller asked for an old value on purpose).
func (tx *Tx) ReadAsOf(name string, t time.Time) (Entry, error) {
	if err := tx.checkState(); err != nil {
		return Entry{}, err
	}
	return tx.db.readAsOf(name, t)
}

// HistoryAt is the non-transactional form of Tx.ReadAsOf, for
// monitoring.
func (db *DB) HistoryAt(name string, t time.Time) (Entry, error) {
	return db.readAsOf(name, t)
}

func (db *DB) readAsOf(name string, t time.Time) (Entry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.names[name]
	if !ok {
		return Entry{}, ErrUnknownObject
	}
	if db.cfg.HistoryDepth <= 0 {
		return Entry{}, ErrNoHistory
	}
	hist := db.entries[id].history
	// History is generation-ordered (installs are monotone by the
	// worthiness check): scan from the newest retained version.
	for i := len(hist) - 1; i >= 0; i-- {
		if !hist[i].generated.After(t) {
			return Entry{
				Object:    name,
				Value:     hist[i].value,
				Generated: hist[i].generated,
			}, nil
		}
	}
	return Entry{}, ErrNoHistory
}

// History returns the retained versions of a view object, oldest
// first. The slice is a copy.
func (db *DB) History(name string) ([]Entry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.names[name]
	if !ok {
		return nil, ErrUnknownObject
	}
	hist := db.entries[id].history
	out := make([]Entry, len(hist))
	for i, h := range hist {
		out[i] = Entry{Object: name, Value: h.value, Generated: h.generated}
	}
	return out, nil
}
