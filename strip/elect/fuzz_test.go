package elect

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// electSeedPayloads are valid encodings plus boundary junk, mirroring
// the strip/repl fuzz corpus style.
func electSeedPayloads(tb testing.TB) [][]byte {
	out := [][]byte{
		{},
		{KindPrepare},
		{KindPromise, 0, 1, 'a'},
		bytes.Repeat([]byte{0xFF}, 64),
	}
	for _, m := range allMessages() {
		p, err := Encode(m)
		if err != nil {
			tb.Fatalf("seed encode: %v", err)
		}
		out = append(out, p)
	}
	return out
}

// FuzzElectDecode asserts Decode's contract on arbitrary payloads:
// a message or an error, never a panic, never both nil — and an
// accepted message re-encodes to the same bytes (the codec is
// canonical).
func FuzzElectDecode(f *testing.F) {
	for _, p := range electSeedPayloads(f) {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		msg, err := Decode(payload)
		if err == nil && msg == nil {
			t.Fatalf("Decode returned neither message nor error")
		}
		if err != nil && msg != nil {
			t.Fatalf("Decode returned a partial message alongside error %v", err)
		}
		if err != nil {
			return
		}
		again, err := Encode(msg)
		if err != nil {
			t.Fatalf("accepted message rejected on re-encode: %v", err)
		}
		if !bytes.Equal(again, payload) {
			back, err := Decode(again)
			if err != nil || !reflect.DeepEqual(back, msg) {
				t.Fatalf("re-encode of %#v not stable: %v", msg, err)
			}
		}
	})
}

// FuzzElectReadFrame asserts ReadFrame's contract on arbitrary byte
// streams: errors, never panics, and an accepted payload survives a
// write/read round trip.
func FuzzElectReadFrame(f *testing.F) {
	for _, p := range electSeedPayloads(f) {
		var buf bytes.Buffer
		if WriteFrame(&buf, p) == nil {
			f.Add(buf.Bytes())
		}
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, stream []byte) {
		payload, err := ReadFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("accepted payload rejected on re-write: %v", err)
		}
		again, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-read of re-written frame: %v", err)
		}
		if !bytes.Equal(payload, again) {
			t.Fatalf("payload changed across write/read round trip")
		}
	})
}

// FuzzElectFrameStream feeds ReadFrame a stream of frames with
// arbitrary tails: every frame read before the error must be within
// bounds.
func FuzzElectFrameStream(f *testing.F) {
	var pipe bytes.Buffer
	for _, p := range electSeedPayloads(f) {
		_ = WriteFrame(&pipe, p)
	}
	f.Add(pipe.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for {
			payload, err := ReadFrame(r)
			if err == io.EOF || err != nil {
				return
			}
			if len(payload) == 0 || len(payload) > MaxFrame {
				t.Fatalf("ReadFrame returned out-of-bounds payload of %d bytes", len(payload))
			}
		}
	})
}
