package elect

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// allMessages is one of each message kind with every field populated,
// the codec's round-trip corpus.
func allMessages() []Msg {
	return []Msg{
		&Prepare{From: "a:1", Epoch: 7, Ballot: 13},
		&Promise{From: "b:2", Epoch: 7, Ballot: 13, OK: true, AccBallot: 4, AccValue: "a:1"},
		&Promise{From: "b:2", Epoch: 7, Ballot: 13, OK: false, Promised: 21},
		&Accept{From: "a:1", Epoch: 7, Ballot: 13, Value: "a:1"},
		&Accepted{From: "c:3", Epoch: 7, Ballot: 13, OK: true},
		&Accepted{From: "c:3", Epoch: 7, Ballot: 13, OK: false, Promised: 21},
		&Decided{From: "a:1", Epoch: 7, Value: "a:1"},
		&Ping{From: "b:2", Epoch: 7, Leader: "a:1"},
		&Ping{From: "b:2"}, // nothing decided yet: zero epoch, empty leader
		&Pong{From: "a:1", Epoch: 7, Leader: "a:1"},
		&Pong{From: "c:3"}, // nothing decided yet: zero epoch, empty leader
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range allMessages() {
		payload, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", m, err)
		}
		got, err := Decode(payload)
		if err != nil {
			t.Fatalf("Decode(Encode(%#v)): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip changed message:\n got %#v\nwant %#v", got, m)
		}
	}
}

// TestEncodeGolden pins the wire layout: a byte change here is a
// protocol break between mixed-version peers.
func TestEncodeGolden(t *testing.T) {
	payload, err := Encode(&Prepare{From: "ab", Epoch: 2, Ballot: 5})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	want := []byte{
		KindPrepare,
		0, 2, 'a', 'b', // from, u16-length-prefixed
		0, 0, 0, 0, 0, 0, 0, 2, // epoch
		0, 0, 0, 0, 0, 0, 0, 5, // ballot
	}
	if !bytes.Equal(payload, want) {
		t.Fatalf("golden mismatch:\n got %v\nwant %v", payload, want)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{99, 0, 1, 'a'}},
		{"truncated sender", []byte{KindPing, 0, 5, 'a'}},
		{"truncated epoch", []byte{KindDecided, 0, 1, 'a', 0, 0}},
		{"bad bool byte", append([]byte{KindAccepted, 0, 1, 'a'},
			0, 0, 0, 0, 0, 0, 0, 1, // epoch
			0, 0, 0, 0, 0, 0, 0, 1, // ballot
			7,                      // not 0/1
			0, 0, 0, 0, 0, 0, 0, 0, // promised
		)},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.payload); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: Decode = %v, want ErrMalformed", tc.name, err)
		}
	}
	// Trailing garbage after a valid message must be rejected too.
	payload, err := Encode(&Ping{From: "a"})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(append(payload, 0xFF)); !errors.Is(err, ErrMalformed) {
		t.Errorf("trailing byte: Decode = %v, want ErrMalformed", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var wrote [][]byte
	for _, m := range allMessages() {
		payload, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		wrote = append(wrote, payload)
	}
	for i, want := range wrote {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame #%d changed across the wire", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	payload, err := Encode(&Ping{From: "a"})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	frame, err := AppendFrame(nil, payload)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}

	flipped := append([]byte(nil), frame...)
	flipped[5] ^= 0x01 // inside the payload
	if _, err := ReadFrame(bytes.NewReader(flipped)); !errors.Is(err, ErrChecksum) {
		t.Errorf("bit flip: %v, want ErrChecksum", err)
	}

	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2])); !errors.Is(err, ErrTruncated) {
		t.Errorf("cut frame: %v, want ErrTruncated", err)
	}

	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize prefix: %v, want ErrFrameTooLarge", err)
	}

	if _, err := AppendFrame(nil, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("empty payload: %v, want ErrFrameTooLarge", err)
	}
	if _, err := AppendFrame(nil, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize payload: %v, want ErrFrameTooLarge", err)
	}
}
