package elect

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// testTiming shrinks the protocol clocks so scripted runs converge in
// a few simulated seconds.
func testTiming() Timing {
	return Timing{
		ProbeInterval: 50 * time.Millisecond,
		FailAfter:     200 * time.Millisecond,
		PhaseTimeout:  100 * time.Millisecond,
		BackoffBase:   20 * time.Millisecond,
		BackoffMax:    200 * time.Millisecond,
	}
}

// flight is one in-flight message in the scripted cluster.
type flight struct {
	from, to string
	msg      Msg
}

// cluster drives a set of cores through a deterministic simulation:
// one virtual clock, a FIFO message queue, and an optional drop rule
// for partitions. Everything a run does — deliveries, decisions — is
// appended to transcript, so two runs with the same seed can be
// compared byte for byte.
type cluster struct {
	t          *testing.T
	peers      []string
	cores      map[string]*core
	dead       map[string]bool
	queue      []flight
	now        time.Time
	drop       func(from, to string) bool
	decided    map[string][]Decision
	transcript []string
}

func newCluster(t *testing.T, seed uint64, n int) *cluster {
	t.Helper()
	cl := &cluster{
		t:       t,
		cores:   make(map[string]*core),
		dead:    make(map[string]bool),
		now:     time.Unix(1000, 0),
		decided: make(map[string][]Decision),
	}
	for i := 0; i < n; i++ {
		cl.peers = append(cl.peers, fmt.Sprintf("n%d", i))
	}
	for i, p := range cl.peers {
		c, err := newCore(p, cl.peers, seed*31+uint64(i)+1, testTiming(), cl.now, nil)
		if err != nil {
			t.Fatalf("newCore(%s): %v", p, err)
		}
		cl.cores[p] = c
	}
	return cl
}

// restart simulates a crash-restart of id: the replacement core keeps
// only what the durable ledger carries — promises, accepted values,
// spent rounds, the learned decision — and forgets all in-memory
// proposer and liveness state, exactly as a real process restart
// restoring its state file would.
func (cl *cluster) restart(id string, seed uint64) {
	cl.t.Helper()
	st := cl.cores[id].persistent()
	c, err := newCore(id, cl.peers, seed, testTiming(), cl.now, st)
	if err != nil {
		cl.t.Fatalf("restart(%s): %v", id, err)
	}
	cl.cores[id] = c
	cl.dead[id] = false
}

// collect queues a call's outputs and logs its decisions.
func (cl *cluster) collect(id string, envs []Envelope, decs []Decision) {
	for _, e := range envs {
		cl.queue = append(cl.queue, flight{from: id, to: e.To, msg: e.Msg})
	}
	for _, d := range decs {
		cl.decided[id] = append(cl.decided[id], d)
		cl.transcript = append(cl.transcript,
			fmt.Sprintf("%s decided epoch=%d leader=%s", id, d.Epoch, d.Leader))
	}
}

// settle delivers queued messages until the network is quiet.
func (cl *cluster) settle() {
	for i := 0; len(cl.queue) > 0; i++ {
		if i > 100000 {
			cl.t.Fatalf("network never settled")
		}
		f := cl.queue[0]
		cl.queue = cl.queue[1:]
		if cl.dead[f.to] || cl.dead[f.from] {
			continue
		}
		if cl.drop != nil && cl.drop(f.from, f.to) {
			cl.transcript = append(cl.transcript, fmt.Sprintf("drop %s->%s %T", f.from, f.to, f.msg))
			continue
		}
		cl.transcript = append(cl.transcript, fmt.Sprintf("%s->%s %#v", f.from, f.to, f.msg))
		envs, decs := cl.cores[f.to].Step(cl.now, f.msg)
		cl.collect(f.to, envs, decs)
	}
}

// run advances the virtual clock by d in 10ms steps, ticking every
// live node and settling the network after each step.
func (cl *cluster) run(d time.Duration) {
	const step = 10 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		cl.now = cl.now.Add(step)
		for _, p := range cl.peers {
			if cl.dead[p] {
				continue
			}
			envs, decs := cl.cores[p].Tick(cl.now)
			cl.collect(p, envs, decs)
		}
		cl.settle()
	}
}

// assertAgreement verifies every live node agrees on one leader at
// one epoch, that nobody observed a conflict, and that each node's
// decision stream is strictly increasing in epoch.
func (cl *cluster) assertAgreement() (leader string, epoch uint64) {
	cl.t.Helper()
	for _, p := range cl.peers {
		if cl.dead[p] {
			continue
		}
		c := cl.cores[p]
		l, e, ok := c.Leader()
		if !ok {
			cl.t.Fatalf("%s has no leader", p)
		}
		if leader == "" {
			leader, epoch = l, e
		} else if l != leader || e != epoch {
			cl.t.Fatalf("%s sees (%s, %d), others see (%s, %d)", p, l, e, leader, epoch)
		}
		if conf := c.Conflicts(); len(conf) != 0 {
			cl.t.Fatalf("%s observed conflicts: %v", p, conf)
		}
		var last uint64
		for _, d := range cl.decided[p] {
			if d.Epoch <= last {
				cl.t.Fatalf("%s decisions not strictly increasing: %v", p, cl.decided[p])
			}
			last = d.Epoch
		}
	}
	return leader, epoch
}

func TestElectionSingleWinner(t *testing.T) {
	cl := newCluster(t, 42, 3)
	cl.run(2 * time.Second)
	leader, epoch := cl.assertAgreement()
	if epoch == 0 || leader == "" {
		t.Fatalf("no election concluded")
	}
	// One winner per epoch across the whole cluster.
	winners := make(map[uint64]string)
	for _, p := range cl.peers {
		for _, d := range cl.decided[p] {
			if w, ok := winners[d.Epoch]; ok && w != d.Leader {
				t.Fatalf("epoch %d won by both %s and %s", d.Epoch, w, d.Leader)
			}
			winners[d.Epoch] = d.Leader
		}
	}
}

// TestElectionDeterministicTranscript is the seeded-determinism
// regression: the same seed must replay the identical election, drop
// for drop and decision for decision.
func TestElectionDeterministicTranscript(t *testing.T) {
	script := func(seed uint64) []string {
		cl := newCluster(t, seed, 3)
		// A lossy network, itself seeded, so the run exercises retries.
		lost := 0
		cl.drop = func(from, to string) bool {
			lost++
			return lost%7 == 0
		}
		cl.run(3 * time.Second)
		cl.assertAgreement()
		return cl.transcript
	}
	a := script(99)
	b := script(99)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("same seed produced different transcripts:\nrun1 %d lines, run2 %d lines", len(a), len(b))
	}
}

func TestCampaignImmediate(t *testing.T) {
	cl := newCluster(t, 7, 3)
	envs, decs := cl.cores["n0"].StartCampaign(cl.now)
	cl.collect("n0", envs, decs)
	cl.settle()
	leader, epoch := cl.assertAgreement()
	if leader != "n0" || epoch != 1 {
		t.Fatalf("explicit campaign: leader=%s epoch=%d, want n0 epoch 1", leader, epoch)
	}
}

// TestValueAdoption pins the Paxos convergence rule: a candidate that
// learns of a previously accepted value must adopt it instead of its
// own, so a half-finished election finishes with the same winner.
func TestValueAdoption(t *testing.T) {
	cl := newCluster(t, 11, 3)
	// Script the aftermath of a half-finished campaign by n2: a quorum
	// of acceptors (n1 and n2) accepted value "n2" for epoch 1 at
	// ballot 2, but every reply back to the candidate was lost, so
	// nothing was decided. The replies the injected messages produce
	// are discarded, exactly as the partition would have eaten them.
	for _, p := range []string{"n1", "n2"} {
		c := cl.cores[p]
		c.Step(cl.now, &Prepare{From: "n2", Epoch: 1, Ballot: 2})
		c.Step(cl.now, &Accept{From: "n2", Epoch: 1, Ballot: 2, Value: "n2"})
	}
	if _, _, ok := cl.cores["n1"].Leader(); ok {
		t.Fatalf("decision reached from acceptance alone")
	}
	// n0, ignorant of all that, campaigns for epoch 1 with a higher
	// ballot. Its prepare quorum reports the accepted value and n0
	// must crown n2, not itself.
	envs, decs := cl.cores["n0"].StartCampaign(cl.now)
	cl.collect("n0", envs, decs)
	cl.settle()
	leader, epoch := cl.assertAgreement()
	if leader != "n2" || epoch != 1 {
		t.Fatalf("leader = %s epoch %d, want adopted value n2 at epoch 1", leader, epoch)
	}
}

// TestReelectionAfterLeaderDeath kills the elected primary and checks
// the survivors mint a strictly higher epoch for a new winner.
func TestReelectionAfterLeaderDeath(t *testing.T) {
	cl := newCluster(t, 5, 3)
	cl.run(2 * time.Second)
	leader, epoch := cl.assertAgreement()

	cl.dead[leader] = true
	cl.run(3 * time.Second)
	newLeader, newEpoch := cl.assertAgreement()
	if newLeader == leader {
		t.Fatalf("dead node %s re-elected", leader)
	}
	if newEpoch <= epoch {
		t.Fatalf("new epoch %d not above old %d", newEpoch, epoch)
	}
}

// TestStaleNodeRejoins partitions one node away for the election,
// then heals it: the stale node must converge on the decided leader
// without forcing a new epoch.
func TestStaleNodeRejoins(t *testing.T) {
	cl := newCluster(t, 17, 3)
	cl.drop = func(from, to string) bool { return from == "n2" || to == "n2" }
	cl.run(2 * time.Second)
	// Only n0 and n1 agree so far.
	l0, e0, ok := cl.cores["n0"].Leader()
	if !ok {
		t.Fatalf("majority failed to elect during partition")
	}
	cl.drop = nil
	cl.run(2 * time.Second)
	leader, epoch := cl.assertAgreement()
	if leader != l0 {
		t.Fatalf("leader changed from %s to %s on rejoin", l0, leader)
	}
	if epoch != e0 {
		t.Fatalf("rejoin minted a new epoch (%d -> %d)", e0, epoch)
	}
}

// TestDeposedPrimaryLearnsNewEpoch pins the heal path the review
// caught missing: a primary that is partitioned away (alive, not
// killed) while the majority elects a successor must learn of its
// deposition once the partition heals. The new leader's heartbeats
// carry the decided (epoch, leader) pair, so the old primary demotes
// without anyone having to campaign at it.
func TestDeposedPrimaryLearnsNewEpoch(t *testing.T) {
	cl := newCluster(t, 43, 3)
	cl.run(2 * time.Second)
	oldLeader, oldEpoch := cl.assertAgreement()

	// Isolate the primary: alive, ticking, unreachable.
	cl.drop = func(from, to string) bool { return from == oldLeader || to == oldLeader }
	cl.run(3 * time.Second)
	var other string
	for _, p := range cl.peers {
		if p != oldLeader {
			other = p
			break
		}
	}
	newLeader, newEpoch, ok := cl.cores[other].Leader()
	if !ok || newEpoch <= oldEpoch {
		t.Fatalf("majority failed to re-elect during the partition")
	}
	if l, e, _ := cl.cores[oldLeader].Leader(); l != oldLeader || e != oldEpoch {
		t.Fatalf("isolated primary should still believe in its reign, sees (%s, %d)", l, e)
	}

	// Heal. Nothing kills or restarts the old primary; gossip alone
	// must depose it, and the heal must not mint yet another epoch.
	cl.drop = nil
	cl.run(time.Second)
	leader, epoch := cl.assertAgreement()
	if leader != newLeader || epoch != newEpoch {
		t.Fatalf("after heal: (%s, %d), want the majority's (%s, %d)", leader, epoch, newLeader, newEpoch)
	}
}

// TestStrandedFollowerConvergesAfterHeal is the deposed-primary
// scenario with company: in a 5-node group, the primary and one
// follower are cut off together. The stranded follower keeps pinging
// its old leader — which answers, so its failure detector never fires
// — and the pair would stay on the dead reign forever if the new
// leader's heartbeats did not reach across the healed partition.
func TestStrandedFollowerConvergesAfterHeal(t *testing.T) {
	cl := newCluster(t, 47, 5)
	cl.run(2 * time.Second)
	oldLeader, oldEpoch := cl.assertAgreement()

	var follower string
	for _, p := range cl.peers {
		if p != oldLeader {
			follower = p
			break
		}
	}
	minority := map[string]bool{oldLeader: true, follower: true}
	cl.drop = func(from, to string) bool { return minority[from] != minority[to] }
	cl.run(3 * time.Second)
	var maj string
	for _, p := range cl.peers {
		if !minority[p] {
			maj = p
			break
		}
	}
	_, newEpoch, ok := cl.cores[maj].Leader()
	if !ok || newEpoch <= oldEpoch {
		t.Fatalf("majority failed to re-elect during the partition")
	}
	if _, e, _ := cl.cores[follower].Leader(); e != oldEpoch {
		t.Fatalf("stranded follower moved to epoch %d mid-partition", e)
	}

	cl.drop = nil
	cl.run(time.Second)
	if _, epoch := cl.assertAgreement(); epoch != newEpoch {
		t.Fatalf("after heal epoch = %d, want the majority's %d", epoch, newEpoch)
	}
}

// TestRestartedAcceptorKeepsPromises is the review's double-decide
// scenario, closed by the durable ledger. A quorum {n0, n1} accepted
// "n0" for epoch 1 and n0 (now gone) may have decided it; n1 then
// crash-restarts. When n2 campaigns with the only available quorum
// {n1, n2}, n1's restored ledger must surface the accepted value so
// n2 adopts "n0" — re-deciding epoch 1 for anyone else would put two
// primaries behind one epoch.
func TestRestartedAcceptorKeepsPromises(t *testing.T) {
	cl := newCluster(t, 23, 3)
	// Script the accepted-but-unannounced state by hand, as a crash
	// would leave it: n1 promised and accepted under n0's campaign,
	// but every reply and the decision announcement were lost.
	n1 := cl.cores["n1"]
	n1.Step(cl.now, &Prepare{From: "n0", Epoch: 1, Ballot: 4})
	n1.Step(cl.now, &Accept{From: "n0", Epoch: 1, Ballot: 4, Value: "n0"})

	cl.restart("n1", 77) // the acceptor crash-restarts: its word survives
	cl.dead["n0"] = true // the old candidate stays down

	envs, decs := cl.cores["n2"].StartCampaign(cl.now)
	cl.collect("n2", envs, decs)
	cl.settle()
	leader, epoch := cl.assertAgreement()
	if leader != "n0" || epoch != 1 {
		t.Fatalf("epoch 1 re-decided for (%s, %d); the restarted acceptor's ledger must force the adoption of n0", leader, epoch)
	}
}

// TestRestartedProposerSkipsSpentBallots pins round durability: a
// proposer that crashes mid-campaign must not reissue a ballot number
// it already spent — an acceptor could accept two values under one
// ballot and split the quorum intersection.
func TestRestartedProposerSkipsSpentBallots(t *testing.T) {
	cl := newCluster(t, 31, 3)
	cl.drop = func(from, to string) bool { return true } // campaign into a void
	envs, decs := cl.cores["n0"].StartCampaign(cl.now)
	cl.collect("n0", envs, decs)
	cl.settle()
	spent := cl.cores["n0"].ballot
	if spent == 0 {
		t.Fatalf("no ballot issued")
	}

	cl.restart("n0", 99)
	envs, decs = cl.cores["n0"].StartCampaign(cl.now)
	cl.collect("n0", envs, decs)
	cl.settle()
	if got := cl.cores["n0"].ballot; got <= spent {
		t.Fatalf("restarted proposer reused ballot %d (previously spent %d)", got, spent)
	}
}

// TestRestartedLeaderMintsNewEpoch pins the restore rule for a
// crashed primary: it must not silently resume its old reign from the
// ledger; it re-campaigns, and leadership is only re-established
// under a strictly higher epoch that forces its followers through the
// snapshot re-bootstrap.
func TestRestartedLeaderMintsNewEpoch(t *testing.T) {
	cl := newCluster(t, 53, 3)
	cl.run(2 * time.Second)
	oldLeader, oldEpoch := cl.assertAgreement()

	cl.restart(oldLeader, 5)
	cl.run(2 * time.Second)
	_, epoch := cl.assertAgreement()
	if epoch <= oldEpoch {
		t.Fatalf("epoch still %d after the leader's restart; a restarted primary must re-confirm its reign under a fresh epoch", epoch)
	}
}
