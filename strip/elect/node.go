package elect

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/strip/fault"
	"repro/strip/obs"
)

// Config configures a Node.
type Config struct {
	// Self is this node's peer ID: the elect address its peers dial.
	Self string
	// Peers is the full fixed membership, Self included, in the same
	// order on every node (ballot uniqueness depends on the indices).
	Peers []string

	// Clock overrides the time source; nil means time.Now. Tests
	// inject it so the protocol's timers are theirs to script.
	Clock func() time.Time
	// Seed fixes the node's jitter and backoff sequence; a node's
	// protocol behavior is a deterministic function of Seed, Clock and
	// the message arrival order. Zero means 1.
	Seed uint64

	// Timing holds the protocol timeouts; zero fields take production
	// defaults.
	Timing Timing
	// TickEvery is the timer-advance cadence, bounding how stale the
	// protocol's view of the clock can be. Default ProbeInterval/4.
	TickEvery time.Duration

	// Dial overrides how peers are reached (tests wrap connections in
	// fault.ChaosConn or gate them with fault.Partition here). nil
	// means a plain TCP dial with IOTimeout.
	Dial func(addr string) (net.Conn, error)
	// IOTimeout bounds one message exchange's dial, read and write.
	// Default 1s.
	IOTimeout time.Duration

	// StatePath, when set, persists the node's durable ledger — the
	// promises and values it has accepted, the ballot rounds it has
	// spent, the decision it has learned — and restores it on
	// construction, so the node's consensus word survives its
	// crashes. Promises reach disk before the reply reaches the wire.
	// Empty means memory-only: fine for tests and scripted cores, but
	// a crash-restarted memory-only acceptor rejoins with amnesia and
	// can enable a double-decided epoch.
	StatePath string
	// FS is the filesystem StatePath lives on (tests inject
	// fault.MemFS to crash it deterministically); nil means the real
	// one.
	FS fault.FS

	// Metrics, when set, registers the node's series (decided epoch,
	// leadership, campaigns started) into the registry.
	Metrics *obs.Registry

	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Node runs the election engine over TCP. Inbound messages arrive on
// the listener given to Serve; outbound messages are sent over
// short-lived per-message connections by per-peer sender goroutines,
// so one dead peer never stalls the protocol for the rest. All engine
// state is behind mu; network I/O happens strictly outside it.
type Node struct {
	cfg   Config
	clock func() time.Time
	logf  func(string, ...any)

	mu   sync.Mutex
	core *core // guarded by mu
	ln   net.Listener
	// ln, closed: listener lifecycle, guarded by mu like repl.Primary.
	closed bool // guarded by mu

	// store is non-nil when StatePath is configured. persistMu
	// serializes state-file writes and orders them by version;
	// persisted is the highest version on disk, guarded by persistMu.
	store     fault.FS
	persistMu sync.Mutex
	persisted uint64 // guarded by persistMu

	events chan Decision
	sends  map[string]chan Msg // per-peer outbound queues (fixed at start)
	stop   chan struct{}
	wg     sync.WaitGroup

	// campaigns counts explicit Campaign calls, whether or not a
	// registry is attached.
	campaigns *obs.Counter
}

// NewNode validates the configuration, builds the engine and starts
// the protocol timers and sender goroutines. Call Serve with a
// listener on the Self address to receive peer traffic, and Close to
// stop.
func NewNode(cfg Config) (*Node, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = time.Second
	}
	var store fault.FS
	var restore *persistentState
	if cfg.StatePath != "" {
		store = cfg.FS
		if store == nil {
			store = fault.OS
		}
		st, err := loadState(store, cfg.StatePath)
		if err != nil {
			return nil, err
		}
		restore = st
	}
	c, err := newCore(cfg.Self, cfg.Peers, cfg.Seed, cfg.Timing, clock(), restore)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		clock:     clock,
		logf:      cfg.Logf,
		core:      c,
		store:     store,
		events:    make(chan Decision, 64),
		sends:     make(map[string]chan Msg),
		stop:      make(chan struct{}),
		campaigns: obs.NewCounter(),
	}
	if n.logf == nil {
		n.logf = func(string, ...any) {}
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("strip_elect_decided_epoch",
			"epoch of the latest decided election (0 before any decision)",
			func() float64 {
				_, epoch, ok := n.Leader()
				if !ok {
					return 0
				}
				return float64(epoch)
			})
		reg.GaugeFunc("strip_elect_is_leader",
			"1 while this node is the decided leader",
			func() float64 {
				leader, _, ok := n.Leader()
				if ok && leader == cfg.Self {
					return 1
				}
				return 0
			})
		reg.CounterFunc("strip_elect_campaigns_total",
			"explicit campaigns started on this node", n.campaigns.Value)
	}
	// Replay the restored decision to Observe so a failover manager
	// re-adopts its follower role across the restart — unless this
	// node itself was the recorded leader: it must not resume serving
	// a reign the quorum may have buried while it was down (the core
	// campaigns for a fresh epoch instead, and the outcome arrives on
	// Observe like any other decision).
	if restore != nil && restore.maxDecided != 0 && restore.leader != cfg.Self {
		n.events <- Decision{Epoch: restore.maxDecided, Leader: restore.leader}
	}
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			continue
		}
		ch := make(chan Msg, 64)
		n.sends[p] = ch
		n.wg.Add(1)
		go n.sender(p, ch)
	}
	n.wg.Add(1)
	go n.tickLoop()
	return n, nil
}

// Self returns this node's peer ID.
func (n *Node) Self() string { return n.cfg.Self }

// Leader returns the current decided primary and its epoch; ok is
// false while no election has concluded.
func (n *Node) Leader() (leader string, epoch uint64, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.Leader()
}

// Conflicts returns observed double-decides (see core.Conflicts);
// torture tests assert it stays empty.
func (n *Node) Conflicts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.core.Conflicts()...)
}

// Observe returns the decision stream: every leader change, in
// strictly increasing epoch order. The channel is buffered; if a slow
// consumer lets it fill, the oldest decision is dropped — only the
// latest epoch matters to a failover consumer.
func (n *Node) Observe() <-chan Decision { return n.events }

// Campaign starts an election for the next epoch immediately instead
// of waiting out the failure detector. The outcome — which may name
// another node — arrives on Observe.
func (n *Node) Campaign() {
	n.campaigns.Inc()
	now := n.clock()
	n.mu.Lock()
	envs, decs := n.core.StartCampaign(now)
	st, ver := n.takeDirtyLocked()
	n.mu.Unlock()
	if !n.persist(st, ver) {
		envs = nil
	}
	n.dispatch(envs, decs)
}

// Serve accepts peer connections on l until Close (returns nil) or
// the listener fails (returns the error). Run it on its own
// goroutine.
func (n *Node) Serve(l net.Listener) error {
	if !n.register(l) {
		l.Close()
		return fmt.Errorf("elect: node closed")
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if n.isClosed() {
				return nil
			}
			return err
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// register adopts the listener, refusing when closed.
func (n *Node) register(l net.Listener) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.ln = l
	return true
}

// isClosed reports whether Close has run.
func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// Close stops the timers, the listener and the senders. The engine
// state remains readable (Leader, Conflicts) after Close.
func (n *Node) Close() error {
	ln, first := n.markClosed()
	if first {
		close(n.stop)
		if ln != nil {
			ln.Close()
		}
	}
	n.wg.Wait()
	return nil
}

// markClosed flips the closed flag, returning the listener and
// whether this call was the one that closed.
func (n *Node) markClosed() (net.Listener, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, false
	}
	n.closed = true
	return n.ln, true
}

// tickLoop advances the engine's timers on the configured cadence.
func (n *Node) tickLoop() {
	defer n.wg.Done()
	every := n.cfg.TickEvery
	if every <= 0 {
		every = n.cfg.Timing.withDefaults().ProbeInterval / 4
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			now := n.clock()
			n.mu.Lock()
			envs, decs := n.core.Tick(now)
			st, ver := n.takeDirtyLocked()
			n.mu.Unlock()
			if !n.persist(st, ver) {
				envs = nil
			}
			n.dispatch(envs, decs)
		}
	}
}

// serveConn reads one peer connection's frames and feeds them to the
// engine until EOF or a decode error (a corrupt frame drops the
// connection; the sender's next message redials).
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	conn.SetReadDeadline(n.clock().Add(n.cfg.IOTimeout))
	br := bufio.NewReader(conn)
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			return
		}
		msg, err := Decode(payload)
		if err != nil {
			n.logf("elect: dropping connection on corrupt frame: %v", err)
			return
		}
		now := n.clock()
		n.mu.Lock()
		envs, decs := n.core.Step(now, msg)
		st, ver := n.takeDirtyLocked()
		n.mu.Unlock()
		if !n.persist(st, ver) {
			envs = nil
		}
		n.dispatch(envs, decs)
		conn.SetReadDeadline(n.clock().Add(n.cfg.IOTimeout))
	}
}

// takeDirtyLocked snapshots the engine's unpersisted durable state
// (nil when clean or when no StatePath is configured). Must run under
// mu, in the same critical section as the engine call that may have
// dirtied it.
func (n *Node) takeDirtyLocked() (*persistentState, uint64) {
	if n.store == nil {
		return nil, 0
	}
	return n.core.takeDirtyState()
}

// persist writes st (at version ver) through the state file and
// reports whether the engine call's outbound messages may be sent: a
// promise or acceptance must be on disk before it is on the wire, so
// a failed write suppresses the envelopes (the decisions still
// propagate to Observe — they reflect quorum state that exists
// regardless of this node's disk). Concurrent calls race benignly:
// the durable state is monotone, so only the newest version needs to
// land, and older snapshots are discarded once it has.
func (n *Node) persist(st *persistentState, ver uint64) bool {
	if st == nil {
		return true
	}
	n.persistMu.Lock()
	defer n.persistMu.Unlock()
	if ver <= n.persisted {
		return true // a newer snapshot already reached disk
	}
	//striplint:ignore block-under-lock -- persistMu exists solely to serialize state-file writes; no protocol or engine path ever holds it
	if err := saveState(n.store, n.cfg.StatePath, st); err != nil {
		n.logf("elect: persisting state to %s failed (suppressing replies): %v", n.cfg.StatePath, err)
		return false
	}
	n.persisted = ver
	return true
}

// dispatch queues outbound envelopes and publishes decisions, both
// outside the engine lock. A full peer queue drops the message —
// elections tolerate loss by design (timeouts re-drive the protocol),
// and blocking here would let one dead peer stall the engine.
func (n *Node) dispatch(envs []Envelope, decs []Decision) {
	for _, e := range envs {
		ch, ok := n.sends[e.To]
		if !ok {
			continue
		}
		select {
		case ch <- e.Msg:
		default:
			n.logf("elect: outbound queue to %s full, dropping %T", e.To, e.Msg)
		}
	}
	for _, d := range decs {
		for {
			select {
			case n.events <- d:
			default:
				// Drop the oldest so the newest epoch always lands.
				select {
				case <-n.events:
				default:
				}
				continue
			}
			break
		}
	}
}

// sender delivers one peer's outbound queue, one short-lived
// connection per message. Failures are dropped after logging: the
// protocol's timeouts own retry policy, not the transport.
func (n *Node) sender(peer string, ch chan Msg) {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case m := <-ch:
			if err := n.sendOne(peer, m); err != nil {
				n.logf("elect: send %T to %s failed: %v", m, peer, err)
			}
		}
	}
}

// sendOne encodes and writes one message to peer.
func (n *Node) sendOne(peer string, m Msg) error {
	payload, err := Encode(m)
	if err != nil {
		return err
	}
	conn, err := n.dialPeer(peer)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetWriteDeadline(n.clock().Add(n.cfg.IOTimeout))
	return WriteFrame(conn, payload)
}

// dialPeer reaches one peer using the configured dialer.
func (n *Node) dialPeer(peer string) (net.Conn, error) {
	if n.cfg.Dial != nil {
		return n.cfg.Dial(peer)
	}
	return net.DialTimeout("tcp", peer, n.cfg.IOTimeout)
}
