package elect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"slices"

	"repro/strip/fault"
)

// persistentState is the slice of engine state whose loss breaks the
// Paxos safety argument: the acceptor ledger (promises and accepted
// values for undecided instances), the highest campaign round this
// node has spent (a restarted proposer must never reuse a ballot it
// already issued), and the highest learned decision (so a restarted
// node answers prepares for settled epochs with the decision instead
// of re-voting them). Everything durable here is monotone — promises,
// accepted ballots, round and decided epoch only grow — so a newer
// snapshot always supersedes an older one.
type persistentState struct {
	round      uint64
	maxDecided uint64
	leader     string
	acc        map[uint64]acceptorState // instances above maxDecided only
}

// stateVersion is the state-file format version byte.
const stateVersion = 1

// encodeState renders st as one frame payload (the file reuses the
// wire framing, CRC32 trailer included). Acceptor entries are sorted
// by instance so the encoding is byte-stable.
//
// Layout, integers big-endian, strings u16-length-prefixed:
//
//	version:u8 round:u64 maxdecided:u64 leader:str n:u32
//	n × (inst:u64 promised:u64 accballot:u64 accvalue:str)
func encodeState(st *persistentState) ([]byte, error) {
	b := []byte{stateVersion}
	b = binary.BigEndian.AppendUint64(b, st.round)
	b = binary.BigEndian.AppendUint64(b, st.maxDecided)
	b, err := appendString(b, st.leader)
	if err != nil {
		return nil, err
	}
	insts := make([]uint64, 0, len(st.acc))
	for inst := range st.acc {
		insts = append(insts, inst)
	}
	slices.Sort(insts)
	b = binary.BigEndian.AppendUint32(b, uint32(len(insts)))
	for _, inst := range insts {
		a := st.acc[inst]
		b = binary.BigEndian.AppendUint64(b, inst)
		b = binary.BigEndian.AppendUint64(b, a.promised)
		b = binary.BigEndian.AppendUint64(b, a.accBallot)
		if b, err = appendString(b, a.accValue); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decodeState parses a state-file payload, rejecting (never
// panicking on) any malformed input, in the wire decoder's style.
func decodeState(payload []byte) (*persistentState, error) {
	d := decoder{b: payload}
	if v := d.u8(); d.err == nil && v != stateVersion {
		return nil, fmt.Errorf("%w: unknown state version %d", ErrMalformed, v)
	}
	st := &persistentState{round: d.u64(), maxDecided: d.u64(), leader: d.str()}
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		inst := d.u64()
		a := acceptorState{promised: d.u64(), accBallot: d.u64(), accValue: d.str()}
		if d.err != nil {
			break
		}
		if st.acc == nil {
			st.acc = make(map[uint64]acceptorState, n)
		}
		st.acc[inst] = a
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b)-d.off)
	}
	return st, nil
}

// saveState atomically replaces the state file: write a sibling temp
// file, sync, rename. The previous ledger survives any crash before
// the rename commits, so the file on disk is always one whole
// CRC-verified record.
func saveState(fs fault.FS, path string, st *persistentState) error {
	payload, err := encodeState(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteFrame(f, payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, path)
}

// loadState reads the state file. A missing file is a fresh node
// (nil state, no error); a present-but-unreadable file is an error,
// not amnesia — silently discarding the ledger would let the node
// break promises it already made, which is the exact failure the
// ledger exists to prevent.
func loadState(fs fault.FS, path string) (*persistentState, error) {
	f, err := fs.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	payload, err := ReadFrame(f)
	if err != nil {
		return nil, fmt.Errorf("elect: state file %s unreadable: %w", path, err)
	}
	st, err := decodeState(payload)
	if err != nil {
		return nil, fmt.Errorf("elect: state file %s corrupt: %w", path, err)
	}
	return st, nil
}
