package elect

import (
	"errors"
	"reflect"
	"testing"

	"repro/strip/fault"
)

func sampleState() *persistentState {
	return &persistentState{
		round:      7,
		maxDecided: 3,
		leader:     "n1:4001",
		acc: map[uint64]acceptorState{
			4: {promised: 11, accBallot: 11, accValue: "n2:4002"},
			6: {promised: 2},
		},
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	cases := []*persistentState{
		sampleState(),
		{}, // fresh node: all zero, no acceptor entries
		{round: 1, maxDecided: 9, leader: "n0"},
	}
	for _, want := range cases {
		payload, err := encodeState(want)
		if err != nil {
			t.Fatalf("encodeState(%+v): %v", want, err)
		}
		got, err := decodeState(payload)
		if err != nil {
			t.Fatalf("decodeState(encodeState(%+v)): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip changed state:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestStateCodecRejectsMalformed(t *testing.T) {
	good, err := encodeState(sampleState())
	if err != nil {
		t.Fatalf("encodeState: %v", err)
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown version", append([]byte{stateVersion + 1}, good[1:]...)},
		{"truncated", good[:len(good)-3]},
		{"trailing bytes", append(append([]byte(nil), good...), 0)},
	}
	for _, tc := range cases {
		if _, err := decodeState(tc.payload); err == nil {
			t.Errorf("%s: decodeState accepted malformed payload", tc.name)
		}
	}
}

func TestSaveLoadState(t *testing.T) {
	fs := fault.NewMemFS()
	const path = "ledger"

	// A missing file is a fresh node, not an error.
	st, err := loadState(fs, path)
	if err != nil || st != nil {
		t.Fatalf("loadState(missing) = %+v, %v; want nil, nil", st, err)
	}

	want := sampleState()
	if err := saveState(fs, path, want); err != nil {
		t.Fatalf("saveState: %v", err)
	}
	got, err := loadState(fs, path)
	if err != nil {
		t.Fatalf("loadState: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reloaded state differs:\n got %+v\nwant %+v", got, want)
	}

	// Overwrite with a newer snapshot: the rename must replace, not append.
	want.round = 20
	want.maxDecided = 6
	delete(want.acc, 4)
	if err := saveState(fs, path, want); err != nil {
		t.Fatalf("saveState #2: %v", err)
	}
	if got, err = loadState(fs, path); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("after overwrite: %+v, %v; want %+v", got, err, want)
	}
}

// TestSaveStateCrashKeepsOldLedger pins the atomicity argument: a
// crash after the temp file is written but before the rename commits
// must leave the previous ledger intact and loadable.
func TestSaveStateCrashKeepsOldLedger(t *testing.T) {
	fs := fault.NewMemFS()
	const path = "ledger"
	old := sampleState()
	if err := saveState(fs, path, old); err != nil {
		t.Fatalf("saveState: %v", err)
	}

	// Replay saveState's steps for a newer snapshot, stopping where a
	// crash between Close and Rename would.
	newer := sampleState()
	newer.round = 99
	payload, err := encodeState(newer)
	if err != nil {
		t.Fatalf("encodeState: %v", err)
	}
	f, err := fs.Create(path + ".tmp")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := WriteFrame(f, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// No rename: the crash ate it.

	got, err := loadState(fs, path)
	if err != nil {
		t.Fatalf("loadState after crash: %v", err)
	}
	if !reflect.DeepEqual(got, old) {
		t.Fatalf("crash before rename lost the old ledger:\n got %+v\nwant %+v", got, old)
	}
}

// TestLoadStateCorruptIsError pins the no-amnesia rule: a corrupt
// ledger must fail loudly instead of silently starting fresh.
func TestLoadStateCorruptIsError(t *testing.T) {
	fs := fault.NewMemFS()
	const path = "ledger"
	if err := saveState(fs, path, sampleState()); err != nil {
		t.Fatalf("saveState: %v", err)
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)-1] ^= 0x01
	if err := fs.WriteFile(path, data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := loadState(fs, path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("loadState(corrupt) = %v, want ErrChecksum", err)
	}
}
