// Package elect elects replication primaries: a compact single-decree
// Paxos over a small fixed peer set, run once per replication epoch.
// The instance number IS the epoch being minted — deciding instance E
// decides "node V owns epoch E", so a failover both names the new
// primary and mints the strictly-higher epoch that forces every node
// from the old history (including a restarted old primary) through a
// snapshot re-bootstrap in strip/repl.
//
// The package splits sans-io from transport: the proposer/acceptor
// state machines (paxos.go) are pure — driven only by Step/Tick calls
// with an explicit clock, randomized solely through a seeded PCG — so
// a scripted harness replays an election bit-for-bit from a seed. The
// Node shell (node.go) runs them over TCP with the same CRC-framed
// codec style as strip/repl; its dial hook accepts fault.ChaosConn
// and fault.Partition wrappers so torture tests inject partitions and
// resets deterministically.
package elect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Message kinds, the first payload byte.
const (
	// KindPrepare is Paxos phase-1a: a candidate asks for promises.
	KindPrepare byte = 1
	// KindPromise is phase-1b: an acceptor's promise or refusal.
	KindPromise byte = 2
	// KindAccept is phase-2a: the candidate proposes a value.
	KindAccept byte = 3
	// KindAccepted is phase-2b: an acceptor's acceptance or refusal.
	KindAccepted byte = 4
	// KindDecided announces a decided (epoch, primary) pair.
	KindDecided byte = 5
	// KindPing probes a peer for liveness and leader gossip.
	KindPing byte = 6
	// KindPong answers a ping with the responder's decided leader.
	KindPong byte = 7
)

// MaxFrame bounds a frame payload. Election messages carry a couple
// of node IDs at most; the cap is the codec's defense against a
// corrupt or hostile length prefix.
const MaxFrame = 64 << 10

// frameOverhead is the wire bytes around a payload: a 4-byte length
// prefix and a 4-byte CRC32 trailer.
const frameOverhead = 8

// Codec errors. ReadFrame and Decode return errors — never panic and
// never a partial message — on any malformed input.
var (
	// ErrFrameTooLarge reports a length prefix beyond MaxFrame (or an
	// attempt to write one).
	ErrFrameTooLarge = errors.New("elect: frame exceeds size limit")
	// ErrChecksum reports a CRC32 mismatch: the frame was corrupted in
	// flight.
	ErrChecksum = errors.New("elect: frame checksum mismatch")
	// ErrTruncated reports a frame cut short of its declared length.
	ErrTruncated = errors.New("elect: truncated frame")
	// ErrMalformed reports a payload that does not decode as any
	// message.
	ErrMalformed = errors.New("elect: malformed frame payload")
)

// Msg is a decoded frame payload: one of *Prepare, *Promise, *Accept,
// *Accepted, *Decided, *Ping or *Pong. Every message names its
// sender, which doubles as the reply address.
type Msg interface {
	// Sender is the peer ID (its elect address) of the originator.
	Sender() string
}

// Prepare is Paxos phase-1a for one epoch instance.
type Prepare struct {
	From   string
	Epoch  uint64
	Ballot uint64
}

// Sender returns the originating peer ID.
func (m *Prepare) Sender() string { return m.From }

// Promise is phase-1b. OK promises ballots below Ballot will be
// refused; AccBallot/AccValue carry a previously accepted proposal
// (zero/empty when none). A refusal reports the acceptor's current
// promise in Promised so the candidate can pick a higher round.
type Promise struct {
	From      string
	Epoch     uint64
	Ballot    uint64
	OK        bool
	Promised  uint64
	AccBallot uint64
	AccValue  string
}

// Sender returns the originating peer ID.
func (m *Promise) Sender() string { return m.From }

// Accept is phase-2a: the candidate asks acceptors to accept Value
// (the would-be primary's ID) for the epoch instance.
type Accept struct {
	From   string
	Epoch  uint64
	Ballot uint64
	Value  string
}

// Sender returns the originating peer ID.
func (m *Accept) Sender() string { return m.From }

// Accepted is phase-2b; a refusal reports the acceptor's current
// promise in Promised.
type Accepted struct {
	From     string
	Epoch    uint64
	Ballot   uint64
	OK       bool
	Promised uint64
}

// Sender returns the originating peer ID.
func (m *Accepted) Sender() string { return m.From }

// Decided announces that epoch Epoch was decided for primary Value.
// Acceptors also answer prepares for already-decided epochs with it,
// so a lagging candidate learns the outcome instead of re-running it.
type Decided struct {
	From  string
	Epoch uint64
	Value string
}

// Sender returns the originating peer ID.
func (m *Decided) Sender() string { return m.From }

// Ping probes a peer: followers ping their leader to detect its
// death, the leader heartbeats every peer, and leaderless nodes ping
// everyone to discover a decided leader they missed. Like Pong it
// carries the sender's highest decided epoch and its winner
// (zero/empty when nothing is decided yet), so gossip flows in both
// directions of every probe — a node behind the sender learns the
// reign from the ping itself instead of waiting to be asked.
type Ping struct {
	From   string
	Epoch  uint64
	Leader string
}

// Sender returns the originating peer ID.
func (m *Ping) Sender() string { return m.From }

// Pong answers a ping with the responder's highest decided epoch and
// its winner (zero/empty when nothing is decided yet) — the gossip
// that re-points restarted nodes at the current primary.
type Pong struct {
	From   string
	Epoch  uint64
	Leader string
}

// Sender returns the originating peer ID.
func (m *Pong) Sender() string { return m.From }

// AppendFrame appends one encoded frame — big-endian payload length,
// the payload, and the payload's IEEE CRC32 — to dst and returns the
// extended slice, mirroring the strip/repl frame format.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) == 0 || len(payload) > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return dst, nil
}

// WriteFrame writes one frame assembled into a single buffer, so it
// reaches the writer in one Write call.
func WriteFrame(w io.Writer, payload []byte) error {
	buf, err := AppendFrame(make([]byte, 0, len(payload)+frameOverhead), payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame and returns its verified payload. A clean
// EOF before the first header byte returns io.EOF; any other short
// read returns ErrTruncated.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && err != io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	payload := body[:n]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(body[n:]) {
		return nil, ErrChecksum
	}
	return payload, nil
}

// Encode encodes one message as a frame payload.
//
// Payload layouts, all integers big-endian, strings u16-length-
// prefixed, bools one byte (0/1):
//
//	prepare:  kind from:str epoch:u64 ballot:u64
//	promise:  kind from:str epoch:u64 ballot:u64 ok:u8 promised:u64
//	          accballot:u64 accvalue:str
//	accept:   kind from:str epoch:u64 ballot:u64 value:str
//	accepted: kind from:str epoch:u64 ballot:u64 ok:u8 promised:u64
//	decided:  kind from:str epoch:u64 value:str
//	ping:     kind from:str epoch:u64 leader:str
//	pong:     kind from:str epoch:u64 leader:str
func Encode(m Msg) ([]byte, error) {
	var b []byte
	var err error
	switch m := m.(type) {
	case *Prepare:
		if b, err = header(KindPrepare, m.From); err == nil {
			b = binary.BigEndian.AppendUint64(b, m.Epoch)
			b = binary.BigEndian.AppendUint64(b, m.Ballot)
		}
	case *Promise:
		if b, err = header(KindPromise, m.From); err == nil {
			b = binary.BigEndian.AppendUint64(b, m.Epoch)
			b = binary.BigEndian.AppendUint64(b, m.Ballot)
			b = appendBool(b, m.OK)
			b = binary.BigEndian.AppendUint64(b, m.Promised)
			b = binary.BigEndian.AppendUint64(b, m.AccBallot)
			b, err = appendString(b, m.AccValue)
		}
	case *Accept:
		if b, err = header(KindAccept, m.From); err == nil {
			b = binary.BigEndian.AppendUint64(b, m.Epoch)
			b = binary.BigEndian.AppendUint64(b, m.Ballot)
			b, err = appendString(b, m.Value)
		}
	case *Accepted:
		if b, err = header(KindAccepted, m.From); err == nil {
			b = binary.BigEndian.AppendUint64(b, m.Epoch)
			b = binary.BigEndian.AppendUint64(b, m.Ballot)
			b = appendBool(b, m.OK)
			b = binary.BigEndian.AppendUint64(b, m.Promised)
		}
	case *Decided:
		if b, err = header(KindDecided, m.From); err == nil {
			b = binary.BigEndian.AppendUint64(b, m.Epoch)
			b, err = appendString(b, m.Value)
		}
	case *Ping:
		if b, err = header(KindPing, m.From); err == nil {
			b = binary.BigEndian.AppendUint64(b, m.Epoch)
			b, err = appendString(b, m.Leader)
		}
	case *Pong:
		if b, err = header(KindPong, m.From); err == nil {
			b = binary.BigEndian.AppendUint64(b, m.Epoch)
			b, err = appendString(b, m.Leader)
		}
	default:
		return nil, fmt.Errorf("%w: unknown message %T", ErrMalformed, m)
	}
	if err != nil {
		return nil, err
	}
	return b, nil
}

// header starts a payload with the kind byte and the sender ID.
func header(kind byte, from string) ([]byte, error) {
	return appendString([]byte{kind}, from)
}

// Decode parses a frame payload into its message. The returned
// message owns its memory (strings are copied out of payload).
func Decode(payload []byte) (Msg, error) {
	d := decoder{b: payload}
	kind := d.u8()
	from := d.str()
	var m Msg
	switch kind {
	case KindPrepare:
		m = &Prepare{From: from, Epoch: d.u64(), Ballot: d.u64()}
	case KindPromise:
		m = &Promise{From: from, Epoch: d.u64(), Ballot: d.u64(), OK: d.bool(),
			Promised: d.u64(), AccBallot: d.u64(), AccValue: d.str()}
	case KindAccept:
		m = &Accept{From: from, Epoch: d.u64(), Ballot: d.u64(), Value: d.str()}
	case KindAccepted:
		m = &Accepted{From: from, Epoch: d.u64(), Ballot: d.u64(), OK: d.bool(),
			Promised: d.u64()}
	case KindDecided:
		m = &Decided{From: from, Epoch: d.u64(), Value: d.str()}
	case KindPing:
		m = &Ping{From: from, Epoch: d.u64(), Leader: d.str()}
	case KindPong:
		m = &Pong{From: from, Epoch: d.u64(), Leader: d.str()}
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrMalformed, kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b)-d.off)
	}
	return m, nil
}

// decoder is a bounds-checked cursor over a payload, in the
// strip/repl style: the first short read latches err and every later
// read returns zero values, so decoding malformed input can never
// panic or over-read.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrMalformed, n, d.off, len(d.b))
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("%w: bad bool byte", ErrMalformed)
		}
		return false
	}
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(binary.BigEndian.Uint16(firstTwo(d)))
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// firstTwo reads a string's length prefix, tolerating a latched
// decoder (returns a zero prefix).
func firstTwo(d *decoder) []byte {
	b := d.take(2)
	if b == nil {
		return []byte{0, 0}
	}
	return b
}

// appendBool appends a bool as one byte.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendString appends a uint16-length-prefixed string.
func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: string of %d bytes", ErrFrameTooLarge, len(s))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}
