package elect

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// Decision is one learned election outcome: Leader owns replication
// epoch Epoch. Decisions are emitted in strictly increasing epoch
// order on any one node.
type Decision struct {
	Epoch  uint64
	Leader string
}

// Envelope is one outbound message the transport must deliver.
type Envelope struct {
	To  string
	Msg Msg
}

// Timing bundles the protocol's clocks-and-timeouts knobs. The zero
// value selects production defaults; tests shrink everything to
// milliseconds.
type Timing struct {
	// ProbeInterval is how often a follower pings its leader (and a
	// leaderless node pings everyone). Default 250ms.
	ProbeInterval time.Duration
	// FailAfter is how long a follower tolerates leader silence before
	// scheduling a campaign. Default 1.5s.
	FailAfter time.Duration
	// PhaseTimeout bounds one campaign's wait for a quorum of
	// promises or acceptances. Default 500ms.
	PhaseTimeout time.Duration
	// BackoffBase and BackoffMax bound the seeded exponential backoff
	// between failed campaigns. Defaults 100ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// withDefaults fills zero fields with the production defaults.
func (t Timing) withDefaults() Timing {
	if t.ProbeInterval <= 0 {
		t.ProbeInterval = 250 * time.Millisecond
	}
	if t.FailAfter <= 0 {
		t.FailAfter = 1500 * time.Millisecond
	}
	if t.PhaseTimeout <= 0 {
		t.PhaseTimeout = 500 * time.Millisecond
	}
	if t.BackoffBase <= 0 {
		t.BackoffBase = 100 * time.Millisecond
	}
	if t.BackoffMax < t.BackoffBase {
		t.BackoffMax = 20 * t.BackoffBase
	}
	return t
}

// acceptorState is one epoch instance's acceptor side.
type acceptorState struct {
	promised  uint64
	accBallot uint64
	accValue  string
}

// campaignPhase enumerates the proposer's progress.
type campaignPhase int

const (
	phaseIdle campaignPhase = iota
	phasePrepare
	phaseAccept
)

// core is the sans-io election engine: proposer, acceptor and learner
// state machines for a sequence of single-decree Paxos instances,
// where deciding instance E means "Value owns replication epoch E".
// It is driven entirely through Step, Tick and StartCampaign — each
// takes the current time and returns the messages to send plus any
// newly learned decisions — and draws randomness only from a seeded
// PCG, so a scripted harness replays an election deterministically.
// The Node shell serializes all calls under its mutex; core itself is
// not safe for concurrent use.
type core struct {
	self    string
	peers   []string // fixed membership, identical order on every node
	selfIdx uint64
	quorum  int

	// Learner state.
	decisions  map[uint64]string // epoch -> winner, a decisionsKept-wide trailing window
	maxDecided uint64            // highest decided epoch (0 = none)
	leader     string            // winner of maxDecided
	conflicts  []string          // observed double-decides (must stay empty)

	// Acceptor state, one entry per undecided epoch instance touched;
	// record prunes entries a decision supersedes.
	acc map[uint64]*acceptorState

	// Proposer state.
	phase      campaignPhase
	inst       uint64 // instance (epoch) being campaigned for
	ballot     uint64
	round      uint64 // highest ballot round used or observed
	proposal   string
	deadline   time.Time       // current phase's timeout
	votes      map[string]bool // peers heard from this phase
	bestABal   uint64          // highest accepted ballot among promises
	bestAVal   string          // its value (adopted over our own)
	campaignAt time.Time       // scheduled (re)campaign; zero = none

	// Liveness tracking.
	leaderSeen time.Time // last evidence the current leader is alive
	probeAt    time.Time // next probe due

	rng      *rand.Rand
	failures int // consecutive failed campaigns, drives backoff
	timing   Timing
	now      time.Time // the current entry point's clock reading

	// Durability tracking (state.go). dirty marks changes to the
	// state that must reach disk before this call's messages reach
	// the wire: promises, accepted values, the campaign round, the
	// learned decision. stateVer increments with every such change so
	// the shell can discard a stale snapshot that lost the race to a
	// newer one (the durable state is monotone, so newest wins).
	dirty    bool
	stateVer uint64

	// out and events accumulate the current call's results. Each entry
	// point starts them fresh: the returned slices are read by the
	// shell after it releases its lock, so they must never be reused.
	out    []Envelope
	events []Decision
}

// newCore builds the engine. peers must contain self; now seeds the
// liveness timers (a fresh node gives an existing leader FailAfter to
// make itself known before campaigning). restore, when non-nil, is
// the durable ledger a previous life of this node left behind — its
// promises, accepted values, spent campaign rounds and learned
// decision are binding across the crash.
func newCore(self string, peers []string, seed uint64, timing Timing, now time.Time, restore *persistentState) (*core, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("elect: empty peer set")
	}
	idx := -1
	for i, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("elect: empty peer ID at index %d", i)
		}
		for _, q := range peers[:i] {
			if p == q {
				return nil, fmt.Errorf("elect: duplicate peer %q", p)
			}
		}
		if p == self {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("elect: self %q not in peer set", self)
	}
	if seed == 0 {
		seed = 1
	}
	c := &core{
		self:       self,
		peers:      peers,
		selfIdx:    uint64(idx),
		quorum:     len(peers)/2 + 1,
		decisions:  make(map[uint64]string),
		acc:        make(map[uint64]*acceptorState),
		rng:        rand.New(rand.NewPCG(seed, seed^0x510e527fade682d1)),
		timing:     timing.withDefaults(),
		leaderSeen: now,
		probeAt:    now,
	}
	c.campaignAt = now.Add(c.timing.FailAfter + c.jitter())
	if restore != nil {
		c.round = restore.round
		if restore.maxDecided != 0 {
			c.maxDecided = restore.maxDecided
			c.leader = restore.leader
			c.decisions[restore.maxDecided] = restore.leader
		}
		for inst, a := range restore.acc {
			if inst > c.maxDecided {
				cp := a
				c.acc[inst] = &cp
			}
		}
		if c.maxDecided != 0 && c.leader == c.self {
			// This node crashed while primary. It must not resume a
			// reign the quorum may have buried while it was down, so
			// it campaigns immediately for the next epoch instead: if
			// the cluster moved on, the campaign's Decided answers
			// walk it onto the new reign; if not, it re-wins under a
			// fresh epoch that forces its followers to re-bootstrap
			// (their streams may have diverged from its unsynced
			// pre-crash state).
			c.campaignAt = now.Add(c.jitter())
		}
	}
	return c, nil
}

// markDirty stamps the durable state changed; the shell persists it
// before this call's outbound messages are dispatched.
func (c *core) markDirty() {
	c.dirty = true
	c.stateVer++
}

// persistent snapshots the durable ledger: the campaign round, the
// highest learned decision, and the acceptor entries for instances
// that decision does not already answer.
func (c *core) persistent() *persistentState {
	st := &persistentState{round: c.round, maxDecided: c.maxDecided, leader: c.leader}
	for inst, a := range c.acc {
		if inst > c.maxDecided {
			if st.acc == nil {
				st.acc = make(map[uint64]acceptorState, len(c.acc))
			}
			st.acc[inst] = *a
		}
	}
	return st
}

// takeDirtyState returns the pending durable snapshot and its
// version, or nil when everything is already persisted. Called by the
// shell under its lock, immediately after the engine call that may
// have dirtied the state.
func (c *core) takeDirtyState() (*persistentState, uint64) {
	if !c.dirty {
		return nil, 0
	}
	c.dirty = false
	return c.persistent(), c.stateVer
}

// jitter draws a uniform duration in [0, BackoffBase) from the seeded
// generator — the desynchronizer that keeps concurrent candidates
// from dueling forever.
func (c *core) jitter() time.Duration {
	return time.Duration(c.rng.Uint64() % uint64(c.timing.BackoffBase))
}

// backoffDelay is the delay before campaign retry n (0-based):
// exponential doubling from BackoffBase clamped to BackoffMax, plus
// jitter.
func (c *core) backoffDelay() time.Duration {
	d := c.timing.BackoffBase
	for i := 0; i < c.failures && d < c.timing.BackoffMax; i++ {
		d *= 2
	}
	if d > c.timing.BackoffMax {
		d = c.timing.BackoffMax
	}
	return d + c.jitter()
}

// Leader returns the winner and epoch of the highest decided
// instance; ok is false while nothing has been decided yet.
func (c *core) Leader() (leader string, epoch uint64, ok bool) {
	if c.maxDecided == 0 {
		return "", 0, false
	}
	return c.leader, c.maxDecided, true
}

// Conflicts returns observed double-decides. Paxos safety keeps this
// empty as long as every acceptor honors the promises it has made —
// which is why those promises live in the durable ledger (state.go)
// and survive crash-restarts. A node whose ledger is destroyed
// rejoins with amnesia and could in principle vote twice for one
// instance; this detector exists to surface exactly that. The torture
// tests assert it stays empty.
func (c *core) Conflicts() []string { return c.conflicts }

// begin starts a call: fresh result slices (the previous call's may
// still be in the shell's hands outside the lock) and the latched
// call time, which handlers read as c.now (self-delivered messages
// included).
func (c *core) begin(now time.Time) {
	c.now = now
	c.out = nil
	c.events = nil
}

// Step feeds one received message into the engine.
func (c *core) Step(now time.Time, m Msg) ([]Envelope, []Decision) {
	c.begin(now)
	c.handle(m)
	return c.out, c.events
}

// Tick advances the timers: probes peers, detects leader death,
// starts or retries campaigns, and times out stuck phases.
func (c *core) Tick(now time.Time) ([]Envelope, []Decision) {
	c.begin(now)
	isLeader := c.maxDecided != 0 && c.leader == c.self
	if c.phase != phaseIdle && now.After(c.deadline) {
		c.abortCampaign(now)
	}
	// No isLeader guard here: a sitting leader never *schedules* a
	// campaign (the failure detector below is follower-only and
	// record zeroes campaignAt on every new decision), so a non-zero
	// campaignAt on a leader is deliberate — a restored old primary
	// re-confirming its reign under a fresh epoch.
	if c.phase == phaseIdle && !c.campaignAt.IsZero() && !now.Before(c.campaignAt) {
		c.startCampaign(now)
	}
	if !now.Before(c.probeAt) {
		c.probeAt = now.Add(c.timing.ProbeInterval)
		switch {
		case isLeader:
			// The leader heartbeats every peer. The pings carry its
			// decided (epoch, leader) pair and the answering pongs
			// carry the peers'; either direction suffices for an
			// alive-but-deposed primary to learn, after a partition
			// heals, about the epoch that outlived it. Without this a
			// deposed primary is never contacted at all — followers
			// ping only their own leader — and it would keep acking
			// writes into a dead history forever.
			for _, p := range c.peers {
				if p != c.self {
					c.send(p, &Ping{From: c.self, Epoch: c.maxDecided, Leader: c.leader})
				}
			}
		case c.maxDecided != 0:
			c.send(c.leader, &Ping{From: c.self, Epoch: c.maxDecided, Leader: c.leader})
		default:
			// Leaderless: probe everyone to discover a decided leader
			// this node missed (restart, partition heal).
			for _, p := range c.peers {
				if p != c.self {
					c.send(p, &Ping{From: c.self})
				}
			}
		}
	}
	// Leader silence past FailAfter schedules a campaign (once; the
	// schedule stands until evidence of life cancels it).
	if !isLeader && c.maxDecided != 0 && c.phase == phaseIdle &&
		c.campaignAt.IsZero() && now.Sub(c.leaderSeen) > c.timing.FailAfter {
		c.campaignAt = now.Add(c.jitter())
	}
	return c.out, c.events
}

// StartCampaign forces an immediate campaign (the public Campaign
// API); a campaign already in flight is left alone.
func (c *core) StartCampaign(now time.Time) ([]Envelope, []Decision) {
	c.begin(now)
	if c.phase == phaseIdle {
		c.startCampaign(now)
	}
	return c.out, c.events
}

// send queues an envelope, looping self-addressed messages straight
// back into the engine (a node is its own acceptor and learner).
func (c *core) send(to string, m Msg) {
	if to == c.self {
		c.handle(m)
		return
	}
	c.out = append(c.out, Envelope{To: to, Msg: m})
}

// handle dispatches one message. Unknown senders are ignored: the
// peer set is fixed and a message from outside it is noise.
func (c *core) handle(m Msg) {
	if !c.knownPeer(m.Sender()) {
		return
	}
	switch m := m.(type) {
	case *Prepare:
		c.onPrepare(m)
	case *Promise:
		c.onPromise(m)
	case *Accept:
		c.onAccept(m)
	case *Accepted:
		c.onAccepted(m)
	case *Decided:
		c.record(m.Epoch, m.Value)
	case *Ping:
		// Adopt the pinger's decided reign first, so the pong below
		// answers with the freshest view — and so a leader heartbeat
		// deposes a stale primary directly.
		if m.Epoch != 0 && m.Leader != "" {
			c.record(m.Epoch, m.Leader)
		}
		if c.maxDecided != 0 && m.From == c.leader {
			c.leaderSeen = c.now
			c.campaignAt = time.Time{}
			c.failures = 0
		}
		c.send(m.From, &Pong{From: c.self, Epoch: c.maxDecided, Leader: c.leader})
	case *Pong:
		if m.Epoch != 0 && m.Leader != "" {
			c.record(m.Epoch, m.Leader)
		}
		if m.From == c.leader && c.maxDecided != 0 {
			c.leaderSeen = c.now
			c.campaignAt = time.Time{}
			c.failures = 0
		}
	}
}

func (c *core) knownPeer(id string) bool {
	for _, p := range c.peers {
		if p == id {
			return true
		}
	}
	return false
}

// bumpRound tracks the highest ballot round seen anywhere, so the
// next campaign outbids every ballot this node knows about.
func (c *core) bumpRound(ballot uint64) {
	if r := ballot / uint64(len(c.peers)); r > c.round {
		c.round = r
	}
}

// ---- Acceptor ----

// acceptor returns the instance's acceptor state, creating it on
// first touch.
func (c *core) acceptor(inst uint64) *acceptorState {
	a, ok := c.acc[inst]
	if !ok {
		a = &acceptorState{}
		c.acc[inst] = a
	}
	return a
}

// onPrepare is phase-1b. Prepares for an instance at or below the
// highest decided epoch are answered with the decision itself: the
// candidate is behind and must learn, not re-run, the outcome.
func (c *core) onPrepare(m *Prepare) {
	c.bumpRound(m.Ballot)
	if m.Epoch <= c.maxDecided {
		c.send(m.From, &Decided{From: c.self, Epoch: c.maxDecided, Value: c.leader})
		return
	}
	a := c.acceptor(m.Epoch)
	if m.Ballot > a.promised {
		a.promised = m.Ballot
		c.markDirty()
		c.send(m.From, &Promise{From: c.self, Epoch: m.Epoch, Ballot: m.Ballot,
			OK: true, AccBallot: a.accBallot, AccValue: a.accValue})
		return
	}
	c.send(m.From, &Promise{From: c.self, Epoch: m.Epoch, Ballot: m.Ballot,
		OK: false, Promised: a.promised})
}

// onAccept is phase-2b.
func (c *core) onAccept(m *Accept) {
	c.bumpRound(m.Ballot)
	if m.Epoch <= c.maxDecided {
		c.send(m.From, &Decided{From: c.self, Epoch: c.maxDecided, Value: c.leader})
		return
	}
	a := c.acceptor(m.Epoch)
	if m.Ballot >= a.promised {
		a.promised = m.Ballot
		a.accBallot = m.Ballot
		a.accValue = m.Value
		c.markDirty()
		c.send(m.From, &Accepted{From: c.self, Epoch: m.Epoch, Ballot: m.Ballot, OK: true})
		return
	}
	c.send(m.From, &Accepted{From: c.self, Epoch: m.Epoch, Ballot: m.Ballot,
		OK: false, Promised: a.promised})
}

// ---- Proposer ----

// startCampaign opens phase 1 with a ballot above every round seen so
// far. The target is always exactly the next epoch after the highest
// decided one: instances are sequential, and a candidate that is
// behind gets walked forward by the Decided answers its prepares draw
// from up-to-date acceptors. (Targeting anything higher would let an
// isolated node's failed campaigns inflate its instance number and
// usurp a settled leadership on heal.)
func (c *core) startCampaign(now time.Time) {
	c.campaignAt = time.Time{}
	c.inst = c.maxDecided + 1
	c.round++
	c.ballot = c.round*uint64(len(c.peers)) + c.selfIdx + 1
	// The spent round is durable: were a crash-restarted proposer to
	// reissue a ballot number it already used with a different value,
	// an acceptor could accept both under one ballot and split the
	// quorum intersection. (Rounds merely observed via bumpRound need
	// no persistence — those ballots belong to other indices.)
	c.markDirty()
	c.phase = phasePrepare
	c.proposal = c.self
	c.deadline = now.Add(c.timing.PhaseTimeout)
	c.votes = make(map[string]bool, len(c.peers))
	c.bestABal, c.bestAVal = 0, ""
	for _, p := range c.peers {
		c.send(p, &Prepare{From: c.self, Epoch: c.inst, Ballot: c.ballot})
	}
}

// abortCampaign abandons the current attempt and schedules a
// backed-off retry.
func (c *core) abortCampaign(now time.Time) {
	c.phase = phaseIdle
	c.votes = nil
	c.campaignAt = now.Add(c.backoffDelay())
	c.failures++
}

// onPromise collects phase-1b responses. On quorum the proposal
// switches to the highest-ballot previously accepted value, if any —
// the Paxos rule that makes a re-run converge on the same winner.
func (c *core) onPromise(m *Promise) {
	if !m.OK {
		c.bumpRound(m.Promised)
		if c.phase == phasePrepare && m.Epoch == c.inst && m.Ballot == c.ballot {
			c.abortCampaign(c.now)
		}
		return
	}
	if c.phase != phasePrepare || m.Epoch != c.inst || m.Ballot != c.ballot {
		return
	}
	if !c.votes[m.From] {
		c.votes[m.From] = true
		if m.AccBallot > c.bestABal {
			c.bestABal, c.bestAVal = m.AccBallot, m.AccValue
		}
	}
	if len(c.votes) < c.quorum {
		return
	}
	if c.bestABal > 0 {
		c.proposal = c.bestAVal
	}
	c.phase = phaseAccept
	c.deadline = c.now.Add(c.timing.PhaseTimeout)
	c.votes = make(map[string]bool, len(c.peers))
	for _, p := range c.peers {
		c.send(p, &Accept{From: c.self, Epoch: c.inst, Ballot: c.ballot, Value: c.proposal})
	}
}

// onAccepted collects phase-2b responses; a quorum decides the
// instance and announces it to every peer.
func (c *core) onAccepted(m *Accepted) {
	if !m.OK {
		c.bumpRound(m.Promised)
		if c.phase == phaseAccept && m.Epoch == c.inst && m.Ballot == c.ballot {
			c.abortCampaign(c.now)
		}
		return
	}
	if c.phase != phaseAccept || m.Epoch != c.inst || m.Ballot != c.ballot {
		return
	}
	c.votes[m.From] = true
	if len(c.votes) < c.quorum {
		return
	}
	inst, value := c.inst, c.proposal
	c.phase = phaseIdle
	c.votes = nil
	c.failures = 0
	for _, p := range c.peers {
		if p != c.self {
			c.send(p, &Decided{From: c.self, Epoch: inst, Value: value})
		}
	}
	c.record(inst, value)
}

// ---- Learner ----

// decisionsKept bounds the decisions map: epochs more than this far
// below the maximum are pruned. The window exists only to catch
// double-decides close to the frontier (the conflict detector); a
// long-lived node must not leak a map entry per epoch ever decided.
const decisionsKept = 64

// record learns one decision. A decision above the current maximum
// changes the leader, is emitted to the shell's observers, counts as
// evidence of a live leader, and cancels any scheduled or running
// campaign for an instance it covers. A second, different value for
// an already-learned epoch is recorded as a conflict — see Conflicts
// for the guarantee; the torture tests assert none are observed.
func (c *core) record(inst uint64, value string) {
	if prev, ok := c.decisions[inst]; ok {
		if prev != value {
			c.conflicts = append(c.conflicts,
				fmt.Sprintf("epoch %d decided for both %q and %q", inst, prev, value))
		}
		return
	}
	c.decisions[inst] = value
	if inst <= c.maxDecided {
		return
	}
	c.maxDecided = inst
	c.leader = value
	c.leaderSeen = c.now
	c.campaignAt = time.Time{}
	c.markDirty()
	// Prepares and accepts for instances at or below the decision are
	// answered from the decision itself, so their acceptor entries
	// are dead weight from here on; and the decisions window slides.
	for e := range c.acc {
		if e <= inst {
			delete(c.acc, e)
		}
	}
	if inst > decisionsKept {
		for e := range c.decisions {
			if e < inst-decisionsKept {
				delete(c.decisions, e)
			}
		}
	}
	if c.phase != phaseIdle && c.inst <= inst {
		c.phase = phaseIdle
		c.votes = nil
	}
	c.events = append(c.events, Decision{Epoch: inst, Leader: value})
}
