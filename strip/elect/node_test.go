package elect

import (
	"net"
	"testing"
	"time"

	"repro/strip/fault"
)

// startTestCluster listens on n loopback ports, uses the resulting
// addresses as the peer IDs, and starts a Node behind each.
func startTestCluster(t *testing.T, n int, seed uint64) (peers []string, nodes map[string]*Node) {
	t.Helper()
	listeners := make([]net.Listener, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		peers = append(peers, l.Addr().String())
	}
	nodes = make(map[string]*Node)
	for i, self := range peers {
		node, err := NewNode(Config{
			Self:      self,
			Peers:     peers,
			Seed:      seed + uint64(i),
			Timing:    testTiming(),
			TickEvery: 5 * time.Millisecond,
			IOTimeout: 500 * time.Millisecond,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatalf("NewNode(%s): %v", self, err)
		}
		nodes[self] = node
		go node.Serve(listeners[i])
		t.Cleanup(func() { node.Close() })
	}
	return peers, nodes
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// agreement returns the (leader, epoch) every listed node reports, or
// ok=false while they differ or any has none.
func agreement(nodes map[string]*Node, ids []string) (leader string, epoch uint64, ok bool) {
	for _, id := range ids {
		l, e, has := nodes[id].Leader()
		if !has {
			return "", 0, false
		}
		if leader == "" {
			leader, epoch = l, e
		} else if l != leader || e != epoch {
			return "", 0, false
		}
	}
	return leader, epoch, true
}

// TestNodeElection runs a real 3-node TCP election: one winner, same
// epoch everywhere, no conflicts.
func TestNodeElection(t *testing.T) {
	peers, nodes := startTestCluster(t, 3, 77)
	var leader string
	var epoch uint64
	waitFor(t, 10*time.Second, "initial election", func() bool {
		var ok bool
		leader, epoch, ok = agreement(nodes, peers)
		return ok
	})
	if epoch == 0 {
		t.Fatalf("agreed on zero epoch")
	}
	for _, id := range peers {
		if conf := nodes[id].Conflicts(); len(conf) != 0 {
			t.Fatalf("%s observed conflicts: %v", id, conf)
		}
	}
	t.Logf("elected %s at epoch %d", leader, epoch)
}

// TestNodeReelection kills the elected leader's process (node and
// listener) and checks the survivors agree on a new leader at a
// strictly higher epoch.
func TestNodeReelection(t *testing.T) {
	peers, nodes := startTestCluster(t, 3, 170)
	var leader string
	var epoch uint64
	waitFor(t, 10*time.Second, "initial election", func() bool {
		var ok bool
		leader, epoch, ok = agreement(nodes, peers)
		return ok
	})

	nodes[leader].Close()
	var survivors []string
	for _, id := range peers {
		if id != leader {
			survivors = append(survivors, id)
		}
	}
	firstLeader, firstEpoch := leader, epoch
	waitFor(t, 15*time.Second, "re-election", func() bool {
		l, e, ok := agreement(nodes, survivors)
		leader, epoch = l, e
		return ok && e > firstEpoch && l != firstLeader
	})
	for _, id := range survivors {
		if conf := nodes[id].Conflicts(); len(conf) != 0 {
			t.Fatalf("%s observed conflicts: %v", id, conf)
		}
	}
	t.Logf("re-elected %s at epoch %d after killing %s (epoch %d)", leader, epoch, firstLeader, firstEpoch)
}

// TestNewNodeRejectsBadConfig pins the membership validation.
func TestNewNodeRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name  string
		self  string
		peers []string
	}{
		{"empty peers", "a", nil},
		{"self missing", "z", []string{"a", "b"}},
		{"duplicate peer", "a", []string{"a", "b", "b"}},
		{"empty peer ID", "a", []string{"a", ""}},
	}
	for _, tc := range cases {
		if _, err := NewNode(Config{Self: tc.self, Peers: tc.peers}); err == nil {
			t.Errorf("%s: NewNode accepted invalid membership", tc.name)
		}
	}
}

// TestObserveStreamsDecisions checks decisions reach the Observe
// channel in increasing epoch order.
func TestObserveStreamsDecisions(t *testing.T) {
	peers, nodes := startTestCluster(t, 3, 9000)
	node := nodes[peers[0]]
	select {
	case d := <-node.Observe():
		if d.Epoch == 0 || d.Leader == "" {
			t.Fatalf("empty decision %+v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("no decision observed")
	}
}

// TestNodeRestoresStateAcrossRestart runs a real election with the
// durable ledger enabled, crash-restarts a follower onto the same
// filesystem, and checks the replacement node knows the decided
// (leader, epoch) pair immediately — from disk, before any network
// traffic — and replays it to Observe for its failover manager.
func TestNodeRestoresStateAcrossRestart(t *testing.T) {
	const n = 3
	listeners := make([]net.Listener, n)
	var peers []string
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		peers = append(peers, l.Addr().String())
	}
	stores := make(map[string]*fault.MemFS)
	nodes := make(map[string]*Node)
	for i, self := range peers {
		stores[self] = fault.NewMemFS()
		node, err := NewNode(Config{
			Self:      self,
			Peers:     peers,
			Seed:      4200 + uint64(i),
			Timing:    testTiming(),
			TickEvery: 5 * time.Millisecond,
			IOTimeout: 500 * time.Millisecond,
			Logf:      t.Logf,
			StatePath: "ledger",
			FS:        stores[self],
		})
		if err != nil {
			t.Fatalf("NewNode(%s): %v", self, err)
		}
		nodes[self] = node
		go node.Serve(listeners[i])
		t.Cleanup(func() { node.Close() })
	}

	var leader string
	var epoch uint64
	waitFor(t, 10*time.Second, "initial election", func() bool {
		var ok bool
		leader, epoch, ok = agreement(nodes, peers)
		return ok
	})

	var follower string
	for _, id := range peers {
		if id != leader {
			follower = id
			break
		}
	}
	nodes[follower].Close()

	// The replacement starts on the crashed follower's filesystem and
	// never serves: everything it knows must come from the ledger.
	revived, err := NewNode(Config{
		Self:      follower,
		Peers:     peers,
		Seed:      9999,
		Timing:    testTiming(),
		Logf:      t.Logf,
		StatePath: "ledger",
		FS:        stores[follower],
	})
	if err != nil {
		t.Fatalf("NewNode(revived %s): %v", follower, err)
	}
	defer revived.Close()
	if l, e, ok := revived.Leader(); !ok || l != leader || e != epoch {
		t.Fatalf("revived follower sees (%s, %d, %v), want (%s, %d) from its ledger", l, e, ok, leader, epoch)
	}
	select {
	case d := <-revived.Observe():
		if d.Leader != leader || d.Epoch != epoch {
			t.Fatalf("replayed decision %+v, want (%s, %d)", d, leader, epoch)
		}
	default:
		t.Fatalf("restored decision not replayed to Observe")
	}
}
