package strip

import (
	"time"

	"repro/strip/obs"
)

// dbObs is the database's observability surface: the metric series it
// observes on the hot path plus scratch used to assemble per-update
// traces. It always exists — when Config.Metrics is nil the database
// registers into a private registry — so the instrumentation cost is
// paid (and benchmarked) unconditionally rather than hiding behind a
// nil check the benchmarks would never take.
//
// The scratch fields (installEnd, cur) are written inside
// installEntry under db.mu and read by install on the scheduler
// goroutine immediately after; they carry state between the two
// halves of one install without allocating.
type dbObs struct {
	reg *obs.Registry

	// stage holds one latency histogram per pipeline stage.
	stage [obs.NumStages]*obs.Histogram

	// staleness is the install-time age of every worthy install: how
	// old the value already was when it became visible (the MA axis).
	staleness *obs.Histogram
	// replicaLag is the same age restricted to replicated installs —
	// the distribution behind Stats.ReplicaLagSeconds' point reading.
	replicaLag *obs.Histogram
	// uuBacklog samples the update-queue length at every enqueue (the
	// UU axis: how many unapplied updates an arrival queues behind).
	uuBacklog *obs.Histogram
	// commitLatency is submit-to-finish time of committed transactions.
	commitLatency *obs.Histogram

	// ring holds recent full traces; nil when Config.TraceDepth <= 0.
	ring *obs.TraceRing

	// installEnd is the clock reading taken at the end of the last
	// worthy installEntry; install subtracts it from the post-trigger
	// reading to get the trigger span.
	installEnd int64
	// cur is the trace under assembly for the current install.
	cur obs.Trace
}

// newDBObs builds the database's metric series in reg (a private
// registry when nil) and mirrors the Stats counters into it. Mirrors
// are snapshot-time funcs over db.Stats(), so the hot path maintains
// one set of counters and the scrape pays the read.
func newDBObs(db *DB, reg *obs.Registry, traceDepth int) *dbObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &dbObs{reg: reg, ring: obs.NewTraceRing(traceDepth)}

	for i := range o.stage {
		o.stage[i] = reg.Histogram(
			"strip_pipeline_"+obs.Stage(i).String()+"_seconds",
			"latency of the "+obs.Stage(i).String()+" pipeline stage",
			obs.LatencyBuckets(), 1e9)
	}
	o.staleness = reg.Histogram("strip_staleness_seconds",
		"age of the value at install time (MA criterion axis)",
		obs.AgeBuckets(), 1e9)
	o.replicaLag = reg.Histogram("strip_replica_lag_install_seconds",
		"install-time age of replicated updates",
		obs.AgeBuckets(), 1e9)
	o.uuBacklog = reg.Histogram("strip_uu_backlog_updates",
		"update-queue length observed at enqueue (UU criterion axis)",
		obs.CountBuckets(), 1)
	o.commitLatency = reg.Histogram("strip_txn_commit_seconds",
		"submit-to-finish latency of committed transactions",
		obs.LatencyBuckets(), 1e9)

	counter := func(name, help string, read func(Stats) uint64) {
		reg.CounterFunc(name, help, func() uint64 { return read(db.Stats()) })
	}
	counter("strip_updates_received_total", "updates accepted into the system",
		func(s Stats) uint64 { return s.UpdatesReceived })
	counter("strip_updates_dropped_total", "arrivals rejected by a full ingest buffer",
		func(s Stats) uint64 { return s.UpdatesDropped })
	counter("strip_updates_installed_total", "values written into views",
		func(s Stats) uint64 { return s.UpdatesInstalled })
	counter("strip_updates_skipped_total", "updates superseded or coalesced away",
		func(s Stats) uint64 { return s.UpdatesSkipped })
	counter("strip_updates_expired_total", "queued updates discarded for exceeding MaxAge",
		func(s Stats) uint64 { return s.UpdatesExpired })
	counter("strip_updates_evicted_total", "updates dropped by queue overflow",
		func(s Stats) uint64 { return s.UpdatesEvicted })
	counter("strip_txns_submitted_total", "Exec calls admitted",
		func(s Stats) uint64 { return s.TxnsSubmitted })
	counter("strip_txns_committed_total", "transactions committed by their deadline",
		func(s Stats) uint64 { return s.TxnsCommitted })
	counter("strip_txns_committed_stale_total", "commits that read stale data",
		func(s Stats) uint64 { return s.TxnsCommittedStale })
	counter("strip_txns_aborted_deadline_total", "firm-deadline aborts",
		func(s Stats) uint64 { return s.TxnsAbortedDeadline })
	counter("strip_txns_aborted_stale_total", "aborts due to stale reads",
		func(s Stats) uint64 { return s.TxnsAbortedStale })
	counter("strip_txns_failed_total", "transactions whose function returned an error",
		func(s Stats) uint64 { return s.TxnsFailed })
	counter("strip_txns_failed_durability_total", "transactions failed by ErrDurability",
		func(s Stats) uint64 { return s.TxnsFailedDurability })
	counter("strip_wal_errors_total", "write-ahead log I/O failures",
		func(s Stats) uint64 { return s.WALErrors })
	counter("strip_degraded_heals_total", "degraded episodes ended by a Checkpoint",
		func(s Stats) uint64 { return s.DegradedHeals })
	counter("strip_replication_seq", "replication sequence number (published state changes)",
		func(s Stats) uint64 { return s.ReplicationSeq })
	counter("strip_repl_batches_applied_total", "write batches applied from a primary",
		func(s Stats) uint64 { return s.ReplBatchesApplied })
	counter("strip_repl_snapshots_installed_total", "bootstrap snapshots installed from a primary",
		func(s Stats) uint64 { return s.ReplSnapshotsInstalled })

	gauge := func(name, help string, read func(Stats) float64) {
		reg.GaugeFunc(name, help, func() float64 { return read(db.Stats()) })
	}
	gauge("strip_queue_len", "current update-queue length",
		func(s Stats) float64 { return float64(s.QueueLen) })
	gauge("strip_degraded", "1 while in degraded durability mode",
		func(s Stats) float64 {
			if s.Degraded {
				return 1
			}
			return 0
		})
	gauge("strip_value_committed_total", "summed value of committed transactions",
		func(s Stats) float64 { return s.ValueCommitted })
	gauge("strip_replica_lag_seconds", "MA replication lag of the most out-of-date view",
		func(s Stats) float64 { return s.ReplicaLagSeconds })
	gauge("strip_replica_lag_updates", "UU replication lag (received but uninstalled updates)",
		func(s Stats) float64 { return float64(s.ReplicaLagUpdates) })
	reg.GaugeFunc("strip_staleness_max_seconds",
		"worst install-time age ever observed over all objects",
		func() float64 {
			db.mu.RLock()
			defer db.mu.RUnlock()
			return db.maxStale.Max()
		})
	return o
}

// Metrics returns the registry this database's series live in: the
// one supplied in Config.Metrics, or the private registry created at
// Open. Serve it with obs.NewMux or render it with WriteText.
func (db *DB) Metrics() *obs.Registry { return db.obs.reg }

// Traces returns the most recent end-to-end update traces, newest
// first; nil unless Config.TraceDepth is positive.
func (db *DB) Traces() []obs.Trace { return db.obs.ring.Snapshot() }

// MaxStaleness returns the worst install-time age (seconds) ever
// observed for the named object, i.e. how old its value was at the
// moment it became visible, at the worst point in this database's
// history.
func (db *DB) MaxStaleness(name string) (float64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.names[name]
	if !ok {
		return 0, ErrUnknownObject
	}
	return db.maxStale.Object(id), nil
}

// nowNanos reads the instrumentation time axis in Unix nanoseconds.
// An injected Config.Clock is read directly, so simulated time
// observes simulated spans (and two runs with the same fake clock
// observe identical ones). With the default clock the reading is
// derived from the monotonic elapsed time since Open: one monotonic
// clock read, which costs roughly half of a full time.Now on the
// kernels this was measured on — and the install path takes two
// readings per update.
func (db *DB) nowNanos() int64 {
	if db.cfg.defaultedClock {
		return db.startNanos + int64(time.Since(db.start))
	}
	return db.cfg.Clock().UnixNano()
}
