package strip

import (
	"errors"
	"fmt"

	"repro/internal/model"
)

// Errors for triggers, derived views and history.
var (
	// ErrDerivedUpdate reports an external update applied to a
	// derived view, which is computed, never fed.
	ErrDerivedUpdate = errors.New("strip: derived views cannot be updated externally")
	// ErrNoHistory reports a ReadAsOf on a database without history
	// (Config.HistoryDepth == 0) or with no value old enough.
	ErrNoHistory = errors.New("strip: no historical value available")
	// ErrUnknownDependency reports a derived view referring to an
	// undefined view object.
	ErrUnknownDependency = errors.New("strip: unknown dependency")
)

// derivedDef describes one computed view.
type derivedDef struct {
	id      model.ObjectID
	deps    []model.ObjectID
	compute func(values []float64) float64
}

// OnInstall registers fn to run after every install of the named view
// object (object == "" registers for all views). The function runs on
// the scheduler goroutine with the freshly installed entry: it must be
// fast and must not call Exec. Triggers are the STRIP rule mechanism
// in miniature; §7 names update-triggered rules as the follow-on
// problem to update scheduling.
func (db *DB) OnInstall(object string, fn func(Entry)) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if object == "" {
		db.globalTriggers = append(db.globalTriggers, fn)
		return nil
	}
	id, ok := db.names[object]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, object)
	}
	if db.triggers == nil {
		db.triggers = make(map[model.ObjectID][]func(Entry))
	}
	db.triggers[id] = append(db.triggers[id], fn)
	return nil
}

// DefineDerived registers a computed view: whenever any dependency is
// installed, compute runs over the dependencies' current values (in
// deps order) and the result becomes the derived view's value. The
// derived view's generation time is the *oldest* dependency
// generation, so a maximum-age staleness bound propagates
// conservatively; under the unapplied-update criterion the derived
// view is stale while any dependency is.
//
// Derived views are what §7 describes as the case On Demand cannot
// handle directly ("an object X representing the average price of
// stocks in a portfolio"): the update queue never holds updates for
// the derived object itself, but refreshing a dependency — by any
// policy, including OD's in-line refresh — recomputes it.
func (db *DB) DefineDerived(name string, deps []string, compute func(values []float64) float64) error {
	if compute == nil {
		return errors.New("strip: DefineDerived requires a compute function")
	}
	if len(deps) == 0 {
		return errors.New("strip: DefineDerived requires at least one dependency")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, ok := db.names[name]; ok {
		return ErrDuplicateObject
	}
	depIDs := make([]model.ObjectID, len(deps))
	for i, dep := range deps {
		id, ok := db.names[dep]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownDependency, dep)
		}
		if db.defs[id].derived {
			// Chained derivation would need topological recompute
			// ordering; keep the dependency graph one level deep.
			return fmt.Errorf("strip: dependency %q is itself derived", dep)
		}
		depIDs[i] = id
	}
	id := model.ObjectID(len(db.defs))
	db.names[name] = id
	db.defs = append(db.defs, viewDef{name: name, importance: Low, derived: true})
	db.entries = append(db.entries, viewEntry{})
	db.pending = append(db.pending, 0)
	def := &derivedDef{id: id, deps: depIDs, compute: compute}
	if db.derivedByDep == nil {
		db.derivedByDep = make(map[model.ObjectID][]*derivedDef)
		db.derivedByID = make(map[model.ObjectID]*derivedDef)
	}
	for _, dep := range depIDs {
		db.derivedByDep[dep] = append(db.derivedByDep[dep], def)
	}
	db.derivedByID[id] = def
	return nil
}

// fireTriggers runs install triggers and derived-view recomputation
// for an installed object, reporting whether any trigger, watcher or
// derived recompute actually ran (the trigger latency span is only
// observed then). Called on the scheduler goroutine, outside db.mu.
func (db *DB) fireTriggers(id model.ObjectID) bool {
	db.mu.RLock()
	name := db.defs[id].name
	e := Entry{
		Object:    name,
		Value:     db.entries[id].value,
		Generated: db.entries[id].generated,
		Fields:    copyFields(db.entries[id].fields),
	}
	// Copy the trigger lists so they run outside the lock; the copy is
	// sized exactly and skipped entirely when nothing is registered,
	// so trigger-less installs (the common ingest path) allocate
	// nothing here.
	var fns []func(Entry)
	if n := len(db.globalTriggers) + len(db.triggers[id]); n > 0 {
		fns = make([]func(Entry), 0, n)
		fns = append(fns, db.globalTriggers...)
		fns = append(fns, db.triggers[id]...)
	}
	derived := append([]*derivedDef(nil), db.derivedByDep[id]...)
	db.mu.RUnlock()

	for _, fn := range fns {
		fn(e)
	}
	watched := db.notifyWatchers(id, e)
	for _, def := range derived {
		db.recomputeDerived(def)
	}
	return len(fns) > 0 || watched || len(derived) > 0
}

// recomputeDerived evaluates one derived view from its dependencies.
func (db *DB) recomputeDerived(def *derivedDef) {
	db.mu.Lock()
	//striplint:ignore alloc-in-hotpath -- def.compute is user code that may retain the slice, so each recompute hands it a fresh one
	values := make([]float64, len(def.deps))
	oldest := db.entries[def.deps[0]].generated
	for i, dep := range def.deps {
		values[i] = db.entries[dep].value
		if g := db.entries[dep].generated; g.Before(oldest) {
			oldest = g
		}
	}
	db.mu.Unlock()

	// Compute outside the lock: user code.
	result := def.compute(values)

	db.mu.Lock()
	e := &db.entries[def.id]
	e.value = result
	e.generated = oldest
	db.recordHistoryLocked(def.id)
	db.mu.Unlock()

	// Derived installs fire plain triggers too (but never recurse
	// into further derivation: dependencies cannot be derived).
	db.mu.RLock()
	name := db.defs[def.id].name
	entry := Entry{Object: name, Value: result, Generated: oldest}
	var fns []func(Entry)
	if n := len(db.globalTriggers) + len(db.triggers[def.id]); n > 0 {
		fns = make([]func(Entry), 0, n)
		fns = append(fns, db.globalTriggers...)
		fns = append(fns, db.triggers[def.id]...)
	}
	db.mu.RUnlock()
	for _, fn := range fns {
		fn(entry)
	}
	db.notifyWatchers(def.id, entry)
}

func copyFields(m map[string]float64) map[string]float64 {
	if len(m) == 0 {
		return nil
	}
	//striplint:ignore alloc-in-hotpath -- the copy decouples the entry from the caller's map; field-less updates take the nil fast path above
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
