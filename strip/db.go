package strip

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/uqueue"
	"repro/strip/fault"
	"repro/strip/obs"
)

// DB is a soft real-time database instance. All methods are safe for
// concurrent use; transactions and update installation execute on a
// single internal scheduler goroutine, which is the system's "CPU".
type DB struct {
	cfg   Config
	start time.Time
	// startNanos caches start.UnixNano(): the base the observability
	// layer adds monotonic elapsed readings and float-seconds arrival
	// stamps to (see nowNanos and arrivalNanos).
	startNanos int64

	ingestCh chan *model.Update
	txnCh    chan *txnReq
	stopCh   chan struct{}
	done     chan struct{}

	// mu guards the registry, view entries, general store and stats.
	// The update queue and ready list are owned by the scheduler
	// goroutine and need no locking.
	mu      sync.RWMutex
	names   map[string]model.ObjectID
	defs    []viewDef
	entries []viewEntry
	general map[string]float64
	stats   Stats
	closed  bool

	// Triggers and derived views (fired on the scheduler goroutine).
	triggers       map[model.ObjectID][]func(Entry) // guarded by mu
	globalTriggers []func(Entry)                    // guarded by mu
	derivedByDep   map[model.ObjectID][]*derivedDef // guarded by mu
	derivedByID    map[model.ObjectID]*derivedDef   // guarded by mu

	// Watch subscriptions.
	watchers     []*watcher                    // guarded by mu
	watchersByID map[model.ObjectID][]*watcher // guarded by mu

	// wal is the write-ahead log for general data; nil when disabled.
	// The pointer and fs (the filesystem it writes through; fault.OS
	// outside tests) are immutable after Open; the writer's fields are
	// only mutated under mu.
	wal *walWriter
	fs  fault.FS
	dur *metrics.Durability // WAL health and degraded mode, guarded by mu

	// Replication state (see replication.go). seq is the replication
	// sequence — the total order over worthy view installs and
	// committed write batches — advanced by emitLocked inside the
	// critical section that applies the change, whether or not a sink
	// is attached. epoch identifies this instance's sequence history
	// in the resume handshake; it is set at Open and replaced only by
	// AdoptReplicationEpoch when an election mints a new one.
	// arrival is the queue tie-break counter for incoming updates.
	// replBarrier discards queued replicated updates admitted before
	// the last ResetToSnapshot (see installEntry): state adopted from
	// a newly elected primary must not be overwritten by leftovers of
	// the deposed one's stream.
	// lag tracks replica freshness under the MA and UU criteria.
	seq         uint64              // guarded by mu
	epoch       uint64              // guarded by mu
	arrival     uint64              // guarded by mu
	replBarrier uint64              // guarded by mu
	sink        func(ReplEvent)     // guarded by mu
	lag         *metrics.ReplicaLag // guarded by mu

	// obs is the observability surface (histograms, trace ring); its
	// handle is immutable after Open, its scratch fields are written
	// under mu. maxStale tracks the worst install-time age per object.
	obs      *dbObs
	maxStale *metrics.MaxStaleness // guarded by mu

	// Scheduler-owned state. pending and highCount are written only
	// by the scheduler but read under mu by Peek, so their mutations
	// take mu as well.
	queue     uqueue.Queue
	pending   []int // per-object queued-update count (UU criterion)
	highCount int   // queued updates targeting High-importance views
	ready     []*txnReq
	// popBack is popClass's reused put-back scratch (scheduler-owned,
	// references cleared after every use).
	popBack []*model.Update

	// ckptMu serializes Checkpoint calls; it guards no fields.
	ckptMu sync.Mutex
}

type viewDef struct {
	name       string
	importance Importance
	derived    bool
}

type viewEntry struct {
	value     float64
	generated time.Time
	// fields holds named attributes for record views (partial
	// updates, §2); nil for plain scalar views.
	fields map[string]float64
	// history is a ring of past values, newest last, bounded by
	// Config.HistoryDepth.
	history []historical
}

// historical is one archived version of a view value.
type historical struct {
	value     float64
	generated time.Time
}

type txnReq struct {
	spec     TxnSpec
	res      chan Result
	enqueued time.Time
}

// Open creates a database and starts its scheduler.
func Open(cfg Config) (*DB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	fsys := cfg.FS
	if fsys == nil {
		fsys = fault.OS
	}
	general := make(map[string]float64)
	var wal *walWriter
	if cfg.WALPath != "" {
		var st walState
		var err error
		general, st, err = recoverGeneral(fsys, cfg.WALPath)
		if err != nil {
			return nil, err
		}
		wal, err = openWAL(fsys, cfg.WALPath, st)
		if err != nil {
			return nil, err
		}
	}
	start := cfg.Clock()
	epoch := cfg.ReplicationEpoch
	if epoch == 0 {
		epoch = uint64(start.UnixNano())
	}
	if epoch == 0 {
		epoch = 1
	}
	db := &DB{
		cfg:        cfg,
		start:      start,
		startNanos: start.UnixNano(),
		epoch:      epoch,
		ingestCh:   make(chan *model.Update, cfg.IngestBuffer),
		txnCh:      make(chan *txnReq, 256),
		stopCh:     make(chan struct{}),
		done:       make(chan struct{}),
		names:      make(map[string]model.ObjectID),
		general:    general,
		wal:        wal,
		fs:         fsys,
		dur:        metrics.NewDurability(),
		lag:        metrics.NewReplicaLag(),
		maxStale:   metrics.NewMaxStaleness(),
	}
	db.obs = newDBObs(db, cfg.Metrics, cfg.TraceDepth)
	if cfg.Coalesce {
		db.queue = uqueue.NewCoalescedQueue(cfg.QueueCapacity, 1)
	} else {
		db.queue = uqueue.NewGenQueue(cfg.QueueCapacity, 1)
	}
	go db.loop()
	return db, nil
}

// Close stops the scheduler and releases resources. Transactions
// still queued when Close is called complete with ErrClosed. Close is
// idempotent.
func (db *DB) Close() error {
	if !db.markClosed() {
		<-db.done
		return nil
	}
	close(db.stopCh)
	<-db.done
	db.closeWatchers()
	if db.wal != nil {
		// The writer's fields are guarded by db.mu: a Checkpoint that
		// passed its rotate phase before markClosed may still be
		// writing its snapshot and will read db.wal.broken under mu
		// in checkpointHeal.
		db.mu.Lock()
		//striplint:ignore block-under-lock -- final fsync of Close: the database is shutting down, there are no waiters left to stall
		err := db.wal.close()
		db.mu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrDurability, err)
		}
	}
	return nil
}

// markClosed flips the closed flag under the write lock, reporting
// whether this call was the one that closed the database.
func (db *DB) markClosed() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false
	}
	db.closed = true
	return true
}

// DefineView registers a view object refreshed by the update stream.
func (db *DB) DefineView(name string, importance Importance) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, ok := db.names[name]; ok {
		return ErrDuplicateObject
	}
	db.defineViewLocked(name, importance)
	return nil
}

// Views returns the defined view object names in definition order.
func (db *DB) Views() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.defs))
	for i, d := range db.defs {
		out[i] = d.name
	}
	return out
}

// Peek returns the current value of a view object without a
// transaction (a dirty read for monitoring).
func (db *DB) Peek(name string) (Entry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.names[name]
	if !ok {
		return Entry{}, ErrUnknownObject
	}
	e := db.entries[id]
	return Entry{
		Object:    name,
		Value:     e.value,
		Fields:    copyFields(e.fields),
		Generated: e.generated,
		Stale:     db.staleLocked(id, db.cfg.Clock()),
	}, nil
}

// Stats returns a snapshot of the counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.stats
	s.QueueLen = db.queueLenLocked()
	s.ReplicationSeq = db.seq
	s.ReplicaLagSeconds, s.ReplicaLagUpdates = db.lag.Aggregate()
	s.WALErrors = db.dur.WALErrors()
	s.Degraded = db.dur.Degraded()
	s.DegradedHeals = db.dur.Heals()
	return s
}

// Degraded reports whether the database is in degraded durability
// mode: the write-ahead log has failed, commits fail fast with
// ErrDurability, and a successful Checkpoint is needed to heal.
func (db *DB) Degraded() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dur.Degraded()
}

// queueLenLocked reads the queue length. The queue itself is owned by
// the scheduler; the length is read opportunistically for monitoring
// and is exact only at quiescent points, so it is stored in stats at
// every scheduler pass instead of read from the structure here.
func (db *DB) queueLenLocked() int { return db.stats.QueueLen }

// now returns the configured clock's time.
func (db *DB) now() time.Time { return db.cfg.Clock() }

// secs converts a wall time to float seconds since Open, the time axis
// used by the internal queue structures.
func (db *DB) secs(t time.Time) float64 { return t.Sub(db.start).Seconds() }

// arrivalNanos recovers an update's arrival time in Unix nanoseconds
// from the float-seconds axis the queue structures already carry. The
// float64 mantissa keeps sub-nanosecond precision for months of
// uptime, so the recovered reading is exact for span purposes while
// the queued Update stays one allocator size class smaller than it
// would be carrying a separate nanosecond field.
func (db *DB) arrivalNanos(u *model.Update) int64 {
	return db.startNanos + int64(u.ArrivalTime*float64(time.Second))
}

// lookup resolves a view name.
func (db *DB) lookup(name string) (model.ObjectID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.names[name]
	return id, ok
}

// staleLocked evaluates the staleness criterion for one object. A
// derived view is stale when any of its dependencies is. Callers hold
// db.mu (read or write).
func (db *DB) staleLocked(id model.ObjectID, now time.Time) bool {
	if def, ok := db.derivedByID[id]; ok {
		for _, dep := range def.deps {
			if db.staleLocked(dep, now) {
				return true
			}
		}
		return false
	}
	if db.cfg.MaxAge > 0 {
		gen := db.entries[id].generated
		return now.Sub(gen) > db.cfg.MaxAge
	}
	return db.pending[id] > 0
}

// isStale evaluates staleness with the registry lock.
func (db *DB) isStale(id model.ObjectID, now time.Time) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.staleLocked(id, now)
}

// install writes an update into its view if it is worthy (newer than
// the installed generation), then fires triggers and derived-view
// recomputation. It is called on the scheduler goroutine. popNanos is
// the clock reading taken when the update left the queue; the install
// and trigger spans are measured from it. The entry write happens in
// installEntry so the lock can be released by defer; triggers must
// fire outside db.mu (fireTriggers and notifyWatchers re-acquire it).
func (db *DB) install(u *model.Update, gen time.Time, popNanos int64) {
	if !db.installEntry(u, gen, popNanos) {
		return
	}
	o := db.obs
	fired := db.fireTriggers(u.Object)
	if o.ring != nil {
		// The trigger span would cost a third clock reading on every
		// install, so it is measured only while tracing is active
		// (TraceDepth > 0, as in stripd) and only when a trigger,
		// watcher or derived recompute actually ran — pure clock-read
		// jitter on trigger-less installs would drown the signal.
		if fired {
			trig := db.nowNanos() - o.installEnd
			o.stage[obs.StageTrigger].Observe(trig)
			o.cur.Spans[obs.StageTrigger] = trig
		}
		// cur was assembled by installEntry under the lock.
		o.ring.Record(o.cur)
	}
}

// installEntry applies the update under the write lock, reporting
// whether it was worthy (newer than the installed generation). A
// worthy install is published to the replication sink — and takes its
// place in the replication total order — inside the same critical
// section that writes the entry.
func (db *DB) installEntry(u *model.Update, gen time.Time, popNanos int64) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	// A replicated update admitted before the last ResetToSnapshot
	// belongs to the deposed primary's stream: the reset adopted a
	// state its history never produced, so installing it — however
	// fresh its generation looks — would resurrect divergent writes.
	if u.Replicated && u.Seq <= db.replBarrier {
		db.stats.UpdatesSkipped++
		db.lag.Removed(u.Object)
		return false
	}
	e := &db.entries[u.Object]
	worthy := gen.After(e.generated)
	if !worthy {
		db.stats.UpdatesSkipped++
		if u.Replicated {
			db.lag.Removed(u.Object)
		}
		return false
	}
	if fields, ok := u.Aux.(partialFields); ok {
		// Partial update (§2): only the named attributes change;
		// the scalar value and other fields are retained.
		if e.fields == nil {
			//striplint:ignore alloc-in-hotpath -- lazily creates the entry's field map on its first partial update; later partials mutate it in place
			e.fields = make(map[string]float64, len(fields))
		}
		for k, v := range fields {
			e.fields[k] = v
		}
	} else {
		e.value = u.Payload
		if fields, ok := u.Aux.(completeFields); ok {
			// Complete update with attributes: replaces them all.
			e.fields = copyFields(fields)
		}
	}
	e.generated = gen
	db.recordHistoryLocked(u.Object)
	db.stats.UpdatesInstalled++
	if u.Replicated {
		db.lag.Installed(u.Object, u.GenTime)
	} else {
		// A local install newer than everything received leaves the
		// object fresh under MA even while replicated updates it
		// superseded are still being discarded.
		db.lag.Refreshed(u.Object, u.GenTime)
	}
	o := db.obs
	// The publish span reuses the clock reading the install span needs
	// anyway, so a sink costs one extra read and its absence costs
	// none.
	published := db.sink != nil
	var pubStart int64
	if published {
		pubStart = db.nowNanos()
	}
	db.emitInstallLocked(u, gen)
	end := db.nowNanos()
	o.installEnd = end
	o.stage[obs.StageInstall].Observe(end - popNanos)
	if published {
		o.stage[obs.StageReplPublish].Observe(end - pubStart)
	}
	age := end - gen.UnixNano()
	o.staleness.Observe(age)
	db.maxStale.Observe(u.Object, float64(age)/1e9)
	if u.Replicated {
		o.replicaLag.Observe(age)
	}
	if o.ring != nil {
		o.cur = obs.NewTrace()
		o.cur.Seq = u.Seq
		o.cur.Object = db.defs[u.Object].name
		if u.ArrivalTime > 0 {
			arr := db.arrivalNanos(u)
			o.cur.ArrivalNanos = arr
			o.cur.Spans[obs.StageQueueWait] = popNanos - arr
		}
		o.cur.Spans[obs.StageInstall] = end - popNanos
		if published {
			o.cur.Spans[obs.StageReplPublish] = end - pubStart
		}
	}
	return true
}

// partialFields and completeFields tag the Aux payload with the
// update's completeness.
type partialFields map[string]float64
type completeFields map[string]float64

// recordHistoryLocked archives the entry's new version in its history
// ring. Callers hold db.mu for writing.
func (db *DB) recordHistoryLocked(id model.ObjectID) {
	depth := db.cfg.HistoryDepth
	if depth <= 0 {
		return
	}
	e := &db.entries[id]
	e.history = append(e.history, historical{value: e.value, generated: e.generated})
	if len(e.history) > depth {
		e.history = e.history[len(e.history)-depth:]
	}
}

// genTime recovers the wall-clock generation time of an update. The
// exact nanosecond timestamp is preferred when present: the float
// seconds axis loses precision, and replicas must install the same
// generation times as their primary for convergence to be
// byte-identical.
func (db *DB) genTime(u *model.Update) time.Time {
	if u.WallGen != 0 {
		return time.Unix(0, u.WallGen)
	}
	return db.start.Add(time.Duration(u.GenTime * float64(time.Second)))
}
