package strip

import (
	"testing"
	"time"
)

func TestPublicStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{UpdatesFirst.String(), "UF"},
		{TransactionsFirst.String(), "TF"},
		{SplitUpdates.String(), "SU"},
		{OnDemand.String(), "OD"},
		{Policy(99).String(), "Policy(99)"},
		{Low.String(), "low"},
		{High.String(), "high"},
		{Ignore.String(), "ignore"},
		{Warn.String(), "warn"},
		{Abort.String(), "abort"},
		{Committed.String(), "committed"},
		{AbortedDeadline.String(), "aborted-deadline"},
		{AbortedStale.String(), "aborted-stale"},
		{Failed.String(), "failed"},
		{State(99).String(), "State(99)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestTxDeadlineAndRemaining(t *testing.T) {
	clock := newFakeClock()
	db := mustOpen(t, Config{Clock: clock.Now})
	deadline := clock.Now().Add(time.Minute)
	res := db.Exec(TxnSpec{
		Deadline: deadline,
		Func: func(tx *Tx) error {
			if !tx.Deadline().Equal(deadline) {
				t.Errorf("Deadline = %v", tx.Deadline())
			}
			if got := tx.Remaining(); got != time.Minute {
				t.Errorf("Remaining = %v", got)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
}

func TestResultCommittedHelper(t *testing.T) {
	if (Result{State: Committed}).Committed() != true {
		t.Fatal("Committed state should report committed")
	}
	for _, s := range []State{AbortedDeadline, AbortedStale, Failed} {
		if (Result{State: s}).Committed() {
			t.Fatalf("state %v should not report committed", s)
		}
	}
}

func TestReadAsOfBeforeAndAfterState(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst, HistoryDepth: 4})
	db.DefineView("x", Low)
	// Escaped handle: ReadAsOf must fail like other Tx methods.
	var leaked *Tx
	db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			leaked = tx
			return nil
		},
	})
	if _, err := leaked.ReadAsOf("x", time.Now()); err == nil {
		t.Fatal("escaped ReadAsOf should fail")
	}
	// Unknown object inside a live transaction.
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			if _, err := tx.ReadAsOf("ghost", time.Now()); err == nil {
				t.Error("unknown object should fail")
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
}

func TestSplitUpdatesLowDrainWhenIdle(t *testing.T) {
	// Exercise the SU idle path: a low-importance update installs once
	// nothing else is runnable (priorityClass / popClass low branch).
	db := mustOpen(t, Config{Policy: SplitUpdates})
	db.DefineView("lo", Low)
	db.ApplyUpdate(Update{Object: "lo", Value: 3})
	waitFor(t, time.Second, func() bool {
		e, _ := db.Peek("lo")
		return e.Value == 3
	})
}

func TestIdleWaitDeadlineTimer(t *testing.T) {
	// A transaction queued behind a blocker whose deadline passes
	// while the scheduler idles must be reaped by the idle timer.
	db := mustOpen(t, Config{Policy: TransactionsFirst})
	gate := make(chan struct{})
	started := make(chan struct{})
	go db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			close(started)
			<-gate
			return nil
		},
	})
	<-started
	resCh := make(chan Result, 1)
	go func() {
		resCh <- db.Exec(TxnSpec{
			Deadline: time.Now().Add(30 * time.Millisecond),
			Estimate: time.Minute, // hopeless: feasibility abort
			Func:     func(tx *Tx) error { return nil },
		})
	}()
	// Release the blocker after the second txn is queued.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	select {
	case res := <-resCh:
		if res.State != AbortedDeadline {
			t.Fatalf("state = %v", res.State)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued hopeless txn never resolved")
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{Policy: Policy(42)},
		{OnStale: StaleAction(42)},
		{MaxAge: -time.Second},
		{HistoryDepth: -1},
	}
	for i, cfg := range cases {
		if _, err := Open(cfg); err == nil {
			t.Errorf("case %d: Open accepted invalid config %+v", i, cfg)
		}
	}
}
