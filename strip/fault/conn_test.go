package fault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// sinkConn is a trivial net.Conn: writes are recorded, reads return
// EOF. It lets the chaos tests drive the wrapper without a peer.
type sinkConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed bool
}

func (s *sinkConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, net.ErrClosed
	}
	return s.buf.Write(p)
}

func (s *sinkConn) Read(p []byte) (int, error) { return 0, io.EOF }

func (s *sinkConn) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *sinkConn) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func (s *sinkConn) LocalAddr() net.Addr                { return nil }
func (s *sinkConn) RemoteAddr() net.Addr               { return nil }
func (s *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

// runConnChaos drives a fixed write sequence through a seeded chaos
// wrapper and returns the fault trace.
func runConnChaos(seed uint64) []string {
	var (
		mu    sync.Mutex
		trace []string
	)
	c := WrapConn(&sinkConn{}, ConnChaos{
		Seed:    seed,
		Reset:   0.1,
		Partial: 0.15,
		Flip:    0.15,
		OnFault: func(side, kind string, arg int) {
			mu.Lock()
			trace = append(trace, fmt.Sprintf("%s %s %d", side, kind, arg))
			mu.Unlock()
		},
	})
	msg := []byte("frame payload frame payload frame payload")
	for i := 0; i < 80; i++ {
		c.Write(msg)
	}
	var rbuf [16]byte
	for i := 0; i < 20; i++ {
		c.Read(rbuf[:])
	}
	mu.Lock()
	defer mu.Unlock()
	return append([]string(nil), trace...)
}

// TestConnChaosDeterminism is the acceptance check on the network
// surface: same seed, same call sequence, same injected faults.
func TestConnChaosDeterminism(t *testing.T) {
	a, b := runConnChaos(7), runConnChaos(7)
	if len(a) == 0 {
		t.Fatal("chaos injected no faults; probabilities too low for the test")
	}
	if !equalStrings(a, b) {
		t.Fatalf("same seed, different fault traces:\n%v\n%v", a, b)
	}
	c := runConnChaos(8)
	if equalStrings(a, c) {
		t.Fatalf("different seeds produced identical %d-fault traces", len(a))
	}
}

func TestConnChaosBitFlip(t *testing.T) {
	sink := &sinkConn{}
	c := WrapConn(sink, ConnChaos{Seed: 1, Flip: 1})
	msg := []byte("abcdefgh")
	n, err := c.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("flip write = %d, %v", n, err)
	}
	got := sink.bytes()
	if bytes.Equal(got, msg) {
		t.Fatal("flip injected but bytes unchanged")
	}
	diff := 0
	for i := range msg {
		diff += popcount8(got[i] ^ msg[i])
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bits, want exactly 1", diff)
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestConnChaosPartialThenReset(t *testing.T) {
	sink := &sinkConn{}
	c := WrapConn(sink, ConnChaos{Seed: 3, Partial: 1})
	msg := []byte("0123456789")
	n, err := c.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write error = %v", err)
	}
	if n >= len(msg) {
		t.Fatalf("partial write kept %d of %d bytes", n, len(msg))
	}
	if got := sink.bytes(); !bytes.Equal(got, msg[:n]) {
		t.Fatalf("sink holds %q, want prefix %q", got, msg[:n])
	}
	// The underlying conn was reset.
	if _, err := sink.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("underlying conn not closed after partial: %v", err)
	}
}

func TestConnChaosDisable(t *testing.T) {
	sink := &sinkConn{}
	c := WrapConn(sink, ConnChaos{Seed: 5, Reset: 1})
	c.Disable()
	msg := []byte("clean")
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("disabled write = %d, %v", n, err)
	}
	if got := sink.bytes(); !bytes.Equal(got, msg) {
		t.Fatalf("disabled write corrupted: %q", got)
	}
}
