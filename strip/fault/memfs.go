package fault

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// OpKind discriminates recorded filesystem mutations.
type OpKind uint8

const (
	// OpCreate records a file coming into existence (Create, or
	// OpenFile with O_CREATE on a missing file). The file is empty
	// afterwards.
	OpCreate OpKind = iota
	// OpWrite records one write of Data at absolute offset Off.
	OpWrite
	// OpSync records a File.Sync.
	OpSync
	// OpTruncate records a truncation to Size bytes.
	OpTruncate
	// OpRename records an atomic rename of Name to To.
	OpRename
	// OpRemove records a file deletion.
	OpRemove
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one recorded mutating filesystem operation. The sequence of
// Ops a workload produced is the raw material for crash simulation:
// rebuilding a MemFS from any prefix of the log — cut mid-write at
// any byte — reproduces exactly the disk state a crash at that point
// would leave behind.
type Op struct {
	Kind OpKind
	Name string // the file operated on (for OpRename, the old name)
	To   string // OpRename: the new name
	Data []byte // OpWrite: the bytes written (a private copy)
	Off  int64  // OpWrite: absolute file offset of the write
	Size int64  // OpTruncate: the new length
}

// Injector inspects each operation before MemFS applies it and can
// fail it. Returning a nil error lets the operation proceed. For
// OpWrite, returning (keep, err) with err != nil and 0 <= keep <
// len(Data) applies a torn prefix of keep bytes before reporting the
// error — a short write. For every other kind keep is ignored.
//
// The injector runs without any MemFS lock held, so it may itself
// perform filesystem (or database) operations; it must guard against
// its own recursion.
type Injector func(op Op) (keep int, err error)

// MemFS is a deterministic in-memory filesystem. It records every
// mutating operation, supports fault injection through an Injector,
// and simulates crashes: Crash freezes the filesystem (every later
// operation fails with ErrCrashed), and BuildFS reconstructs the disk
// as of any crash point of a recorded operation log.
//
// Determinism: ReadDir is sorted, operations are recorded in the
// order they are applied, and the same operation sequence always
// yields the same state — MemFS itself introduces no randomness.
//
// Renames are modelled as atomic and immediately durable (the
// journalled-metadata assumption); file data is durable only up to
// the crash point chosen when the log is replayed.
//
// A limitation shared with the recording model: a file must not be
// written through a handle opened before a Rename of that file; the
// strip durability code closes before renaming.
type MemFS struct {
	mu      sync.Mutex
	files   map[string][]byte // guarded by mu
	ops     []Op              // guarded by mu
	crashed bool              // guarded by mu

	injMu  sync.Mutex
	inject Injector // guarded by injMu
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// SetInjector installs (or, with nil, removes) the fault injector.
func (fs *MemFS) SetInjector(inj Injector) {
	fs.injMu.Lock()
	defer fs.injMu.Unlock()
	fs.inject = inj
}

// injector returns the current injector.
func (fs *MemFS) injector() Injector {
	fs.injMu.Lock()
	defer fs.injMu.Unlock()
	return fs.inject
}

// consult runs the injector for op, returning the torn-write byte
// count and the injected error. It is called without fs.mu held.
func (fs *MemFS) consult(op Op) (int, error) {
	if inj := fs.injector(); inj != nil {
		return inj(op)
	}
	return 0, nil
}

// Crash freezes the filesystem: every subsequent operation, on the FS
// and on every open handle, fails with ErrCrashed. State frozen at
// the crash is still readable through Ops and BuildFS.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = true
}

// Ops returns a copy of the recorded mutation log.
func (fs *MemFS) Ops() []Op {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]Op, len(fs.ops))
	copy(out, fs.ops)
	return out
}

// OpCount returns the number of recorded mutations so far. The
// torture harness samples it between workload actions to mark
// durability guarantee points in the op log.
func (fs *MemFS) OpCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.ops)
}

// ReadFile returns a copy of a file's current contents.
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WriteFile sets a file's contents directly (test setup); the write
// is recorded as a create plus one write.
func (fs *MemFS) WriteFile(name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- FS interface ---

// OpenFile opens a file. Supported flags: os.O_RDONLY, os.O_WRONLY,
// os.O_RDWR, os.O_CREATE, os.O_APPEND, os.O_TRUNC.
func (fs *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	create := flag&os.O_CREATE != 0
	trunc := flag&os.O_TRUNC != 0
	if create || trunc {
		if _, err := fs.consult(Op{Kind: OpCreate, Name: name}); err != nil {
			return nil, &os.PathError{Op: "open", Path: name, Err: err}
		}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	_, exists := fs.files[name]
	if !exists && !create {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	if !exists || trunc {
		// Creation and truncation-by-open both leave an empty file.
		fs.files[name] = nil
		fs.record(Op{Kind: OpCreate, Name: name})
	}
	return &memFile{fs: fs, name: name, append: flag&os.O_APPEND != 0}, nil
}

// Open opens a file read-only.
func (fs *MemFS) Open(name string) (File, error) {
	return fs.OpenFile(name, os.O_RDONLY, 0)
}

// Create truncates or creates a file for writing.
func (fs *MemFS) Create(name string) (File, error) {
	return fs.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Rename atomically replaces newpath with oldpath.
func (fs *MemFS) Rename(oldpath, newpath string) error {
	if _, err := fs.consult(Op{Kind: OpRename, Name: oldpath, To: newpath}); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	data, ok := fs.files[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	delete(fs.files, oldpath)
	fs.files[newpath] = data
	fs.record(Op{Kind: OpRename, Name: oldpath, To: newpath})
	return nil
}

// Remove deletes a file.
func (fs *MemFS) Remove(name string) error {
	if _, err := fs.consult(Op{Kind: OpRemove, Name: name}); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	fs.record(Op{Kind: OpRemove, Name: name})
	return nil
}

// ReadDir lists the names of the files whose parent directory is dir,
// sorted.
func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	clean := filepath.Clean(dir)
	var names []string
	for name := range fs.files {
		if filepath.Dir(name) == clean {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// record appends one op to the log. Callers hold fs.mu.
func (fs *MemFS) record(op Op) {
	fs.ops = append(fs.ops, op)
}

// --- file handle ---

// memFile is one open handle. The offset is handle state; appends
// resolve their offset at write time, like O_APPEND.
type memFile struct {
	fs     *MemFS
	name   string
	append bool

	mu     sync.Mutex
	off    int64 // guarded by mu
	closed bool  // guarded by mu
}

// errIfUnusable reports ErrCrashed / closed-handle errors.
func (f *memFile) errIfUnusable() error {
	f.fs.mu.Lock()
	crashed := f.fs.crashed
	f.fs.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	return nil
}

func (f *memFile) Write(p []byte) (int, error) {
	if err := f.errIfUnusable(); err != nil {
		return 0, err
	}
	// Resolve the absolute offset before consulting the injector so
	// the recorded op carries it; under O_APPEND the offset is the
	// current end of file.
	off := f.writeOffset()
	op := Op{Kind: OpWrite, Name: f.name, Data: append([]byte(nil), p...), Off: off}
	keep, injErr := f.fs.consult(op)
	if injErr != nil {
		if keep < 0 {
			keep = 0
		}
		if keep > len(p) {
			keep = len(p)
		}
		op.Data = op.Data[:keep]
	}
	n := f.fs.applyWrite(op)
	f.advance(op.Off + int64(n))
	if injErr != nil {
		return n, injErr
	}
	return n, nil
}

// writeOffset resolves where the next write lands.
func (f *memFile) writeOffset() int64 {
	if f.append {
		f.fs.mu.Lock()
		defer f.fs.mu.Unlock()
		return int64(len(f.fs.files[f.name]))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.off
}

// advance moves the handle offset after a write.
func (f *memFile) advance(to int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.off = to
}

// applyWrite records and applies one (possibly torn) write, returning
// the byte count applied.
func (fs *MemFS) applyWrite(op Op) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return 0
	}
	fs.record(op)
	fs.files[op.Name] = spliceAt(fs.files[op.Name], op.Off, op.Data)
	return len(op.Data)
}

// spliceAt writes data into buf at off, zero-filling any gap.
func spliceAt(buf []byte, off int64, data []byte) []byte {
	end := off + int64(len(data))
	for int64(len(buf)) < end {
		buf = append(buf, 0)
	}
	copy(buf[off:end], data)
	return buf
}

func (f *memFile) Read(p []byte) (int, error) {
	if err := f.errIfUnusable(); err != nil {
		return 0, err
	}
	f.fs.mu.Lock()
	data := f.fs.files[f.name]
	f.fs.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) Sync() error {
	if err := f.errIfUnusable(); err != nil {
		return err
	}
	op := Op{Kind: OpSync, Name: f.name}
	if _, err := f.fs.consult(op); err != nil {
		return err
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return ErrCrashed
	}
	f.fs.record(op)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	if err := f.errIfUnusable(); err != nil {
		return err
	}
	op := Op{Kind: OpTruncate, Name: f.name, Size: size}
	if _, err := f.fs.consult(op); err != nil {
		return err
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return ErrCrashed
	}
	f.fs.record(op)
	data := f.fs.files[f.name]
	if size < int64(len(data)) {
		f.fs.files[f.name] = data[:size]
	}
	return nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.errIfUnusable(); err != nil {
		return 0, err
	}
	f.fs.mu.Lock()
	size := int64(len(f.fs.files[f.name]))
	f.fs.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = size + offset
	default:
		return 0, fmt.Errorf("fault: bad whence %d", whence)
	}
	if f.off < 0 {
		f.off = 0
	}
	return f.off, nil
}

func (f *memFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}

// --- crash-point replay ---

// CrashPoint identifies one simulated crash instant in an op log: the
// first OpIdx ops applied in full, plus — when ops[OpIdx] is a write —
// its first ByteOff bytes. OpIdx == len(ops) is "no crash".
type CrashPoint struct {
	OpIdx   int
	ByteOff int
}

// CrashPoints enumerates every distinct disk state a crash could
// leave behind: a point before each operation, every torn prefix of
// every write, and the final complete state.
func CrashPoints(ops []Op) []CrashPoint {
	var pts []CrashPoint
	for i, op := range ops {
		pts = append(pts, CrashPoint{OpIdx: i})
		if op.Kind == OpWrite {
			for b := 1; b < len(op.Data); b++ {
				pts = append(pts, CrashPoint{OpIdx: i, ByteOff: b})
			}
		}
	}
	pts = append(pts, CrashPoint{OpIdx: len(ops)})
	return pts
}

// BuildFS reconstructs the filesystem as of a crash point: ops before
// pt.OpIdx are applied in full; when ops[pt.OpIdx] is a write, its
// first pt.ByteOff bytes are applied (the torn tail a crash mid-write
// leaves). The result records a fresh op log of its own.
func BuildFS(ops []Op, pt CrashPoint) *MemFS {
	fs := NewMemFS()
	n := pt.OpIdx
	if n > len(ops) {
		n = len(ops)
	}
	for i := 0; i < n; i++ {
		fs.replayOp(ops[i], -1)
	}
	if n < len(ops) && ops[n].Kind == OpWrite && pt.ByteOff > 0 {
		fs.replayOp(ops[n], pt.ByteOff)
	}
	fs.ops = nil
	return fs
}

// replayOp applies one recorded op directly, bypassing injection and
// crash state. limit >= 0 truncates a write's data (torn write).
func (fs *MemFS) replayOp(op Op, limit int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch op.Kind {
	case OpCreate:
		fs.files[op.Name] = nil
	case OpWrite:
		data := op.Data
		if limit >= 0 && limit < len(data) {
			data = data[:limit]
		}
		fs.files[op.Name] = spliceAt(fs.files[op.Name], op.Off, data)
	case OpSync:
		// Durability bookkeeping lives in the op log, not the state.
	case OpTruncate:
		if data := fs.files[op.Name]; op.Size < int64(len(data)) {
			fs.files[op.Name] = data[:op.Size]
		}
	case OpRename:
		if data, ok := fs.files[op.Name]; ok {
			delete(fs.files, op.Name)
			fs.files[op.To] = data
		}
	case OpRemove:
		delete(fs.files, op.Name)
	}
}
