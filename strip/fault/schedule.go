package fault

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
)

// ScheduleConfig parameterizes a seeded fault schedule for the
// filesystem surface. Probabilities are per matching operation, in
// [0, 1]; WriteErr and ShortWrite apply to writes, SyncErr to syncs.
type ScheduleConfig struct {
	// Seed fixes the schedule; the same seed over the same operation
	// sequence injects exactly the same faults.
	Seed uint64
	// Match, when non-empty, restricts injection to operations whose
	// file name contains it.
	Match string
	// WriteErr is the probability a write fails entirely.
	WriteErr float64
	// ShortWrite is the probability a write is torn: a strict prefix
	// is applied, then an error returned.
	ShortWrite float64
	// SyncErr is the probability a Sync fails.
	SyncErr float64
}

// Schedule is a deterministic, seeded source of injection decisions.
// It consumes exactly one uniform draw per matching operation (plus
// one for the cut point of a torn write), so the decision sequence is
// a pure function of the seed and the operation sequence. Every
// decision that injects a fault is logged; Log lets a determinism
// test assert two same-seed runs agree.
type Schedule struct {
	cfg ScheduleConfig

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu
	log []string   // guarded by mu
}

// NewSchedule returns a schedule for the given configuration.
func NewSchedule(cfg ScheduleConfig) *Schedule {
	return &Schedule{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x6a09e667f3bcc909)),
	}
}

// Injector returns the schedule as a MemFS injector.
func (s *Schedule) Injector() Injector { return s.decide }

// Log returns the injected-fault decisions so far, in order.
func (s *Schedule) Log() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.log...)
}

// decide is the Injector implementation.
func (s *Schedule) decide(op Op) (int, error) {
	if s.cfg.Match != "" && !strings.Contains(op.Name, s.cfg.Match) {
		return 0, nil
	}
	switch op.Kind {
	case OpWrite:
		return s.decideWrite(op)
	case OpSync:
		return 0, s.decideSync(op)
	default:
		return 0, nil
	}
}

func (s *Schedule) decideWrite(op Op) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u := s.rng.Float64()
	switch {
	case u < s.cfg.WriteErr:
		s.log = append(s.log, fmt.Sprintf("write-err %s", op.Name))
		return 0, fmt.Errorf("%w: write %s", ErrInjected, op.Name)
	case u < s.cfg.WriteErr+s.cfg.ShortWrite && len(op.Data) > 1:
		keep := int(s.rng.Uint64() % uint64(len(op.Data)))
		s.log = append(s.log, fmt.Sprintf("short-write %s keep=%d", op.Name, keep))
		return keep, fmt.Errorf("%w: short write %s", ErrInjected, op.Name)
	default:
		return 0, nil
	}
}

func (s *Schedule) decideSync(op Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rng.Float64() < s.cfg.SyncErr {
		s.log = append(s.log, fmt.Sprintf("sync-err %s", op.Name))
		return fmt.Errorf("%w: sync %s", ErrInjected, op.Name)
	}
	return nil
}
