package fault

import (
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestSeededWindowsDeterministic(t *testing.T) {
	a := SeededWindows(42, 5, time.Second, 10*time.Millisecond, 50*time.Millisecond)
	b := SeededWindows(42, 5, time.Second, 10*time.Millisecond, 50*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("got %d windows, want 5", len(a))
	}
	for i, w := range a {
		if w.Start < 0 || w.Start >= time.Second {
			t.Errorf("window %d starts at %v, outside [0, 1s)", i, w.Start)
		}
		if d := w.End - w.Start; d < 10*time.Millisecond || d >= 50*time.Millisecond {
			t.Errorf("window %d lasts %v, outside [10ms, 50ms)", i, d)
		}
	}
	c := SeededWindows(43, 5, time.Second, 10*time.Millisecond, 50*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules")
	}
	if SeededWindows(1, 0, time.Second, 0, 0) != nil {
		t.Fatalf("zero windows should be nil")
	}
}

// fakeClock is a mutable time source shared with a Partition.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) get() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestPartitionSchedule(t *testing.T) {
	clk := &fakeClock{now: time.Unix(100, 0)}
	p := NewPartition(clk.get,
		Window{Start: 10 * time.Millisecond, End: 20 * time.Millisecond},
		Window{Start: 40 * time.Millisecond, End: 50 * time.Millisecond},
	)
	if p.Active() {
		t.Fatalf("active before first window")
	}
	clk.advance(15 * time.Millisecond)
	if !p.Active() {
		t.Fatalf("not active inside first window")
	}
	clk.advance(10 * time.Millisecond) // 25ms: between windows
	if p.Active() {
		t.Fatalf("active between windows")
	}
	if want := time.Unix(100, 0).Add(50 * time.Millisecond); !p.HealedBy().Equal(want) {
		t.Fatalf("HealedBy = %v, want %v", p.HealedBy(), want)
	}
}

func TestPartitionSeversDialAndConn(t *testing.T) {
	clk := &fakeClock{now: time.Unix(100, 0)}
	p := NewPartition(clk.get, Window{Start: 10 * time.Millisecond, End: 20 * time.Millisecond})
	var faults []string
	p.OnFault = func(op string) { faults = append(faults, op) }

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 16)
				for {
					n, err := c.Read(buf)
					if err != nil {
						c.Close()
						return
					}
					c.Write(buf[:n])
				}
			}()
		}
	}()

	dial := p.Dial(func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) })
	conn, err := dial()
	if err != nil {
		t.Fatalf("dial before window: %v", err)
	}
	if _, err := conn.Write([]byte("hi")); err != nil {
		t.Fatalf("write before window: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read before window: %v", err)
	}

	clk.advance(15 * time.Millisecond) // inside the window
	if _, err := conn.Write([]byte("hi")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write inside window: %v, want ErrInjected", err)
	}
	if _, err := dial(); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial inside window: %v, want ErrInjected", err)
	}

	clk.advance(10 * time.Millisecond) // healed
	conn2, err := dial()
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	conn2.Close()
	if len(faults) != 2 || faults[0] != "write" || faults[1] != "dial" {
		t.Fatalf("OnFault saw %v, want [write dial]", faults)
	}
}
