// Package fault is a deterministic fault injector for the strip
// durability and replication paths. It has two surfaces:
//
//   - A small filesystem abstraction (FS / File) that strip's WAL and
//     checkpoint code is written against. OS passes straight through
//     to the os package; MemFS is a deterministic in-memory
//     implementation that records every mutating operation so a crash
//     can be simulated at any byte of any write ("stop persisting at
//     byte N, then reopen") and that injects scripted or seeded
//     faults: write errors, short (torn) writes, failed Sync.
//
//   - A net.Conn wrapper (WrapConn) that injects seeded latency,
//     partial writes, mid-stream resets and bit flips into a
//     replication link, driving the RESUME/snapshot/backoff paths.
//
// Everything is deterministic under a seed: a Schedule is a pure
// function of (seed, operation sequence), so a chaos run is exactly
// reproducible — rerun with the same seed and the same faults fire at
// the same points. The package deliberately imports nothing from
// strip, so strip can depend on it.
package fault

import (
	"errors"
	"io"
	"os"
	"sort"
)

// FS is the filesystem surface the strip durability code uses. The
// method set mirrors the os package calls the WAL and checkpoint
// paths need — nothing more.
type FS interface {
	// OpenFile opens a file with the given flags (os.O_*).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// Create truncates or creates a file for writing.
	Create(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file. Removing a missing file is an error
	// (os.ErrNotExist), as with os.Remove.
	Remove(name string) error
	// ReadDir lists the file names in a directory, sorted.
	ReadDir(dir string) ([]string, error)
}

// File is one open file.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes previously written data durable across a crash.
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Seek repositions the read/write offset.
	Seek(offset int64, whence int) (int64, error)
}

// ErrInjected is the default error returned by injected faults.
// Errors produced by the injector wrap it, so callers can test
// errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected error")

// ErrCrashed is returned by every operation on a MemFS after Crash:
// the simulated machine is down until the harness rebuilds the disk
// state and reopens.
var ErrCrashed = errors.New("fault: filesystem crashed")

// OS is the passthrough FS used in production: every call goes
// straight to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}
