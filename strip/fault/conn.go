package fault

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnChaos parameterizes a chaotic connection wrapper. Probabilities
// are per operation (one Read or Write call) in [0, 1]; they are
// evaluated in the order Reset, Partial, Flip with one uniform draw,
// so Reset+Partial+Flip should not exceed 1.
type ConnChaos struct {
	// Seed fixes the chaos; the read and write directions each get
	// their own generator derived from it, so a direction's fault
	// sequence depends only on the seed and that direction's call
	// sequence.
	Seed uint64
	// Reset closes the connection and fails the operation — a
	// mid-stream connection reset.
	Reset float64
	// Partial applies to writes only: a strict prefix of the buffer
	// is written, then the connection is reset.
	Partial float64
	// Flip applies to writes only: one random bit of the buffer is
	// inverted before the full write — corruption in flight that the
	// frame CRC must catch.
	Flip float64
	// MaxDelay, when positive, sleeps a uniform duration in
	// [0, MaxDelay) before each operation — injected latency.
	MaxDelay time.Duration
	// OnFault, when set, observes every injected fault (for the
	// seed-determinism tests). side is "read" or "write".
	OnFault func(side, kind string, arg int)
	// Gate, when set, is consulted before injection on each operation;
	// returning false passes the operation through untouched and
	// consumes no randomness, so a schedule can scope chaos to timed
	// windows without perturbing the fault sequence inside them.
	Gate func() bool
}

// ChaosConn wraps a net.Conn with seeded fault injection. Disable
// turns the wrapper into a passthrough (used by tests to let a
// tortured link settle and converge).
type ChaosConn struct {
	net.Conn
	cfg      ConnChaos
	disabled atomic.Bool

	wmu  sync.Mutex
	wrng *rand.Rand // guarded by wmu
	rmu  sync.Mutex
	rrng *rand.Rand // guarded by rmu
}

// WrapConn wraps c in seeded chaos.
func WrapConn(c net.Conn, cfg ConnChaos) *ChaosConn {
	return &ChaosConn{
		Conn: c,
		cfg:  cfg,
		wrng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xbb67ae8584caa73b)),
		rrng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x3c6ef372fe94f82b)),
	}
}

// Disable turns off all further injection; in-flight faults stand.
func (c *ChaosConn) Disable() { c.disabled.Store(true) }

// fault reports one injected fault to the observer.
func (c *ChaosConn) fault(side, kind string, arg int) {
	if c.cfg.OnFault != nil {
		c.cfg.OnFault(side, kind, arg)
	}
}

// writeDraws consumes the write-direction randomness for one call:
// a delay, the fault selector, and an auxiliary draw for the fault's
// position. Drawing a fixed number of values per call keeps the
// sequence aligned across runs.
func (c *ChaosConn) writeDraws() (delay time.Duration, u float64, aux uint64) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.cfg.MaxDelay > 0 {
		delay = time.Duration(c.wrng.Uint64() % uint64(c.cfg.MaxDelay))
	}
	return delay, c.wrng.Float64(), c.wrng.Uint64()
}

// readDraws consumes the read-direction randomness for one call.
func (c *ChaosConn) readDraws() (delay time.Duration, u float64) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.cfg.MaxDelay > 0 {
		delay = time.Duration(c.rrng.Uint64() % uint64(c.cfg.MaxDelay))
	}
	return delay, c.rrng.Float64()
}

func (c *ChaosConn) Write(p []byte) (int, error) {
	if c.disabled.Load() || (c.cfg.Gate != nil && !c.cfg.Gate()) {
		return c.Conn.Write(p)
	}
	delay, u, aux := c.writeDraws()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch {
	case u < c.cfg.Reset:
		c.fault("write", "reset", 0)
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection reset before write", ErrInjected)
	case u < c.cfg.Reset+c.cfg.Partial && len(p) > 1:
		keep := int(aux % uint64(len(p)))
		c.fault("write", "partial", keep)
		n, _ := c.Conn.Write(p[:keep])
		c.Conn.Close()
		return n, fmt.Errorf("%w: connection reset mid-write after %d bytes", ErrInjected, n)
	case u < c.cfg.Reset+c.cfg.Partial+c.cfg.Flip && len(p) > 0:
		bit := int(aux % uint64(len(p)*8))
		c.fault("write", "flip", bit)
		corrupted := append([]byte(nil), p...)
		corrupted[bit/8] ^= 1 << (bit % 8)
		return c.Conn.Write(corrupted)
	default:
		return c.Conn.Write(p)
	}
}

func (c *ChaosConn) Read(p []byte) (int, error) {
	if c.disabled.Load() || (c.cfg.Gate != nil && !c.cfg.Gate()) {
		return c.Conn.Read(p)
	}
	delay, u := c.readDraws()
	if delay > 0 {
		time.Sleep(delay)
	}
	if u < c.cfg.Reset {
		c.fault("read", "reset", 0)
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection reset before read", ErrInjected)
	}
	return c.Conn.Read(p)
}
