package fault

import (
	"fmt"
	"math/rand/v2"
	"net"
	"time"
)

// Window is one network-partition interval, expressed relative to the
// owning Partition's start time. The window is half-open: blackholed
// for Start <= elapsed < End, healed at End.
type Window struct {
	Start, End time.Duration
}

// SeededWindows derives n deterministic blackhole windows from seed:
// each window starts uniformly inside [0, within) and lasts uniformly
// in [minDur, maxDur). Windows are returned in draw order and may
// overlap — a link is partitioned while inside any of them. The same
// seed always yields the same schedule, so a torture run's partition
// script is reproducible from its seed alone.
func SeededWindows(seed uint64, n int, within, minDur, maxDur time.Duration) []Window {
	if n <= 0 || within <= 0 {
		return nil
	}
	if minDur < 0 {
		minDur = 0
	}
	if maxDur < minDur {
		maxDur = minDur
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9b05688c2b3e6c1f))
	out := make([]Window, 0, n)
	for i := 0; i < n; i++ {
		start := time.Duration(rng.Uint64() % uint64(within))
		dur := minDur
		if maxDur > minDur {
			dur += time.Duration(rng.Uint64() % uint64(maxDur-minDur))
		}
		out = append(out, Window{Start: start, End: start + dur})
	}
	return out
}

// Partition is a declarative full-blackhole schedule for network
// links: while the clock is inside any window, every operation on a
// gated connection and every gated dial fails with ErrInjected; when
// the last window ends the link heals by itself — no per-test heal
// goroutines. One Partition can gate any number of links (they share
// the schedule), and tests script asymmetric partitions by giving
// different links different Partitions.
//
// The gate is evaluated per operation: a Read already blocked inside
// the kernel when a window opens is not interrupted (the peer's
// failing writes break the link promptly in practice). Election and
// replication transports exchange short frames under deadlines, so a
// window reliably severs them.
type Partition struct {
	clock   func() time.Time
	start   time.Time
	windows []Window
	// OnFault, when set, observes every blackholed operation: op is
	// "dial", "read" or "write".
	OnFault func(op string)
}

// NewPartition builds a schedule anchored at clock() now. A nil clock
// means time.Now.
func NewPartition(clock func() time.Time, windows ...Window) *Partition {
	if clock == nil {
		clock = time.Now
	}
	return &Partition{clock: clock, start: clock(), windows: windows}
}

// Active reports whether the schedule is inside a blackhole window.
func (p *Partition) Active() bool {
	elapsed := p.clock().Sub(p.start)
	for _, w := range p.windows {
		if elapsed >= w.Start && elapsed < w.End {
			return true
		}
	}
	return false
}

// HealedBy returns the instant every window has ended — when the link
// is guaranteed healed (tests wait for it before asserting
// convergence).
func (p *Partition) HealedBy() time.Time {
	var last time.Duration
	for _, w := range p.windows {
		if w.End > last {
			last = w.End
		}
	}
	return p.start.Add(last)
}

// fault reports one blackholed operation.
func (p *Partition) fault(op string) {
	if p.OnFault != nil {
		p.OnFault(op)
	}
}

// Dial gates a dial function: during a window it fails immediately
// with ErrInjected (an unreachable network), outside one it dials and
// gates the resulting connection, so a window opening mid-session
// severs established links too.
func (p *Partition) Dial(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		if p.Active() {
			p.fault("dial")
			return nil, fmt.Errorf("%w: partitioned", ErrInjected)
		}
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return p.Wrap(conn), nil
	}
}

// Wrap gates one established connection with the schedule.
func (p *Partition) Wrap(c net.Conn) net.Conn {
	return &partitionConn{Conn: c, p: p}
}

// partitionConn fails every operation that lands inside a window.
// The underlying connection is closed on the first blackholed
// operation: a partitioned TCP session never resumes transparently,
// and closing unblocks the peer instead of leaving it half-open.
type partitionConn struct {
	net.Conn
	p *Partition
}

func (c *partitionConn) Read(b []byte) (int, error) {
	if c.p.Active() {
		c.p.fault("read")
		c.Conn.Close()
		return 0, fmt.Errorf("%w: partitioned during read", ErrInjected)
	}
	return c.Conn.Read(b)
}

func (c *partitionConn) Write(b []byte) (int, error) {
	if c.p.Active() {
		c.p.fault("write")
		c.Conn.Close()
		return 0, fmt.Errorf("%w: partitioned during write", ErrInjected)
	}
	return c.Conn.Write(b)
}
