package fault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
)

func TestMemFSBasics(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("dir/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := fs.ReadFile("dir/a")
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}

	// Sequential reads through a handle.
	r, err := fs.Open("dir/a")
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(r)
	if err != nil || string(all) != "hello world" {
		t.Fatalf("ReadAll = %q, %v", all, err)
	}

	if err := fs.Rename("dir/a", "dir/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("dir/a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old name survives rename: %v", err)
	}
	names, err := fs.ReadDir("dir")
	if err != nil || len(names) != 1 || names[0] != "b" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := fs.Remove("dir/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("dir/b"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestMemFSAppendAndTruncate(t *testing.T) {
	fs := NewMemFS()
	if err := fs.WriteFile("w", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile("w", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("def")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("w"); string(got) != "abcdef" {
		t.Fatalf("append result %q", got)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("w"); string(got) != "ab" {
		t.Fatalf("truncate result %q", got)
	}
	// Appends after a truncation land at the new end.
	if _, err := f.Write([]byte("Z")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("w"); string(got) != "abZ" {
		t.Fatalf("append after truncate %q", got)
	}
	f.Close()
}

func TestMemFSInjectedShortWrite(t *testing.T) {
	fs := NewMemFS()
	calls := 0
	fs.SetInjector(func(op Op) (int, error) {
		if op.Kind != OpWrite {
			return 0, nil
		}
		calls++
		if calls == 2 {
			return 3, ErrInjected // tear the second write after 3 bytes
		}
		return 0, nil
	})
	f, _ := fs.Create("f")
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := f.Write([]byte("second"))
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("torn write = %d, %v", n, err)
	}
	if got, _ := fs.ReadFile("f"); string(got) != "firstsec" {
		t.Fatalf("file after torn write %q", got)
	}
}

func TestMemFSCrashFreezes(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("f")
	f.Write([]byte("data"))
	fs.Crash()
	if _, err := f.Write([]byte("late")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	if _, err := fs.Create("g"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("create after crash: %v", err)
	}
	// The op log is still readable for reconstruction.
	if got := len(fs.Ops()); got != 2 {
		t.Fatalf("ops after crash = %d, want 2", got)
	}
}

// TestCrashPointReplay drives a small scripted workload and checks
// that rebuilding the filesystem at every crash point yields exactly
// the prefix states the op sequence implies.
func TestCrashPointReplay(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("wal")
	f.Write([]byte("one\n"))
	f.Sync()
	f.Write([]byte("two\n"))
	f.Close()
	fs.Create("snap.tmp")
	// Reuse the handle-free path for brevity.
	g, _ := fs.OpenFile("snap.tmp", os.O_WRONLY|os.O_APPEND, 0o644)
	g.Write([]byte("snapdata"))
	g.Sync()
	g.Close()
	fs.Rename("snap.tmp", "snap")

	ops := fs.Ops()
	pts := CrashPoints(ops)
	// create + 4B + sync + 4B + create + 8B + sync + rename:
	// 8 ops, 16 write bytes -> 8 + (16 - 3 writes... ) points:
	// each op contributes 1 point + (len-1) torn points per write.
	wantPts := 8 + 3 + 3 + 7 + 1
	if len(pts) != wantPts {
		t.Fatalf("crash points = %d, want %d", len(pts), wantPts)
	}

	// Crash mid-second-write: wal holds the synced prefix plus a torn
	// tail; the snapshot does not exist yet.
	mid := CrashPoint{OpIdx: 3, ByteOff: 2}
	rebuilt := BuildFS(ops, mid)
	if got, err := rebuilt.ReadFile("wal"); err != nil || string(got) != "one\ntw" {
		t.Fatalf("wal at torn point = %q, %v", got, err)
	}
	if _, err := rebuilt.ReadFile("snap"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snap exists before its rename: %v", err)
	}

	// Crash before the rename: the tmp file is there, the target not.
	preRename := CrashPoint{OpIdx: len(ops) - 1}
	rebuilt = BuildFS(ops, preRename)
	if got, _ := rebuilt.ReadFile("snap.tmp"); string(got) != "snapdata" {
		t.Fatalf("snap.tmp before rename = %q", got)
	}

	// The final point reproduces the live state.
	full := BuildFS(ops, CrashPoint{OpIdx: len(ops)})
	if got, _ := full.ReadFile("snap"); string(got) != "snapdata" {
		t.Fatalf("snap at final point = %q", got)
	}
	if got, _ := full.ReadFile("wal"); string(got) != "one\ntwo\n" {
		t.Fatalf("wal at final point = %q", got)
	}
}

// runSchedule drives a fixed op sequence through a schedule and
// returns the fault log.
func runSchedule(seed uint64) []string {
	s := NewSchedule(ScheduleConfig{
		Seed:       seed,
		WriteErr:   0.2,
		ShortWrite: 0.3,
		SyncErr:    0.25,
	})
	fs := NewMemFS()
	fs.SetInjector(s.Injector())
	f, _ := fs.Create("wal")
	for i := 0; i < 50; i++ {
		f.Write([]byte("set \"key\" 1.25\ncommit\n"))
		if i%5 == 0 {
			f.Sync()
		}
	}
	return s.Log()
}

// TestScheduleDeterminism is the acceptance check that fault
// schedules are seed-reproducible: the same seed injects the same
// faults at the same operations; a different seed diverges.
func TestScheduleDeterminism(t *testing.T) {
	a, b := runSchedule(42), runSchedule(42)
	if len(a) == 0 {
		t.Fatalf("schedule injected no faults; probabilities too low for the test")
	}
	if !equalStrings(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := runSchedule(43)
	if equalStrings(a, c) {
		t.Fatalf("different seeds produced identical %d-fault schedules", len(a))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMemFSOpenFileCreateMissing(t *testing.T) {
	fs := NewMemFS()
	if _, err := fs.OpenFile("nope", os.O_WRONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open missing without O_CREATE: %v", err)
	}
	f, err := fs.OpenFile("new", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	f.Close()
	// Reopening with O_CREATE must not truncate.
	g, err := fs.OpenFile("new", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	g.Write([]byte("y"))
	g.Close()
	if got, _ := fs.ReadFile("new"); string(got) != "xy" {
		t.Fatalf("reopen with O_CREATE truncated: %q", got)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/f"
	f, err := OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(path, dir+"/g"); err != nil {
		t.Fatal(err)
	}
	names, err := OS.ReadDir(dir)
	if err != nil || len(names) != 1 || names[0] != "g" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	r, err := OS.Open(dir + "/g")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, _ := io.ReadAll(r)
	if !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("read back %q", got)
	}
}
