package strip

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"
)

func TestParseUpdateLine(t *testing.T) {
	u, err := ParseUpdateLine("DEM/USD 1700000000000000000 1.6612")
	if err != nil {
		t.Fatal(err)
	}
	if u.Object != "DEM/USD" || u.Value != 1.6612 {
		t.Fatalf("parsed %+v", u)
	}
	if u.Generated.UnixNano() != 1700000000000000000 {
		t.Fatalf("generated = %v", u.Generated)
	}
}

func TestParseUpdateLineZeroTime(t *testing.T) {
	u, err := ParseUpdateLine("x 0 3.5")
	if err != nil {
		t.Fatal(err)
	}
	if !u.Generated.IsZero() {
		t.Fatalf("generated = %v, want zero (means now)", u.Generated)
	}
}

func TestParseUpdateLineErrors(t *testing.T) {
	for _, line := range []string{
		"", "one", "one two", "a b c d",
		"x notanumber 1.5", "x 0 notafloat",
	} {
		if _, err := ParseUpdateLine(line); err == nil {
			t.Errorf("ParseUpdateLine(%q) should fail", line)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	in := Update{Object: "IBM", Value: math.Pi, Generated: time.Unix(1700000001, 42)}
	out, err := ParseUpdateLine(FormatUpdateLine(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Object != in.Object || out.Value != in.Value ||
		!out.Generated.Equal(in.Generated) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestFormatZeroTime(t *testing.T) {
	line := FormatUpdateLine(Update{Object: "x", Value: 1})
	if !strings.Contains(line, " 0 ") {
		t.Fatalf("line = %q, want zero timestamp", line)
	}
}

func TestIngestChannel(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("x", Low)
	ch := make(chan Update)
	db.IngestChannel(ch)
	ch <- Update{Object: "x", Value: 9.25}
	close(ch)
	waitFor(t, time.Second, func() bool {
		e, _ := db.Peek("x")
		return e.Value == 9.25
	})
}

func TestServeTCPFeed(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("AAPL", High)
	db.DefineView("MSFT", High)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go db.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	now := time.Now()
	for _, u := range []Update{
		{Object: "AAPL", Value: 190.5, Generated: now},
		{Object: "MSFT", Value: 410.25, Generated: now},
		{Object: "UNKNOWN", Value: 1, Generated: now}, // silently skipped
	} {
		if err := WriteUpdate(conn, u); err != nil {
			t.Fatal(err)
		}
	}
	// A malformed line must not kill the stream.
	if _, err := conn.Write([]byte("garbage line here extra\n")); err != nil {
		t.Fatal(err)
	}
	if err := WriteUpdate(conn, Update{Object: "AAPL", Value: 191.0, Generated: now.Add(time.Millisecond)}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Second, func() bool {
		a, _ := db.Peek("AAPL")
		m, _ := db.Peek("MSFT")
		return a.Value == 191.0 && m.Value == 410.25
	})
}

func TestServeStopsOnClose(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- db.Serve(l) }()
	db.Close()
	select {
	case err := <-served:
		if err == nil {
			t.Fatal("Serve should return an error after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop after Close")
	}
}
