package strip

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/strip/fault"
)

// Crash-recovery torture testing: run a scripted workload against a
// recording in-memory filesystem, then simulate a crash at EVERY
// byte-level crash point of the recorded operation sequence, reopen
// the database from the reconstructed disk state, and assert the
// durability contract:
//
//   - the recovered general store equals the state after some prefix
//     of the committed batches (batch atomicity — never a torn batch,
//     never a mix of old and new values),
//   - every batch covered by a successful Sync, Checkpoint or Close
//     before the crash point is present (synced commit => durable),
//   - no batch that was not yet fully written is present (nothing
//     resurrects from truncated or torn log data),
//   - recovery itself never fails on a pure crash state.

// tortureBatches is the scripted workload length.
const tortureBatches = 30

// tortureScript runs the workload on a fresh MemFS-backed database
// and returns the op log, the per-batch op counts (ops recorded when
// batch i was fully written), the guarantee markers (opCount =>
// batches guaranteed durable), and the cumulative expected states
// (expected[c] = general store after c batches).
func tortureScript(t *testing.T) (fs *fault.MemFS, batchOps []int, markers [][2]int, expected []map[string]float64) {
	t.Helper()
	fs = fault.NewMemFS()
	db, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}

	expected = append(expected, map[string]float64{}) // zero batches
	state := map[string]float64{}
	for i := 0; i < tortureBatches; i++ {
		i := i
		res := db.Exec(TxnSpec{
			Deadline: time.Now().Add(5 * time.Second),
			Func: func(tx *Tx) error {
				// "k" makes every state distinguishable; the "b" keys
				// exercise multi-key batches and overwrites.
				tx.Set("k", float64(i))
				tx.Set(fmt.Sprintf("b%d", i%5), float64(i*10))
				return nil
			},
		})
		if !res.Committed() {
			t.Fatalf("batch %d failed: %+v", i, res)
		}
		batchOps = append(batchOps, fs.OpCount())
		state["k"] = float64(i)
		state[fmt.Sprintf("b%d", i%5)] = float64(i * 10)
		cp := make(map[string]float64, len(state))
		for k, v := range state {
			cp[k] = v
		}
		expected = append(expected, cp)

		if i%7 == 6 {
			if err := db.Sync(); err != nil {
				t.Fatalf("sync after batch %d: %v", i, err)
			}
			markers = append(markers, [2]int{fs.OpCount(), i + 1})
		}
		if i%10 == 9 {
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after batch %d: %v", i, err)
			}
			markers = append(markers, [2]int{fs.OpCount(), i + 1})
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	markers = append(markers, [2]int{fs.OpCount(), tortureBatches})
	return fs, batchOps, markers, expected
}

// recoveredState opens a database on the reconstructed filesystem and
// returns its general store.
func recoveredState(rfs *fault.MemFS) (map[string]float64, error) {
	db, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: rfs})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	snap := db.ReplicaSnapshot()
	out := make(map[string]float64, len(snap.General))
	for _, kv := range snap.General {
		out[kv.Key] = kv.Value
	}
	return out, nil
}

// stateCount maps a recovered state back to its batch count via "k".
func stateCount(state map[string]float64) int {
	k, ok := state["k"]
	if !ok {
		return 0
	}
	return int(k) + 1
}

func equalStates(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// TestTortureCrashEveryByte is the crash-point torture harness: one
// crash/reopen cycle per enumerated crash point of the scripted
// workload (well over the 200-cycle floor), zero tolerated contract
// violations.
func TestTortureCrashEveryByte(t *testing.T) {
	fs, batchOps, markers, expected := tortureScript(t)
	ops := fs.Ops()
	pts := fault.CrashPoints(ops)
	if len(pts) < 200 {
		t.Fatalf("only %d crash points enumerated; torture floor is 200", len(pts))
	}

	violations := 0
	for _, pt := range pts {
		// Durable floor: batches covered by a guarantee marker at or
		// before this point must survive.
		must := 0
		for _, m := range markers {
			if m[0] <= pt.OpIdx && m[1] > must {
				must = m[1]
			}
		}
		// Ceiling: batches fully written to the op log before this
		// point. Anything beyond was never completely persisted.
		max := 0
		for i, n := range batchOps {
			if n <= pt.OpIdx {
				max = i + 1
			}
		}

		state, err := recoveredState(fault.BuildFS(ops, pt))
		if err != nil {
			t.Errorf("crash point %+v: recovery failed: %v", pt, err)
			violations++
			continue
		}
		c := stateCount(state)
		if c < must || c > max {
			t.Errorf("crash point %+v: recovered %d batches, contract window [%d, %d]", pt, c, must, max)
			violations++
			continue
		}
		if !equalStates(state, expected[c]) {
			t.Errorf("crash point %+v: state is not S_%d: got %v want %v", pt, c, state, expected[c])
			violations++
		}
		if violations > 10 {
			t.Fatalf("stopping after %d violations", violations)
		}
	}
	t.Logf("%d crash/reopen cycles, %d violations", len(pts), violations)
}

// TestTortureSeededFaultDeterminism runs the same seeded fault
// schedule against the same workload twice and asserts both the
// injected-fault log and the surviving disk bytes are identical: a
// chaos run is exactly reproducible from its seed.
func TestTortureSeededFaultDeterminism(t *testing.T) {
	const seed = 99
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("schedule seed was %d; scenario repro of this class: go run ./cmd/stripsim -scenario scenarios/degraded-wal.yaml -seed %d", seed, seed)
		}
	})
	run := func() ([]string, map[string]string) {
		fs := fault.NewMemFS()
		sched := fault.NewSchedule(fault.ScheduleConfig{
			Seed:       seed,
			Match:      "wal",
			WriteErr:   0.08,
			ShortWrite: 0.08,
			SyncErr:    0.1,
		})
		fs.SetInjector(sched.Injector())
		db, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			i := i
			db.Exec(TxnSpec{
				Deadline: time.Now().Add(5 * time.Second),
				Func:     func(tx *Tx) error { tx.Set("k", float64(i)); return nil },
			})
			if i%9 == 8 {
				db.Checkpoint() // may fail under injection; decisions still burn draws deterministically
			}
		}
		db.Close()
		files := map[string]string{}
		names, _ := fs.ReadDir(".")
		for _, name := range names {
			data, err := fs.ReadFile(name)
			if err != nil {
				t.Fatalf("reading %s: %v", name, err)
			}
			files[name] = string(data)
		}
		return sched.Log(), files
	}

	logA, filesA := run()
	logB, filesB := run()
	if len(logA) == 0 {
		t.Fatal("schedule injected no faults; raise the probabilities")
	}
	if strings.Join(logA, "\n") != strings.Join(logB, "\n") {
		t.Fatalf("same seed, different fault logs:\n%v\n--\n%v", logA, logB)
	}
	if len(filesA) != len(filesB) {
		t.Fatalf("same seed, different file sets: %d vs %d", len(filesA), len(filesB))
	}
	for name, a := range filesA {
		if b, ok := filesB[name]; !ok || a != b {
			t.Fatalf("same seed, file %s diverged", name)
		}
	}
}

// TestCheckpointKeepsConcurrentCommit is the regression for the
// lost-write window of the old truncate-style checkpoint: a commit
// landing while the snapshot file is being written must survive both
// a normal reopen and a crash at every later point. The commit is
// driven from inside the filesystem injector, which fires mid-
// snapshot-write on the checkpointer's goroutine with no locks held.
func TestCheckpointKeepsConcurrentCommit(t *testing.T) {
	fs := fault.NewMemFS()
	db, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	setKey(t, db, "before", 1)

	var once sync.Once
	fs.SetInjector(func(op fault.Op) (int, error) {
		if op.Kind == fault.OpWrite && strings.Contains(op.Name, ".snap.tmp") {
			once.Do(func() {
				// The snapshot is mid-write; this commit must land in
				// the fresh WAL segment the snapshot does not cover.
				setKey(t, db, "during", 42)
			})
		}
		return 0, nil
	})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fs.SetInjector(nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Normal reopen.
	state, err := recoveredState(fs)
	if err != nil {
		t.Fatal(err)
	}
	if state["before"] != 1 || state["during"] != 42 {
		t.Fatalf("mid-checkpoint commit lost: %v", state)
	}

	// Crash at every point from the checkpoint onward: "during" may be
	// absent before its batch persists, but must never half-apply, and
	// must be present from its write on. Find its write op first.
	ops := fs.Ops()
	durIdx := -1
	for i, op := range ops {
		if op.Kind == fault.OpWrite && strings.Contains(string(op.Data), `"during"`) {
			durIdx = i
		}
	}
	if durIdx < 0 {
		t.Fatal("no WAL write for the mid-checkpoint commit found")
	}
	for _, pt := range fault.CrashPoints(ops) {
		state, err := recoveredState(fault.BuildFS(ops, pt))
		if err != nil {
			t.Fatalf("crash point %+v: %v", pt, err)
		}
		if pt.OpIdx > durIdx && state["during"] != 42 {
			t.Fatalf("crash point %+v: fully-written mid-checkpoint commit lost: %v", pt, state)
		}
	}
}

// TestReplayRejectsMidLogCorruption is the regression for replayWAL's
// old behaviour of silently treating ANY parse error as a torn tail:
// corruption followed by later intact records must surface as a typed
// error naming the file, line and offset, and must not silently drop
// the tail.
func TestReplayRejectsMidLogCorruption(t *testing.T) {
	fs := fault.NewMemFS()
	if err := fs.WriteFile("wal",
		[]byte("wal 1\nset \"a\" 1\ncommit\nGARBAGE RECORD\nset \"b\" 2\ncommit\n")); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: fs})
	if err == nil {
		t.Fatal("mid-log corruption silently accepted")
	}
	var ce *WALCorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *WALCorruptError: %v", err)
	}
	if ce.File != "wal" || ce.Line != 4 {
		t.Fatalf("corruption located at %s:%d, want wal:4 (%v)", ce.File, ce.Line, err)
	}
	if ce.Offset != int64(len("wal 1\nset \"a\" 1\ncommit\n")) {
		t.Fatalf("corruption offset %d: %v", ce.Offset, err)
	}
}

// TestReplayToleratesTornTail: the same garbage as the final record is
// a crash artifact and recovery proceeds with the intact prefix.
func TestReplayToleratesTornTail(t *testing.T) {
	fs := fault.NewMemFS()
	if err := fs.WriteFile("wal",
		[]byte("wal 1\nset \"a\" 1\ncommit\nset \"b\" 2\nGARB")); err != nil {
		t.Fatal(err)
	}
	state, err := recoveredState(fs)
	if err != nil {
		t.Fatal(err)
	}
	if state["a"] != 1 {
		t.Fatalf("intact prefix lost: %v", state)
	}
	if _, ok := state["b"]; ok {
		t.Fatalf("torn batch applied: %v", state)
	}
}

// TestReplayDropsUnterminatedCommit: a final "commit" token without
// its newline is a torn append — the batch never committed and must
// not resurrect.
func TestReplayDropsUnterminatedCommit(t *testing.T) {
	fs := fault.NewMemFS()
	if err := fs.WriteFile("wal",
		[]byte("wal 1\nset \"a\" 1\ncommit\nset \"b\" 2\ncommit")); err != nil {
		t.Fatal(err)
	}
	state, err := recoveredState(fs)
	if err != nil {
		t.Fatal(err)
	}
	if state["a"] != 1 {
		t.Fatalf("intact prefix lost: %v", state)
	}
	if _, ok := state["b"]; ok {
		t.Fatalf("unterminated commit applied: %v", state)
	}
}

// TestDegradedModeFailFastAndHeal exercises the degraded-mode policy:
// on a persistent WAL failure, commits fail fast with ErrDurability
// and are not applied or replicated, view ingest and reads continue,
// and a successful Checkpoint heals.
func TestDegradedModeFailFastAndHeal(t *testing.T) {
	fs := fault.NewMemFS()
	var events []ReplEvent
	db, err := Open(Config{Policy: UpdatesFirst, WALPath: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetReplicationSink(func(ev ReplEvent) { events = append(events, ev) })
	if err := db.DefineView("px", High); err != nil {
		t.Fatal(err)
	}
	setKey(t, db, "good", 1)

	// Break the active WAL segment only (the snapshot must stay
	// writable so Checkpoint can heal).
	broken := true
	fs.SetInjector(func(op fault.Op) (int, error) {
		if broken && op.Kind == fault.OpWrite && op.Name == "wal" {
			return 0, fault.ErrInjected
		}
		return 0, nil
	})

	failedSet := func(key string) Result {
		return db.Exec(TxnSpec{
			Deadline: time.Now().Add(5 * time.Second),
			Func:     func(tx *Tx) error { tx.Set(key, 9); return nil },
		})
	}
	res := failedSet("lost")
	if res.State != Failed || !errors.Is(res.Err, ErrDurability) {
		t.Fatalf("commit under WAL failure: %+v", res)
	}
	// The failed batch is not applied, not replicated.
	if _, ok := getKey(t, db, "lost"); ok {
		t.Fatal("failed batch applied to memory")
	}
	for _, ev := range events {
		if ev.Kind == ReplBatch {
			for _, kv := range ev.Writes {
				if kv.Key == "lost" {
					t.Fatal("failed batch published to replication sink")
				}
			}
		}
	}
	// Fail-fast: the second commit errors without touching the WAL.
	errsBefore := db.Stats().WALErrors
	res = failedSet("lost2")
	if !errors.Is(res.Err, ErrDurability) {
		t.Fatalf("degraded commit did not fail fast: %+v", res)
	}
	if s := db.Stats(); s.WALErrors != errsBefore {
		t.Fatalf("fail-fast path hit the WAL: %d -> %d errors", errsBefore, s.WALErrors)
	}
	if err := db.Sync(); !errors.Is(err, ErrDurability) {
		t.Fatalf("Sync while degraded: %v", err)
	}
	s := db.Stats()
	if !s.Degraded || s.WALErrors == 0 || s.TxnsFailedDurability != 2 {
		t.Fatalf("degraded stats: %+v", s)
	}

	// View ingest and reads continue while degraded.
	if err := db.ApplyUpdate(Update{Object: "px", Value: 7.5, Generated: time.Now()}); err != nil {
		t.Fatal(err)
	}
	waitForValue(t, db, "px", 7.5)
	if v, ok := getKey(t, db, "good"); !ok || v != 1 {
		t.Fatalf("reads broken while degraded: %v %v", v, ok)
	}

	// Checkpoint heals: it rotates to a fresh segment and snapshots.
	broken = false
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("healing checkpoint: %v", err)
	}
	s = db.Stats()
	if s.Degraded || s.DegradedHeals != 1 {
		t.Fatalf("not healed: %+v", s)
	}
	setKey(t, db, "after", 2)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}

	// The healed log recovers cleanly: the failed batches are gone,
	// the pre-failure and post-heal commits are present.
	ops := fs.Ops()
	state, err := recoveredState(fault.BuildFS(ops, fault.CrashPoint{OpIdx: len(ops)}))
	if err != nil {
		t.Fatal(err)
	}
	if state["good"] != 1 || state["after"] != 2 {
		t.Fatalf("healed state lost commits: %v", state)
	}
	if _, ok := state["lost"]; ok {
		t.Fatalf("failed batch resurrected: %v", state)
	}
}

// waitForValue polls Peek until the view holds the value.
func waitForValue(t *testing.T, db *DB, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e, err := db.Peek(name); err == nil && e.Value == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("view %s never reached %v", name, want)
}

// TestTornTailSurvivesReopenCommitReopen is the regression for
// recovery tolerating a torn active-segment tail but leaving its
// bytes in place: the writer reopened with O_APPEND, new commits
// landed after the torn bytes, and the NEXT Open refused the log as
// mid-log damage — a single crash plus continued operation bricked
// the database. Recovery must truncate the torn tail so the
// crash/reopen/commit/reopen cycle converges.
func TestTornTailSurvivesReopenCommitReopen(t *testing.T) {
	fs := fault.NewMemFS()
	db, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	setKey(t, db, "a", 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last 3 bytes off the active segment (a crash mid-append
	// of the "commit" line), as the disk after a real crash would look.
	data, err := fs.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	rfs := fault.NewMemFS()
	if err := rfs.WriteFile("wal", data[:len(data)-3]); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: rfs})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if _, ok := getKey(t, db2, "a"); ok {
		t.Fatal("torn batch resurrected on first reopen")
	}
	setKey(t, db2, "b", 2)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// The second reopen is the one the old code failed with a
	// *WALCorruptError: the new commit sat after the torn bytes.
	state, err := recoveredState(rfs)
	if err != nil {
		t.Fatalf("reopen after post-crash commit: %v", err)
	}
	if state["b"] != 2 {
		t.Fatalf("post-crash commit lost: %v", state)
	}
	if _, ok := state["a"]; ok {
		t.Fatalf("torn batch resurrected: %v", state)
	}
}

// TestUncommittedTailDoesNotMergeWithNextBatch: a cleanly-parsing set
// line without its commit (a crash between buffered flushes) is
// discarded at replay — so its bytes must not survive for the next
// appended batch's commit line to adopt, silently committing writes
// that never committed.
func TestUncommittedTailDoesNotMergeWithNextBatch(t *testing.T) {
	fs := fault.NewMemFS()
	if err := fs.WriteFile("wal",
		[]byte("wal 1\nset \"a\" 1\ncommit\nset \"b\" 2\n")); err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := getKey(t, db, "b"); ok {
		t.Fatal("uncommitted tail applied")
	}
	setKey(t, db, "c", 3)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	state, err := recoveredState(fs)
	if err != nil {
		t.Fatal(err)
	}
	if state["a"] != 1 || state["c"] != 3 {
		t.Fatalf("committed batches lost: %v", state)
	}
	if _, ok := state["b"]; ok {
		t.Fatalf("uncommitted write merged into the next batch's commit: %v", state)
	}
}

// TestCheckpointHealsAfterSegmentCreateFailure is the regression for
// the poisoned rotation path: when the seal rename succeeded but
// creating the successor segment failed (transient ENOSPC), retrying
// Checkpoint used to re-run the rename — now ENOENT, forever — so
// degraded mode could never heal without reopening the database.
func TestCheckpointHealsAfterSegmentCreateFailure(t *testing.T) {
	fs := fault.NewMemFS()
	db, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setKey(t, db, "a", 1)

	// Fail the creation of the fresh active segment; the seal rename
	// before it succeeds.
	broken := true
	fs.SetInjector(func(op fault.Op) (int, error) {
		if broken && op.Kind == fault.OpCreate && op.Name == "wal" {
			return 0, fault.ErrInjected
		}
		return 0, nil
	})
	if err := db.Checkpoint(); !errors.Is(err, ErrDurability) {
		t.Fatalf("checkpoint with failing segment create: %v", err)
	}
	if !db.Degraded() {
		t.Fatal("not degraded after failed rotation")
	}

	// The transient fault clears; the documented contract is that a
	// successful Checkpoint heals.
	broken = false
	fs.SetInjector(nil)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("healing checkpoint after partial rotation: %v", err)
	}
	if db.Degraded() {
		t.Fatal("checkpoint did not heal")
	}
	setKey(t, db, "b", 2)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	state, err := recoveredState(fs)
	if err != nil {
		t.Fatal(err)
	}
	if state["a"] != 1 || state["b"] != 2 {
		t.Fatalf("commits lost across the healed rotation: %v", state)
	}
}

// TestSealedSegmentsWideGenerations: generation numbers wider than the
// %08d pad (1e8 and up) must still be listed and replayed — an
// exact-length name check used to silently drop them, losing their
// committed data.
func TestSealedSegmentsWideGenerations(t *testing.T) {
	fs := fault.NewMemFS()
	if err := fs.WriteFile(segmentName("wal", 100000000),
		[]byte("wal 100000000\nset \"a\" 1\ncommit\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("wal",
		[]byte("wal 100000001\nset \"b\" 2\ncommit\n")); err != nil {
		t.Fatal(err)
	}
	segs, err := sealedSegments(fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].gen != 100000000 {
		t.Fatalf("9-digit segment not listed: %+v", segs)
	}
	state, err := recoveredState(fs)
	if err != nil {
		t.Fatal(err)
	}
	if state["a"] != 1 || state["b"] != 2 {
		t.Fatalf("wide-generation segment dropped at replay: %v", state)
	}
}

// TestCloseCheckpointConcurrent drives Close against in-flight
// Checkpoints; under -race this is the regression for Close mutating
// the mu-guarded writer fields without the lock.
func TestCloseCheckpointConcurrent(t *testing.T) {
	for i := 0; i < 20; i++ {
		fs := fault.NewMemFS()
		db, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		setKey(t, db, "a", 1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				if err := db.Checkpoint(); err != nil {
					return // ErrClosed once Close wins
				}
			}
		}()
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		<-done
	}
}

// TestDegradedCloseReportsError: Close on a poisoned WAL surfaces
// ErrDurability instead of pretending the tail is durable.
func TestDegradedCloseReportsError(t *testing.T) {
	fs := fault.NewMemFS()
	db, err := Open(Config{Policy: TransactionsFirst, WALPath: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	setKey(t, db, "a", 1)
	fs.SetInjector(func(op fault.Op) (int, error) {
		if op.Kind == fault.OpSync && op.Name == "wal" {
			return 0, fault.ErrInjected
		}
		return 0, nil
	})
	if err := db.Close(); !errors.Is(err, ErrDurability) {
		t.Fatalf("Close with failing sync: %v", err)
	}
}
