package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/strip"
	"repro/strip/obs"
)

// ReplicaConfig configures the importing side.
type ReplicaConfig struct {
	// Addr is the primary's replication address, dialed with net.Dial
	// when Dial is nil.
	Addr string
	// Dial overrides how the primary is reached (tests inject pipes
	// and failure modes here).
	Dial func() (net.Conn, error)

	// BackoffBase and BackoffMax bound the reconnect delay (defaults
	// 50ms and 5s); BackoffJitter is the randomized fraction (default
	// 0.2) and Seed makes the jitter sequence reproducible.
	BackoffBase   time.Duration
	BackoffMax    time.Duration
	BackoffJitter float64
	Seed          uint64

	// ResetSnapshots makes snapshots replace the local state wholesale
	// (db.ResetToSnapshot) instead of merging by generation. Failover
	// re-pointing sets it: the new primary's history supersedes
	// everything local, including writes a deposed primary accepted
	// that never reached the quorum's chosen leader.
	ResetSnapshots bool

	// OnFrame, when set, observes every applied frame in order (the
	// resume tests record the sequence history through it).
	OnFrame func(kind byte, seq uint64)
	// Metrics, when set, registers the replica's series (sessions
	// established, frames applied) into the registry.
	Metrics *obs.Registry
	// Logf receives connection-level diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Replica keeps a database continuously fed from a primary: it dials,
// resumes the frame stream from the last applied sequence, feeds
// update frames through the database's normal scheduler path and
// batch frames through the committed-write path, and reconnects with
// exponential backoff when the stream breaks. The replica is the
// paper's imported materialized view: the primary is its external
// world and Stats.ReplicaLag* measures its freshness.
type Replica struct {
	db   *strip.DB
	cfg  ReplicaConfig
	logf func(string, ...any)

	// connects counts established sessions, frames the messages
	// applied, reconnects the dial attempts after the first (the
	// link's flap count); all count whether or not a registry is
	// attached. attempts is the current backoff streak: consecutive
	// dial rounds without a single applied frame.
	connects   *obs.Counter
	frames     *obs.Counter
	reconnects *obs.Counter
	attempts   atomic.Int64

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	lastSeq uint64   // guarded by mu; highest sequence applied
	epoch   uint64   // guarded by mu; history lastSeq belongs to (0 = none)
	conn    net.Conn // guarded by mu; live connection, if any
	closed  bool     // guarded by mu
}

// errSeqGap reports a hole in the stream; the replica reconnects and
// resumes, which either heals the stream or falls back to a snapshot.
var errSeqGap = errors.New("repl: sequence gap in stream")

// StartReplica connects db to a primary and starts the feed
// goroutine. Close stops it.
func StartReplica(db *strip.DB, cfg ReplicaConfig) (*Replica, error) {
	if cfg.Dial == nil && cfg.Addr == "" {
		return nil, fmt.Errorf("repl: ReplicaConfig needs Addr or Dial")
	}
	r := &Replica{
		db:         db,
		cfg:        cfg,
		logf:       cfg.Logf,
		connects:   obs.NewCounter(),
		frames:     obs.NewCounter(),
		reconnects: obs.NewCounter(),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if r.logf == nil {
		r.logf = func(string, ...any) {}
	}
	if reg := cfg.Metrics; reg != nil {
		reg.CounterFunc("strip_repl_replica_connects_total",
			"replication sessions established with a primary", r.connects.Value)
		reg.CounterFunc("strip_repl_replica_frames_total",
			"replication frames applied", r.frames.Value)
		reg.CounterFunc("strip_repl_reconnects_total",
			"re-dial attempts after the first replication session (link flaps)",
			r.reconnects.Value)
		reg.GaugeFunc("strip_repl_backoff_attempts",
			"consecutive dial rounds without an applied frame (current backoff streak)",
			func() float64 { return float64(r.attempts.Load()) })
	}
	go r.run()
	return r, nil
}

// Close stops the feed and waits for it to exit. It does not close
// the database.
func (r *Replica) Close() error {
	conn, first := r.markClosed()
	if first {
		close(r.stop)
		if conn != nil {
			conn.Close()
		}
	}
	<-r.done
	return nil
}

// markClosed flips the closed flag, returning the live connection (if
// any) and whether this call was the one that closed.
func (r *Replica) markClosed() (net.Conn, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, false
	}
	r.closed = true
	return r.conn, true
}

// LastSeq returns the highest replication sequence applied so far.
func (r *Replica) LastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastSeq
}

// run is the feed loop: dial, stream, back off, repeat.
func (r *Replica) run() {
	defer close(r.done)
	seed := r.cfg.Seed
	if seed == 0 {
		seed = 1
	}
	bo := newBackoff(r.cfg.BackoffBase, r.cfg.BackoffMax, r.cfg.BackoffJitter, seed)
	first := true
	for {
		if r.isClosed() {
			return
		}
		if !first {
			r.reconnects.Inc()
		}
		first = false
		progressed := false
		conn, err := r.dial()
		if err == nil {
			r.connects.Inc()
			if r.stream(conn) > 0 {
				bo.reset()
				r.attempts.Store(0)
				progressed = true
			}
		} else {
			r.logf("repl: dial failed: %v", err)
		}
		if !progressed {
			r.attempts.Add(1)
		}
		if !r.sleep(bo.next()) {
			return
		}
	}
}

// dial reaches the primary.
func (r *Replica) dial() (net.Conn, error) {
	if r.cfg.Dial != nil {
		return r.cfg.Dial()
	}
	return net.Dial("tcp", r.cfg.Addr)
}

// isClosed reports whether Close has run.
func (r *Replica) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// adopt records the live connection so Close can unblock reads;
// it refuses when already closed.
func (r *Replica) adopt(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.conn = conn
	return true
}

// release forgets the connection after the stream ends.
func (r *Replica) release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conn = nil
}

// sleep waits d or until Close, reporting whether to continue.
func (r *Replica) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.stop:
		return false
	}
}

// stream runs one session: handshake with the last applied sequence
// and its epoch, read the primary's epoch greeting, then apply frames
// until the connection breaks. It returns the number of frames
// applied.
func (r *Replica) stream(conn net.Conn) int {
	if !r.adopt(conn) {
		conn.Close()
		return 0
	}
	defer r.release()
	defer conn.Close()

	last, epoch := r.cursor()
	if _, err := fmt.Fprintf(conn, "RESUME %d %d\n", last, epoch); err != nil {
		return 0
	}
	br := bufio.NewReader(conn)
	connEpoch, err := readGreeting(br)
	if err != nil {
		r.logf("repl: bad greeting: %v", err)
		return 0
	}
	applied := 0
	var frameBuf []byte // reused by ReadFrameBuf; Decode copies out of it
	for {
		payload, buf, err := ReadFrameBuf(br, frameBuf)
		frameBuf = buf
		if err != nil {
			r.logStreamEnd(err, applied)
			return applied
		}
		msg, err := Decode(payload)
		if err != nil {
			r.logf("repl: dropping connection on corrupt frame: %v", err)
			return applied
		}
		if err := r.apply(msg, connEpoch); err != nil {
			r.logf("repl: apply failed at seq %d: %v", msg.Seq(), err)
			return applied
		}
		applied++
		r.frames.Inc()
	}
}

// readGreeting parses the primary's "EPOCH <n>" line, reading at most
// greetingMax bytes so a garbage peer cannot make it buffer
// unboundedly.
func readGreeting(br *bufio.Reader) (uint64, error) {
	const greetingMax = 64
	var line []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if b == '\n' {
			break
		}
		if len(line) >= greetingMax {
			return 0, fmt.Errorf("repl: greeting line too long")
		}
		line = append(line, b)
	}
	s := strings.TrimSpace(string(line))
	rest, ok := strings.CutPrefix(s, "EPOCH ")
	if !ok {
		return 0, fmt.Errorf("repl: unexpected greeting %q", s)
	}
	epoch, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: bad greeting epoch: %v", err)
	}
	if epoch == 0 {
		return 0, fmt.Errorf("repl: primary sent zero epoch")
	}
	return epoch, nil
}

// logStreamEnd reports why a session ended, quietly for plain EOF.
func (r *Replica) logStreamEnd(err error, applied int) {
	if errors.Is(err, errRingClosed) {
		return
	}
	r.logf("repl: stream ended after %d frames: %v", applied, err)
}

// apply dispatches one message into the database, enforcing the
// sequence contract: snapshots rebase the cursor (and adopt the
// sending primary's epoch — the snapshot is the state its sequence
// numbers describe), updates and batches must extend it contiguously
// within the same epoch. Duplicates (a primary resending across a
// resume) are skipped without touching the database; gaps break the
// session so the resume handshake can heal it.
func (r *Replica) apply(msg Msg, connEpoch uint64) error {
	switch m := msg.(type) {
	case *SnapshotMsg:
		if r.cfg.ResetSnapshots {
			// The reset's installs and general-store swap are WAL-logged,
			// and a node that crashes between here and its next checkpoint
			// rejoins through the failover manager, which re-points it and
			// resets again — so no synchronous checkpoint on the stream
			// path; replication stays ahead of durability by design.
			if err := r.db.ResetToSnapshot(m.Snap); err != nil {
				return err
			}
		} else if err := r.db.InstallSnapshot(m.Snap); err != nil {
			return err
		}
		r.rebase(m.Snap.Seq, connEpoch)
		r.observe(KindSnapshot, m.Snap.Seq)
		return nil
	case *UpdateMsg:
		ok, err := r.admit(m.Sequence, connEpoch)
		if !ok {
			return err
		}
		if err := r.db.ApplyReplicated(strip.Update{
			Object:    m.Object,
			Value:     m.Value,
			Fields:    kvMap(m.Fields),
			Partial:   m.Partial,
			Generated: nanosGen(m.Generated),
		}, m.Importance); err != nil {
			return err
		}
		r.setLastSeq(m.Sequence)
		r.observe(KindUpdate, m.Sequence)
		return nil
	case *BatchMsg:
		ok, err := r.admit(m.Sequence, connEpoch)
		if !ok {
			return err
		}
		if err := r.db.ApplyReplicatedBatch(m.Writes); err != nil {
			return err
		}
		r.setLastSeq(m.Sequence)
		r.observe(KindBatch, m.Sequence)
		return nil
	default:
		return fmt.Errorf("%w: unexpected message %T", ErrMalformed, msg)
	}
}

// admit checks the sequence contract for a stream frame carrying seq:
// ok reports whether the frame should be applied. A duplicate across a
// resume returns (false, nil) — skip without error; an epoch mismatch
// or sequence gap returns a session-breaking error. Taking the
// decision out of line (rather than wrapping each apply in a closure)
// keeps the per-frame path allocation-free.
func (r *Replica) admit(seq, connEpoch uint64) (bool, error) {
	last, epoch := r.cursor()
	if epoch != connEpoch {
		// The primary promised a snapshot first (our handshake epoch
		// cannot have matched); a stream frame before it would splice
		// another history onto our state.
		return false, fmt.Errorf("repl: stream frame from epoch %d before snapshot (cursor epoch %d)", connEpoch, epoch)
	}
	if seq <= last {
		return false, nil // duplicate across a resume; already applied
	}
	if seq != last+1 {
		return false, fmt.Errorf("%w: have %d, got %d", errSeqGap, last, seq)
	}
	return true, nil
}

// cursor returns the applied-sequence cursor and the epoch of the
// history it belongs to.
func (r *Replica) cursor() (lastSeq, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastSeq, r.epoch
}

// setLastSeq advances the applied-sequence cursor.
func (r *Replica) setLastSeq(seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastSeq = seq
}

// rebase moves the cursor onto a snapshot's sequence and adopts the
// epoch of the history that sequence numbers.
func (r *Replica) rebase(seq, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastSeq = seq
	r.epoch = epoch
}

// observe feeds the OnFrame hook.
func (r *Replica) observe(kind byte, seq uint64) {
	if r.cfg.OnFrame != nil {
		r.cfg.OnFrame(kind, seq)
	}
}

// kvMap converts wire pairs to an attribute map.
func kvMap(kvs []strip.KeyValue) map[string]float64 {
	if len(kvs) == 0 {
		return nil
	}
	//striplint:ignore alloc-in-hotpath -- the attribute map is handed to the database, which owns it; pair-less updates take the nil fast path above
	m := make(map[string]float64, len(kvs))
	for _, kv := range kvs {
		m[kv.Key] = kv.Value
	}
	return m
}
