package repl

import (
	"errors"
	"testing"
	"time"
)

func fill(r *ring, from, to uint64) {
	for seq := from; seq <= to; seq++ {
		r.append(seq, []byte{byte(seq)})
	}
}

func TestRingAwaitFrom(t *testing.T) {
	r := newRing(8, 1)
	fill(r, 1, 5)
	frames, err := r.awaitFrom(1, nil)
	if err != nil {
		t.Fatalf("awaitFrom(1): %v", err)
	}
	if len(frames) != 5 {
		t.Fatalf("awaitFrom(1) returned %d frames, want 5", len(frames))
	}
	for i, f := range frames {
		if f[0] != byte(i+1) {
			t.Fatalf("frame %d carries %d, want %d", i, f[0], i+1)
		}
	}
	frames, err = r.awaitFrom(4, nil)
	if err != nil || len(frames) != 2 {
		t.Fatalf("awaitFrom(4) = %d frames, %v; want 2, nil", len(frames), err)
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := newRing(3, 1)
	fill(r, 1, 5)
	if r.resumable(2) {
		t.Errorf("sequence 2 still resumable after falling off a 3-frame ring")
	}
	if !r.resumable(3) {
		t.Errorf("sequence 3 not resumable; ring should hold 3..5")
	}
	if _, err := r.awaitFrom(1, nil); !errors.Is(err, errTooOld) {
		t.Errorf("awaitFrom(1) = %v, want errTooOld", err)
	}
	frames, err := r.awaitFrom(3, nil)
	if err != nil || len(frames) != 3 {
		t.Fatalf("awaitFrom(3) = %d frames, %v; want 3, nil", len(frames), err)
	}
	if frames[0][0] != 3 || frames[2][0] != 5 {
		t.Errorf("ring kept wrong window: %d..%d, want 3..5", frames[0][0], frames[2][0])
	}
}

func TestRingResumableEmpty(t *testing.T) {
	r := newRing(4, 10)
	if !r.resumable(10) {
		t.Errorf("empty ring must accept its expected next sequence")
	}
	if r.resumable(9) || r.resumable(11) {
		t.Errorf("empty ring must reject anything but its expected next sequence")
	}
}

func TestRingOutOfOrderResets(t *testing.T) {
	r := newRing(8, 1)
	fill(r, 1, 3)
	r.append(10, []byte{10}) // gap: history no longer contiguous
	if r.resumable(1) {
		t.Errorf("pre-gap sequence still resumable after reset")
	}
	frames, err := r.awaitFrom(10, nil)
	if err != nil || len(frames) != 1 || frames[0][0] != 10 {
		t.Fatalf("awaitFrom(10) after reset = %v, %v; want frame 10", frames, err)
	}
}

func TestRingBlocksUntilAppend(t *testing.T) {
	r := newRing(8, 1)
	fill(r, 1, 2)
	type result struct {
		frames [][]byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		frames, err := r.awaitFrom(3, nil) // nothing there yet: blocks
		done <- result{frames, err}
	}()
	select {
	case res := <-done:
		t.Fatalf("awaitFrom(3) returned early: %v, %v", res.frames, res.err)
	case <-time.After(20 * time.Millisecond):
	}
	r.append(3, []byte{3})
	select {
	case res := <-done:
		if res.err != nil || len(res.frames) != 1 || res.frames[0][0] != 3 {
			t.Fatalf("awaitFrom(3) woke with %v, %v; want frame 3", res.frames, res.err)
		}
	case <-time.After(time.Second):
		t.Fatalf("awaitFrom(3) still blocked after append")
	}
}

func TestRingCloseWakesReaders(t *testing.T) {
	r := newRing(8, 1)
	done := make(chan error, 1)
	go func() {
		_, err := r.awaitFrom(1, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.close()
	select {
	case err := <-done:
		if !errors.Is(err, errRingClosed) {
			t.Fatalf("awaitFrom after close = %v, want errRingClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatalf("close did not wake the blocked reader")
	}
	r.append(1, []byte{1}) // must be a no-op, not a panic
	if _, err := r.awaitFrom(1, nil); !errors.Is(err, errRingClosed) {
		t.Errorf("closed ring accepted a read")
	}
}
