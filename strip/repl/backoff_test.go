package repl

import (
	"testing"
	"time"
)

// TestBackoffDeterministic pins the injected-PCG contract: one seed,
// one delay sequence.
func TestBackoffDeterministic(t *testing.T) {
	a := newBackoff(50*time.Millisecond, time.Second, 0.2, 42)
	b := newBackoff(50*time.Millisecond, time.Second, 0.2, 42)
	for i := 0; i < 20; i++ {
		if da, db := a.next(), b.next(); da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, db)
		}
	}
	c := newBackoff(50*time.Millisecond, time.Second, 0.2, 43)
	a.reset()
	same := true
	for i := 0; i < 5; i++ {
		if a.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical jitter sequences")
	}
}

// TestBackoffDoublesAndClamps checks the envelope: attempt n stays
// within [1-j, 1+j) of min(base<<n, max).
func TestBackoffDoublesAndClamps(t *testing.T) {
	base, max, jitter := 50*time.Millisecond, 400*time.Millisecond, 0.2
	b := newBackoff(base, max, jitter, 7)
	for n := 0; n < 10; n++ {
		ideal := base
		for i := 0; i < n && ideal < max; i++ {
			ideal *= 2
		}
		if ideal > max {
			ideal = max
		}
		d := b.next()
		lo := time.Duration(float64(ideal) * (1 - jitter))
		hi := time.Duration(float64(ideal) * (1 + jitter))
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", n, d, lo, hi)
		}
	}
	b.reset()
	if d := b.next(); d > time.Duration(float64(base)*(1+jitter)) {
		t.Errorf("after reset, delay %v not back at base scale", d)
	}
}

// TestBackoffDefaults checks that zero and nonsense config values fall
// back to the documented defaults.
func TestBackoffDefaults(t *testing.T) {
	b := newBackoff(0, 0, -1, 1)
	if b.base != 50*time.Millisecond {
		t.Errorf("default base = %v, want 50ms", b.base)
	}
	if b.max != 100*b.base {
		t.Errorf("default max = %v, want %v", b.max, 100*b.base)
	}
	if b.jitter != 0.2 {
		t.Errorf("default jitter = %v, want 0.2", b.jitter)
	}
}
