package repl

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/strip"
)

// testUpdateEvent is the fixed update event behind the golden vector.
func testUpdateEvent() strip.ReplEvent {
	return strip.ReplEvent{
		Seq: 7, Kind: strip.ReplUpdate, Object: "DEM/USD.LON",
		Importance: strip.High, Value: 1.6612, Partial: true,
		Generated: time.Unix(0, 1700000000000000001),
		Fields:    []strip.KeyValue{{Key: "bid", Value: 1.66}, {Key: "ask", Value: 1.6624}},
	}
}

// testBatchEvent is the fixed batch event behind the golden vector.
func testBatchEvent() strip.ReplEvent {
	return strip.ReplEvent{
		Seq: 8, Kind: strip.ReplBatch,
		Writes: []strip.KeyValue{{Key: "last-price", Value: 1.6612}, {Key: "position", Value: -3}},
	}
}

// testSnapshot is the fixed snapshot behind the golden vector.
func testSnapshot() strip.Snapshot {
	return strip.Snapshot{
		Seq: 9,
		Views: []strip.SnapshotView{{
			Name: "A", Importance: strip.Low, Value: 2.5,
			Generated: time.Unix(0, 1600000000000000000),
			Fields:    []strip.KeyValue{{Key: "x", Value: 1}},
		}},
		General: []strip.KeyValue{{Key: "k", Value: 4}},
	}
}

// TestEncodeGolden pins the wire format: any layout change must be a
// deliberate protocol revision, not an accident.
func TestEncodeGolden(t *testing.T) {
	golden := map[string]struct {
		got []byte
		hex string
	}{}
	up, err := EncodeEvent(testUpdateEvent())
	if err != nil {
		t.Fatalf("EncodeEvent(update): %v", err)
	}
	golden["update"] = struct {
		got []byte
		hex string
	}{up, "01000000000000000717979cfe362a00013ffa94467381d7dc0101000b44454d2f5553442e4c4f4e000200036269643ffa8f5c28f5c28f000361736b3ffa9930be0ded29"}
	ba, err := EncodeEvent(testBatchEvent())
	if err != nil {
		t.Fatalf("EncodeEvent(batch): %v", err)
	}
	golden["batch"] = struct {
		got []byte
		hex string
	}{ba, "02000000000000000800000002000a6c6173742d70726963653ffa94467381d7dc0008706f736974696f6ec008000000000000"}
	sn, err := EncodeSnapshot(testSnapshot())
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	golden["snapshot"] = struct {
		got []byte
		hex string
	}{sn, "030000000000000009000000010001410016345785d8a00000400400000000000000010001783ff00000000000000000000100016b4010000000000000"}

	for name, g := range golden {
		want, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("bad golden hex for %s: %v", name, err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s payload drifted from golden:\n got %x\nwant %x", name, g.got, want)
		}
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	ev := testUpdateEvent()
	payload, err := EncodeEvent(ev)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	msg, err := Decode(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	m, ok := msg.(*UpdateMsg)
	if !ok {
		t.Fatalf("decoded %T, want *UpdateMsg", msg)
	}
	want := &UpdateMsg{
		Sequence: 7, Object: "DEM/USD.LON", Importance: strip.High,
		Partial: true, Value: 1.6612, Generated: 1700000000000000001,
		Fields: ev.Fields,
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", m, want)
	}
	if m.Seq() != 7 {
		t.Errorf("Seq() = %d, want 7", m.Seq())
	}
}

func TestBatchRoundTrip(t *testing.T) {
	payload, err := EncodeEvent(testBatchEvent())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	msg, err := Decode(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	m, ok := msg.(*BatchMsg)
	if !ok {
		t.Fatalf("decoded %T, want *BatchMsg", msg)
	}
	want := &BatchMsg{Sequence: 8, Writes: testBatchEvent().Writes}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", m, want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	payload, err := EncodeSnapshot(testSnapshot())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	msg, err := Decode(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	m, ok := msg.(*SnapshotMsg)
	if !ok {
		t.Fatalf("decoded %T, want *SnapshotMsg", msg)
	}
	if !reflect.DeepEqual(m.Snap, testSnapshot()) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", m.Snap, testSnapshot())
	}
	// Equal snapshots must encode to equal bytes (convergence checks
	// compare encodings).
	again, err := EncodeSnapshot(testSnapshot())
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(payload, again) {
		t.Errorf("equal snapshots encoded differently")
	}
}

func TestWriteReadFrame(t *testing.T) {
	payload, err := EncodeEvent(testUpdateEvent())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload mangled in flight")
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("ReadFrame at clean end = %v, want io.EOF", err)
	}
}

// TestReadFrameTruncated cuts the frame short at every possible point:
// every cut must surface as an error, never a short payload.
func TestReadFrameTruncated(t *testing.T) {
	payload, _ := EncodeEvent(testUpdateEvent())
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	frame := buf.Bytes()
	for cut := 1; cut < len(frame); cut++ {
		_, err := ReadFrame(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("ReadFrame accepted a frame cut at byte %d of %d", cut, len(frame))
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

// TestReadFrameBitFlip flips every single bit of a valid frame: the
// CRC (or the length/parse checks) must reject every corruption.
func TestReadFrameBitFlip(t *testing.T) {
	payload, _ := EncodeEvent(testBatchEvent())
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	frame := buf.Bytes()
	for i := 0; i < len(frame)*8; i++ {
		corrupt := bytes.Clone(frame)
		corrupt[i/8] ^= 1 << (i % 8)
		got, err := ReadFrame(bytes.NewReader(corrupt))
		if err == nil {
			t.Fatalf("bit flip at %d accepted, payload %x", i, got)
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("giant length prefix: got %v, want ErrFrameTooLarge", err)
	}
	zero := []byte{0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(zero)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("zero length prefix: got %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("WriteFrame oversized: got %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("WriteFrame empty: got %v, want ErrFrameTooLarge", err)
	}
}

// TestDecodeTruncatedPayloads decodes every prefix of every valid
// payload: all must error (never panic, never a partial message).
func TestDecodeTruncatedPayloads(t *testing.T) {
	up, _ := EncodeEvent(testUpdateEvent())
	ba, _ := EncodeEvent(testBatchEvent())
	sn, _ := EncodeSnapshot(testSnapshot())
	for _, payload := range [][]byte{up, ba, sn} {
		for cut := 0; cut < len(payload); cut++ {
			if msg, err := Decode(payload[:cut]); err == nil {
				t.Fatalf("Decode accepted truncated payload (%d of %d bytes): %+v", cut, len(payload), msg)
			}
		}
	}
}

func TestDecodeMalformed(t *testing.T) {
	up, _ := EncodeEvent(testUpdateEvent())
	cases := map[string][]byte{
		"unknown kind":   {99, 0, 0, 0, 0, 0, 0, 0, 1},
		"trailing bytes": append(bytes.Clone(up), 0xAA),
		"absurd batch count": {KindBatch, 0, 0, 0, 0, 0, 0, 0, 1,
			0xFF, 0xFF, 0xFF, 0xFF},
		"absurd view count": {KindSnapshot, 0, 0, 0, 0, 0, 0, 0, 1,
			0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, payload := range cases {
		if msg, err := Decode(payload); err == nil {
			t.Errorf("%s: accepted as %+v", name, msg)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
}

func TestEncodeRejectsOversizedStrings(t *testing.T) {
	long := strings.Repeat("k", math.MaxUint16+1)
	if _, err := EncodeEvent(strip.ReplEvent{Kind: strip.ReplUpdate, Object: long}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized object name: got %v, want ErrFrameTooLarge", err)
	}
	if _, err := EncodeEvent(strip.ReplEvent{Kind: strip.ReplBatch,
		Writes: []strip.KeyValue{{Key: long}}}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write key: got %v, want ErrFrameTooLarge", err)
	}
	if _, err := EncodeEvent(strip.ReplEvent{Kind: strip.ReplEventKind(42)}); !errors.Is(err, ErrMalformed) {
		t.Errorf("unknown event kind: got %v, want ErrMalformed", err)
	}
}
