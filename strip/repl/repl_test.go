package repl

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/strip"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// openDB opens a database that closes with the test.
func openDB(t *testing.T, cfg strip.Config) *strip.DB {
	t.Helper()
	db, err := strip.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// servePrimary starts a Primary listening on a loopback port and
// returns it with its address.
func servePrimary(t *testing.T, db *strip.DB, cfg PrimaryConfig) (*Primary, string) {
	t.Helper()
	p := NewPrimary(db, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go p.Serve(l)
	t.Cleanup(func() { p.Close() })
	return p, l.Addr().String()
}

// dialTarget is a redirectable dialer that remembers the latest live
// connection so tests can kill it mid-stream.
type dialTarget struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
}

func (d *dialTarget) setAddr(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addr = addr
}

func (d *dialTarget) dial() (net.Conn, error) {
	d.mu.Lock()
	addr := d.addr
	d.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.conn = conn
	d.mu.Unlock()
	return conn, nil
}

// killConn severs the current session, simulating a network failure.
func (d *dialTarget) killConn() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.conn != nil {
		d.conn.Close()
	}
}

// frameRec is one OnFrame observation.
type frameRec struct {
	kind byte
	seq  uint64
}

// recorder collects the replica's applied-frame history.
type recorder struct {
	mu    sync.Mutex
	recs  []frameRec
	snaps int
}

func (r *recorder) onFrame(kind byte, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, frameRec{kind, seq})
	if kind == KindSnapshot {
		r.snaps++
	}
}

func (r *recorder) history() []frameRec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]frameRec(nil), r.recs...)
}

func (r *recorder) snapCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snaps
}

// checkContiguous verifies the applied history has no gaps and no
// duplicates: every non-snapshot frame extends the cursor by exactly
// one, and snapshots rebase it.
func checkContiguous(t *testing.T, recs []frameRec, firstSeq uint64) {
	t.Helper()
	if len(recs) == 0 {
		t.Fatalf("replica applied no frames")
	}
	cursor := firstSeq - 1
	for i, rec := range recs {
		if rec.kind == KindSnapshot {
			cursor = rec.seq
			continue
		}
		if rec.seq != cursor+1 {
			t.Fatalf("frame %d: seq %d after %d — %s", i, rec.seq, cursor,
				map[bool]string{true: "duplicate", false: "gap"}[rec.seq <= cursor])
		}
		cursor = rec.seq
	}
}

// feedUpdates applies n updates round-robin over objects with strictly
// increasing generations, returning the next generation time.
func feedUpdates(t *testing.T, db *strip.DB, objects []string, n int, gen time.Time) time.Time {
	t.Helper()
	for i := 0; i < n; i++ {
		u := strip.Update{
			Object:    objects[i%len(objects)],
			Value:     float64(i) + 0.25,
			Generated: gen,
		}
		if i%3 == 0 {
			u.Fields = map[string]float64{"bid": float64(i), "ask": float64(i) + 0.5}
		}
		if err := db.ApplyUpdate(u); err != nil {
			t.Fatalf("ApplyUpdate %d: %v", i, err)
		}
		gen = gen.Add(time.Millisecond)
	}
	return gen
}

// execSet commits one general-data write through a transaction.
func execSet(t *testing.T, db *strip.DB, key string, v float64) {
	t.Helper()
	res := db.Exec(strip.TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(5 * time.Second),
		Func: func(tx *strip.Tx) error {
			tx.Set(key, v)
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("Set(%s) transaction did not commit: %v", key, res.Err)
	}
}

// encodedState returns the database's snapshot encoding with the
// sequence zeroed, the byte-identical convergence fingerprint.
func encodedState(t *testing.T, db *strip.DB) []byte {
	t.Helper()
	s := db.ReplicaSnapshot()
	s.Seq = 0
	b, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	return b
}

// TestReplicaConvergence streams updates and committed batches to a
// replica, quiesces, and requires the replica's view and general
// stores to be byte-identical to the primary's.
func TestReplicaConvergence(t *testing.T) {
	primary := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := primary.DefineView("fx/a", strip.High); err != nil {
		t.Fatal(err)
	}
	if err := primary.DefineView("fx/b", strip.Low); err != nil {
		t.Fatal(err)
	}
	_, addr := servePrimary(t, primary, PrimaryConfig{})

	replica := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	rec := &recorder{}
	r, err := StartReplica(replica, ReplicaConfig{
		Addr: addr, BackoffBase: 2 * time.Millisecond, Seed: 1, OnFrame: rec.onFrame,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { r.Close() })

	// Let the cold bootstrap land before feeding so every event below
	// arrives as a stream frame, not inside the bootstrap snapshot.
	waitFor(t, 5*time.Second, "cold bootstrap", func() bool {
		return len(rec.history()) >= 1
	})

	const updates, batches = 60, 5
	gen := feedUpdates(t, primary, []string{"fx/a", "fx/b"}, updates/2, time.Now())
	for i := 0; i < batches; i++ {
		execSet(t, primary, fmt.Sprintf("book/%d", i), float64(i)*1.5)
	}
	feedUpdates(t, primary, []string{"fx/a", "fx/b"}, updates/2, gen)

	want := uint64(updates + batches)
	waitFor(t, 5*time.Second, "primary to publish every event", func() bool {
		return primary.Sequence() == want
	})
	waitFor(t, 5*time.Second, "replica to apply the whole stream", func() bool {
		if r.LastSeq() != want {
			return false
		}
		_, uu := replica.ReplicaLag()
		return uu == 0
	})

	// Quiesced: the stores must be byte-identical.
	if p, q := encodedState(t, primary), encodedState(t, replica); !bytes.Equal(p, q) {
		t.Fatalf("replica state diverged from primary:\nprimary %x\nreplica %x", p, q)
	}
	history := rec.history()
	checkContiguous(t, history, 1)
	// A cold replica always bootstraps from a snapshot (it has no
	// epoch, so its empty state cannot be assumed to match sequence
	// zero); after that one bootstrap it must stream.
	if history[0].kind != KindSnapshot {
		t.Errorf("first applied frame kind = %d, want bootstrap snapshot", history[0].kind)
	}
	if rec.snapCount() != 1 {
		t.Errorf("replica used %d snapshots; want exactly the cold bootstrap", rec.snapCount())
	}
	if stats := primary.Stats(); stats.ReplicationSeq != want {
		t.Errorf("primary ReplicationSeq = %d, want %d", stats.ReplicationSeq, want)
	}
	if stats := replica.Stats(); stats.ReplBatchesApplied != batches {
		t.Errorf("replica ReplBatchesApplied = %d, want %d", stats.ReplBatchesApplied, batches)
	}
	if ma, uu := replica.ReplicaLag(); ma != 0 || uu != 0 {
		t.Errorf("quiesced replica lag = (%v, %d), want (0, 0)", ma, uu)
	}
}

// TestReplicaResume kills the replica's connection mid-stream and then
// restarts the primary entirely; the replica must resume from its last
// sequence each time, ending with a contiguous history — no gaps, no
// duplicate installs.
func TestReplicaResume(t *testing.T) {
	primary := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := primary.DefineView("fx/a", strip.High); err != nil {
		t.Fatal(err)
	}
	p, addr := servePrimary(t, primary, PrimaryConfig{RingFrames: 1024})

	target := &dialTarget{}
	target.setAddr(addr)
	replica := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	rec := &recorder{}
	r, err := StartReplica(replica, ReplicaConfig{
		Dial: target.dial, BackoffBase: 2 * time.Millisecond, Seed: 3, OnFrame: rec.onFrame,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { r.Close() })

	const phase = 20
	gen := feedUpdates(t, primary, []string{"fx/a"}, phase, time.Now())
	waitFor(t, 5*time.Second, "phase 1 replication", func() bool { return r.LastSeq() == phase })

	// Network failure mid-stream: sever the session, keep feeding.
	target.killConn()
	gen = feedUpdates(t, primary, []string{"fx/a"}, phase, gen)
	waitFor(t, 5*time.Second, "resume after connection kill", func() bool { return r.LastSeq() == 2*phase })

	// Full primary restart: new Primary, new port, same database.
	p.Close()
	_, addr2 := servePrimary(t, primary, PrimaryConfig{RingFrames: 1024})
	target.setAddr(addr2)
	feedUpdates(t, primary, []string{"fx/a"}, phase, gen)
	waitFor(t, 5*time.Second, "resume after primary restart", func() bool { return r.LastSeq() == 3*phase })

	waitFor(t, 5*time.Second, "replica installs to drain", func() bool {
		_, uu := replica.ReplicaLag()
		return uu == 0
	})
	history := rec.history()
	checkContiguous(t, history, 1)
	if rec.snapCount() != 1 {
		t.Errorf("replica used %d snapshots; want only the cold bootstrap — both resumes should have healed the stream", rec.snapCount())
	}
	if history[0].kind != KindSnapshot {
		t.Fatalf("first applied frame kind = %d, want the cold bootstrap snapshot", history[0].kind)
	}
	// Exactly one frame per sequence after the bootstrap: no
	// duplicate installs across either resume.
	if want := 3*phase - int(history[0].seq) + 1; len(history) != want {
		t.Errorf("replica applied %d frames, want exactly %d (no duplicates)", len(history), want)
	}
	if p, q := encodedState(t, primary), encodedState(t, replica); !bytes.Equal(p, q) {
		t.Fatalf("replica state diverged from primary after resumes")
	}
}

// TestSnapshotBootstrap connects a cold replica after the ring has
// lapsed: it must bootstrap from a snapshot, then stream, and still
// converge byte-identically.
func TestSnapshotBootstrap(t *testing.T) {
	primary := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := primary.DefineView("fx/a", strip.High); err != nil {
		t.Fatal(err)
	}
	_, addr := servePrimary(t, primary, PrimaryConfig{RingFrames: 4})

	execSet(t, primary, "book/base", 10)
	gen := feedUpdates(t, primary, []string{"fx/a"}, 20, time.Now())
	const preSeq = 21 // one batch + twenty updates, all before the replica exists
	waitFor(t, 5*time.Second, "primary to publish history", func() bool {
		return primary.Sequence() == preSeq
	})

	replica := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	rec := &recorder{}
	r, err := StartReplica(replica, ReplicaConfig{
		Addr: addr, BackoffBase: 2 * time.Millisecond, Seed: 9, OnFrame: rec.onFrame,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { r.Close() })

	waitFor(t, 5*time.Second, "snapshot bootstrap", func() bool { return r.LastSeq() >= preSeq })
	// Feed fewer frames than the ring holds so none can fall off
	// before the reader forwards them: the tail must stream, not
	// trigger a second bootstrap.
	feedUpdates(t, primary, []string{"fx/a"}, 3, gen)
	waitFor(t, 5*time.Second, "post-snapshot streaming", func() bool {
		if r.LastSeq() != preSeq+3 {
			return false
		}
		_, uu := replica.ReplicaLag()
		return uu == 0
	})

	history := rec.history()
	if history[0].kind != KindSnapshot {
		t.Fatalf("first applied frame kind = %d, want snapshot", history[0].kind)
	}
	checkContiguous(t, history, 1)
	if rec.snapCount() != 1 {
		t.Errorf("replica installed %d snapshots, want exactly 1", rec.snapCount())
	}
	if stats := replica.Stats(); stats.ReplSnapshotsInstalled != 1 {
		t.Errorf("ReplSnapshotsInstalled = %d, want 1", stats.ReplSnapshotsInstalled)
	}
	if p, q := encodedState(t, primary), encodedState(t, replica); !bytes.Equal(p, q) {
		t.Fatalf("replica state diverged from primary after snapshot bootstrap")
	}
}

// TestReplicaChaining replicates through a middle tier: primary →
// relay → leaf, exercising re-publication of applied frames.
func TestReplicaChaining(t *testing.T) {
	primary := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := primary.DefineView("fx/a", strip.High); err != nil {
		t.Fatal(err)
	}
	_, addr := servePrimary(t, primary, PrimaryConfig{})

	relay := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	_, relayAddr := servePrimary(t, relay, PrimaryConfig{})
	r1, err := StartReplica(relay, ReplicaConfig{Addr: addr, BackoffBase: 2 * time.Millisecond, Seed: 4})
	if err != nil {
		t.Fatalf("StartReplica(relay): %v", err)
	}
	t.Cleanup(func() { r1.Close() })

	leaf := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	r2, err := StartReplica(leaf, ReplicaConfig{Addr: relayAddr, BackoffBase: 2 * time.Millisecond, Seed: 5})
	if err != nil {
		t.Fatalf("StartReplica(leaf): %v", err)
	}
	t.Cleanup(func() { r2.Close() })

	feedUpdates(t, primary, []string{"fx/a"}, 10, time.Now())
	execSet(t, primary, "book/x", 3)
	waitFor(t, 5*time.Second, "primary to publish every event", func() bool {
		return primary.Sequence() == 11
	})
	// The relay's own sequence space differs from the primary's (its
	// bootstrap snapshot re-publishes applied views as fresh events),
	// so convergence is judged on state, not on sequence numbers.
	pState := encodedState(t, primary)
	waitFor(t, 5*time.Second, "leaf convergence through the relay", func() bool {
		_, uuRelay := relay.ReplicaLag()
		_, uuLeaf := leaf.ReplicaLag()
		return r1.LastSeq() == 11 && uuRelay == 0 && uuLeaf == 0 &&
			bytes.Equal(pState, encodedState(t, relay)) &&
			bytes.Equal(pState, encodedState(t, leaf))
	})
}

// TestColdReplicaSeesPreAttachState covers the pre-attach hole: state
// the primary database accumulated before NewPrimary attached its sink
// — including a view that was defined but never updated — must still
// reach a cold replica.
func TestColdReplicaSeesPreAttachState(t *testing.T) {
	primary := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	if err := primary.DefineView("fx/a", strip.High); err != nil {
		t.Fatal(err)
	}
	if err := primary.DefineView("fx/ghost", strip.Low); err != nil {
		t.Fatal(err)
	}
	feedUpdates(t, primary, []string{"fx/a"}, 5, time.Now())
	execSet(t, primary, "book/pre", 42)
	waitFor(t, 5*time.Second, "pre-attach state to apply", func() bool {
		return primary.Sequence() == 6
	})

	// Only now does a Primary attach: nothing above ever reached a
	// replication sink.
	_, addr := servePrimary(t, primary, PrimaryConfig{})
	replica := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	rec := &recorder{}
	r, err := StartReplica(replica, ReplicaConfig{
		Addr: addr, BackoffBase: 2 * time.Millisecond, Seed: 11, OnFrame: rec.onFrame,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { r.Close() })

	waitFor(t, 5*time.Second, "cold replica to converge on pre-attach state", func() bool {
		_, uu := replica.ReplicaLag()
		return uu == 0 && bytes.Equal(encodedState(t, primary), encodedState(t, replica))
	})
	if rec.snapCount() != 1 {
		t.Errorf("replica used %d snapshots, want the one cold bootstrap", rec.snapCount())
	}
	if e, err := replica.Peek("fx/ghost"); err != nil {
		t.Errorf("never-updated view did not transfer: %v", err)
	} else if e.Value != 0 {
		t.Errorf("ghost view value = %v, want 0", e.Value)
	}
}

// TestWALRecoveredStateBootstrapsReplica covers the recovery variant
// of the pre-attach hole: general data replayed from the WAL on Open
// exists before any sink attaches, yet must reach a cold replica.
func TestWALRecoveredStateBootstrapsReplica(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "general.wal")
	db1, err := strip.Open(strip.Config{Policy: strip.UpdatesFirst, WALPath: wal})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	execSet(t, db1, "book/x", 1)
	execSet(t, db1, "book/y", 2)
	if err := db1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	primary := openDB(t, strip.Config{Policy: strip.UpdatesFirst, WALPath: wal})
	_, addr := servePrimary(t, primary, PrimaryConfig{})
	replica := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	r, err := StartReplica(replica, ReplicaConfig{
		Addr: addr, BackoffBase: 2 * time.Millisecond, Seed: 12,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { r.Close() })

	waitFor(t, 5*time.Second, "WAL-recovered state to reach the replica", func() bool {
		_, uu := replica.ReplicaLag()
		return uu == 0 && bytes.Equal(encodedState(t, primary), encodedState(t, replica))
	})
}

// TestPrimaryRestartForcesSnapshot covers cross-history resume: a
// replica that synced against one database instance must not splice
// its cursor into a different instance's stream just because the
// sequence numbers happen to line up — the epoch mismatch has to force
// a snapshot.
func TestPrimaryRestartForcesSnapshot(t *testing.T) {
	base := time.Now()
	db1 := openDB(t, strip.Config{Policy: strip.UpdatesFirst, ReplicationEpoch: 101})
	if err := db1.DefineView("fx/a", strip.High); err != nil {
		t.Fatal(err)
	}
	p1, addr1 := servePrimary(t, db1, PrimaryConfig{})

	target := &dialTarget{}
	target.setAddr(addr1)
	replica := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	rec := &recorder{}
	r, err := StartReplica(replica, ReplicaConfig{
		Dial: target.dial, BackoffBase: 2 * time.Millisecond, Seed: 13, OnFrame: rec.onFrame,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { r.Close() })

	feedUpdates(t, db1, []string{"fx/a"}, 10, base)
	waitFor(t, 5*time.Second, "first-instance sync", func() bool {
		_, uu := replica.ReplicaLag()
		return r.LastSeq() == 10 && uu == 0
	})

	// "Process restart": a different database instance takes over the
	// same role with its own history, whose sequence numbers overlap
	// the replica's cursor exactly.
	p1.Close()
	db2 := openDB(t, strip.Config{Policy: strip.UpdatesFirst, ReplicationEpoch: 202})
	if err := db2.DefineView("fx/a", strip.High); err != nil {
		t.Fatal(err)
	}
	feedUpdates(t, db2, []string{"fx/a"}, 10, base.Add(time.Hour))
	waitFor(t, 5*time.Second, "second instance to apply its history", func() bool {
		return db2.Sequence() == 10
	})
	_, addr2 := servePrimary(t, db2, PrimaryConfig{})
	target.setAddr(addr2)
	target.killConn()

	waitFor(t, 5*time.Second, "replica to re-bootstrap onto the new instance", func() bool {
		_, uu := replica.ReplicaLag()
		return uu == 0 && bytes.Equal(encodedState(t, db2), encodedState(t, replica))
	})
	if rec.snapCount() != 2 {
		t.Errorf("replica used %d snapshots, want 2 (cold bootstrap + epoch change)", rec.snapCount())
	}
}

// openConns counts a primary's live replica connections.
func openConns(p *Primary) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// TestDeadConnectionReaped covers the quiet-primary leak: a replica
// connection that dies while its handler waits for frames must be
// noticed and released without waiting for the next append.
func TestDeadConnectionReaped(t *testing.T) {
	primary := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	p, addr := servePrimary(t, primary, PrimaryConfig{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := fmt.Fprintf(conn, "RESUME 0 0\n"); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	// Drain the greeting and the bootstrap snapshot so the handler is
	// parked in awaitFrom on a primary that will never append again.
	br := bufio.NewReader(conn)
	if _, err := readGreeting(br); err != nil {
		t.Fatalf("greeting: %v", err)
	}
	if _, err := ReadFrame(br); err != nil {
		t.Fatalf("bootstrap frame: %v", err)
	}
	waitFor(t, 5*time.Second, "connection to register", func() bool {
		return openConns(p) == 1
	})

	conn.Close()
	waitFor(t, 5*time.Second, "dead connection to be reaped", func() bool {
		return openConns(p) == 0
	})
}
