// Package repl replicates a strip database over TCP: the primary
// publishes its installed-update and committed-batch stream — in the
// replication total order assigned by strip — as length-prefixed,
// CRC-checked binary frames, retains a bounded in-memory ring of
// recent frames for sequence-based resume (`RESUME <seq>`), and
// bootstraps cold or lapsed replicas with a consistent snapshot. The
// replica feeds received frames through the normal ApplyUpdate
// scheduler path, so the configured policy (UF/TF/SU/OD) governs
// install order on replicas too, and reports its freshness as MA/UU
// replication lag — a replica is the paper's imported materialized
// view with the primary as the external world.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"repro/strip"
)

// Frame kinds, the first payload byte.
const (
	// KindUpdate frames one installed view update.
	KindUpdate byte = 1
	// KindBatch frames one committed general-data write batch.
	KindBatch byte = 2
	// KindSnapshot frames a full bootstrap snapshot.
	KindSnapshot byte = 3
)

// MaxFrame bounds a frame payload. Update and batch frames are tiny;
// the cap exists for snapshots and as the codec's defense against a
// corrupt or hostile length prefix.
const MaxFrame = 8 << 20

// frameOverhead is the wire bytes around a payload: a 4-byte length
// prefix and a 4-byte CRC32 trailer.
const frameOverhead = 8

// Codec errors. ReadFrame and Decode return errors — never panic and
// never a partial message — on any malformed input.
var (
	// ErrFrameTooLarge reports a length prefix beyond MaxFrame (or an
	// attempt to write one).
	ErrFrameTooLarge = errors.New("repl: frame exceeds size limit")
	// ErrChecksum reports a CRC32 mismatch: the frame was corrupted in
	// flight or at rest.
	ErrChecksum = errors.New("repl: frame checksum mismatch")
	// ErrTruncated reports a frame cut short of its declared length.
	ErrTruncated = errors.New("repl: truncated frame")
	// ErrMalformed reports a payload that does not decode as any
	// message.
	ErrMalformed = errors.New("repl: malformed frame payload")
)

// AppendFrame appends one encoded frame — big-endian payload length,
// the payload, and the payload's IEEE CRC32 — to dst and returns the
// extended slice. Fan-out paths pass a reused scratch buffer
// (scratch[:0]) so steady-state framing allocates nothing after the
// buffer reaches its high-water mark.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) == 0 || len(payload) > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return dst, nil
}

// WriteFrame writes one frame assembled into a single buffer, so it
// reaches the writer in one Write call. It allocates the buffer per
// call; the connection handlers use AppendFrame with per-connection
// scratch instead.
func WriteFrame(w io.Writer, payload []byte) error {
	buf, err := AppendFrame(make([]byte, 0, len(payload)+frameOverhead), payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame and returns its verified payload in a
// fresh buffer the caller owns. A clean EOF before the first header
// byte returns io.EOF; any other short read returns ErrTruncated.
func ReadFrame(r io.Reader) ([]byte, error) {
	payload, _, err := ReadFrameBuf(r, nil)
	return payload, err
}

// ReadFrameBuf reads one frame into buf (grown when too small) and
// returns the verified payload aliasing buf's storage plus the
// possibly-grown buffer to reuse for the next call. The payload is
// valid only until that next call; retaining callers must copy
// (Decode already copies every string and pair out).
func ReadFrameBuf(r io.Reader, buf []byte) (payload, newBuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && err != io.ErrUnexpectedEOF {
			return nil, buf, io.EOF
		}
		return nil, buf, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, buf, ErrFrameTooLarge
	}
	need := int(n) + 4
	if cap(buf) < need {
		//striplint:ignore alloc-in-hotpath -- grows the caller's scratch once per frame-size high-water mark; steady state reuses it
		buf = make([]byte, need)
	}
	body := buf[:need]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, buf, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	payload = body[:n]
	want := binary.BigEndian.Uint32(body[n:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, buf, ErrChecksum
	}
	return payload, buf, nil
}

// Msg is a decoded frame payload: *UpdateMsg, *BatchMsg or
// *SnapshotMsg.
type Msg interface {
	// Seq is the replication sequence the message carries.
	Seq() uint64
}

// UpdateMsg is one installed view update from the primary.
type UpdateMsg struct {
	Sequence   uint64
	Object     string
	Importance strip.Importance
	Partial    bool
	Value      float64
	Generated  int64 // Unix nanoseconds; 0 means unknown
	Fields     []strip.KeyValue
}

// Seq returns the replication sequence.
func (m *UpdateMsg) Seq() uint64 { return m.Sequence }

// BatchMsg is one committed write batch from the primary.
type BatchMsg struct {
	Sequence uint64
	Writes   []strip.KeyValue
}

// Seq returns the replication sequence.
func (m *BatchMsg) Seq() uint64 { return m.Sequence }

// SnapshotMsg is a bootstrap snapshot: full state as of Snap.Seq.
type SnapshotMsg struct {
	Snap strip.Snapshot
}

// Seq returns the sequence the snapshot state corresponds to.
func (m *SnapshotMsg) Seq() uint64 { return m.Snap.Seq }

// Payload layouts, all integers big-endian. Strings carry a uint16
// length; key/value pairs are a string key and a float64 bit pattern.
//
//	update:   kind seq:u64 gen:i64 value:f64 importance:u8 flags:u8
//	          object:str nfields:u16 pair*
//	batch:    kind seq:u64 n:u32 pair*
//	snapshot: kind seq:u64 nviews:u32 view* ngeneral:u32 pair*
//	view:     name:str importance:u8 gen:i64 value:f64 nfields:u16 pair*
const flagPartial = 1

// EncodeEvent encodes one replication event as a frame payload.
func EncodeEvent(ev strip.ReplEvent) ([]byte, error) {
	switch ev.Kind {
	case strip.ReplUpdate:
		var flags byte
		if ev.Partial {
			flags |= flagPartial
		}
		b := make([]byte, 0, 64+len(ev.Object)+12*len(ev.Fields))
		b = append(b, KindUpdate)
		b = binary.BigEndian.AppendUint64(b, ev.Seq)
		b = binary.BigEndian.AppendUint64(b, uint64(genNanos(ev.Generated)))
		b = appendF64(b, ev.Value)
		b = append(b, byte(ev.Importance), flags)
		b, err := appendString(b, ev.Object)
		if err != nil {
			return nil, err
		}
		return appendPairs16(b, ev.Fields)
	case strip.ReplBatch:
		b := make([]byte, 0, 16+16*len(ev.Writes))
		b = append(b, KindBatch)
		b = binary.BigEndian.AppendUint64(b, ev.Seq)
		return appendPairs32(b, ev.Writes)
	default:
		return nil, fmt.Errorf("%w: unknown event kind %d", ErrMalformed, ev.Kind)
	}
}

// EncodeSnapshot encodes a snapshot as a frame payload. Equal
// snapshots (the strip side sorts views and pairs) encode to equal
// bytes, which the convergence tests rely on.
func EncodeSnapshot(s strip.Snapshot) ([]byte, error) {
	b := make([]byte, 0, 64+64*len(s.Views)+16*len(s.General))
	b = append(b, KindSnapshot)
	b = binary.BigEndian.AppendUint64(b, s.Seq)
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Views)))
	var err error
	for _, v := range s.Views {
		if b, err = appendString(b, v.Name); err != nil {
			return nil, err
		}
		b = append(b, byte(v.Importance))
		b = binary.BigEndian.AppendUint64(b, uint64(genNanos(v.Generated)))
		b = appendF64(b, v.Value)
		if b, err = appendPairs16(b, v.Fields); err != nil {
			return nil, err
		}
	}
	return appendPairs32(b, s.General)
}

// Decode parses a frame payload into its message. The returned
// message owns all of its memory: every string and pair list is copied
// out of payload, so callers may reuse the payload buffer (see
// ReadFrameBuf) as soon as Decode returns.
func Decode(payload []byte) (Msg, error) {
	d := decoder{b: payload}
	kind := d.u8()
	seq := d.u64()
	switch kind {
	case KindUpdate:
		//striplint:ignore alloc-in-hotpath -- the decoded message is the API's return value; one boxed message per frame is the decode contract
		m := &UpdateMsg{Sequence: seq}
		m.Generated = int64(d.u64())
		m.Value = d.f64()
		m.Importance = strip.Importance(d.u8())
		flags := d.u8()
		m.Partial = flags&flagPartial != 0
		m.Object = d.str()
		m.Fields = d.pairs16()
		return finish(&d, m)
	case KindBatch:
		//striplint:ignore alloc-in-hotpath -- the decoded message is the API's return value; one boxed message per frame is the decode contract
		m := &BatchMsg{Sequence: seq}
		m.Writes = d.pairs32()
		return finish(&d, m)
	case KindSnapshot:
		//striplint:ignore alloc-in-hotpath -- the decoded message is the API's return value; snapshots are bootstrap-rare
		m := &SnapshotMsg{Snap: strip.Snapshot{Seq: seq}}
		n := d.count32(minViewBytes)
		for i := 0; i < n && d.err == nil; i++ {
			var v strip.SnapshotView
			v.Name = d.str()
			v.Importance = strip.Importance(d.u8())
			v.Generated = nanosGen(int64(d.u64()))
			v.Value = d.f64()
			v.Fields = d.pairs16()
			m.Snap.Views = append(m.Snap.Views, v)
		}
		m.Snap.General = d.pairs32()
		return finish(&d, m)
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrMalformed, kind)
	}
}

// finish validates that the payload was consumed exactly.
func finish(d *decoder, m Msg) (Msg, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b)-d.off)
	}
	return m, nil
}

// genNanos converts a generation time to wire nanoseconds (zero time
// stays zero).
func genNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// nanosGen is the inverse of genNanos.
func nanosGen(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// minimum encoded sizes, used to reject absurd element counts before
// allocating.
const (
	minPairBytes = 2 + 8             // empty key + value
	minViewBytes = 2 + 1 + 8 + 8 + 2 // empty name + importance + gen + value + field count
)

// decoder is a bounds-checked cursor over a payload. The first short
// read latches err and every later read returns zero values, so
// decoding malformed input can never panic or over-read.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrMalformed, n, d.off, len(d.b))
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	//striplint:ignore alloc-in-hotpath -- decode must copy out of the caller's reused read buffer (ReadFrameBuf aliases it)
	return string(b)
}

// count32 reads an element count and rejects counts that could not
// fit in the remaining payload at minBytes each.
func (d *decoder) count32(minBytes int) int {
	n := int(d.u32())
	if d.err == nil && n*minBytes > len(d.b)-d.off {
		d.err = fmt.Errorf("%w: count %d overruns payload", ErrMalformed, n)
		return 0
	}
	return n
}

func (d *decoder) pair() strip.KeyValue {
	return strip.KeyValue{Key: d.str(), Value: d.f64()}
}

func (d *decoder) pairs16() []strip.KeyValue {
	n := int(d.u16())
	if d.err != nil || n == 0 {
		return nil
	}
	if n*minPairBytes > len(d.b)-d.off {
		d.err = fmt.Errorf("%w: field count %d overruns payload", ErrMalformed, n)
		return nil
	}
	out := make([]strip.KeyValue, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.pair())
	}
	return out
}

func (d *decoder) pairs32() []strip.KeyValue {
	n := d.count32(minPairBytes)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]strip.KeyValue, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.pair())
	}
	return out
}

// appendF64 appends a float64 bit pattern.
func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// appendString appends a uint16-length-prefixed string.
func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: string of %d bytes", ErrFrameTooLarge, len(s))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}

// appendPairs16 appends a uint16-counted pair list.
func appendPairs16(b []byte, kvs []strip.KeyValue) ([]byte, error) {
	if len(kvs) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: %d pairs", ErrFrameTooLarge, len(kvs))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(kvs)))
	return appendPairList(b, kvs)
}

// appendPairs32 appends a uint32-counted pair list.
func appendPairs32(b []byte, kvs []strip.KeyValue) ([]byte, error) {
	b = binary.BigEndian.AppendUint32(b, uint32(len(kvs)))
	return appendPairList(b, kvs)
}

func appendPairList(b []byte, kvs []strip.KeyValue) ([]byte, error) {
	var err error
	for _, kv := range kvs {
		if b, err = appendString(b, kv.Key); err != nil {
			return nil, err
		}
		b = appendF64(b, kv.Value)
	}
	return b, nil
}
