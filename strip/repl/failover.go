package repl

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/strip"
	"repro/strip/elect"
	"repro/strip/obs"
)

// FailoverRole is a node's current replication role under failover
// management.
type FailoverRole string

const (
	// RoleIdle is the startup role: no election has concluded yet.
	RoleIdle FailoverRole = "idle"
	// RolePrimary serves the replication stream for the decided epoch.
	RolePrimary FailoverRole = "primary"
	// RoleReplica follows the decided primary's stream.
	RoleReplica FailoverRole = "replica"
)

// FailoverConfig wires a database to an election node.
type FailoverConfig struct {
	// Node is the election engine this manager obeys. The manager
	// consumes Node.Observe; nothing else should.
	Node *elect.Node
	// ReplAddrOf maps a peer's elect ID to its replication address
	// (the -repl-listen address its Primary would serve on).
	ReplAddrOf func(peerID string) string
	// ListenRepl opens the local replication listener on promotion.
	ListenRepl func() (net.Listener, error)
	// DialRepl overrides how a leader's replication address is dialed
	// (tests gate it with fault.Partition or wrap in fault.ChaosConn);
	// nil means net.Dial tcp.
	DialRepl func(addr string) (net.Conn, error)

	// RingFrames sizes the promoted Primary's resume ring.
	RingFrames int
	// BackoffBase/BackoffMax/Seed parameterize the follower replica's
	// reconnect backoff, exactly as in ReplicaConfig.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Seed        uint64

	// OnRole, when set, observes every role transition (tests and the
	// stripd report hook in here).
	OnRole func(role FailoverRole, epoch uint64)
	// Metrics, when set, registers the manager's role and epoch gauges.
	// The inner Primary/Replica do not register their own series here:
	// a node can be promoted and demoted many times over one process
	// lifetime, and each would try to re-register the same names.
	Metrics *obs.Registry
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Failover keeps one database playing the role its election node
// decided: when the node learns that this process won epoch E, the
// manager adopts E as the database's replication epoch and starts
// serving the stream (promotion); when another node won, it points a
// snapshot-resetting Replica at the winner (demotion or re-point).
// The epoch machinery does the rest — a deposed primary or a stale
// follower presents a cursor from the old history, is refused resume,
// and re-bootstraps from the new primary's snapshot, so failover
// cannot splice two histories together.
type Failover struct {
	db   *strip.DB
	cfg  FailoverConfig
	logf func(string, ...any)

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	role    FailoverRole // guarded by mu
	epoch   uint64       // guarded by mu; epoch of the last applied decision
	leader  string       // guarded by mu; elect ID of the current leader
	primary *Primary     // guarded by mu; serving side when RolePrimary
	replica *Replica     // guarded by mu; importing side when RoleReplica
	closed  bool         // guarded by mu
}

// StartFailover attaches a manager to the database and begins obeying
// the election node's decisions. Close stops it (and whichever of
// Primary/Replica it is running); it does not close the database or
// the node.
func StartFailover(db *strip.DB, cfg FailoverConfig) (*Failover, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("repl: FailoverConfig needs Node")
	}
	if cfg.ReplAddrOf == nil {
		return nil, fmt.Errorf("repl: FailoverConfig needs ReplAddrOf")
	}
	if cfg.ListenRepl == nil {
		return nil, fmt.Errorf("repl: FailoverConfig needs ListenRepl")
	}
	f := &Failover{
		db:   db,
		cfg:  cfg,
		logf: cfg.Logf,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		role: RoleIdle,
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("strip_failover_is_primary",
			"1 when this node is the elected primary, else 0", func() float64 {
				role, _ := f.Role()
				if role == RolePrimary {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("strip_failover_epoch",
			"epoch of the last applied election decision (0 while idle)", func() float64 {
				_, epoch := f.Role()
				return float64(epoch)
			})
	}
	go f.run()
	return f, nil
}

// Role returns the current role and the epoch of the decision that
// produced it (zero while idle).
func (f *Failover) Role() (FailoverRole, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.role, f.epoch
}

// Close stops the manager and tears down whichever side it runs.
func (f *Failover) Close() error {
	if f.markClosed() {
		close(f.stop)
	}
	<-f.done
	return nil
}

// markClosed flips closed and reports whether this call did the flip.
func (f *Failover) markClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false
	}
	f.closed = true
	return true
}

// run is the decision loop.
func (f *Failover) run() {
	defer close(f.done)
	defer f.teardown()
	for {
		select {
		case <-f.stop:
			return
		case d := <-f.cfg.Node.Observe():
			f.apply(d)
		}
	}
}

// teardown closes whichever side is live.
func (f *Failover) teardown() {
	primary, replica := f.take()
	if primary != nil {
		primary.Close()
	}
	if replica != nil {
		replica.Close()
	}
}

// take detaches the live primary/replica from the state so teardown
// and transitions close them outside the lock.
func (f *Failover) take() (*Primary, *Replica) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, r := f.primary, f.replica
	f.primary, f.replica = nil, nil
	return p, r
}

// apply executes one decision. Decisions arrive in increasing epoch
// order from one node, but a decision at or below the last applied
// epoch is skipped defensively — replaying a role change for an old
// epoch could demote a legitimately promoted primary.
func (f *Failover) apply(d elect.Decision) {
	self, alreadyPrimary, ok := f.admit(d)
	if !ok {
		return
	}
	switch {
	case alreadyPrimary:
		// Re-elected with a higher epoch (e.g. after a partition the
		// quorum re-confirmed us). Adopt the epoch; the running
		// Primary picks it up on the next handshake, and every
		// follower from the old epoch re-bootstraps.
		if err := f.db.AdoptReplicationEpoch(d.Epoch); err != nil {
			f.logf("repl: failover epoch adoption failed: %v", err)
		}
		f.setRole(RolePrimary, d.Epoch)
	case self:
		f.promote(d)
	default:
		f.follow(d)
	}
}

// admit records a decision's epoch and leader and reports how to act
// on it: self means this node won, alreadyPrimary that it was already
// serving. ok is false for a stale decision or a closed manager.
func (f *Failover) admit(d elect.Decision) (self, alreadyPrimary, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || d.Epoch <= f.epoch {
		return false, false, false
	}
	self = d.Leader == f.selfID()
	alreadyPrimary = self && f.primary != nil
	f.epoch = d.Epoch
	f.leader = d.Leader
	return self, alreadyPrimary, true
}

// selfID is the election node's own peer ID.
func (f *Failover) selfID() string { return f.cfg.Node.Self() }

// promote makes this node the primary for the decided epoch: stop
// following, adopt the minted epoch, serve the stream.
func (f *Failover) promote(d elect.Decision) {
	primary, replica := f.take()
	if primary != nil {
		primary.Close()
	}
	if replica != nil {
		replica.Close()
	}
	if err := f.db.AdoptReplicationEpoch(d.Epoch); err != nil {
		f.logf("repl: failover epoch adoption failed: %v", err)
		return
	}
	// Make the promoted state durable under the new epoch before
	// serving it: recovery then replays what the followers will see.
	if err := f.db.Checkpoint(); err != nil {
		f.logf("repl: post-promotion checkpoint failed: %v", err)
	}
	ln, err := f.cfg.ListenRepl()
	if err != nil {
		f.logf("repl: promotion listen failed: %v", err)
		return
	}
	p := NewPrimary(f.db, PrimaryConfig{RingFrames: f.cfg.RingFrames, Logf: f.cfg.Logf})
	go func() {
		if err := p.Serve(ln); err != nil {
			f.logf("repl: promoted primary serve: %v", err)
		}
	}()
	if !f.adoptPrimary(p) {
		p.Close()
		return
	}
	f.logf("repl: promoted to primary for epoch %d", d.Epoch)
	f.setRole(RolePrimary, d.Epoch)
}

// follow points this node's replica at the decided leader, demoting
// it first if it was the primary. The replica starts with a cold
// cursor and ResetSnapshots set, so its first frame is a snapshot
// that replaces — not merges into — the local state.
func (f *Failover) follow(d elect.Decision) {
	primary, replica := f.take()
	if primary != nil {
		primary.Close()
		f.logf("repl: demoted: epoch %d belongs to %s", d.Epoch, d.Leader)
	}
	if replica != nil {
		replica.Close()
	}
	addr := f.cfg.ReplAddrOf(d.Leader)
	if addr == "" {
		f.logf("repl: no replication address for leader %s", d.Leader)
		return
	}
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	if f.cfg.DialRepl != nil {
		dial = func() (net.Conn, error) { return f.cfg.DialRepl(addr) }
	}
	r, err := StartReplica(f.db, ReplicaConfig{
		Dial:           dial,
		BackoffBase:    f.cfg.BackoffBase,
		BackoffMax:     f.cfg.BackoffMax,
		Seed:           f.cfg.Seed,
		ResetSnapshots: true,
		Logf:           f.cfg.Logf,
	})
	if err != nil {
		f.logf("repl: failover replica start failed: %v", err)
		return
	}
	if !f.adoptReplica(r) {
		r.Close()
		return
	}
	f.setRole(RoleReplica, d.Epoch)
}

// adoptPrimary stores the serving side, unless the manager closed
// while it was being built (the caller then closes it).
func (f *Failover) adoptPrimary(p *Primary) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false
	}
	f.primary = p
	return true
}

// adoptReplica stores the importing side, unless the manager closed
// while it was being built (the caller then closes it).
func (f *Failover) adoptReplica(r *Replica) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false
	}
	f.replica = r
	return true
}

// setRole records and announces a transition.
func (f *Failover) setRole(role FailoverRole, epoch uint64) {
	f.mu.Lock()
	f.role = role
	f.mu.Unlock()
	if f.cfg.OnRole != nil {
		f.cfg.OnRole(role, epoch)
	}
}
