package repl

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/strip"
	"repro/strip/fault"
)

// chaosRig wraps both ends of the replication link in seeded
// ChaosConns: the primary's accepted connections (the frame stream,
// where flips and partial writes matter) and the replica's dialed
// connections (the resume handshake). Each wrapped connection gets a
// distinct but seed-determined fault stream; the rig counts injected
// faults and can switch the whole link to passthrough so a test can
// let the system converge.
type chaosRig struct {
	base fault.ConnChaos

	off    atomic.Bool
	faults atomic.Uint64

	mu    sync.Mutex
	seq   uint64
	conns []*fault.ChaosConn
}

func (r *chaosRig) wrap(conn net.Conn) net.Conn {
	if r.off.Load() {
		return conn
	}
	cfg := r.base
	cfg.OnFault = func(side, kind string, arg int) { r.faults.Add(1) }
	r.mu.Lock()
	r.seq++
	cfg.Seed = r.base.Seed + r.seq
	cc := fault.WrapConn(conn, cfg)
	r.conns = append(r.conns, cc)
	r.mu.Unlock()
	return cc
}

// disable turns chaos off on every live connection and all future ones.
func (r *chaosRig) disable() {
	r.off.Store(true)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		c.Disable()
	}
}

// chaosListener wraps every accepted connection in the rig's chaos.
type chaosListener struct {
	net.Listener
	rig *chaosRig
}

func (l *chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.rig.wrap(conn), nil
}

// TestReplicaChaosConvergence runs a replication link whose every
// connection suffers seeded resets, partial writes, bit flips and
// latency while the primary streams updates and commits batches. The
// CRC-framed protocol plus the resume handshake must absorb every
// injected fault; once the chaos stops, the replica must converge
// byte-identically with the primary.
func TestReplicaChaosConvergence(t *testing.T) {
	primary := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	objects := []string{"fx/a", "fx/b", "fx/c"}
	for _, o := range objects {
		if err := primary.DefineView(o, strip.High); err != nil {
			t.Fatal(err)
		}
	}

	rig := &chaosRig{base: fault.ConnChaos{
		Seed:     7,
		Reset:    0.02,
		Partial:  0.05,
		Flip:     0.05,
		MaxDelay: 200 * time.Microsecond,
	}}

	p := NewPrimary(primary, PrimaryConfig{RingFrames: 64})
	t.Cleanup(func() { p.Close() })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(&chaosListener{Listener: l, rig: rig})
	addr := l.Addr().String()

	replica := openDB(t, strip.Config{Policy: strip.UpdatesFirst})
	rep, err := StartReplica(replica, ReplicaConfig{
		Dial: func() (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return rig.wrap(conn), nil
		},
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })

	// Stream through the chaos: interleave view updates and committed
	// batches so both frame kinds cross the hostile link.
	gen := time.Now()
	for round := 0; round < 40; round++ {
		gen = feedUpdates(t, primary, objects, 5, gen)
		execSet(t, primary, "acct", float64(round))
		time.Sleep(time.Millisecond)
	}
	if rig.faults.Load() == 0 {
		t.Fatal("chaos injected no faults; the run exercised nothing")
	}

	// Stop the chaos and require byte-identical convergence.
	rig.disable()
	waitFor(t, 10*time.Second, "chaos convergence", func() bool {
		_, uu := replica.ReplicaLag()
		return uu == 0 && bytes.Equal(encodedState(t, primary), encodedState(t, replica))
	})
	t.Logf("converged after %d injected faults across %d connections",
		rig.faults.Load(), rig.seq)
}
