package repl

import (
	"math/rand/v2"
	"time"
)

// backoff produces the replica's reconnect delays: exponential
// doubling from base to max, with a multiplicative jitter drawn from
// an injected seeded PCG so a given seed yields one reproducible
// delay sequence (and striplint's determinism rules see no global
// randomness).
type backoff struct {
	base   time.Duration
	max    time.Duration
	jitter float64 // fraction of the delay randomized, in [0, 1)
	rng    *rand.Rand
	n      int // consecutive failures so far
}

// newBackoff returns a backoff policy seeded deterministically.
func newBackoff(base, max time.Duration, jitter float64, seed uint64) *backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = 100 * base
	}
	if jitter < 0 || jitter >= 1 {
		jitter = 0.2
	}
	return &backoff{
		base:   base,
		max:    max,
		jitter: jitter,
		rng:    rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// next returns the delay before the next attempt and advances the
// failure count.
func (b *backoff) next() time.Duration {
	d := b.base
	for i := 0; i < b.n && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.n++
	// Scale by a factor in [1-jitter, 1+jitter).
	f := 1 - b.jitter + 2*b.jitter*b.rng.Float64()
	return time.Duration(float64(d) * f)
}

// reset clears the failure count after a healthy session.
func (b *backoff) reset() { b.n = 0 }
