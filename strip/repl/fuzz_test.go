package repl

import (
	"bytes"
	"io"
	"testing"
)

// seedPayloads are valid encodings plus boundary junk, the corpus both
// fuzzers start from.
func seedPayloads(tb testing.TB) [][]byte {
	up, err := EncodeEvent(testUpdateEvent())
	if err != nil {
		tb.Fatalf("seed encode: %v", err)
	}
	ba, err := EncodeEvent(testBatchEvent())
	if err != nil {
		tb.Fatalf("seed encode: %v", err)
	}
	sn, err := EncodeSnapshot(testSnapshot())
	if err != nil {
		tb.Fatalf("seed encode: %v", err)
	}
	return [][]byte{
		up, ba, sn,
		{},
		{KindUpdate},
		{KindBatch, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF},
		{KindSnapshot, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF},
		bytes.Repeat([]byte{0xFF}, 64),
	}
}

// FuzzFrameDecode asserts Decode's contract on arbitrary payloads:
// return a message or an error, never panic, never both nil.
func FuzzFrameDecode(f *testing.F) {
	for _, p := range seedPayloads(f) {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		msg, err := Decode(payload)
		if err == nil && msg == nil {
			t.Fatalf("Decode returned neither message nor error")
		}
		if err != nil && msg != nil {
			t.Fatalf("Decode returned a partial message alongside error %v", err)
		}
	})
}

// FuzzReadFrame asserts ReadFrame's contract on arbitrary byte
// streams: errors, never panics, and an accepted payload survives a
// write/read round trip.
func FuzzReadFrame(f *testing.F) {
	for _, p := range seedPayloads(f) {
		var buf bytes.Buffer
		if WriteFrame(&buf, p) == nil {
			f.Add(buf.Bytes())
		}
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, stream []byte) {
		payload, err := ReadFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("accepted payload rejected on re-write: %v", err)
		}
		again, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-read of re-written frame: %v", err)
		}
		if !bytes.Equal(payload, again) {
			t.Fatalf("payload changed across write/read round trip")
		}
	})
}

// FuzzFrameStream feeds ReadFrame from a stream of several frames with
// arbitrary tails: every frame read before the error must be one that
// WriteFrame produced.
func FuzzFrameStream(f *testing.F) {
	var pipe bytes.Buffer
	for _, p := range seedPayloads(f) {
		_ = WriteFrame(&pipe, p)
	}
	f.Add(pipe.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for {
			payload, err := ReadFrame(r)
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(payload) == 0 || len(payload) > MaxFrame {
				t.Fatalf("ReadFrame returned out-of-bounds payload of %d bytes", len(payload))
			}
		}
	})
}
