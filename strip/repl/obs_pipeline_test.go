package repl

import (
	"net"
	"testing"
	"time"

	"repro/strip"
	"repro/strip/fault"
	"repro/strip/obs"
)

// TestPipelineTraceSpanCompleteness drives one update and one durable
// commit through every pipeline stage — TCP decode, queue wait,
// install, trigger, WAL append and fsync, replication publish on the
// primary; replicated apply on the replica — and checks that each
// stage's latency histogram recorded it on the right database's
// registry, and that the primary's trace ring captured the trip.
func TestPipelineTraceSpanCompleteness(t *testing.T) {
	regP := obs.NewRegistry()
	primary := openDB(t, strip.Config{
		Policy:     strip.UpdatesFirst,
		MaxAge:     time.Second,
		WALPath:    "wal.log",
		FS:         fault.NewMemFS(),
		Metrics:    regP,
		TraceDepth: 16,
	})
	if err := primary.DefineView("px", strip.Low); err != nil {
		t.Fatal(err)
	}
	// The trigger span is observed only while tracing is active and a
	// trigger actually runs; give each database a trigger (and the
	// replica below a trace ring) so the stage fires.
	if err := primary.OnInstall("", func(strip.Entry) {}); err != nil {
		t.Fatal(err)
	}

	// The update-line listener: feeding through it is what exercises
	// the decode stage.
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	go primary.Serve(fl)

	_, replAddr := servePrimary(t, primary, PrimaryConfig{Metrics: regP})

	regR := obs.NewRegistry()
	replica := openDB(t, strip.Config{
		Policy:     strip.UpdatesFirst,
		MaxAge:     time.Second,
		Metrics:    regR,
		TraceDepth: 16,
	})
	if err := replica.OnInstall("", func(strip.Entry) {}); err != nil {
		t.Fatal(err)
	}
	r, err := StartReplica(replica, ReplicaConfig{Addr: replAddr, Metrics: regR})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	// Wait until the replica has bootstrapped before feeding: the
	// replica_apply span is only observed for streamed events, and an
	// update installed pre-connect reaches the replica inside the
	// bootstrap snapshot instead.
	waitFor(t, 5*time.Second, "replica bootstrap", func() bool {
		v, _ := regR.Value("strip_repl_replica_frames_total")
		return v >= 1
	})

	conn, err := net.Dial("tcp", fl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := strip.WriteUpdate(conn, strip.Update{
		Object: "px", Value: 101.5, Generated: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A committed Set exercises the WAL append span; Sync the fsync.
	res := primary.Exec(strip.TxnSpec{
		Name:     "write",
		Value:    1,
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *strip.Tx) error {
			tx.Set("k", 7)
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("txn state = %v (%v)", res.State, res.Err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}

	count := func(reg *obs.Registry, stage string) uint64 {
		h, ok := reg.HistogramFor("strip_pipeline_" + stage + "_seconds")
		if !ok {
			t.Fatalf("registry has no histogram for stage %q", stage)
		}
		return h.Count()
	}
	primaryStages := []string{"decode", "queue_wait", "install", "trigger", "wal_append", "wal_fsync", "repl_publish"}
	waitFor(t, 5*time.Second, "primary stage spans", func() bool {
		for _, s := range primaryStages {
			if count(regP, s) == 0 {
				return false
			}
		}
		return true
	})
	replicaStages := []string{"replica_apply", "queue_wait", "install", "trigger"}
	waitFor(t, 5*time.Second, "replica stage spans", func() bool {
		for _, s := range replicaStages {
			if count(regR, s) == 0 {
				return false
			}
		}
		return true
	})

	traces := primary.Traces()
	if len(traces) == 0 {
		t.Fatal("primary recorded no traces")
	}
	for _, tr := range traces {
		if tr.Spans[obs.StageInstall] < 0 || tr.Spans[obs.StageTrigger] < 0 {
			t.Errorf("trace seq %d missing install/trigger span: %v", tr.Seq, tr.Spans)
		}
	}
	// The replica never publishes (no sink attached), so its publish
	// stage must stay at zero — spans land on the side that did the
	// work, not wherever a shared registry happened to be.
	if got := count(regR, "repl_publish"); got != 0 {
		t.Errorf("replica repl_publish count = %d, want 0", got)
	}
}
