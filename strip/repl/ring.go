package repl

import (
	"errors"
	"sync"
)

// Ring errors, returned by awaitFrom.
var (
	// errTooOld reports that the requested sequence has fallen off the
	// ring (or never existed here); the caller must bootstrap the
	// replica with a snapshot instead.
	errTooOld = errors.New("repl: sequence no longer in ring")
	// errRingClosed reports the primary shut down.
	errRingClosed = errors.New("repl: ring closed")
	// errConnGone reports the reader's connection died while it waited
	// for frames (see awaitFrom's gone parameter).
	errConnGone = errors.New("repl: connection lost while waiting")
)

// ring is the primary's bounded in-memory frame log: the most recent
// encoded frames, indexed by their contiguous replication sequence.
// Writers append in sequence order; readers (one goroutine per
// replica connection) block on a condition variable until frames past
// their cursor exist. Appended frames are immutable, so readers share
// the stored buffers without copying.
type ring struct {
	// cond signals appends and close to blocked readers; it wraps mu
	// and is set once at construction.
	cond *sync.Cond

	mu     sync.Mutex
	frames [][]byte // guarded by mu; circular, frames[(head+i)%len]
	head   int      // guarded by mu
	count  int      // guarded by mu
	first  uint64   // guarded by mu; seq of frames[head], valid when count > 0
	next   uint64   // guarded by mu; seq the next append is expected to carry
	closed bool     // guarded by mu
}

// newRing returns a ring holding up to capacity frames, expecting its
// first append to carry sequence next.
func newRing(capacity int, next uint64) *ring {
	if capacity <= 0 {
		capacity = 4096
	}
	r := &ring{frames: make([][]byte, capacity), next: next}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// append stores one encoded frame under sequence seq and wakes
// waiting readers. Out-of-order sequences reset the ring to start at
// seq: history that is no longer contiguous is useless for resume,
// and dropping it makes stale readers fall back to a snapshot.
func (r *ring) append(seq uint64, frame []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if r.count > 0 && seq != r.first+uint64(r.count) {
		r.head, r.count = 0, 0
	}
	if r.count == 0 {
		r.first = seq
	}
	if r.count == len(r.frames) {
		// Full: the oldest frame falls off.
		r.frames[r.head] = nil
		r.head = (r.head + 1) % len(r.frames)
		r.first++
		r.count--
	}
	r.frames[(r.head+r.count)%len(r.frames)] = frame
	r.count++
	r.next = seq + 1
	r.cond.Broadcast()
}

// resumable reports whether a reader at sequence from (wanting from,
// from+1, ...) can be served from the ring without a snapshot.
func (r *ring) resumable(from uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return from == r.next
	}
	return from >= r.first && from <= r.first+uint64(r.count)
}

// awaitFrom returns the stored frames from sequence from onward,
// blocking while none exist yet. It returns errTooOld when from has
// fallen off the ring (snapshot required), errRingClosed after close,
// and errConnGone once gone reports true (a connection watchdog sets
// its flag and calls wake, so a reader on a quiet primary exits
// instead of lingering until the next append). A nil gone never
// cancels.
func (r *ring) awaitFrom(from uint64, gone func() bool) ([][]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, errRingClosed
		}
		if gone != nil && gone() {
			return nil, errConnGone
		}
		if r.count == 0 {
			if from != r.next {
				return nil, errTooOld
			}
		} else if from < r.first || from > r.first+uint64(r.count) {
			return nil, errTooOld
		} else if from < r.first+uint64(r.count) {
			out := make([][]byte, 0, r.first+uint64(r.count)-from)
			for i := int(from - r.first); i < r.count; i++ {
				out = append(out, r.frames[(r.head+i)%len(r.frames)])
			}
			return out, nil
		}
		r.cond.Wait()
	}
}

// close wakes every waiting reader with errRingClosed.
func (r *ring) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.cond.Broadcast()
}

// wake rouses every blocked reader so it re-checks its cancellation
// condition; readers whose condition still holds go back to waiting.
func (r *ring) wake() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cond.Broadcast()
}
