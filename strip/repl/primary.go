package repl

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/strip"
	"repro/strip/obs"
)

// PrimaryConfig configures the publishing side.
type PrimaryConfig struct {
	// RingFrames bounds the in-memory frame log. A replica that falls
	// further behind than this is re-bootstrapped with a snapshot.
	// Default 4096.
	RingFrames int
	// Metrics, when set, registers the primary's series (events
	// captured, snapshots served, live connections) into the registry —
	// typically the same one the database registers into.
	Metrics *obs.Registry
	// Logf receives connection-level diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Primary publishes a database's replication stream. It attaches to
// the database as its replication sink, keeps the bounded frame ring,
// and serves the frame protocol to replicas:
//
//	replica → primary:  one text line, "RESUME <seq> <epoch>" (the
//	                    highest sequence the replica holds and the
//	                    epoch of the history it came from; "RESUME 0 0"
//	                    when cold) or "SNAPSHOT" (force a bootstrap)
//	primary → replica:  one text line, "EPOCH <epoch>" (the primary
//	                    database's replication epoch), then binary
//	                    frames (see WriteFrame), starting with a
//	                    snapshot frame when the replica's epoch is not
//	                    this database's or its sequence is not
//	                    resumable from the ring
//
// The epoch exchange is what makes resume safe across primary
// restarts: a restarted primary process numbers a brand-new history
// from zero, and without the epoch check a surviving replica whose
// old cursor happens to fall inside the new ring would silently
// splice two unrelated histories together. A cold replica presents
// epoch 0, which matches no database and therefore always bootstraps
// from a snapshot — including every bit of primary state that
// predates the stream (WAL-recovered data, installs before the
// Primary attached, views defined but never updated).
type Primary struct {
	db   *strip.DB
	ring *ring
	logf func(string, ...any)
	wg   sync.WaitGroup

	// events counts captured replication events, snapshots the
	// bootstrap payloads served; both count whether or not a registry
	// is attached.
	events    *obs.Counter
	snapshots *obs.Counter

	mu     sync.Mutex
	ln     net.Listener          // guarded by mu
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
}

// NewPrimary attaches a Primary to the database and starts capturing
// its replication stream. Call Serve to accept replicas and Close to
// detach.
func NewPrimary(db *strip.DB, cfg PrimaryConfig) *Primary {
	p := &Primary{
		db:        db,
		logf:      cfg.Logf,
		conns:     make(map[net.Conn]struct{}),
		events:    obs.NewCounter(),
		snapshots: obs.NewCounter(),
	}
	if p.logf == nil {
		p.logf = func(string, ...any) {}
	}
	if reg := cfg.Metrics; reg != nil {
		reg.CounterFunc("strip_repl_primary_events_total",
			"replication events captured into the frame ring", p.events.Value)
		reg.CounterFunc("strip_repl_primary_snapshots_total",
			"bootstrap snapshots served to replicas", p.snapshots.Value)
		reg.GaugeFunc("strip_repl_primary_connections",
			"live replica connections", func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				return float64(len(p.conns))
			})
	}
	p.ring = newRing(cfg.RingFrames, db.Sequence()+1)
	db.SetReplicationSink(p.publish)
	return p
}

// publish is the database's replication sink: encode and retain. It
// runs inside the database's write lock and must not call back into
// the database.
func (p *Primary) publish(ev strip.ReplEvent) {
	payload, err := EncodeEvent(ev)
	if err != nil {
		// An unencodable event (oversized key) cannot be replicated;
		// drop it loudly. Replicas that resume across the gap are
		// re-bootstrapped by the ring reset.
		//striplint:ignore alloc-in-hotpath -- error exit: an unencodable event is dropped loudly, never on the steady-state publish path
		p.logf("repl: dropping unencodable event seq %d: %v", ev.Seq, err)
		return
	}
	p.ring.append(ev.Seq, payload)
	p.events.Inc()
}

// Serve accepts replica connections on l until Close (returns nil) or
// the listener fails (returns the error). Run it on its own
// goroutine.
func (p *Primary) Serve(l net.Listener) error {
	if !p.register(l) {
		l.Close()
		return errRingClosed
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if p.isClosed() {
				return nil
			}
			return err
		}
		if !p.track(conn) {
			conn.Close()
			return nil
		}
		p.wg.Add(1)
		go p.serveConn(conn)
	}
}

// register adopts the listener, refusing when closed.
func (p *Primary) register(l net.Listener) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.ln = l
	return true
}

// isClosed reports whether Close has run.
func (p *Primary) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// track registers a live connection, refusing when closed.
func (p *Primary) track(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[conn] = struct{}{}
	return true
}

// untrack forgets a finished connection.
func (p *Primary) untrack(conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.conns, conn)
}

// Close detaches from the database, stops the listener, disconnects
// every replica and waits for the connection handlers to exit.
func (p *Primary) Close() error {
	ln, conns, first := p.markClosed()
	if first {
		p.db.SetReplicationSink(nil)
		p.ring.close()
		if ln != nil {
			ln.Close()
		}
		for _, c := range conns {
			c.Close()
		}
	}
	p.wg.Wait()
	return nil
}

// markClosed flips the closed flag and hands back what Close must
// tear down; first reports whether this call was the one that closed.
func (p *Primary) markClosed() (ln net.Listener, conns []net.Conn, first bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, nil, false
	}
	p.closed = true
	conns = make([]net.Conn, 0, len(p.conns))
	for c := range p.conns { //striplint:ignore map-order-leak -- shutdown closes every conn; close order is not observable
		conns = append(conns, c)
	}
	return p.ln, conns, true
}

// serveConn speaks the frame protocol to one replica.
func (p *Primary) serveConn(conn net.Conn) {
	defer p.wg.Done()
	defer p.untrack(conn)

	from, epoch, err := readHandshake(conn)
	if err != nil {
		conn.Close()
		p.logf("repl: bad handshake from %v: %v", conn.RemoteAddr(), err)
		return
	}

	// Watchdog: the replica sends nothing after its handshake, so a
	// completed read means the peer hung up or the link died. Waking
	// the ring lets a handler blocked in awaitFrom on a quiet primary
	// exit now instead of lingering until the next append fails.
	var gone atomic.Bool
	watchdogDone := make(chan struct{})
	go func() {
		defer close(watchdogDone)
		io.Copy(io.Discard, conn)
		gone.Store(true)
		p.ring.wake()
	}()
	defer func() { <-watchdogDone }()
	defer conn.Close()

	w := bufio.NewWriter(conn)
	if _, err := fmt.Fprintf(w, "EPOCH %d\n", p.db.ReplicationEpoch()); err != nil {
		return
	}
	// Per-connection frame scratch: the whole streaming loop reframes
	// payloads through it, so a session allocates one buffer per frame
	// size high-water mark, not one per frame.
	var frameScratch []byte
	writeFrame := func(payload []byte) error {
		buf, err := AppendFrame(frameScratch[:0], payload)
		if err != nil {
			return err
		}
		frameScratch = buf
		_, err = w.Write(buf)
		return err
	}
	// A replica from a different history — a previous primary process,
	// or no history at all (epoch 0, cold) — cannot resume: its
	// sequence numbers describe a state this database never held.
	needSnapshot := epoch != p.db.ReplicationEpoch()
	for {
		if needSnapshot || !p.ring.resumable(from) {
			// Bootstrap with a consistent snapshot and resume the
			// stream right after the snapshot's sequence.
			needSnapshot = false
			snap := p.db.ReplicaSnapshot()
			payload, err := EncodeSnapshot(snap)
			if err != nil {
				p.logf("repl: snapshot encode failed: %v", err)
				return
			}
			if writeFrame(payload) != nil || w.Flush() != nil {
				return
			}
			p.snapshots.Inc()
			from = snap.Seq + 1
		}
		frames, err := p.ring.awaitFrom(from, gone.Load)
		if err == errTooOld {
			continue // lapsed while waiting: snapshot again
		}
		if err != nil {
			return // ring closed or connection gone
		}
		for _, f := range frames {
			if writeFrame(f) != nil {
				return
			}
		}
		if w.Flush() != nil {
			return
		}
		from += uint64(len(frames))
	}
}

// readHandshake parses the replica's request line into the first
// sequence it wants and the epoch of the history that sequence came
// from. Epoch 0 — a cold replica, or an old-format "RESUME <seq>"
// line — matches no database and forces a snapshot.
func readHandshake(conn net.Conn) (from, epoch uint64, err error) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 256), 1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, 0, err
		}
		return 0, 0, fmt.Errorf("connection closed before handshake")
	}
	fields := strings.Fields(strings.TrimSpace(sc.Text()))
	switch {
	case len(fields) == 1 && fields[0] == "SNAPSHOT":
		return 0, 0, nil
	case (len(fields) == 2 || len(fields) == 3) && fields[0] == "RESUME":
		last, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad RESUME sequence: %v", err)
		}
		if len(fields) == 3 {
			if epoch, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
				return 0, 0, fmt.Errorf("bad RESUME epoch: %v", err)
			}
		}
		return last + 1, epoch, nil
	default:
		return 0, 0, fmt.Errorf("unknown handshake %q", strings.Join(fields, " "))
	}
}
