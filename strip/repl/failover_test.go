package repl

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/strip"
	"repro/strip/elect"
	"repro/strip/fault"
)

// failoverTiming shrinks the election clocks for tests.
func failoverTiming() elect.Timing {
	return elect.Timing{
		ProbeInterval: 20 * time.Millisecond,
		FailAfter:     150 * time.Millisecond,
		PhaseTimeout:  80 * time.Millisecond,
		BackoffBase:   15 * time.Millisecond,
		BackoffMax:    150 * time.Millisecond,
	}
}

// winnerLog cross-checks the tentpole invariant from the outside:
// at most one node may ever report itself primary for a given epoch.
type winnerLog struct {
	mu      sync.Mutex
	byEpoch map[uint64]string
	bad     []string
}

func newWinnerLog() *winnerLog { return &winnerLog{byEpoch: make(map[uint64]string)} }

func (w *winnerLog) promoted(node string, epoch uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if prev, ok := w.byEpoch[epoch]; ok && prev != node {
		w.bad = append(w.bad, fmt.Sprintf("epoch %d claimed by both %s and %s", epoch, prev, node))
		return
	}
	w.byEpoch[epoch] = node
}

func (w *winnerLog) violations() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.bad...)
}

// failNode is one complete failover participant: a database on a
// crashable in-memory filesystem, an election node, and the manager
// tying them together.
type failNode struct {
	id       string // elect address (peer ID)
	replAddr string
	fs       *fault.MemFS
	db       *strip.DB
	node     *elect.Node
	fo       *Failover
}

// role returns the node's current failover role and epoch.
func (n *failNode) role() (FailoverRole, uint64) { return n.fo.Role() }

// kill tears the node down ungracefully, in process-death order:
// manager first (so no re-point races the close), then the election
// node, then the database.
func (n *failNode) kill() {
	n.fo.Close()
	n.node.Close()
	n.db.Close()
}

// failoverRig wires up a full n-node failover group on loopback, all
// dials gated through a swappable partition schedule.
type failoverRig struct {
	t       *testing.T
	peers   []string
	replOf  map[string]string
	nodes   map[string]*failNode
	winners *winnerLog
	part    atomic.Pointer[fault.Partition]
}

// gate routes a dial through the currently installed partition.
func (rig *failoverRig) gate(dial func() (net.Conn, error)) (net.Conn, error) {
	if p := rig.part.Load(); p != nil {
		return p.Dial(dial)()
	}
	return dial()
}

// startNode builds and starts one participant on fs. Restarting a
// crashed node passes the filesystem its previous life left behind,
// so recovery replays the old history's WAL first.
func (rig *failoverRig) startNode(id string, ln net.Listener, fs *fault.MemFS, seed uint64) *failNode {
	t := rig.t
	t.Helper()
	db, err := strip.Open(strip.Config{Policy: strip.UpdatesFirst, WALPath: "wal", FS: fs})
	if err != nil {
		t.Fatalf("Open(%s): %v", id, err)
	}
	for _, o := range []string{"fx/a", "fx/b", "fx/c"} {
		if err := db.DefineView(o, strip.High); err != nil {
			t.Fatalf("DefineView(%s): %v", id, err)
		}
	}
	node, err := elect.NewNode(elect.Config{
		Self:      id,
		Peers:     rig.peers,
		Seed:      seed,
		Timing:    failoverTiming(),
		TickEvery: 5 * time.Millisecond,
		IOTimeout: 500 * time.Millisecond,
		StatePath: "elect-ledger",
		FS:        fs,
		Dial: func(addr string) (net.Conn, error) {
			return rig.gate(func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 500*time.Millisecond)
			})
		},
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", id, err)
	}
	go node.Serve(ln)
	n := &failNode{id: id, replAddr: rig.replOf[id], fs: fs, db: db, node: node}
	fo, err := StartFailover(db, FailoverConfig{
		Node:       node,
		ReplAddrOf: func(peer string) string { return rig.replOf[peer] },
		ListenRepl: func() (net.Listener, error) { return net.Listen("tcp", n.replAddr) },
		DialRepl: func(addr string) (net.Conn, error) {
			return rig.gate(func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 500*time.Millisecond)
			})
		},
		RingFrames:  256,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Seed:        seed,
		OnRole: func(role FailoverRole, epoch uint64) {
			if role == RolePrimary {
				rig.winners.promoted(id, epoch)
			}
		},
	})
	if err != nil {
		t.Fatalf("StartFailover(%s): %v", id, err)
	}
	n.fo = fo
	rig.nodes[id] = n
	return n
}

// newFailoverRig boots a 3-node group and returns it once every node
// has a role: one primary, the rest replicas of it.
func newFailoverRig(t *testing.T, seed uint64) *failoverRig {
	t.Helper()
	rig := &failoverRig{
		t:       t,
		replOf:  make(map[string]string),
		nodes:   make(map[string]*failNode),
		winners: newWinnerLog(),
	}
	listeners := make([]net.Listener, 3)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		rig.peers = append(rig.peers, l.Addr().String())
	}
	for _, id := range rig.peers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		addr := l.Addr().String()
		l.Close()
		rig.replOf[id] = addr
	}
	for i, id := range rig.peers {
		rig.startNode(id, listeners[i], fault.NewMemFS(), seed+uint64(i))
	}
	t.Cleanup(func() {
		for _, n := range rig.nodes {
			n.kill()
		}
	})
	// A failed run prints its seed and the scenario-runner command for
	// the same class of schedule, so the failure can be chased outside
	// the test binary.
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("rig seed was %d; scenario repro of this class: go run ./cmd/stripsim -scenario scenarios/failover-kill.yaml -seed %d", seed, seed)
		}
	})
	return rig
}

// awaitRoles waits until exactly one live node is primary at an epoch
// above after, with every other live node following at the same
// epoch, and returns the primary.
func (rig *failoverRig) awaitRoles(after uint64, live []*failNode) *failNode {
	rig.t.Helper()
	var primary *failNode
	waitFor(rig.t, 20*time.Second, "role assignment", func() bool {
		primary = nil
		var epoch uint64
		for _, n := range live {
			role, e := n.role()
			if role == RolePrimary {
				if primary != nil {
					return false
				}
				primary = n
				epoch = e
			}
		}
		if primary == nil || epoch <= after {
			return false
		}
		for _, n := range live {
			if n == primary {
				continue
			}
			role, e := n.role()
			if role != RoleReplica || e != epoch {
				return false
			}
		}
		return true
	})
	return primary
}

// feedAndSettle streams updates and a committed batch through the
// primary and waits for every follower to match it byte for byte.
func (rig *failoverRig) feedAndSettle(primary *failNode, followers []*failNode, round int) {
	t := rig.t
	t.Helper()
	gen := time.Now()
	feedUpdates(t, primary.db, []string{"fx/a", "fx/b", "fx/c"}, 30, gen)
	execSet(t, primary.db, fmt.Sprintf("round/%d", round), float64(round))
	want := encodedState(t, primary.db)
	waitFor(t, 20*time.Second, "follower convergence", func() bool {
		want = encodedState(t, primary.db)
		for _, f := range followers {
			if !bytes.Equal(want, encodedState(t, f.db)) {
				return false
			}
		}
		return true
	})
}

// assertInvariants checks the cross-node safety properties: no
// double-decided epoch anywhere, no two primaries for one epoch.
func (rig *failoverRig) assertInvariants(live []*failNode) {
	t := rig.t
	t.Helper()
	for _, n := range live {
		if conf := n.node.Conflicts(); len(conf) != 0 {
			t.Fatalf("%s observed decision conflicts: %v", n.id, conf)
		}
	}
	if bad := rig.winners.violations(); len(bad) != 0 {
		t.Fatalf("multiple primaries claimed one epoch: %v", bad)
	}
}

// TestFailoverPromotionAndRepoint is the basic tentpole path with a
// healthy network: elect, replicate, kill the primary, re-elect at a
// higher epoch, re-point, converge.
func TestFailoverPromotionAndRepoint(t *testing.T) {
	rig := newFailoverRig(t, 4000)
	all := []*failNode{rig.nodes[rig.peers[0]], rig.nodes[rig.peers[1]], rig.nodes[rig.peers[2]]}
	primary := rig.awaitRoles(0, all)
	_, e1 := primary.role()
	var followers []*failNode
	for _, n := range all {
		if n != primary {
			followers = append(followers, n)
		}
	}
	rig.feedAndSettle(primary, followers, 1)

	primary.kill()
	next := rig.awaitRoles(e1, followers)
	if next == primary {
		t.Fatalf("dead primary re-elected")
	}
	_, e2 := next.role()
	if e2 <= e1 {
		t.Fatalf("new epoch %d not above %d", e2, e1)
	}
	var rest []*failNode
	for _, n := range followers {
		if n != next {
			rest = append(rest, n)
		}
	}
	rig.feedAndSettle(next, rest, 2)
	rig.assertInvariants(followers)
}

// TestFailoverTortureCrashPoints kills the elected primary at each
// enumerated crash point — right after electing, mid-stream, and mid-
// checkpoint (the filesystem crashes partway through the checkpoint's
// write sequence) — with seeded partition windows active on every
// link. Afterwards the survivors must agree on exactly one winner per
// epoch and converge byte-identically once the schedule heals; the
// old primary is then restarted from its crash-frozen disk and must
// re-bootstrap from the new history's snapshot and converge too.
func TestFailoverTortureCrashPoints(t *testing.T) {
	crashPoints := []string{"AfterElect", "MidStream", "MidCheckpoint"}
	for i, cp := range crashPoints {
		cp := cp
		seed := 5000 + uint64(i)*100
		t.Run(cp, func(t *testing.T) {
			runFailoverCrash(t, cp, seed)
		})
	}
}

func runFailoverCrash(t *testing.T, crashPoint string, seed uint64) {
	rig := newFailoverRig(t, seed)
	all := []*failNode{rig.nodes[rig.peers[0]], rig.nodes[rig.peers[1]], rig.nodes[rig.peers[2]]}
	primary := rig.awaitRoles(0, all)
	_, e1 := primary.role()
	var followers []*failNode
	for _, n := range all {
		if n != primary {
			followers = append(followers, n)
		}
	}
	rig.feedAndSettle(primary, followers, 1)

	// Blackhole windows over every link, live while the primary dies.
	part := fault.NewPartition(nil, fault.SeededWindows(seed, 3, 500*time.Millisecond, 20*time.Millisecond, 80*time.Millisecond)...)
	rig.part.Store(part)

	switch crashPoint {
	case "AfterElect":
	case "MidStream":
		// Die with the stream's tail still in flight to the followers.
		gen := time.Now()
		feedUpdates(t, primary.db, []string{"fx/a", "fx/b", "fx/c"}, 60, gen)
		execSet(t, primary.db, "tail", 1)
	case "MidCheckpoint":
		// The filesystem crashes three operations into the checkpoint,
		// freezing a half-written checkpoint on disk.
		var ops atomic.Int64
		primary.fs.SetInjector(func(op fault.Op) (int, error) {
			if ops.Add(1) == 3 {
				primary.fs.Crash()
			}
			return 0, nil
		})
		if err := primary.db.Checkpoint(); err == nil {
			t.Logf("checkpoint survived the crash injection (crash landed after its writes)")
		}
	default:
		t.Fatalf("unknown crash point %q", crashPoint)
	}
	crashOps := primary.fs.Ops()
	primary.kill()

	next := rig.awaitRoles(e1, followers)
	_, e2 := next.role()
	var rest []*failNode
	for _, n := range followers {
		if n != next {
			rest = append(rest, n)
		}
	}

	// Let the schedule heal fully, then require byte-identical
	// convergence of the survivors on the new history.
	for part.Active() || time.Now().Before(part.HealedBy()) {
		time.Sleep(5 * time.Millisecond)
	}
	rig.feedAndSettle(next, rest, 2)

	// Restart the old primary from the disk its crash left behind: it
	// recovers the deposed history, learns the new epoch, and must
	// re-bootstrap from the new primary's snapshot — not resume — and
	// converge byte-identically.
	rebuilt := fault.BuildFS(crashOps, fault.CrashPoint{OpIdx: len(crashOps)})
	ln, err := net.Listen("tcp", primary.id)
	if err != nil {
		t.Fatalf("relisten %s: %v", primary.id, err)
	}
	revived := rig.startNode(primary.id, ln, rebuilt, seed+7)
	waitFor(t, 20*time.Second, "revived node re-points", func() bool {
		role, e := revived.role()
		return role == RoleReplica && e >= e2
	})
	waitFor(t, 20*time.Second, "revived node re-bootstraps", func() bool {
		return revived.db.Stats().ReplSnapshotsInstalled >= 1
	})
	rig.feedAndSettle(next, []*failNode{rest[0], revived}, 3)
	rig.assertInvariants([]*failNode{next, rest[0], revived})
	t.Logf("crash point %s: epoch %d -> %d, winners %v", crashPoint, e1, e2, rig.winners.byEpoch)
}
