package strip

import (
	"bufio"
	"errors"
	"math"
	"net"
	"strings"
	"testing"
	"time"
)

func TestAggregateCount(t *testing.T) {
	db := queryDB(t)
	got, err := db.Aggregate("SELECT COUNT(*) FROM views")
	if err != nil || got != 4 {
		t.Fatalf("COUNT(*) = %v, %v", got, err)
	}
	got, err = db.Aggregate("SELECT COUNT(*) FROM views WHERE stale")
	if err != nil || got != 1 {
		t.Fatalf("stale COUNT = %v, %v", got, err)
	}
}

func TestAggregateAvgSumMinMax(t *testing.T) {
	db := queryDB(t) // values 100, 200, 50, 75
	cases := []struct {
		q    string
		want float64
	}{
		{"SELECT AVG(value) FROM views", 106.25},
		{"SELECT SUM(value) FROM views", 425},
		{"SELECT MIN(value) FROM views", 50},
		{"SELECT MAX(value) FROM views", 200},
		{"SELECT SUM(value) FROM views WHERE object LIKE 'FX%'", 300},
		{"SELECT MAX(field.bid) FROM views", 199.5},
	}
	for _, c := range cases {
		got, err := db.Aggregate(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestAggregateEmptySelection(t *testing.T) {
	db := queryDB(t)
	got, err := db.Aggregate("SELECT COUNT(*) FROM views WHERE value > 1e9")
	if err != nil || got != 0 {
		t.Fatalf("empty COUNT = %v, %v", got, err)
	}
	got, err = db.Aggregate("SELECT SUM(value) FROM views WHERE value > 1e9")
	if err != nil || got != 0 {
		t.Fatalf("empty SUM = %v, %v", got, err)
	}
	for _, q := range []string{
		"SELECT AVG(value) FROM views WHERE value > 1e9",
		"SELECT MIN(value) FROM views WHERE value > 1e9",
		"SELECT MAX(value) FROM views WHERE value > 1e9",
	} {
		got, err := db.Aggregate(q)
		if err != nil || !math.IsNaN(got) {
			t.Fatalf("%s = %v, %v, want NaN", q, got, err)
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	db := queryDB(t)
	for _, q := range []string{
		"SELECT MEDIAN(value) FROM views",
		"SELECT COUNT(value) FROM views",
		"SELECT AVG(*) FROM views",
		"SELECT AVG(object) FROM views", // non-numeric field
		"SELECT AVG(value FROM views",
		"SELECT AVG(value) FROM tables",
		"SELECT AVG(value) FROM views trailing",
		"SELECT AVG(value) FROM views WHERE value >",
	} {
		if _, err := db.Aggregate(q); !errors.Is(err, ErrQuery) {
			t.Errorf("Aggregate(%q) = %v, want ErrQuery", q, err)
		}
	}
}

func TestServeQueryProtocol(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("A", High)
	db.DefineView("B", High)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go db.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	now := time.Now()
	WriteUpdate(conn, Update{Object: "A", Value: 10, Generated: now})
	WriteUpdate(conn, Update{Object: "B", Value: 20, Generated: now})
	waitFor(t, 2*time.Second, func() bool { return db.Stats().UpdatesInstalled == 2 })

	r := bufio.NewReader(conn)
	send := func(s string) string {
		if _, err := conn.Write([]byte(s + "\n")); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response to %q: %v", s, err)
		}
		return strings.TrimSpace(line)
	}

	if got := send("QUERY SELECT * FROM views WHERE value > 15"); !strings.HasPrefix(got, "ROW B ") {
		t.Fatalf("QUERY row = %q", got)
	}
	if got, err := r.ReadString('\n'); err != nil || strings.TrimSpace(got) != "OK 1" {
		t.Fatalf("QUERY terminator = %q, %v", got, err)
	}
	if got := send("AGG SELECT SUM(value) FROM views"); got != "VAL 30" {
		t.Fatalf("AGG response = %q", got)
	}
	if got := send("QUERY SELECT nonsense"); !strings.HasPrefix(got, "ERR ") {
		t.Fatalf("bad QUERY response = %q", got)
	}
	if got := send("AGG SELECT nonsense"); !strings.HasPrefix(got, "ERR ") {
		t.Fatalf("bad AGG response = %q", got)
	}
}

func TestWatchSingleObject(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("x", Low)
	db.DefineView("y", Low)
	ch, cancel, err := db.Watch("x", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	db.ApplyUpdate(Update{Object: "y", Value: 1}) // not watched
	db.ApplyUpdate(Update{Object: "x", Value: 2})
	select {
	case e := <-ch:
		if e.Object != "x" || e.Value != 2 {
			t.Fatalf("watched entry = %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no watch delivery")
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel should be closed after cancel")
	}
	cancel() // idempotent
}

func TestWatchAllObjects(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("x", Low)
	db.DefineView("y", Low)
	ch, cancel, err := db.Watch("", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	db.ApplyUpdate(Update{Object: "x", Value: 1})
	db.ApplyUpdate(Update{Object: "y", Value: 2})
	seen := map[string]bool{}
	for len(seen) < 2 {
		select {
		case e := <-ch:
			seen[e.Object] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("only saw %v", seen)
		}
	}
}

func TestWatchLatestWinsOnOverflow(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("x", Low)
	ch, cancel, err := db.Watch("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	base := time.Now()
	for i := 1; i <= 20; i++ {
		db.ApplyUpdate(Update{Object: "x", Value: float64(i), Generated: base.Add(time.Duration(i) * time.Millisecond)})
	}
	waitFor(t, 2*time.Second, func() bool { return db.Stats().UpdatesInstalled == 20 })
	// The single-slot buffer must hold the newest delivery.
	select {
	case e := <-ch:
		if e.Value != 20 {
			t.Fatalf("backlog head = %v, want the latest 20", e.Value)
		}
	case <-time.After(time.Second):
		t.Fatal("nothing delivered")
	}
}

func TestWatchErrors(t *testing.T) {
	db := mustOpen(t, Config{})
	if _, _, err := db.Watch("ghost", 1); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
	db2, _ := Open(Config{})
	db2.Close()
	if _, _, err := db2.Watch("", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed err = %v", err)
	}
}

func TestWatchClosedOnDBClose(t *testing.T) {
	db, _ := Open(Config{})
	db.DefineView("x", Low)
	ch, _, err := db.Watch("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("expected closed channel")
		}
	case <-time.After(time.Second):
		t.Fatal("channel not closed on DB close")
	}
}

func TestWatchDerivedView(t *testing.T) {
	db := mustOpen(t, Config{Policy: UpdatesFirst})
	db.DefineView("a", Low)
	db.DefineDerived("d", []string{"a"}, func(vs []float64) float64 { return vs[0] * 2 })
	ch, cancel, err := db.Watch("d", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	db.ApplyUpdate(Update{Object: "a", Value: 21})
	select {
	case e := <-ch:
		if e.Value != 42 {
			t.Fatalf("derived watch = %v", e.Value)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("derived install not delivered")
	}
}
