package strip

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
	"repro/strip/obs"
)

// Replication support: the primary side of strip/repl observes the
// database through a sink of ReplEvents, and the replica side feeds a
// database through ApplyReplicated / ApplyReplicatedBatch /
// InstallSnapshot.
//
// The database assigns one total order — the replication sequence —
// to everything that changes durable-or-derived-from-stream state:
// every worthy view install and every committed general-data batch
// takes the next sequence number at the moment it is applied, inside
// the same db.mu critical section that applies it. A snapshot taken
// under the same lock is therefore exactly consistent with a sequence
// number: state(S) plus frames S+1, S+2, ... replays to state(S+k)
// with no gaps and no duplicates. A replica of a strip primary is the
// paper's imported materialized view with the primary as the external
// world; its freshness is measured with the paper's own MA and UU
// criteria (see Stats.ReplicaLagSeconds / ReplicaLagUpdates).

// ReplEventKind discriminates replication events.
type ReplEventKind int

const (
	// ReplUpdate is a worthy view install (the update stream).
	ReplUpdate ReplEventKind = iota
	// ReplBatch is a committed general-data write batch (the WAL
	// stream).
	ReplBatch
)

// KeyValue is one key/value pair in deterministic (sorted) encodings.
type KeyValue struct {
	Key   string
	Value float64
}

// ReplEvent is one element of the replication stream, in total order.
type ReplEvent struct {
	// Seq is the replication sequence number; consecutive events have
	// consecutive numbers.
	Seq uint64
	// Kind selects which of the field groups below is meaningful.
	Kind ReplEventKind

	// ReplUpdate fields: the installed view update.
	Object     string
	Importance Importance
	Value      float64
	Fields     []KeyValue // named attributes, sorted by key
	Partial    bool
	Generated  time.Time

	// ReplBatch fields: the committed writes, sorted by key.
	Writes []KeyValue
}

// Snapshot is a consistent cut of the database for replica bootstrap:
// state as of sequence Seq. Views are sorted by name (derived views
// are excluded — a replica recomputes them if it registers the same
// definitions) and General is sorted by key, so equal states encode
// to equal bytes.
type Snapshot struct {
	Seq     uint64
	Views   []SnapshotView
	General []KeyValue
}

// SnapshotView is one view object's state inside a Snapshot.
type SnapshotView struct {
	Name       string
	Importance Importance
	Value      float64
	Generated  time.Time
	Fields     []KeyValue // sorted by key
}

// SetReplicationSink registers fn to receive every replication event,
// in sequence order. The sink runs inside the database's write lock:
// it must be fast and must not call back into the database. Passing
// nil detaches the sink. Sequence numbering continues while no sink
// is attached: the sequence numbers the database's history itself, so
// state changed while detached can never be mistaken for state a
// resuming replica already holds — its cursor lands before the next
// ring base and it falls back to a snapshot.
func (db *DB) SetReplicationSink(fn func(ReplEvent)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.sink = fn
}

// Sequence returns the current replication sequence number: the
// number of replicable state changes applied so far.
func (db *DB) Sequence() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.seq
}

// ReplicationEpoch identifies this database instance's sequence
// history (see Config.ReplicationEpoch). Two databases with different
// epochs share no sequence numbering, and a replica moving between
// them must re-bootstrap from a snapshot.
func (db *DB) ReplicationEpoch() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.epoch
}

// AdoptReplicationEpoch installs an epoch minted outside the database
// — by a strip/elect election deciding (primary, epoch) — replacing
// the instance epoch chosen at Open. A replica promoting itself to
// primary adopts the minted epoch before it starts serving: every
// node still holding a cursor from the old history (the demoted
// primary included) then fails the resume epoch check and
// re-bootstraps from a snapshot, which is what makes automatic
// failover divergence-free. Sequence numbering continues unchanged;
// the epoch renames the history, it does not restart it.
func (db *DB) AdoptReplicationEpoch(epoch uint64) error {
	if epoch == 0 {
		return fmt.Errorf("strip: replication epoch must be nonzero")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.epoch = epoch
	return nil
}

// emitLocked assigns the next sequence number and hands the event to
// the sink when one is attached. Callers hold db.mu for writing;
// emitting inside the critical section that applied the change is
// what makes the sequence a total order and snapshots consistent.
// The repl-publish span — the encode-and-retain cost every write pays
// while a Primary is attached — is measured by the callers
// (installEntry, applyWritesLocked), which already hold clock
// readings this function would otherwise re-take.
func (db *DB) emitLocked(ev ReplEvent) {
	db.seq++
	if db.sink == nil {
		return
	}
	ev.Seq = db.seq
	db.sink(ev)
}

// emitInstallLocked publishes a worthy view install. Callers hold
// db.mu for writing. With no sink attached only the sequence
// advances; building the event would be wasted work on the
// non-replicated hot path.
func (db *DB) emitInstallLocked(u *model.Update, gen time.Time) {
	if db.sink == nil {
		db.seq++
		return
	}
	ev := ReplEvent{
		Kind:       ReplUpdate,
		Object:     db.defs[u.Object].name,
		Importance: db.defs[u.Object].importance,
		Value:      u.Payload,
		Generated:  gen,
	}
	switch fields := u.Aux.(type) {
	case partialFields:
		ev.Partial = true
		ev.Fields = sortedKVs(fields)
	case completeFields:
		ev.Fields = sortedKVs(fields)
	}
	db.emitLocked(ev)
}

// emitBatchLocked publishes a committed write batch. Callers hold
// db.mu for writing.
func (db *DB) emitBatchLocked(writes map[string]float64) {
	if db.sink == nil {
		db.seq++
		return
	}
	db.emitLocked(ReplEvent{Kind: ReplBatch, Writes: sortedKVs(writes)})
}

// emitSnapshotViewLocked re-publishes one view state applied from a
// bootstrap snapshot. Callers hold db.mu for writing. Without this, a
// mid-tier replica that re-bootstraps would apply the snapshot's view
// state silently and a still-resumable downstream replica would never
// see it; publishing each applied view as an ordinary update keeps
// the outgoing stream complete.
func (db *DB) emitSnapshotViewLocked(v SnapshotView) {
	if db.sink == nil {
		db.seq++
		return
	}
	db.emitLocked(ReplEvent{
		Kind:       ReplUpdate,
		Object:     v.Name,
		Importance: v.Importance,
		Value:      v.Value,
		Fields:     v.Fields,
		Generated:  v.Generated,
	})
}

// applyWritesLocked logs, applies and publishes one committed batch
// of general-data writes. Callers hold db.mu for writing. Transaction
// commit and replicated batches share this path, so both appear in
// the WAL and in the replication stream. A batch the WAL cannot
// record fails fast with ErrDurability and is neither applied to
// memory nor published — a replica never sees a batch the primary
// could lose.
func (db *DB) applyWritesLocked(writes map[string]float64) error {
	if db.wal != nil {
		if db.dur.Degraded() {
			return db.degradedErrLocked()
		}
		start := db.nowNanos()
		err := db.wal.appendBatch(writes)
		db.obs.stage[obs.StageWALAppend].Observe(db.nowNanos() - start)
		if err != nil {
			return db.walFailedLocked(err)
		}
	}
	for k, v := range writes {
		db.general[k] = v
	}
	if db.sink != nil {
		start := db.nowNanos()
		db.emitBatchLocked(writes)
		db.obs.stage[obs.StageReplPublish].Observe(db.nowNanos() - start)
	} else {
		db.emitBatchLocked(writes)
	}
	return nil
}

// ApplyReplicated submits one update received from a primary. It
// differs from ApplyUpdate in three ways: an unknown view object is
// defined on the fly with the carried importance (the replica imports
// the primary's schema as it streams), the update is tagged for lag
// accounting, and a full ingest buffer blocks instead of dropping —
// replication applies backpressure to the stream rather than losing
// updates. The update still flows through the normal scheduler queue,
// so the configured policy governs install order on the replica too.
func (db *DB) ApplyReplicated(u Update, imp Importance) error {
	id, err := db.ensureView(u.Object, imp)
	if err != nil {
		return err
	}
	now := db.now()
	gen := u.Generated
	if gen.IsZero() {
		gen = now
	}
	arrival := now.UnixNano()
	//striplint:ignore alloc-in-hotpath -- the update outlives ApplyReplicated by design: it escapes into the scheduler queue and is installed later
	mu := &model.Update{
		Object:      id,
		Class:       model.Importance(imp),
		GenTime:     db.secs(gen),
		ArrivalTime: db.secs(now),
		Payload:     u.Value,
		WallGen:     gen.UnixNano(),
		Replicated:  true,
	}
	if u.Fields != nil {
		if u.Partial {
			mu.Aux = partialFields(copyFields(u.Fields))
		} else {
			mu.Aux = completeFields(copyFields(u.Fields))
		}
	}
	db.mu.Lock()
	db.arrival++
	mu.Seq = db.arrival
	db.lag.Received(id, mu.GenTime)
	db.mu.Unlock()

	select {
	case db.ingestCh <- mu:
		// The replica-apply span: from the frame reaching this database
		// to the update entering the scheduler's ingest queue, including
		// any backpressure wait on a full buffer.
		db.obs.stage[obs.StageReplicaApply].Observe(db.nowNanos() - arrival)
		return nil
	case <-db.stopCh:
		return ErrClosed
	}
}

// ensureView resolves a view name, defining it with the given
// importance when missing. Derived views cannot be fed externally.
func (db *DB) ensureView(name string, imp Importance) (model.ObjectID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if id, ok := db.names[name]; ok {
		if db.defs[id].derived {
			return 0, fmt.Errorf("%w: %q", ErrDerivedUpdate, name)
		}
		return id, nil
	}
	return db.defineViewLocked(name, imp), nil
}

// defineViewLocked registers a view object. Callers hold db.mu for
// writing and have checked the name is unused.
func (db *DB) defineViewLocked(name string, importance Importance) model.ObjectID {
	id := model.ObjectID(len(db.defs))
	db.names[name] = id
	db.defs = append(db.defs, viewDef{name: name, importance: importance})
	db.entries = append(db.entries, viewEntry{})
	db.pending = append(db.pending, 0)
	return id
}

// ApplyReplicatedBatch applies one committed write batch received
// from a primary: it is logged to the WAL, applied to the general
// store and re-published (so replicas can chain), exactly like a
// local transaction commit.
func (db *DB) ApplyReplicatedBatch(writes []KeyValue) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	//striplint:ignore alloc-in-hotpath -- applyWritesLocked takes the batch as a map (the transaction API shape); one map per replicated batch
	m := make(map[string]float64, len(writes))
	for _, kv := range writes {
		m[kv.Key] = kv.Value
	}
	db.stats.ReplBatchesApplied++
	return db.applyWritesLocked(m)
}

// ReplicaSnapshot returns a consistent cut of the database: every
// non-derived view's state, the general store, and the replication
// sequence they correspond to. It is the bootstrap payload served to
// cold replicas, deterministic for equal states.
func (db *DB) ReplicaSnapshot() Snapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Snapshot{Seq: db.seq, General: sortedKVs(db.general)}
	for id, def := range db.defs {
		if def.derived {
			continue
		}
		e := db.entries[id]
		s.Views = append(s.Views, SnapshotView{
			Name:       def.name,
			Importance: def.importance,
			Value:      e.value,
			Generated:  e.generated,
			Fields:     sortedKVs(e.fields),
		})
	}
	sort.Slice(s.Views, func(i, j int) bool { return s.Views[i].Name < s.Views[j].Name })
	return s
}

// InstallSnapshot loads a primary's snapshot into the database:
// missing views are defined, view state newer than the local state is
// installed, and the general pairs are applied as one logged batch.
// It does not touch views the snapshot omits, so a replica can also
// serve local data.
func (db *DB) InstallSnapshot(s Snapshot) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	for _, v := range s.Views {
		id, ok := db.names[v.Name]
		if !ok {
			id = db.defineViewLocked(v.Name, v.Importance)
		} else if db.defs[id].derived {
			continue
		}
		e := &db.entries[id]
		if !v.Generated.After(e.generated) {
			continue
		}
		e.value = v.Value
		e.fields = kvFields(v.Fields)
		e.generated = v.Generated
		db.recordHistoryLocked(id)
		db.lag.Installed(id, db.secs(v.Generated))
		db.emitSnapshotViewLocked(v)
	}
	db.stats.ReplSnapshotsInstalled++
	if len(s.General) == 0 {
		return nil
	}
	//striplint:ignore alloc-in-hotpath -- snapshot install happens once per bootstrap, not per frame
	m := make(map[string]float64, len(s.General))
	for _, kv := range s.General {
		m[kv.Key] = kv.Value
	}
	return db.applyWritesLocked(m)
}

// ResetToSnapshot replaces the database's replicable state with the
// snapshot's, unconditionally: every snapshot view is installed even
// when the local generation is newer (the snapshot IS the new truth),
// non-derived views the snapshot omits are blanked, and the general
// store is replaced wholesale rather than merged. This is failover's
// re-point path — a node that followed (or was) a deposed primary
// adopts the elected primary's state exactly, discarding anything the
// old history wrote that the new one never saw; InstallSnapshot's
// merge semantics would let such divergent writes survive a leader
// change. Durability of the replacement is the caller's concern. The
// replica's reset path deliberately does NOT checkpoint synchronously
// (replication stays ahead of durability by design): a node that
// crashes between the reset and its next checkpoint recovers the old
// history's WAL and rejoins through the failover manager, which
// re-points it at the leader and resets again.
func (db *DB) ResetToSnapshot(s Snapshot) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	//striplint:ignore alloc-in-hotpath -- a reset happens once per failover re-point, never on the per-frame path
	inSnap := make(map[string]bool, len(s.Views))
	for _, v := range s.Views {
		inSnap[v.Name] = true
		id, ok := db.names[v.Name]
		if !ok {
			id = db.defineViewLocked(v.Name, v.Importance)
		} else if db.defs[id].derived {
			continue
		}
		e := &db.entries[id]
		e.value = v.Value
		e.fields = kvFields(v.Fields)
		e.generated = v.Generated
		db.recordHistoryLocked(id)
		db.lag.Installed(id, db.secs(v.Generated))
		db.emitSnapshotViewLocked(v)
	}
	// Blank views from the old history that the new one never defined;
	// their entries stay registered (queued updates may still name the
	// IDs) but hold no state and no generation, so any later install
	// wins. The deposed history's updates still in the scheduler queue
	// would otherwise resurrect as fresher-than-snapshot state.
	for id, def := range db.defs {
		if def.derived || inSnap[def.name] {
			continue
		}
		e := &db.entries[id]
		e.value = 0
		e.fields = nil
		e.generated = time.Time{}
		db.lag.Removed(model.ObjectID(id))
	}
	// Everything already admitted to the scheduler queue predates the
	// reset; the barrier makes installEntry discard it on arrival.
	db.replBarrier = db.arrival
	db.stats.ReplSnapshotsInstalled++
	//striplint:ignore alloc-in-hotpath -- a reset happens once per failover re-point, never on the per-frame path
	general := make(map[string]float64, len(s.General))
	for _, kv := range s.General {
		general[kv.Key] = kv.Value
	}
	db.general = general
	db.emitBatchLocked(general)
	return nil
}

// ReplicaLag returns the aggregate replication lag under the paper's
// two criteria: MA — the seconds by which the most out-of-date view
// trails the newest generation received from the primary — and UU —
// the count of received-but-uninstalled replicated updates.
func (db *DB) ReplicaLag() (maSeconds float64, uuUpdates int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lag.Aggregate()
}

// ObjectLag returns one view object's replication lag (MA seconds and
// UU pending count).
func (db *DB) ObjectLag(name string) (maSeconds float64, uuUpdates int, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.names[name]
	if !ok {
		return 0, 0, ErrUnknownObject
	}
	ma, uu := db.lag.Object(id)
	return ma, uu, nil
}

// sortedKVs flattens a map into key-sorted pairs; nil and empty maps
// return nil.
func sortedKVs(m map[string]float64) []KeyValue {
	if len(m) == 0 {
		return nil
	}
	return appendSortedKVs(make([]KeyValue, 0, len(m)), m)
}

// appendSortedKVs appends the map's pairs to dst (which must be
// empty: callers pass a fresh or length-reset scratch slice) in
// key-sorted order. slices.SortFunc with a capture-free comparison
// keeps the sort itself allocation-free, unlike sort.Slice, which
// boxes the slice and its closure.
func appendSortedKVs(dst []KeyValue, m map[string]float64) []KeyValue {
	for k, v := range m {
		dst = append(dst, KeyValue{Key: k, Value: v})
	}
	slices.SortFunc(dst, func(a, b KeyValue) int {
		return strings.Compare(a.Key, b.Key)
	})
	return dst
}

// kvFields converts sorted pairs back into an attribute map.
func kvFields(kvs []KeyValue) map[string]float64 {
	if len(kvs) == 0 {
		return nil
	}
	//striplint:ignore alloc-in-hotpath -- the entry owns its attribute map; only snapshot installs (bootstrap-rare) reach this on a hot chain
	m := make(map[string]float64, len(kvs))
	for _, kv := range kvs {
		m[kv.Key] = kv.Value
	}
	return m
}
