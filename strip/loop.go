package strip

import (
	"errors"
	"time"

	"repro/internal/model"
	"repro/strip/obs"
)

// loop is the scheduler goroutine: the paper's controller and CPU in
// one. Each pass receives pending arrivals, discards expired updates,
// reaps dead transactions, then chooses between update installation
// and transaction execution according to the policy.
func (db *DB) loop() {
	defer close(db.done)
	for {
		db.drainIngest()
		db.expireQueue()
		db.drainTxnCh()
		db.reapDeadTxns()
		db.publishQueueLen()

		select {
		case <-db.stopCh:
			db.shutdown()
			return
		default:
		}

		switch {
		case db.updateHasPriority():
			db.installNext(db.priorityClass())
		case len(db.ready) > 0:
			db.runNextTxn()
		case db.queue.Len() > 0:
			db.installNext(-1)
		default:
			if !db.idleWait() {
				db.shutdown()
				return
			}
		}
	}
}

// updateHasPriority reports whether queued update work must run before
// any transaction under the configured policy.
func (db *DB) updateHasPriority() bool {
	switch db.cfg.Policy {
	case UpdatesFirst:
		return db.queue.Len() > 0
	case SplitUpdates:
		return db.highPending() > 0
	default:
		return false
	}
}

// priorityClass selects which updates the priority install drains.
func (db *DB) priorityClass() int {
	if db.cfg.Policy == SplitUpdates {
		return int(model.High)
	}
	return -1
}

// highPending counts queued updates to High-importance views. The
// queue stores the model class, which mirrors the view definition.
func (db *DB) highPending() int {
	return db.highCount
}

// drainIngest moves every buffered arrival into the update queue (the
// paper's receive step) and maintains the UU pending counts.
func (db *DB) drainIngest() {
	for {
		select {
		case u := <-db.ingestCh:
			db.enqueue(u)
		default:
			return
		}
	}
}

// enqueue inserts one received update, accounting for coalescing and
// overflow evictions.
func (db *DB) enqueue(u *model.Update) {
	evicted := db.queue.Insert(u)
	db.mu.Lock()
	db.stats.UpdatesReceived++
	db.pending[u.Object]++
	if u.Class == model.High {
		db.highCount++
	}
	for _, ev := range evicted {
		db.pending[ev.Object]--
		if ev.Class == model.High {
			db.highCount--
		}
		if ev.Replicated {
			db.lag.Removed(ev.Object)
		}
		if ev.Object == u.Object {
			// Same object: superseded by a newer generation
			// (coalescing), not a capacity casualty.
			db.stats.UpdatesSkipped++
		} else {
			db.stats.UpdatesEvicted++
		}
	}
	db.mu.Unlock()
	// How many unapplied updates this arrival queues behind: the UU
	// criterion's distribution. The queue is scheduler-owned and
	// enqueue runs on the scheduler goroutine, so Len needs no lock.
	db.obs.uuBacklog.Observe(int64(db.queue.Len()))
}

// expireQueue drops queued updates older than MaxAge (MA only).
func (db *DB) expireQueue() {
	if db.cfg.MaxAge <= 0 || db.queue.Len() == 0 {
		return
	}
	cutoff := db.secs(db.now().Add(-db.cfg.MaxAge))
	expired := db.queue.DiscardOlderGen(cutoff)
	if len(expired) == 0 {
		return
	}
	db.mu.Lock()
	for _, u := range expired {
		db.pending[u.Object]--
		if u.Class == model.High {
			db.highCount--
		}
		if u.Replicated {
			db.lag.Removed(u.Object)
		}
		db.stats.UpdatesExpired++
	}
	db.mu.Unlock()
}

// installNext installs the next queued update of the given class (-1
// for any), honouring the FIFO/LIFO configuration. It reports whether
// an update was found.
func (db *DB) installNext(class int) bool {
	var u *model.Update
	if class >= 0 {
		u = db.popClass(model.Importance(class))
	} else if db.cfg.LIFO {
		u = db.queue.PopNewest()
	} else {
		u = db.queue.PopOldest()
	}
	if u == nil {
		return false
	}
	popNanos := db.nowNanos()
	if u.ArrivalTime > 0 {
		db.obs.stage[obs.StageQueueWait].Observe(popNanos - db.arrivalNanos(u))
	}
	db.mu.Lock()
	db.pending[u.Object]--
	if u.Class == model.High {
		db.highCount--
	}
	db.mu.Unlock()
	db.install(u, db.genTime(u), popNanos)
	return true
}

// popClass removes the next queued update targeting the given
// importance class. The shared queue is generation-ordered across
// classes, so this scans from the configured service end.
func (db *DB) popClass(class model.Importance) *model.Update {
	// Collect non-matching updates to put back; class-targeted pops
	// are only used by SplitUpdates for the High class, which is
	// drained eagerly, so the put-back list stays short-lived. The
	// scratch lives on the DB (scheduler-owned) so repeated scans
	// reuse one buffer.
	back := db.popBack[:0]
	var found *model.Update
	for {
		var u *model.Update
		if db.cfg.LIFO {
			u = db.queue.PopNewest()
		} else {
			u = db.queue.PopOldest()
		}
		if u == nil {
			break
		}
		if u.Class == class {
			found = u
			break
		}
		back = append(back, u)
	}
	for _, u := range back {
		db.queue.Insert(u)
	}
	// Clear the references before parking the scratch: a retained
	// pointer would keep an installed update alive.
	for i := range back {
		back[i] = nil
	}
	db.popBack = back[:0]
	return found
}

// installAll installs every queued update (class < 0) or every queued
// update of one class. It is the cooperative preemption run at view
// read points under UpdatesFirst and SplitUpdates.
func (db *DB) installAll(class int) {
	for {
		if class >= 0 {
			if db.highCount == 0 {
				return
			}
		} else if db.queue.Len() == 0 {
			return
		}
		if !db.installNext(class) {
			return
		}
	}
}

// refreshOnDemand applies the newest queued update for the object, if
// any (the OnDemand in-line refresh). All superseded queued updates
// for the object are discarded.
func (db *DB) refreshOnDemand(id model.ObjectID) {
	newest, superseded := db.queue.TakeFor(id)
	if newest == nil {
		return
	}
	popNanos := db.nowNanos()
	if newest.ArrivalTime > 0 {
		db.obs.stage[obs.StageQueueWait].Observe(popNanos - db.arrivalNanos(newest))
	}
	db.mu.Lock()
	db.pending[id] -= len(superseded) + 1
	if newest.Class == model.High {
		db.highCount--
	}
	for _, u := range superseded {
		if u.Class == model.High {
			db.highCount--
		}
		if u.Replicated {
			// Superseded without installing: settle its pending count
			// in the lag account. Each entry carries its own flag — a
			// local survivor can supersede replicated entries and vice
			// versa, so the survivor's flag says nothing about them.
			db.lag.Removed(id)
		}
		db.stats.UpdatesSkipped++
	}
	db.mu.Unlock()
	db.install(newest, db.genTime(newest), popNanos)
}

// publishQueueLen exposes the queue length to Stats.
func (db *DB) publishQueueLen() {
	db.mu.Lock()
	db.stats.QueueLen = db.queue.Len()
	db.mu.Unlock()
}

// drainTxnCh admits buffered transaction submissions to the ready
// list.
func (db *DB) drainTxnCh() {
	for {
		select {
		case req := <-db.txnCh:
			db.ready = append(db.ready, req)
		default:
			return
		}
	}
}

// reapDeadTxns aborts queued transactions whose firm deadline has
// passed or that can no longer finish in time (feasible deadline).
func (db *DB) reapDeadTxns() {
	now := db.now()
	kept := db.ready[:0]
	for _, req := range db.ready {
		if db.hopeless(req, now) {
			db.finish(req, Result{State: AbortedDeadline, Err: ErrDeadlineExceeded})
			continue
		}
		kept = append(kept, req)
	}
	db.ready = kept
}

// hopeless reports whether the transaction cannot commit by its
// deadline.
func (db *DB) hopeless(req *txnReq, now time.Time) bool {
	if !now.Before(req.spec.Deadline) {
		return true
	}
	if req.spec.Estimate > 0 && now.Add(req.spec.Estimate).After(req.spec.Deadline) {
		return true
	}
	return false
}

// runNextTxn executes the highest value-density ready transaction.
func (db *DB) runNextTxn() {
	best := -1
	bestPri := 0.0
	now := db.now()
	for i, req := range db.ready {
		pri := req.priority(now)
		if best < 0 || pri > bestPri {
			best, bestPri = i, pri
		}
	}
	if best < 0 {
		return
	}
	req := db.ready[best]
	db.ready = append(db.ready[:best], db.ready[best+1:]...)
	db.execute(req)
}

// priority is the value density: value per second of estimated work,
// falling back to value per second of remaining slack when no
// estimate is given.
func (req *txnReq) priority(now time.Time) float64 {
	if req.spec.Estimate > 0 {
		return req.spec.Value / req.spec.Estimate.Seconds()
	}
	remaining := req.spec.Deadline.Sub(now).Seconds()
	if remaining <= 0 {
		return req.spec.Value * 1e9
	}
	return req.spec.Value / remaining
}

// idleWait blocks until an arrival, a submission, the next queued
// deadline, or shutdown. It returns false on shutdown.
func (db *DB) idleWait() bool {
	var timer *time.Timer
	var deadlineC <-chan time.Time
	if next, ok := db.nextDeadline(); ok {
		d := next.Sub(db.now())
		if d < 0 {
			d = 0
		}
		timer = time.NewTimer(d)
		deadlineC = timer.C
	}
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	select {
	case u := <-db.ingestCh:
		db.enqueue(u)
		return true
	case req := <-db.txnCh:
		db.ready = append(db.ready, req)
		return true
	case <-deadlineC:
		return true
	case <-db.stopCh:
		return false
	}
}

// nextDeadline returns the earliest deadline among ready transactions.
func (db *DB) nextDeadline() (time.Time, bool) {
	var out time.Time
	found := false
	for _, req := range db.ready {
		if !found || req.spec.Deadline.Before(out) {
			out = req.spec.Deadline
			found = true
		}
	}
	return out, found
}

// shutdown fails every queued and buffered transaction with ErrClosed.
func (db *DB) shutdown() {
	db.drainTxnCh()
	for _, req := range db.ready {
		db.finish(req, Result{State: Failed, Err: ErrClosed})
	}
	db.ready = nil
}

// finish delivers a transaction result and updates the counters.
func (db *DB) finish(req *txnReq, res Result) {
	db.mu.Lock()
	switch res.State {
	case Committed:
		db.stats.TxnsCommitted++
		db.stats.ValueCommitted += req.spec.Value
		if res.ReadStale {
			db.stats.TxnsCommittedStale++
		}
		if !res.Finished.IsZero() {
			db.obs.commitLatency.Observe(res.Finished.Sub(req.enqueued).Nanoseconds())
		}
	case AbortedDeadline:
		db.stats.TxnsAbortedDeadline++
	case AbortedStale:
		db.stats.TxnsAbortedStale++
	case Failed:
		db.stats.TxnsFailed++
		if errors.Is(res.Err, ErrDurability) {
			db.stats.TxnsFailedDurability++
		}
	}
	db.mu.Unlock()
	req.res <- res
}
