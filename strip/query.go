package strip

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode"

	"repro/internal/model"
)

// Query evaluates a small read-only SELECT over the view objects —
// the monitoring corner of the SQL interface the STRIP system
// advertised. The grammar:
//
//	SELECT * FROM views
//	  [WHERE <expr>]
//	  [ORDER BY <field> [ASC|DESC]]
//	  [LIMIT <n>]
//
// Fields usable in <expr> and ORDER BY:
//
//	object      view name (string)
//	value       current value (number)
//	age         seconds since the value's generation time (number)
//	stale       staleness under the configured criterion (boolean)
//	field.NAME  named attribute of a record view (number)
//
// Operators: = != < <= > >=, AND, OR, NOT, parentheses, and LIKE with
// % wildcards at either end of a string literal. String literals use
// single quotes.
//
//	SELECT * FROM views WHERE stale AND value > 100 ORDER BY age DESC LIMIT 5
//	SELECT * FROM views WHERE object LIKE 'FX%' AND field.bid >= 99
//
// The result is a consistent snapshot taken at call time.
func (db *DB) Query(q string) ([]Entry, error) {
	stmt, err := parseQuery(q)
	if err != nil {
		return nil, err
	}

	now := db.now()
	db.mu.RLock()
	snapshot := make([]Entry, 0, len(db.defs))
	for id, def := range db.defs {
		e := db.entries[id]
		snapshot = append(snapshot, Entry{
			Object:    def.name,
			Value:     e.value,
			Fields:    copyFields(e.fields),
			Generated: e.generated,
			Stale:     db.staleLocked(model.ObjectID(id), now),
		})
	}
	db.mu.RUnlock()

	var out []Entry
	for _, e := range snapshot {
		keep, err := stmt.where.evalBool(&e, now)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, e)
		}
	}
	if stmt.orderBy != "" {
		if err := sortEntries(out, stmt.orderBy, stmt.desc, now); err != nil {
			return nil, err
		}
	}
	if stmt.limit >= 0 && len(out) > stmt.limit {
		out = out[:stmt.limit]
	}
	return out, nil
}

// ErrQuery wraps all query parse and evaluation failures.
var ErrQuery = errors.New("strip: query error")

func queryErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrQuery, fmt.Sprintf(format, args...))
}

// --- statement ---

type queryStmt struct {
	where   whereExpr
	orderBy string
	desc    bool
	limit   int
}

// --- expression AST ---

// value is the dynamic result of evaluating a sub-expression.
type value struct {
	kind byte // 'n' number, 's' string, 'b' bool
	num  float64
	str  string
	b    bool
}

type expr interface {
	eval(e *Entry, now time.Time) (value, error)
}

type binaryExpr struct {
	op          string
	left, right expr
}

type notExpr struct{ inner expr }

type literalExpr struct{ v value }

type fieldExpr struct{ name string }

func (x *literalExpr) eval(*Entry, time.Time) (value, error) { return x.v, nil }

func (x *notExpr) eval(e *Entry, now time.Time) (value, error) {
	v, err := x.inner.eval(e, now)
	if err != nil {
		return value{}, err
	}
	if v.kind != 'b' {
		return value{}, queryErrf("NOT applied to non-boolean")
	}
	return value{kind: 'b', b: !v.b}, nil
}

func (x *fieldExpr) eval(e *Entry, now time.Time) (value, error) {
	switch {
	case x.name == "object":
		return value{kind: 's', str: e.Object}, nil
	case x.name == "value":
		return value{kind: 'n', num: e.Value}, nil
	case x.name == "stale":
		return value{kind: 'b', b: e.Stale}, nil
	case x.name == "age":
		return value{kind: 'n', num: now.Sub(e.Generated).Seconds()}, nil
	case strings.HasPrefix(x.name, "field."):
		attr := strings.TrimPrefix(x.name, "field.")
		v, ok := e.Fields[attr]
		if !ok {
			return value{kind: 'n', num: 0}, nil
		}
		return value{kind: 'n', num: v}, nil
	default:
		return value{}, queryErrf("unknown field %q", x.name)
	}
}

func (x *binaryExpr) eval(e *Entry, now time.Time) (value, error) {
	l, err := x.left.eval(e, now)
	if err != nil {
		return value{}, err
	}
	// Short-circuit the logical operators.
	if x.op == "AND" || x.op == "OR" {
		if l.kind != 'b' {
			return value{}, queryErrf("%s applied to non-boolean", x.op)
		}
		if x.op == "AND" && !l.b {
			return value{kind: 'b', b: false}, nil
		}
		if x.op == "OR" && l.b {
			return value{kind: 'b', b: true}, nil
		}
		r, err := x.right.eval(e, now)
		if err != nil {
			return value{}, err
		}
		if r.kind != 'b' {
			return value{}, queryErrf("%s applied to non-boolean", x.op)
		}
		return value{kind: 'b', b: r.b}, nil
	}

	r, err := x.right.eval(e, now)
	if err != nil {
		return value{}, err
	}
	if x.op == "LIKE" {
		if l.kind != 's' || r.kind != 's' {
			return value{}, queryErrf("LIKE needs string operands")
		}
		return value{kind: 'b', b: likeMatch(l.str, r.str)}, nil
	}
	if l.kind != r.kind {
		return value{}, queryErrf("type mismatch for %s", x.op)
	}
	var cmp int
	switch l.kind {
	case 'n':
		switch {
		case l.num < r.num:
			cmp = -1
		case l.num > r.num:
			cmp = 1
		}
	case 's':
		cmp = strings.Compare(l.str, r.str)
	case 'b':
		if x.op != "=" && x.op != "!=" {
			return value{}, queryErrf("booleans support only = and !=")
		}
		eq := l.b == r.b
		if x.op == "=" {
			return value{kind: 'b', b: eq}, nil
		}
		return value{kind: 'b', b: !eq}, nil
	}
	var out bool
	switch x.op {
	case "=":
		out = cmp == 0
	case "!=":
		out = cmp != 0
	case "<":
		out = cmp < 0
	case "<=":
		out = cmp <= 0
	case ">":
		out = cmp > 0
	case ">=":
		out = cmp >= 0
	default:
		return value{}, queryErrf("unknown operator %q", x.op)
	}
	return value{kind: 'b', b: out}, nil
}

// evalBool evaluates an optional WHERE expression to a boolean; a nil
// expression keeps everything.
type whereExpr struct{ inner expr }

func (w whereExpr) evalBool(e *Entry, now time.Time) (bool, error) {
	if w.inner == nil {
		return true, nil
	}
	v, err := w.inner.eval(e, now)
	if err != nil {
		return false, err
	}
	if v.kind != 'b' {
		return false, queryErrf("WHERE is not boolean")
	}
	return v.b, nil
}

// likeMatch implements % wildcards at either end of the pattern.
func likeMatch(s, pattern string) bool {
	prefix := strings.HasPrefix(pattern, "%")
	suffix := strings.HasSuffix(pattern, "%")
	core := strings.TrimSuffix(strings.TrimPrefix(pattern, "%"), "%")
	switch {
	case prefix && suffix:
		return strings.Contains(s, core)
	case prefix:
		return strings.HasSuffix(s, core)
	case suffix:
		return strings.HasPrefix(s, core)
	default:
		return s == pattern
	}
}

func sortEntries(entries []Entry, field string, desc bool, now time.Time) error {
	key := func(e *Entry) (float64, string, error) {
		fx := fieldExpr{name: field}
		v, err := fx.eval(e, now)
		if err != nil {
			return 0, "", err
		}
		switch v.kind {
		case 'n':
			return v.num, "", nil
		case 's':
			return 0, v.str, nil
		case 'b':
			if v.b {
				return 1, "", nil
			}
			return 0, "", nil
		}
		return 0, "", queryErrf("cannot order by %q", field)
	}
	// Validate the key once before sorting.
	if len(entries) > 0 {
		if _, _, err := key(&entries[0]); err != nil {
			return err
		}
	}
	lessFn := func(i, j int) bool {
		ni, si, _ := key(&entries[i])
		nj, sj, _ := key(&entries[j])
		if si != "" || sj != "" {
			return si < sj
		}
		return ni < nj
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if desc {
			return lessFn(j, i)
		}
		return lessFn(i, j)
	})
	return nil
}

// --- lexer / parser ---

type token struct {
	kind string // "ident", "num", "str", "op", "eof"
	text string
}

type lexer struct {
	src []rune
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: "eof"}, nil
	}
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(c) || c == '_' || c == '*':
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) ||
			unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_' ||
			l.src[l.pos] == '.' || l.src[l.pos] == '*') {
			l.pos++
		}
		return token{kind: "ident", text: string(l.src[start:l.pos])}, nil
	case unicode.IsDigit(c) || c == '-' || c == '+':
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) ||
			l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			l.src[l.pos] == '-' || l.src[l.pos] == '+') {
			// Allow exponent signs only right after e/E.
			if (l.src[l.pos] == '-' || l.src[l.pos] == '+') &&
				!(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') {
				break
			}
			l.pos++
		}
		return token{kind: "num", text: string(l.src[start:l.pos])}, nil
	case c == '\'':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, queryErrf("unterminated string literal")
		}
		s := string(l.src[start:l.pos])
		l.pos++
		return token{kind: "str", text: s}, nil
	case c == '(' || c == ')' || c == ',':
		l.pos++
		return token{kind: "op", text: string(c)}, nil
	case c == '=' || c == '<' || c == '>' || c == '!':
		start := l.pos
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		op := string(l.src[start:l.pos])
		if op == "!" {
			return token{}, queryErrf("unexpected '!'")
		}
		return token{kind: "op", text: op}, nil
	default:
		return token{}, queryErrf("unexpected character %q", string(c))
	}
}

type parser struct {
	lex  lexer
	tok  token
	peek *token
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectIdent(word string) error {
	if p.tok.kind != "ident" || !strings.EqualFold(p.tok.text, word) {
		return queryErrf("expected %s, got %q", word, p.tok.text)
	}
	return p.advance()
}

func parseQuery(q string) (*queryStmt, error) {
	p := &parser{lex: lexer{src: []rune(q)}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for _, word := range []string{"SELECT", "*", "FROM", "views"} {
		if err := p.expectIdent(word); err != nil {
			return nil, err
		}
	}
	stmt := &queryStmt{limit: -1}
	if p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.where.inner = e
	}
	if p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectIdent("BY"); err != nil {
			return nil, err
		}
		if p.tok.kind != "ident" {
			return nil, queryErrf("expected field after ORDER BY")
		}
		stmt.orderBy = strings.ToLower(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == "ident" &&
			(strings.EqualFold(p.tok.text, "ASC") || strings.EqualFold(p.tok.text, "DESC")) {
			stmt.desc = strings.EqualFold(p.tok.text, "DESC")
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != "num" {
			return nil, queryErrf("expected number after LIMIT")
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, queryErrf("bad LIMIT %q", p.tok.text)
		}
		stmt.limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != "eof" {
		return nil, queryErrf("unexpected trailing input %q", p.tok.text)
	}
	return stmt, nil
}

func (p *parser) parseOr() (expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "OR", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "AND", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notExpr{inner: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == "op" && isCompareOp(p.tok.text) {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &binaryExpr{op: op, left: left, right: right}, nil
	}
	if p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "LIKE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &binaryExpr{op: "LIKE", left: left, right: right}, nil
	}
	return left, nil
}

func isCompareOp(op string) bool {
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parsePrimary() (expr, error) {
	switch p.tok.kind {
	case "num":
		n, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, queryErrf("bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &literalExpr{v: value{kind: 'n', num: n}}, nil
	case "str":
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &literalExpr{v: value{kind: 's', str: s}}, nil
	case "ident":
		word := p.tok.text
		if strings.EqualFold(word, "true") || strings.EqualFold(word, "false") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &literalExpr{v: value{kind: 'b', b: strings.EqualFold(word, "true")}}, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &fieldExpr{name: strings.ToLower(word)}, nil
	case "op":
		if p.tok.text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if p.tok.kind != "op" || p.tok.text != ")" {
				return nil, queryErrf("missing closing parenthesis")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, queryErrf("unexpected token %q", p.tok.text)
}
