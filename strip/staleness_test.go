package strip

import (
	"errors"
	"testing"
	"time"
)

func TestMaxAgeStalenessWarn(t *testing.T) {
	clock := newFakeClock()
	db := mustOpen(t, Config{
		Policy:  TransactionsFirst,
		MaxAge:  time.Second,
		OnStale: Warn,
		Clock:   clock.Now,
	})
	db.DefineView("sensor", Low)
	// Never updated: infinitely old, hence stale under MA.
	res := db.Exec(TxnSpec{
		Value:    1,
		Deadline: clock.Now().Add(time.Hour),
		Func: func(tx *Tx) error {
			e, err := tx.Read("sensor")
			if err != nil {
				return err
			}
			if !e.Stale {
				t.Error("entry should be stale")
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	if !res.ReadStale || len(res.StaleReads) != 1 || res.StaleReads[0] != "sensor" {
		t.Fatalf("warn result = %+v", res)
	}
	if db.Stats().TxnsCommittedStale != 1 {
		t.Fatal("stale commit not counted")
	}
}

func TestMaxAgeFreshAfterUpdate(t *testing.T) {
	clock := newFakeClock()
	db := mustOpen(t, Config{
		Policy:  UpdatesFirst,
		MaxAge:  time.Second,
		OnStale: Abort,
		Clock:   clock.Now,
	})
	db.DefineView("sensor", Low)
	res := db.Exec(TxnSpec{
		Deadline: clock.Now().Add(time.Hour),
		Func: func(tx *Tx) error {
			// The update arrives mid-transaction; UpdatesFirst
			// installs it at the read point.
			db.ApplyUpdate(Update{Object: "sensor", Value: 20.5, Generated: clock.Now()})
			e, err := tx.Read("sensor")
			if err != nil {
				return err
			}
			if e.Value != 20.5 || e.Stale {
				t.Errorf("entry = %+v", e)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
}

func TestMaxAgeAbort(t *testing.T) {
	clock := newFakeClock()
	db := mustOpen(t, Config{
		Policy:  TransactionsFirst,
		MaxAge:  time.Second,
		OnStale: Abort,
		Clock:   clock.Now,
	})
	db.DefineView("sensor", Low)
	res := db.Exec(TxnSpec{
		Deadline: clock.Now().Add(time.Hour),
		Func: func(tx *Tx) error {
			_, err := tx.Read("sensor")
			return err
		},
	})
	if res.State != AbortedStale || !errors.Is(res.Err, ErrStaleRead) {
		t.Fatalf("result = %+v", res)
	}
	if db.Stats().TxnsAbortedStale != 1 {
		t.Fatal("stale abort not counted")
	}
}

func TestStaleAbortStickyEvenIfErrorSwallowed(t *testing.T) {
	clock := newFakeClock()
	db := mustOpen(t, Config{
		Policy:  TransactionsFirst,
		MaxAge:  time.Second,
		OnStale: Abort,
		Clock:   clock.Now,
	})
	db.DefineView("sensor", Low)
	res := db.Exec(TxnSpec{
		Deadline: clock.Now().Add(time.Hour),
		Func: func(tx *Tx) error {
			tx.Read("sensor") // stale; error ignored by the function
			return nil
		},
	})
	if res.State != AbortedStale {
		t.Fatalf("state = %v, the abort must stick", res.State)
	}
}

func TestUnappliedUpdateCriterion(t *testing.T) {
	// MaxAge zero selects UU: an object is stale only while an
	// update for it is queued.
	db := mustOpen(t, Config{Policy: TransactionsFirst, OnStale: Warn})
	db.DefineView("px", Low)
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			// Nothing pending: fresh even though never updated.
			e, err := tx.Read("px")
			if err != nil {
				return err
			}
			if e.Stale {
				t.Error("UU: untouched object should be fresh")
			}
			// Now an update arrives; TF leaves it queued, so the
			// object turns stale at the next read.
			db.ApplyUpdate(Update{Object: "px", Value: 2})
			e, err = tx.Read("px")
			if err != nil {
				return err
			}
			if !e.Stale {
				t.Error("UU: object with pending update should be stale")
			}
			if e.Value != 0 {
				t.Errorf("TF must not install mid-transaction: %v", e.Value)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	// Once idle, the pending update is installed.
	waitFor(t, time.Second, func() bool {
		e, _ := db.Peek("px")
		return e.Value == 2 && !e.Stale
	})
}

func TestOnDemandRefreshMidTransaction(t *testing.T) {
	db := mustOpen(t, Config{Policy: OnDemand, OnStale: Abort})
	db.DefineView("px", Low)
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			// Queue two updates; OD must apply the newest in-line
			// and discard the superseded one.
			now := time.Now()
			db.ApplyUpdate(Update{Object: "px", Value: 1, Generated: now.Add(-time.Millisecond)})
			db.ApplyUpdate(Update{Object: "px", Value: 2, Generated: now})
			e, err := tx.Read("px")
			if err != nil {
				return err
			}
			if e.Stale || e.Value != 2 {
				t.Errorf("entry = %+v, want fresh value 2", e)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	s := db.Stats()
	if s.UpdatesInstalled != 1 || s.UpdatesSkipped != 1 {
		t.Fatalf("installed=%d skipped=%d, want 1/1", s.UpdatesInstalled, s.UpdatesSkipped)
	}
}

func TestSplitUpdatesKeepsHighFresh(t *testing.T) {
	db := mustOpen(t, Config{Policy: SplitUpdates, OnStale: Warn})
	db.DefineView("hi", High)
	db.DefineView("lo", Low)
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			db.ApplyUpdate(Update{Object: "hi", Value: 5})
			db.ApplyUpdate(Update{Object: "lo", Value: 6})
			// The read point installs the high update only.
			e, err := tx.Read("hi")
			if err != nil {
				return err
			}
			if e.Stale || e.Value != 5 {
				t.Errorf("high entry = %+v, want fresh 5", e)
			}
			e, err = tx.Read("lo")
			if err != nil {
				return err
			}
			if !e.Stale || e.Value != 0 {
				t.Errorf("low entry = %+v, want stale old value", e)
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
}

func TestMaxAgeExpiryDiscardsQueued(t *testing.T) {
	clock := newFakeClock()
	db := mustOpen(t, Config{
		Policy: TransactionsFirst,
		MaxAge: time.Second,
		Clock:  clock.Now,
	})
	db.DefineView("x", Low)
	// Hold the scheduler inside a transaction while an already-old
	// update arrives, then advance past its expiry.
	res := db.Exec(TxnSpec{
		Deadline: clock.Now().Add(time.Hour),
		Func: func(tx *Tx) error {
			db.ApplyUpdate(Update{Object: "x", Value: 1, Generated: clock.Now().Add(-900 * time.Millisecond)})
			if _, err := tx.Read("x"); err != nil { // receive the update
				return err
			}
			clock.Advance(500 * time.Millisecond) // now older than MaxAge
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesExpired == 1 })
	if got := db.Stats().UpdatesInstalled; got != 0 {
		t.Fatalf("installed = %d, expired update must not install", got)
	}
}

func TestCoalesceConfig(t *testing.T) {
	db := mustOpen(t, Config{Policy: TransactionsFirst, Coalesce: true})
	db.DefineView("x", Low)
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			now := time.Now()
			for i := 0; i < 5; i++ {
				db.ApplyUpdate(Update{Object: "x", Value: float64(i), Generated: now.Add(time.Duration(i))})
			}
			tx.Read("x") // receive: coalesced to one queued update
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	waitFor(t, time.Second, func() bool {
		e, _ := db.Peek("x")
		return e.Value == 4
	})
	s := db.Stats()
	if s.UpdatesInstalled != 1 {
		t.Fatalf("installed = %d, want 1 after coalescing", s.UpdatesInstalled)
	}
	if s.UpdatesSkipped != 4 {
		t.Fatalf("skipped = %d, want 4 coalesced away", s.UpdatesSkipped)
	}
}

func TestIngestBufferDrops(t *testing.T) {
	db := mustOpen(t, Config{Policy: TransactionsFirst, IngestBuffer: 1})
	db.DefineView("x", Low)
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			// The scheduler is busy running this function, so only
			// one arrival fits the buffer.
			for i := 0; i < 4; i++ {
				db.ApplyUpdate(Update{Object: "x", Value: float64(i)})
			}
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	waitFor(t, time.Second, func() bool { return db.Stats().UpdatesDropped == 3 })
	if db.Stats().UpdatesReceived != 1 {
		t.Fatalf("received = %d, want 1", db.Stats().UpdatesReceived)
	}
}

func TestLIFOInstall(t *testing.T) {
	db := mustOpen(t, Config{Policy: TransactionsFirst, LIFO: true})
	db.DefineView("x", Low)
	res := db.Exec(TxnSpec{
		Deadline: time.Now().Add(time.Second),
		Func: func(tx *Tx) error {
			now := time.Now()
			db.ApplyUpdate(Update{Object: "x", Value: 1, Generated: now.Add(-2 * time.Millisecond)})
			db.ApplyUpdate(Update{Object: "x", Value: 2, Generated: now})
			tx.Read("x") // receive both
			return nil
		},
	})
	if !res.Committed() {
		t.Fatalf("result = %+v", res)
	}
	// LIFO installs the newest first; the older one is then skipped
	// by the worthiness check.
	waitFor(t, time.Second, func() bool {
		s := db.Stats()
		return s.UpdatesInstalled == 1 && s.UpdatesSkipped == 1
	})
	e, _ := db.Peek("x")
	if e.Value != 2 {
		t.Fatalf("value = %v, want 2", e.Value)
	}
}
