// Package scenario is a declarative robustness harness: one YAML file
// declares a topology (primary + replica tree or an elect peer set), a
// workload (paper-model parameters plus temporal phases), a fault
// schedule (chaos windows, partitions, WAL fault windows, kills,
// restarts), and assertions (staleness bounds, convergence,
// durability, election safety). The engine builds the fleet out of the
// real strip, strip/repl, strip/elect and strip/fault pieces, runs the
// schedule, and emits a seeded transcript where the planned portion is
// byte-identical run to run.
//
// This file is the strict-subset YAML decoder. It is deliberately not
// a YAML implementation: it accepts only the block-style fragment the
// scenario grammar needs — nested mappings, sequences of scalars or
// mappings, plain/quoted scalars, '#' comments — and rejects
// everything else (tabs, flow style, anchors, aliases, tags, multiple
// documents, duplicate keys) with line-numbered errors. Keeping the
// accepted language small is what makes "the file you committed is the
// file that ran" a checkable property.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// node is one parsed YAML value: exactly one of scalar, mapping (kvs,
// ordered), or sequence (seq) is populated. Mappings preserve source
// order so that walking a node never depends on Go map iteration.
type node struct {
	line     int // 1-based source line the value starts on
	isScalar bool
	scalar   string
	isMap    bool
	kvs      []keyval
	isSeq    bool
	seq      []*node
}

type keyval struct {
	key  string
	line int
	val  *node
}

// get returns the value for key in a mapping node, or nil.
func (n *node) get(key string) *node {
	for i := range n.kvs {
		if n.kvs[i].key == key {
			return n.kvs[i].val
		}
	}
	return nil
}

// parseError is a decode failure pinned to a source line.
type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("yaml line %d: %s", e.line, e.msg)
}

func errAt(line int, format string, args ...any) error {
	return &parseError{line: line, msg: fmt.Sprintf(format, args...)}
}

// pline is one significant (non-blank, non-comment) source line.
type pline struct {
	num    int
	indent int
	text   string // content after indentation, comments stripped
}

// parseYAML decodes src into a root mapping node.
func parseYAML(src []byte) (*node, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, errAt(1, "empty document")
	}
	p := &parser{lines: lines}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, errAt(l.num, "unexpected de-indent to column %d", l.indent)
	}
	if !root.isMap {
		return nil, errAt(root.line, "document root must be a mapping")
	}
	return root, nil
}

// splitLines scans the raw bytes into significant lines, enforcing the
// lexical subset: no tabs in indentation, no document markers, no
// anchors/aliases/tags/flow introducers at the start of a value.
func splitLines(src []byte) ([]pline, error) {
	var out []pline
	for num, raw := range strings.Split(string(src), "\n") {
		line := strings.TrimRight(raw, " \r")
		stripped := stripComment(line)
		trimmed := strings.TrimLeft(stripped, " ")
		if trimmed == "" {
			continue
		}
		indent := len(stripped) - len(trimmed)
		if strings.ContainsRune(raw[:len(raw)-len(strings.TrimLeft(raw, " \t"))], '\t') {
			return nil, errAt(num+1, "tab in indentation (use spaces)")
		}
		if trimmed == "---" || trimmed == "..." {
			return nil, errAt(num+1, "multi-document markers are not supported")
		}
		out = append(out, pline{num: num + 1, indent: indent, text: trimmed})
	}
	return out, nil
}

// stripComment removes a trailing '# ...' comment, respecting quoted
// strings. A '#' only begins a comment at line start or after a space,
// per YAML.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			// Handle \" inside double quotes.
			if inDouble && i > 0 && s[i-1] == '\\' {
				continue
			}
			inDouble = !inDouble
		case c == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' {
				return strings.TrimRight(s[:i], " ")
			}
		}
	}
	return s
}

type parser struct {
	lines []pline
	pos   int
}

// parseBlock parses the run of lines at exactly indent `ind` (plus
// their more-indented children) into a single node. The block is a
// sequence if its first line starts with "- ", a mapping otherwise.
func (p *parser) parseBlock(ind int) (*node, error) {
	first := p.lines[p.pos]
	if first.indent != ind {
		return nil, errAt(first.num, "bad indentation: got %d spaces, expected %d", first.indent, ind)
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSequence(ind)
	}
	return p.parseMapping(ind)
}

func (p *parser) parseMapping(ind int) (*node, error) {
	out := &node{line: p.lines[p.pos].num, isMap: true}
	seen := map[string]int{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < ind {
			break
		}
		if l.indent > ind {
			return nil, errAt(l.num, "bad indentation: got %d spaces, expected %d", l.indent, ind)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, errAt(l.num, "sequence item inside a mapping")
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[key]; dup {
			return nil, errAt(l.num, "duplicate key %q (first at line %d)", key, prev)
		}
		seen[key] = l.num
		p.pos++
		var val *node
		if rest != "" {
			val, err = scalarNode(rest, l.num)
			if err != nil {
				return nil, err
			}
		} else {
			// Value is the following more-indented block, if any;
			// otherwise an empty scalar.
			if p.pos < len(p.lines) && p.lines[p.pos].indent > ind {
				val, err = p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
			} else {
				val = &node{line: l.num, isScalar: true, scalar: ""}
			}
		}
		out.kvs = append(out.kvs, keyval{key: key, line: l.num, val: val})
	}
	return out, nil
}

func (p *parser) parseSequence(ind int) (*node, error) {
	out := &node{line: p.lines[p.pos].num, isSeq: true}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < ind {
			break
		}
		if l.indent > ind {
			return nil, errAt(l.num, "bad indentation: got %d spaces, expected %d", l.indent, ind)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return nil, errAt(l.num, "expected sequence item %q", "- ...")
		}
		if l.text == "-" {
			return nil, errAt(l.num, "empty sequence item")
		}
		rest := l.text[2:]
		if rest == "" {
			return nil, errAt(l.num, "empty sequence item")
		}
		// "- key: value" starts an inline mapping whose further keys
		// sit at ind+2. Rewrite the item head as a mapping line at
		// that depth and reparse.
		if isMapHead(rest) {
			p.lines[p.pos] = pline{num: l.num, indent: ind + 2, text: rest}
			item, err := p.parseMapping(ind + 2)
			if err != nil {
				return nil, err
			}
			out.seq = append(out.seq, item)
			continue
		}
		p.pos++
		item, err := scalarNode(rest, l.num)
		if err != nil {
			return nil, err
		}
		out.seq = append(out.seq, item)
	}
	return out, nil
}

// isMapHead reports whether a sequence item's text begins a mapping
// ("key: value" or "key:"), as opposed to being a plain scalar.
func isMapHead(s string) bool {
	if strings.HasPrefix(s, "'") || strings.HasPrefix(s, "\"") {
		return false
	}
	i := strings.Index(s, ":")
	if i <= 0 {
		return false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return false // e.g. "127.0.0.1:4000" is a scalar
	}
	return validKey(s[:i])
}

// splitKey splits "key: value" / "key:"; the key charset is restricted
// so that anchors, tags and merge keys can never masquerade as keys.
func splitKey(l pline) (key, rest string, err error) {
	i := strings.Index(l.text, ":")
	if i <= 0 {
		return "", "", errAt(l.num, "expected %q", "key: value")
	}
	key = l.text[:i]
	if !validKey(key) {
		return "", "", errAt(l.num, "invalid key %q (allowed: letters, digits, _ . -)", key)
	}
	rest = l.text[i+1:]
	if rest != "" {
		if rest[0] != ' ' {
			return "", "", errAt(l.num, "missing space after %q", key+":")
		}
		rest = strings.TrimLeft(rest, " ")
	}
	return key, rest, nil
}

func validKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == '.', r == '-':
		default:
			return false
		}
	}
	return true
}

// scalarNode parses an inline scalar value, rejecting flow collections
// and the YAML features outside the subset.
func scalarNode(s string, line int) (*node, error) {
	switch s[0] {
	case '{', '[':
		return nil, errAt(line, "flow-style collections are not supported")
	case '&', '*':
		return nil, errAt(line, "anchors and aliases are not supported")
	case '!':
		return nil, errAt(line, "tags are not supported")
	case '|', '>':
		return nil, errAt(line, "block scalars are not supported")
	case '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, errAt(line, "unterminated single-quoted scalar")
		}
		body := s[1 : len(s)-1]
		if strings.Contains(strings.ReplaceAll(body, "''", ""), "'") {
			return nil, errAt(line, "stray quote in single-quoted scalar")
		}
		return &node{line: line, isScalar: true, scalar: strings.ReplaceAll(body, "''", "'")}, nil
	case '"':
		unq, err := strconv.Unquote(s)
		if err != nil {
			return nil, errAt(line, "bad double-quoted scalar: %v", err)
		}
		return &node{line: line, isScalar: true, scalar: unq}, nil
	}
	if strings.Contains(s, ": ") || strings.HasSuffix(s, ":") {
		return nil, errAt(line, "nested inline mapping in scalar %q", s)
	}
	return &node{line: line, isScalar: true, scalar: s}, nil
}

// Typed accessors used by the schema layer. Each enforces that the
// node is a scalar of the right shape and reports errors with the
// field path supplied by the caller.

func (n *node) str(path string) (string, error) {
	if n == nil || !n.isScalar {
		line := 0
		if n != nil {
			line = n.line
		}
		return "", errAt(line, "%s: expected a scalar", path)
	}
	return n.scalar, nil
}

func (n *node) float(path string) (float64, error) {
	s, err := n.str(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, errAt(n.line, "%s: %q is not a number", path, s)
	}
	return v, nil
}

func (n *node) integer(path string) (int, error) {
	s, err := n.str(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, errAt(n.line, "%s: %q is not an integer", path, s)
	}
	return v, nil
}

func (n *node) uint64v(path string) (uint64, error) {
	s, err := n.str(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, errAt(n.line, "%s: %q is not an unsigned integer", path, s)
	}
	return v, nil
}

func (n *node) boolean(path string) (bool, error) {
	s, err := n.str(path)
	if err != nil {
		return false, err
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, errAt(n.line, "%s: %q is not a boolean (use true/false)", path, s)
}

// mapping asserts the node is a mapping and that every key is in
// allowed, catching typos ("worklaod:") instead of silently ignoring
// whole sections.
func (n *node) mapping(path string, allowed ...string) error {
	if n == nil || !n.isMap {
		line := 0
		if n != nil {
			line = n.line
		}
		return errAt(line, "%s: expected a mapping", path)
	}
outer:
	for _, kv := range n.kvs {
		for _, a := range allowed {
			if kv.key == a {
				continue outer
			}
		}
		return errAt(kv.line, "%s: unknown key %q (allowed: %s)", path, kv.key, strings.Join(allowed, ", "))
	}
	return nil
}

// sequence asserts the node is a sequence and returns its items.
func (n *node) sequence(path string) ([]*node, error) {
	if n == nil || !n.isSeq {
		line := 0
		if n != nil {
			line = n.line
		}
		return nil, errAt(line, "%s: expected a sequence", path)
	}
	return n.seq, nil
}
