package scenario

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/strip"
	"repro/strip/fault"
)

// Options adjusts one Run without editing the scenario file.
type Options struct {
	// Seed, when non-zero, overrides the scenario's seed (the -seed
	// flag reproducing a failed run).
	Seed uint64
	// Logf receives progress diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Report is the outcome of one Run.
type Report struct {
	Name   string
	Seed   uint64
	Passed bool
	// Transcript is the seeded event log: plan lines plus one verdict
	// line per assertion. The same scenario and seed always produce the
	// same bytes — measured values never appear, only the plan and the
	// pass/fail verdicts.
	Transcript string
	// Failures lists failed assertions and runtime errors, with the
	// measured values the transcript deliberately omits.
	Failures []string
	// Details carries informational measurements for the log.
	Details []string
	// FaultsInjected totals the faults every injector actually landed.
	FaultsInjected uint64
}

// plannedUpdate is one update of the precomputed stream.
type plannedUpdate struct {
	at  float64 // arrival offset from run start, seconds
	obj string
	gen float64 // generation offset (may be negative)
	val float64
}

// plannedTxn is one general-data write of the precomputed stream.
type plannedTxn struct {
	at  float64
	key string
	val float64
}

// objectSpec is one declared view object.
type objectSpec struct {
	name string
	imp  strip.Importance
}

// fwin is a half-open offset window relative to run start.
type fwin struct{ from, to time.Duration }

func (w fwin) contains(d time.Duration) bool { return d >= w.from && d < w.to }

// chaosSpec is the planned chaos for one link target.
type chaosSpec struct {
	cfg  fault.ConnChaos // probabilities, delay and base seed; no gate yet
	wins []fwin
}

// walPair ties a wal window's on and off events to one schedule and,
// once the on event fires, to the node it resolved to.
type walPair struct {
	sched *fault.Schedule
	node  *runNode
}

// planEvent is one executor action.
type planEvent struct {
	at   float64
	kind string // wal_on | wal_off | kill | restart | checkpoint
	node string // target selector
	pair *walPair
}

// plan is everything deterministic about a run: the full update and
// transaction timelines, the fault windows, the executor schedule and
// the transcript's plan lines. Building it up front is what makes the
// transcript a pure function of (file, seed).
type plan struct {
	seed     uint64
	objects  []objectSpec
	updates  []plannedUpdate
	txns     []plannedTxn
	partWins []fault.Window
	chaos    map[string]*chaosSpec
	events   []*planEvent
	scheds   []*fault.Schedule
	endAt    float64
	lines    []string
}

// subSeed derives a stream-specific seed so independent injectors
// never share a fault sequence.
func subSeed(seed uint64, stream int) uint64 {
	return seed + uint64(stream+1)*0x9E3779B97F4A7C15
}

// buildPlan precomputes the run.
func buildPlan(sc *Scenario, seed uint64) (*plan, error) {
	pl := &plan{seed: seed, chaos: map[string]*chaosSpec{}}
	w := &sc.Workload

	for i := 0; i < w.NLow+w.NHigh; i++ {
		imp := strip.High
		if i < w.NLow {
			imp = strip.Low
		}
		pl.objects = append(pl.objects, objectSpec{name: fmt.Sprintf("obj/%03d", i), imp: imp})
	}

	root := stats.NewRNG(seed, 0x5DEECE66D)
	updRNG := root.Split()
	txnRNG := root.Split()
	phaseRNG := root.Split()

	params := model.DefaultParams()
	params.NLow, params.NHigh = w.NLow, w.NHigh
	params.UpdateRate = w.Updates.Rate
	params.MeanUpdateAge = w.MeanAge
	phases, err := buildPhases(&w.Updates, phaseRNG)
	if err != nil {
		return nil, err
	}
	gen := workload.NewPhasedUpdateGenerator(&params, updRNG, phases)
	for u := gen.Next(); u != nil; u = gen.Next() {
		pl.updates = append(pl.updates, plannedUpdate{
			at:  u.ArrivalTime,
			obj: pl.objects[int(u.Object)].name,
			gen: u.GenTime,
			val: float64(u.Seq) * 0.25,
		})
	}

	if w.Txns.Rate > 0 {
		t, i := 0.0, 0
		for {
			t += txnRNG.Exponential(1 / w.Txns.Rate)
			if t >= w.Txns.Duration {
				break
			}
			pl.txns = append(pl.txns, plannedTxn{
				at:  t,
				key: fmt.Sprintf("gen/k%02d", i%16),
				val: float64(i),
			})
			i++
		}
	}

	if err := pl.planFaults(sc); err != nil {
		return nil, err
	}

	pl.endAt = w.Updates.Duration
	if w.Txns.Duration > pl.endAt {
		pl.endAt = w.Txns.Duration
	}
	for _, win := range pl.partWins {
		pl.endAt = math.Max(pl.endAt, win.End.Seconds())
	}
	for _, cs := range pl.chaos {
		for _, win := range cs.wins {
			pl.endAt = math.Max(pl.endAt, win.to.Seconds())
		}
	}
	for _, ev := range pl.events {
		pl.endAt = math.Max(pl.endAt, ev.at)
	}
	pl.endAt += 0.05

	pl.render(sc)
	return pl, nil
}

// buildPhases turns a declared shape into a piecewise-constant rate
// schedule. The bursty shape draws its phase boundaries from its own
// RNG split, so the update stream's draws stay aligned across shapes.
func buildPhases(u *UpdateLoad, rng *stats.RNG) ([]workload.PhaseSpec, error) {
	switch u.Shape {
	case "constant":
		return []workload.PhaseSpec{{Rate: u.Rate, Duration: u.Duration}}, nil
	case "flash_crowd":
		return workload.FlashCrowdPhases(u.Rate, u.SpikeFactor, u.Duration, u.SpikeAt, u.SpikeDuration), nil
	case "diurnal":
		return workload.DiurnalPhases(u.Rate, u.PeakFactor, u.Duration, u.Periods, u.Steps), nil
	case "bursty":
		quiet, burst := u.MeanQuiet, u.MeanBurst
		if quiet <= 0 {
			quiet = 0.3
		}
		if burst <= 0 {
			burst = 0.1
		}
		var out []workload.PhaseSpec
		t := 0.0
		for t < u.Duration {
			d := math.Min(rng.Exponential(quiet), u.Duration-t)
			if d > 0 {
				out = append(out, workload.PhaseSpec{Rate: u.Rate, Duration: d})
				t += d
			}
			if t >= u.Duration {
				break
			}
			d = math.Min(rng.Exponential(burst), u.Duration-t)
			if d > 0 {
				out = append(out, workload.PhaseSpec{Rate: u.Rate * u.BurstFactor, Duration: d})
				t += d
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("scenario: unknown shape %q", u.Shape)
	}
}

// planFaults folds the declared faults into partition windows, chaos
// window specs and executor events.
func (pl *plan) planFaults(sc *Scenario) error {
	for i, f := range sc.Faults {
		at := time.Duration(f.At * float64(time.Second))
		dur := time.Duration(f.Duration * float64(time.Second))
		switch f.Kind {
		case "partition":
			if f.Windows > 0 {
				for _, w := range fault.SeededWindows(subSeed(pl.seed, i), f.Windows, dur,
					time.Duration(f.MinMS)*time.Millisecond, time.Duration(f.MaxMS)*time.Millisecond) {
					end := w.End
					if end > dur {
						end = dur
					}
					pl.partWins = append(pl.partWins, fault.Window{Start: at + w.Start, End: at + end})
				}
			} else {
				pl.partWins = append(pl.partWins, fault.Window{Start: at, End: at + dur})
			}
		case "chaos":
			target := f.Node
			if sc.Topology.Mode == "elect" {
				target = "all"
			}
			cs := pl.chaos[target]
			if cs == nil {
				cs = &chaosSpec{cfg: fault.ConnChaos{
					Seed:     subSeed(pl.seed, i),
					Reset:    f.Reset,
					Partial:  f.Partial,
					Flip:     f.Flip,
					MaxDelay: time.Duration(f.MaxDelayUS) * time.Microsecond,
				}}
				pl.chaos[target] = cs
			}
			cs.wins = append(cs.wins, fwin{from: at, to: at + dur})
		case "wal":
			pair := &walPair{sched: fault.NewSchedule(fault.ScheduleConfig{
				Seed:       subSeed(pl.seed, i),
				Match:      "wal",
				WriteErr:   f.WriteErr,
				ShortWrite: f.ShortWrite,
				SyncErr:    f.SyncErr,
			})}
			pl.scheds = append(pl.scheds, pair.sched)
			pl.events = append(pl.events,
				&planEvent{at: f.At, kind: "wal_on", node: f.Node, pair: pair},
				&planEvent{at: f.At + f.Duration, kind: "wal_off", node: f.Node, pair: pair})
		case "kill", "restart", "checkpoint":
			pl.events = append(pl.events, &planEvent{at: f.At, kind: f.Kind, node: f.Node})
		}
	}
	// Events fire in time order; the fault list is already sorted by
	// At, but a wal_off can land after a later fault's At.
	for i := 1; i < len(pl.events); i++ {
		for j := i; j > 0 && pl.events[j].at < pl.events[j-1].at; j-- {
			pl.events[j], pl.events[j-1] = pl.events[j-1], pl.events[j]
		}
	}
	return nil
}

// workloadHash fingerprints the planned update stream, proving in the
// transcript that two runs drew identical workloads.
func (pl *plan) workloadHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for i := range pl.updates {
		u := &pl.updates[i]
		put(math.Float64bits(u.at))
		put(math.Float64bits(u.gen))
		put(math.Float64bits(u.val))
		h.Write([]byte(u.obj))
	}
	return h.Sum64()
}

// render produces the transcript's plan lines.
func (pl *plan) render(sc *Scenario) {
	add := func(format string, args ...any) {
		pl.lines = append(pl.lines, fmt.Sprintf(format, args...))
	}
	add("scenario %s seed=%d", sc.Name, pl.seed)
	add("topology %s fs=%s nodes=%d", sc.Topology.Mode, sc.Topology.FS, len(sc.Topology.Nodes))
	for _, n := range sc.Topology.Nodes {
		wal := "on"
		if !n.WAL {
			wal = "off"
		}
		if n.Upstream != "" {
			add("node %s upstream=%s wal=%s", n.Name, n.Upstream, wal)
		} else {
			add("node %s wal=%s", n.Name, wal)
		}
	}
	u := &sc.Workload.Updates
	add("workload updates shape=%s rate=%g duration=%.3fs count=%d hash=%016x",
		u.Shape, u.Rate, u.Duration, len(pl.updates), pl.workloadHash())
	if sc.Workload.Txns.Rate > 0 {
		add("workload txns rate=%g duration=%.3fs count=%d",
			sc.Workload.Txns.Rate, sc.Workload.Txns.Duration, len(pl.txns))
	}
	for _, f := range sc.Faults {
		var b strings.Builder
		fmt.Fprintf(&b, "fault at=%.3fs %s", f.At, f.Kind)
		if f.Node != "" {
			fmt.Fprintf(&b, " node=%s", f.Node)
		}
		if f.Duration > 0 {
			fmt.Fprintf(&b, " duration=%.3fs", f.Duration)
		}
		switch f.Kind {
		case "chaos":
			fmt.Fprintf(&b, " reset=%g partial=%g flip=%g max_delay_us=%d",
				f.Reset, f.Partial, f.Flip, f.MaxDelayUS)
		case "wal":
			fmt.Fprintf(&b, " write_err=%g short_write=%g sync_err=%g",
				f.WriteErr, f.ShortWrite, f.SyncErr)
		case "partition":
			if f.Windows > 0 {
				fmt.Fprintf(&b, " windows=%d", f.Windows)
			}
		}
		pl.lines = append(pl.lines, b.String())
	}
	if len(pl.partWins) > 0 {
		var b strings.Builder
		b.WriteString("partition windows")
		for _, w := range pl.partWins {
			fmt.Fprintf(&b, " [%.3fs,%.3fs)", w.Start.Seconds(), w.End.Seconds())
		}
		pl.lines = append(pl.lines, b.String())
	}
}

// Run executes one scenario in real time and reports the verdicts.
// Runtime infrastructure errors (a listener that cannot open) return
// an error; assertion failures return a Report with Passed false.
func Run(sc *Scenario, opt Options) (*Report, error) {
	seed := sc.Seed
	if opt.Seed != 0 {
		seed = opt.Seed
	}
	pl, err := buildPlan(sc, seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: sc.Name, Seed: seed}

	r := newRig(sc, pl, opt.Logf)
	defer r.teardown()
	if err := r.boot(); err != nil {
		return nil, err
	}
	r.drive()
	r.settle()

	rep.FaultsInjected = r.faultsTotal()
	rep.Details = append(rep.Details, r.details()...)

	lines := append([]string(nil), pl.lines...)
	for _, res := range evaluate(sc, r) {
		verdict := "PASS"
		if !res.ok {
			verdict = "FAIL"
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %s", res.kind, res.detail))
		} else if res.detail != "" {
			rep.Details = append(rep.Details, fmt.Sprintf("%s: %s", res.kind, res.detail))
		}
		lines = append(lines, fmt.Sprintf("assert %s %s", res.kind, verdict))
	}
	rep.Passed = len(rep.Failures) == 0
	verdict := "PASS"
	if !rep.Passed {
		verdict = "FAIL"
	}
	lines = append(lines, "result "+verdict)
	rep.Transcript = strings.Join(lines, "\n") + "\n"
	return rep, nil
}

// ReproCommand renders the command line that reruns a scenario with
// the seed that produced a report.
func ReproCommand(path string, seed uint64) string {
	return fmt.Sprintf("go run ./cmd/stripsim -scenario %s -seed %d", path, seed)
}
