package scenario

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// Scenario is one declared robustness run: a topology to build, a
// workload to drive through it, a fault schedule to inflict, and the
// assertions that must hold at the end. Everything observable about a
// run is a function of the file plus one seed.
type Scenario struct {
	Name        string
	Description string
	Seed        uint64
	Topology    Topology
	Workload    Workload
	Faults      []Fault
	Assertions  []Assertion
}

// Topology declares the fleet.
type Topology struct {
	// Mode is "static" (a fixed primary + replica tree, roles declared
	// by Upstream edges) or "elect" (every node is an elect peer; roles
	// are decided by consensus and may move during the run).
	Mode string
	// FS is "mem" (fault.MemFS — crashable, injectable; the default)
	// or "os" (real files under a temporary directory; no kill/restart
	// or WAL fault events possible).
	FS    string
	Nodes []NodeSpec
}

// NodeSpec declares one node.
type NodeSpec struct {
	Name string
	// Upstream names the node this one replicates from (static mode).
	// Exactly one node — the primary — has none.
	Upstream string
	// WAL enables the write-ahead log (default true).
	WAL bool
}

// Workload declares the load: the paper's object model plus a temporal
// shape for the update stream and a Poisson transaction stream of
// general-data writes (the WAL/durability surface).
type Workload struct {
	// NLow and NHigh size the two importance partitions (defaults 8/8).
	NLow, NHigh int
	// MeanAge is the mean network age of updates in seconds (default
	// 0.05), the paper's exponential age model.
	MeanAge float64
	Updates UpdateLoad
	Txns    TxnLoad
}

// UpdateLoad declares the update stream's shape.
type UpdateLoad struct {
	// Shape is "constant", "bursty", "flash_crowd" or "diurnal".
	Shape string
	// Rate is the (base or long-run average) arrival rate in 1/s.
	Rate float64
	// Duration is the stream length in seconds of wall time.
	Duration float64

	// bursty: Markov-modulated phases.
	BurstFactor          float64
	MeanQuiet, MeanBurst float64

	// flash_crowd: Rate*SpikeFactor for SpikeDuration starting at SpikeAt.
	SpikeAt, SpikeDuration, SpikeFactor float64

	// diurnal: Rate..Rate*PeakFactor sinusoid, Periods cycles of Steps
	// segments each.
	PeakFactor float64
	Periods    int
	Steps      int
}

// TxnLoad declares the transaction stream: Poisson arrivals of
// general-data writes committed through Exec.
type TxnLoad struct {
	Rate float64
	// Duration defaults to the update stream's.
	Duration float64
}

// Fault is one scheduled fault event, At seconds into the run.
type Fault struct {
	At   float64
	Kind string // chaos | partition | wal | kill | restart | checkpoint
	// Node is the target. Static mode: a declared node name (for
	// "chaos", the link from Node to its upstream; for "wal",
	// "checkpoint", "kill", "restart", the node itself). Elect mode:
	// "leader" (resolved when the event fires), "killed" (the most
	// recently killed node), or a declared name. "chaos" in elect mode
	// takes "all" (every replication and election dial).
	Node string
	// Duration bounds window faults (chaos, partition, wal) in seconds.
	Duration float64

	// chaos: per-operation probabilities and injected latency, as in
	// fault.ConnChaos.
	Reset, Partial, Flip float64
	MaxDelayUS           int

	// partition: Windows > 0 derives that many seeded blackhole
	// sub-windows of [MinMS, MaxMS) ms inside [At, At+Duration); 0
	// blackholes the whole interval.
	Windows      int
	MinMS, MaxMS int

	// wal: seeded filesystem fault probabilities applied to WAL files
	// (fault.ScheduleConfig) for the window.
	WriteErr, ShortWrite, SyncErr float64
}

// Assertion is one end-of-run check.
type Assertion struct {
	// Kind is one of: convergence, progress, staleness_p99,
	// staleness_max, uu_p99, faults_injected, reconnects, durability,
	// one_winner, degraded.
	Kind string
	// Min and Max bound the measured value where the kind takes
	// bounds; the has flags record which were declared.
	Min, Max       float64
	HasMin, HasMax bool
}

// Load reads and decodes a scenario file.
func Load(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Decode(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Decode parses and validates one scenario document.
func Decode(src []byte) (*Scenario, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	sc, err := decodeScenario(root)
	if err != nil {
		return nil, err
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func decodeScenario(root *node) (*Scenario, error) {
	if err := root.mapping("scenario", "name", "description", "seed",
		"topology", "workload", "faults", "assertions"); err != nil {
		return nil, err
	}
	sc := &Scenario{Seed: 1}
	var err error
	if n := root.get("name"); n != nil {
		if sc.Name, err = n.str("name"); err != nil {
			return nil, err
		}
	}
	if n := root.get("description"); n != nil {
		if sc.Description, err = n.str("description"); err != nil {
			return nil, err
		}
	}
	if n := root.get("seed"); n != nil {
		if sc.Seed, err = n.uint64v("seed"); err != nil {
			return nil, err
		}
	}
	if err := decodeTopology(root.get("topology"), &sc.Topology); err != nil {
		return nil, err
	}
	if err := decodeWorkload(root.get("workload"), &sc.Workload); err != nil {
		return nil, err
	}
	if n := root.get("faults"); n != nil {
		if sc.Faults, err = decodeFaults(n); err != nil {
			return nil, err
		}
	}
	if n := root.get("assertions"); n != nil {
		if sc.Assertions, err = decodeAssertions(n); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

func decodeTopology(n *node, t *Topology) error {
	if err := n.mapping("topology", "mode", "fs", "nodes"); err != nil {
		return err
	}
	t.Mode, t.FS = "static", "mem"
	var err error
	if v := n.get("mode"); v != nil {
		if t.Mode, err = v.str("topology.mode"); err != nil {
			return err
		}
	}
	if v := n.get("fs"); v != nil {
		if t.FS, err = v.str("topology.fs"); err != nil {
			return err
		}
	}
	items, err := n.get("nodes").sequence("topology.nodes")
	if err != nil {
		return err
	}
	for i, item := range items {
		path := fmt.Sprintf("topology.nodes[%d]", i)
		if err := item.mapping(path, "name", "upstream", "wal"); err != nil {
			return err
		}
		spec := NodeSpec{WAL: true}
		if spec.Name, err = item.get("name").str(path + ".name"); err != nil {
			return err
		}
		if v := item.get("upstream"); v != nil {
			if spec.Upstream, err = v.str(path + ".upstream"); err != nil {
				return err
			}
		}
		if v := item.get("wal"); v != nil {
			if spec.WAL, err = v.boolean(path + ".wal"); err != nil {
				return err
			}
		}
		t.Nodes = append(t.Nodes, spec)
	}
	return nil
}

func decodeWorkload(n *node, w *Workload) error {
	if err := n.mapping("workload", "objects", "mean_age", "updates", "txns"); err != nil {
		return err
	}
	w.NLow, w.NHigh, w.MeanAge = 8, 8, 0.05
	var err error
	if o := n.get("objects"); o != nil {
		if err := o.mapping("workload.objects", "low", "high"); err != nil {
			return err
		}
		if v := o.get("low"); v != nil {
			if w.NLow, err = v.integer("workload.objects.low"); err != nil {
				return err
			}
		}
		if v := o.get("high"); v != nil {
			if w.NHigh, err = v.integer("workload.objects.high"); err != nil {
				return err
			}
		}
	}
	if v := n.get("mean_age"); v != nil {
		if w.MeanAge, err = v.float("workload.mean_age"); err != nil {
			return err
		}
	}
	u := n.get("updates")
	if err := u.mapping("workload.updates", "shape", "rate", "duration",
		"burst_factor", "mean_quiet", "mean_burst",
		"spike_at", "spike_duration", "spike_factor",
		"peak_factor", "periods", "steps"); err != nil {
		return err
	}
	w.Updates.Shape = "constant"
	for _, f := range []struct {
		key string
		dst *float64
	}{
		{"rate", &w.Updates.Rate}, {"duration", &w.Updates.Duration},
		{"burst_factor", &w.Updates.BurstFactor},
		{"mean_quiet", &w.Updates.MeanQuiet}, {"mean_burst", &w.Updates.MeanBurst},
		{"spike_at", &w.Updates.SpikeAt}, {"spike_duration", &w.Updates.SpikeDuration},
		{"spike_factor", &w.Updates.SpikeFactor}, {"peak_factor", &w.Updates.PeakFactor},
	} {
		if v := u.get(f.key); v != nil {
			if *f.dst, err = v.float("workload.updates." + f.key); err != nil {
				return err
			}
		}
	}
	if v := u.get("shape"); v != nil {
		if w.Updates.Shape, err = v.str("workload.updates.shape"); err != nil {
			return err
		}
	}
	if v := u.get("periods"); v != nil {
		if w.Updates.Periods, err = v.integer("workload.updates.periods"); err != nil {
			return err
		}
	}
	if v := u.get("steps"); v != nil {
		if w.Updates.Steps, err = v.integer("workload.updates.steps"); err != nil {
			return err
		}
	}
	if t := n.get("txns"); t != nil {
		if err := t.mapping("workload.txns", "rate", "duration"); err != nil {
			return err
		}
		if v := t.get("rate"); v != nil {
			if w.Txns.Rate, err = v.float("workload.txns.rate"); err != nil {
				return err
			}
		}
		if v := t.get("duration"); v != nil {
			if w.Txns.Duration, err = v.float("workload.txns.duration"); err != nil {
				return err
			}
		}
	}
	if w.Txns.Duration == 0 {
		w.Txns.Duration = w.Updates.Duration
	}
	return nil
}

func decodeFaults(n *node) ([]Fault, error) {
	items, err := n.sequence("faults")
	if err != nil {
		return nil, err
	}
	var out []Fault
	for i, item := range items {
		path := fmt.Sprintf("faults[%d]", i)
		if err := item.mapping(path, "at", "kind", "node", "duration",
			"reset", "partial", "flip", "max_delay_us",
			"windows", "min_ms", "max_ms",
			"write_err", "short_write", "sync_err"); err != nil {
			return nil, err
		}
		var f Fault
		if f.At, err = item.get("at").float(path + ".at"); err != nil {
			return nil, err
		}
		if f.Kind, err = item.get("kind").str(path + ".kind"); err != nil {
			return nil, err
		}
		if v := item.get("node"); v != nil {
			if f.Node, err = v.str(path + ".node"); err != nil {
				return nil, err
			}
		}
		for _, fl := range []struct {
			key string
			dst *float64
		}{
			{"duration", &f.Duration}, {"reset", &f.Reset}, {"partial", &f.Partial},
			{"flip", &f.Flip}, {"write_err", &f.WriteErr},
			{"short_write", &f.ShortWrite}, {"sync_err", &f.SyncErr},
		} {
			if v := item.get(fl.key); v != nil {
				if *fl.dst, err = v.float(path + "." + fl.key); err != nil {
					return nil, err
				}
			}
		}
		for _, in := range []struct {
			key string
			dst *int
		}{
			{"max_delay_us", &f.MaxDelayUS}, {"windows", &f.Windows},
			{"min_ms", &f.MinMS}, {"max_ms", &f.MaxMS},
		} {
			if v := item.get(in.key); v != nil {
				if *in.dst, err = v.integer(path + "." + in.key); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, f)
	}
	return out, nil
}

func decodeAssertions(n *node) ([]Assertion, error) {
	items, err := n.sequence("assertions")
	if err != nil {
		return nil, err
	}
	var out []Assertion
	for i, item := range items {
		path := fmt.Sprintf("assertions[%d]", i)
		if err := item.mapping(path, "kind", "min", "max"); err != nil {
			return nil, err
		}
		var a Assertion
		if a.Kind, err = item.get("kind").str(path + ".kind"); err != nil {
			return nil, err
		}
		if v := item.get("min"); v != nil {
			if a.Min, err = v.float(path + ".min"); err != nil {
				return nil, err
			}
			a.HasMin = true
		}
		if v := item.get("max"); v != nil {
			if a.Max, err = v.float(path + ".max"); err != nil {
				return nil, err
			}
			a.HasMax = true
		}
		out = append(out, a)
	}
	return out, nil
}

// validate enforces the cross-field rules the decoder cannot see.
func (sc *Scenario) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario: %s", fmt.Sprintf(format, args...))
	}
	if sc.Name == "" {
		return bad("name is required")
	}
	for _, r := range sc.Name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
		default:
			return bad("name %q: use lowercase letters, digits and dashes", sc.Name)
		}
	}
	t := &sc.Topology
	if t.Mode != "static" && t.Mode != "elect" {
		return bad("topology.mode %q: want static or elect", t.Mode)
	}
	if t.FS != "mem" && t.FS != "os" {
		return bad("topology.fs %q: want mem or os", t.FS)
	}
	if len(t.Nodes) == 0 {
		return bad("topology.nodes is empty")
	}
	byName := map[string]bool{}
	roots := 0
	for _, n := range t.Nodes {
		if n.Name == "" {
			return bad("a node has no name")
		}
		switch n.Name {
		case "leader", "killed", "all":
			return bad("node name %q is a reserved selector", n.Name)
		}
		if byName[n.Name] {
			return bad("duplicate node name %q", n.Name)
		}
		byName[n.Name] = true
		if n.Upstream == "" {
			roots++
		}
	}
	switch t.Mode {
	case "static":
		if roots != 1 {
			return bad("static topology needs exactly one node without upstream (the primary), got %d", roots)
		}
		for _, n := range t.Nodes {
			if n.Upstream != "" && !byName[n.Upstream] {
				return bad("node %q upstream %q is not declared", n.Name, n.Upstream)
			}
		}
		// Reject upstream cycles: follow each chain to the root.
		up := map[string]string{}
		for _, n := range t.Nodes {
			up[n.Name] = n.Upstream
		}
		for _, n := range t.Nodes {
			seen := map[string]bool{}
			for cur := n.Name; cur != ""; cur = up[cur] {
				if seen[cur] {
					return bad("upstream cycle through node %q", cur)
				}
				seen[cur] = true
			}
		}
	case "elect":
		for _, n := range t.Nodes {
			if n.Upstream != "" {
				return bad("elect topology decides roles itself; node %q must not declare upstream", n.Name)
			}
		}
		if len(t.Nodes) < 3 {
			return bad("elect topology needs at least 3 nodes for a meaningful quorum, got %d", len(t.Nodes))
		}
	}
	w := &sc.Workload
	if w.NLow < 0 || w.NHigh < 0 || w.NLow+w.NHigh == 0 {
		return bad("workload.objects: low+high must be positive")
	}
	if w.Updates.Rate <= 0 {
		return bad("workload.updates.rate must be positive")
	}
	if w.Updates.Duration <= 0 {
		return bad("workload.updates.duration must be positive")
	}
	if w.Updates.Duration > 30 || w.Txns.Duration > 30 {
		return bad("workload durations are wall-clock seconds; keep them under 30")
	}
	switch w.Updates.Shape {
	case "constant":
	case "bursty":
		if w.Updates.BurstFactor < 1 {
			return bad("bursty shape needs burst_factor >= 1")
		}
	case "flash_crowd":
		if w.Updates.SpikeFactor < 1 || w.Updates.SpikeDuration <= 0 {
			return bad("flash_crowd shape needs spike_factor >= 1 and spike_duration > 0")
		}
	case "diurnal":
		if w.Updates.PeakFactor < 1 {
			return bad("diurnal shape needs peak_factor >= 1")
		}
	default:
		return bad("workload.updates.shape %q: want constant, bursty, flash_crowd or diurnal", w.Updates.Shape)
	}
	if err := sc.validateFaults(byName, bad); err != nil {
		return err
	}
	return sc.validateAssertions(bad)
}

func (sc *Scenario) validateFaults(byName map[string]bool, bad func(string, ...any) error) error {
	t := &sc.Topology
	elect := t.Mode == "elect"
	sawKill := false
	if !sort.SliceIsSorted(sc.Faults, func(i, j int) bool { return sc.Faults[i].At < sc.Faults[j].At }) {
		return bad("faults must be listed in increasing at order")
	}
	for i, f := range sc.Faults {
		where := fmt.Sprintf("faults[%d] (%s)", i, f.Kind)
		if f.At < 0 {
			return bad("%s: at must be >= 0", where)
		}
		target := func(allowDynamic bool) error {
			if f.Node == "" {
				return bad("%s: node is required", where)
			}
			if byName[f.Node] {
				return nil
			}
			if elect && allowDynamic && (f.Node == "leader" || f.Node == "killed") {
				return nil
			}
			return bad("%s: unknown node %q", where, f.Node)
		}
		needWindow := func() error {
			if f.Duration <= 0 {
				return bad("%s: duration must be positive", where)
			}
			return nil
		}
		needMemFS := func() error {
			if t.FS != "mem" {
				return bad("%s: requires topology.fs mem", where)
			}
			return nil
		}
		switch f.Kind {
		case "chaos":
			if err := needWindow(); err != nil {
				return err
			}
			if f.Reset+f.Partial+f.Flip <= 0 && f.MaxDelayUS <= 0 {
				return bad("%s: all probabilities zero and no delay; the window would be a no-op", where)
			}
			if f.Reset+f.Partial+f.Flip > 1 {
				return bad("%s: reset+partial+flip must not exceed 1", where)
			}
			if elect {
				if f.Node != "" && f.Node != "all" {
					return bad("%s: elect mode chaos gates every link; use node: all", where)
				}
			} else {
				if err := target(false); err != nil {
					return err
				}
				if sc.upstreamOf(f.Node) == "" {
					return bad("%s: node %q has no upstream link to disturb", where, f.Node)
				}
			}
		case "partition":
			if err := needWindow(); err != nil {
				return err
			}
			if f.Node != "" {
				return bad("%s: partition blackholes every link; drop node", where)
			}
			if f.Windows > 0 && (f.MinMS <= 0 || f.MaxMS < f.MinMS) {
				return bad("%s: windows > 0 needs 0 < min_ms <= max_ms", where)
			}
		case "wal":
			if err := needWindow(); err != nil {
				return err
			}
			if err := needMemFS(); err != nil {
				return err
			}
			if err := target(true); err != nil {
				return err
			}
			if f.WriteErr+f.ShortWrite+f.SyncErr <= 0 {
				return bad("%s: all probabilities zero; the window would be a no-op", where)
			}
		case "kill":
			if err := needMemFS(); err != nil {
				return err
			}
			if err := target(true); err != nil {
				return err
			}
			if !elect && sc.upstreamOf(f.Node) == "" && f.Node != "" && byName[f.Node] {
				return bad("%s: cannot kill the static primary (use an elect topology for primary death)", where)
			}
			sawKill = true
		case "restart":
			if err := needMemFS(); err != nil {
				return err
			}
			if err := target(true); err != nil {
				return err
			}
			if !sawKill {
				return bad("%s: restart needs an earlier kill", where)
			}
		case "checkpoint":
			if err := target(true); err != nil {
				return err
			}
		default:
			return bad("%s: unknown fault kind", where)
		}
	}
	return nil
}

func (sc *Scenario) validateAssertions(bad func(string, ...any) error) error {
	if len(sc.Assertions) == 0 {
		return bad("at least one assertion is required")
	}
	elect := sc.Topology.Mode == "elect"
	hasKind := func(k string) bool {
		for _, f := range sc.Faults {
			if f.Kind == k {
				return true
			}
		}
		return false
	}
	seen := map[string]bool{}
	for i, a := range sc.Assertions {
		where := fmt.Sprintf("assertions[%d] (%s)", i, a.Kind)
		if seen[a.Kind] {
			return bad("%s: duplicate assertion kind", where)
		}
		seen[a.Kind] = true
		needMax := func() error {
			if !a.HasMax {
				return bad("%s: max bound is required", where)
			}
			return nil
		}
		switch a.Kind {
		case "convergence":
		case "progress":
			if !a.HasMin {
				return bad("%s: min bound is required", where)
			}
		case "staleness_p99", "staleness_max", "uu_p99":
			if err := needMax(); err != nil {
				return err
			}
		case "faults_injected":
			if !a.HasMin {
				return bad("%s: min bound is required", where)
			}
			if len(sc.Faults) == 0 {
				return bad("%s: scenario declares no faults", where)
			}
		case "reconnects":
			if elect {
				return bad("%s: reconnect counters are per static replica; elect re-points do not register them", where)
			}
			if !a.HasMin && !a.HasMax {
				return bad("%s: needs min and/or max", where)
			}
		case "durability":
			if !elect {
				return bad("%s: durability markers are committed on the elected leader; use an elect topology", where)
			}
			if !hasKind("kill") || !hasKind("restart") {
				return bad("%s: needs a kill and a restart fault to exercise", where)
			}
		case "one_winner":
			if !elect {
				return bad("%s: requires an elect topology", where)
			}
		case "degraded":
			if !hasKind("wal") {
				return bad("%s: needs a wal fault window to enter degraded mode", where)
			}
			if sc.Workload.Txns.Rate <= 0 {
				return bad("%s: needs workload.txns.rate > 0 (transactions exercise the WAL)", where)
			}
		default:
			return bad("%s: unknown assertion kind", where)
		}
	}
	return nil
}

// upstreamOf returns a static node's upstream, or "".
func (sc *Scenario) upstreamOf(name string) string {
	for _, n := range sc.Topology.Nodes {
		if n.Name == name {
			return n.Upstream
		}
	}
	return ""
}

// nodeNames returns the declared node names in order.
func (sc *Scenario) nodeNames() []string {
	out := make([]string, len(sc.Topology.Nodes))
	for i, n := range sc.Topology.Nodes {
		out[i] = n.Name
	}
	return out
}

// String renders a one-line summary for -list.
func (sc *Scenario) String() string {
	return fmt.Sprintf("%s [%s/%d nodes, %s %s] %s",
		sc.Name, sc.Topology.Mode, len(sc.Topology.Nodes),
		sc.Workload.Updates.Shape, strings.TrimSpace(sc.Description), "")
}
