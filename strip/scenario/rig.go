package scenario

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/strip"
	"repro/strip/elect"
	"repro/strip/fault"
	"repro/strip/obs"
	"repro/strip/repl"
)

// runNode is one live (or killed) fleet member.
type runNode struct {
	name string
	spec NodeSpec

	fs  *fault.MemFS // nil when the scenario runs on the real filesystem
	dir string       // temp dir for fs=os
	reg *obs.Registry
	db  *strip.DB

	// static mode
	serveAddr string // reserved replication address when this node has children
	ln        net.Listener
	primary   *repl.Primary
	replica   *repl.Replica

	// elect mode
	electID string // peer address; doubles as the elect listen address
	fo      *repl.Failover
	node    *elect.Node

	alive bool
	// kill captures, for restart and for assertions over dead lives.
	killOps  []fault.Op
	killStat strip.Stats
	lives    int
}

// winners mirrors the failover tests' exactly-one-winner ledger.
type winners struct {
	mu         sync.Mutex
	byEpoch    map[uint64]string
	bad        []string
	promotions int
}

func (w *winners) promoted(node string, epoch uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.promotions++
	if prev, ok := w.byEpoch[epoch]; ok && prev != node {
		w.bad = append(w.bad, fmt.Sprintf("epoch %d claimed by both %s and %s", epoch, prev, node))
		return
	}
	w.byEpoch[epoch] = node
}

func (w *winners) violations() (bad []string, promotions int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.bad...), w.promotions
}

// chaosCtl applies one chaosSpec at runtime: every wrapped connection
// gets its own seed-derived fault stream, gated to the plan's windows.
type chaosCtl struct {
	rig  *rig
	spec *chaosSpec
	seq  atomic.Uint64
}

func (c *chaosCtl) active() bool {
	elapsed := time.Since(c.rig.started())
	for _, w := range c.spec.wins {
		if w.contains(elapsed) {
			return true
		}
	}
	return false
}

func (c *chaosCtl) wrap(conn net.Conn) net.Conn {
	cfg := c.spec.cfg
	cfg.Seed += c.seq.Add(1)
	cfg.Gate = c.active
	cfg.OnFault = func(side, kind string, arg int) { c.rig.faults.Add(1) }
	return fault.WrapConn(conn, cfg)
}

// chaosListener wraps a serving node's accepted connections in the
// chaos of its chaos-targeted children, so injected corruption also
// hits the frame stream the primary writes.
type chaosListener struct {
	net.Listener
	ctls []*chaosCtl
}

func (l *chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	for _, c := range l.ctls {
		conn = c.wrap(conn)
	}
	return conn, nil
}

// rig is the runtime of one scenario: the fleet, the global fault
// machinery and the captured evidence the assertions read.
type rig struct {
	sc   *Scenario
	pl   *plan
	logf func(string, ...any)

	nodes map[string]*runNode
	order []string
	root  string // static mode's declared primary

	startMu sync.Mutex
	start   time.Time
	part    *fault.Partition // guarded by startMu; published after boot

	chaos  map[string]*chaosCtl
	faults atomic.Uint64

	win *winners

	mu         sync.Mutex
	lastKilled string
	deadStats  []strip.Stats // kill-time snapshots of ended lives
	durFail    []string
	markers    []string
	notes      []string
	dropped    int // workload items with no live head to receive them
}

func newRig(sc *Scenario, pl *plan, logf func(string, ...any)) *rig {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &rig{
		sc:    sc,
		pl:    pl,
		logf:  logf,
		nodes: map[string]*runNode{},
		chaos: map[string]*chaosCtl{},
		win:   &winners{byEpoch: map[uint64]string{}},
	}
	for _, n := range sc.Topology.Nodes {
		r.order = append(r.order, n.Name)
		r.nodes[n.Name] = &runNode{name: n.Name, spec: n}
		if sc.Topology.Mode == "static" && n.Upstream == "" {
			r.root = n.Name
		}
	}
	for target, spec := range pl.chaos {
		r.chaos[target] = &chaosCtl{rig: r, spec: spec}
	}
	return r
}

func (r *rig) started() time.Time {
	r.startMu.Lock()
	defer r.startMu.Unlock()
	return r.start
}

func (r *rig) setStart(t time.Time) {
	r.startMu.Lock()
	r.start = t
	r.startMu.Unlock()
}

func (r *rig) note(format string, args ...any) {
	r.mu.Lock()
	r.notes = append(r.notes, fmt.Sprintf(format, args...))
	r.mu.Unlock()
	r.logf("scenario %s: "+format, append([]any{r.sc.Name}, args...)...)
}

func (r *rig) details() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.notes...)
}

// elapsed is the scenario clock.
func (r *rig) elapsed() float64 { return time.Since(r.started()).Seconds() }

// sleepUntil blocks until the scenario clock reaches at.
func (r *rig) sleepUntil(at float64) {
	d := time.Until(r.started().Add(time.Duration(at * float64(time.Second))))
	if d > 0 {
		time.Sleep(d)
	}
}

// partition returns the published partition schedule, if any.
func (r *rig) partition() *fault.Partition {
	r.startMu.Lock()
	defer r.startMu.Unlock()
	return r.part
}

// gate routes a dial through the global partition schedule.
func (r *rig) gate(dial func() (net.Conn, error)) (net.Conn, error) {
	if p := r.partition(); p != nil {
		return p.Dial(dial)()
	}
	return dial()
}

// openNodeDB opens (or reopens) a node's database on the given
// filesystem with a fresh registry.
func (r *rig) openNodeDB(n *runNode, fs *fault.MemFS) error {
	n.reg = obs.NewRegistry()
	cfg := strip.Config{Policy: strip.UpdatesFirst, Metrics: n.reg}
	if fs != nil {
		n.fs = fs
		cfg.FS = fs
		if n.spec.WAL {
			cfg.WALPath = "wal"
		}
	} else if n.spec.WAL {
		cfg.WALPath = filepath.Join(n.dir, "wal")
	}
	db, err := strip.Open(cfg)
	if err != nil {
		return fmt.Errorf("scenario: open %s: %w", n.name, err)
	}
	r.mu.Lock()
	n.db = db
	n.alive = true
	n.lives++
	r.mu.Unlock()
	return nil
}

// defineObjects declares the planned view objects on a database.
func (r *rig) defineObjects(db *strip.DB) error {
	for _, o := range r.pl.objects {
		if err := db.DefineView(o.name, o.imp); err != nil {
			return err
		}
	}
	return nil
}

// boot builds the fleet. For elect topologies it also waits for the
// first election to settle, so the scenario clock starts with a
// working primary — fault offsets then mean the same thing run to run.
func (r *rig) boot() error {
	if r.sc.Topology.FS == "os" {
		for _, name := range r.order {
			dir, err := os.MkdirTemp("", "scenario-"+name+"-")
			if err != nil {
				return err
			}
			r.nodes[name].dir = dir
		}
	}
	var err error
	if r.sc.Topology.Mode == "static" {
		err = r.bootStatic()
	} else {
		err = r.bootElect()
	}
	if err != nil {
		return err
	}
	r.setStart(time.Now())
	// The partition starts with the scenario clock, after boot — so its
	// windows line up with the plan's offsets. Replica dial loops are
	// already running by now, so the pointer is published under the
	// same lock gate() reads it with.
	if len(r.pl.partWins) > 0 {
		p := fault.NewPartition(nil, r.pl.partWins...)
		p.OnFault = func(op string) { r.faults.Add(1) }
		r.startMu.Lock()
		r.part = p
		r.startMu.Unlock()
	}
	return nil
}

// children lists a static node's direct downstreams in declaration
// order.
func (r *rig) children(name string) []*runNode {
	var out []*runNode
	for _, cand := range r.order {
		if r.nodes[cand].spec.Upstream == name {
			out = append(out, r.nodes[cand])
		}
	}
	return out
}

// listenReserved listens on addr, retrying briefly: a restart relists
// on an address whose previous listener just closed.
func listenReserved(addr string) (net.Listener, error) {
	var lastErr error
	for i := 0; i < 200; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, lastErr
}

// serveStatic opens a static node's replication listener (wrapped in
// its children's chaos) and starts its Primary.
func (r *rig) serveStatic(n *runNode) error {
	if len(r.children(n.name)) == 0 {
		return nil
	}
	var ln net.Listener
	var err error
	if n.serveAddr == "" {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		n.serveAddr = ln.Addr().String()
	} else if ln, err = listenReserved(n.serveAddr); err != nil {
		return fmt.Errorf("scenario: relisten %s for %s: %w", n.serveAddr, n.name, err)
	}
	var ctls []*chaosCtl
	for _, child := range r.children(n.name) {
		if c := r.chaos[child.name]; c != nil {
			ctls = append(ctls, c)
		}
	}
	n.ln = ln
	if len(ctls) > 0 {
		ln = &chaosListener{Listener: ln, ctls: ctls}
	}
	n.primary = repl.NewPrimary(n.db, repl.PrimaryConfig{RingFrames: 256, Metrics: n.reg})
	go n.primary.Serve(ln)
	return nil
}

// followStatic points a static node's replica at its upstream through
// the partition gate and the link's chaos.
func (r *rig) followStatic(n *runNode) error {
	up := r.nodes[n.spec.Upstream]
	ctl := r.chaos[n.name]
	dial := func() (net.Conn, error) {
		conn, err := r.gate(func() (net.Conn, error) {
			return net.DialTimeout("tcp", up.serveAddr, time.Second)
		})
		if err != nil {
			return nil, err
		}
		if ctl != nil {
			conn = ctl.wrap(conn)
		}
		return conn, nil
	}
	rep, err := repl.StartReplica(n.db, repl.ReplicaConfig{
		Dial:        dial,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        subSeed(r.pl.seed, 64+n.lives),
		Metrics:     n.reg,
	})
	if err != nil {
		return err
	}
	n.replica = rep
	return nil
}

// bootStatic builds the declared replica tree: every node with
// children serves a Primary; every node with an upstream follows it.
func (r *rig) bootStatic() error {
	for i, name := range r.order {
		n := r.nodes[name]
		var fs *fault.MemFS
		if r.sc.Topology.FS == "mem" {
			fs = fault.NewMemFS()
		}
		if err := r.openNodeDB(n, fs); err != nil {
			return err
		}
		if name == r.root {
			if err := r.defineObjects(n.db); err != nil {
				return err
			}
		}
		if err := r.serveStatic(n); err != nil {
			return err
		}
		_ = i
	}
	// Replicas start after every listener is up, parents first so a
	// chain bootstraps in one pass.
	for _, name := range r.order {
		n := r.nodes[name]
		if n.spec.Upstream != "" {
			if err := r.followStatic(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// electTiming shrinks the election clocks to scenario scale, matching
// the failover tests.
func electTiming() elect.Timing {
	return elect.Timing{
		ProbeInterval: 20 * time.Millisecond,
		FailAfter:     150 * time.Millisecond,
		PhaseTimeout:  80 * time.Millisecond,
		BackoffBase:   15 * time.Millisecond,
		BackoffMax:    150 * time.Millisecond,
	}
}

// startElect builds and starts one elect participant on fs, listening
// on ln (which must be bound to the node's electID).
func (r *rig) startElect(n *runNode, ln net.Listener, fs *fault.MemFS, seed uint64) error {
	if err := r.openNodeDB(n, fs); err != nil {
		return err
	}
	if err := r.defineObjects(n.db); err != nil {
		return err
	}
	var peers []string
	for _, name := range r.order {
		peers = append(peers, r.nodes[name].electID)
	}
	node, err := elect.NewNode(elect.Config{
		Self:      n.electID,
		Peers:     peers,
		Seed:      seed,
		Timing:    electTiming(),
		TickEvery: 5 * time.Millisecond,
		IOTimeout: 500 * time.Millisecond,
		StatePath: "elect-ledger",
		FS:        fs,
		Dial: func(addr string) (net.Conn, error) {
			return r.gate(func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 500*time.Millisecond)
			})
		},
	})
	if err != nil {
		return err
	}
	go node.Serve(ln)
	r.mu.Lock()
	n.node = node
	r.mu.Unlock()
	name := n.name
	ctl := r.chaos["all"]
	fo, err := repl.StartFailover(n.db, repl.FailoverConfig{
		Node:       node,
		ReplAddrOf: func(peer string) string { return r.replAddrOf(peer) },
		ListenRepl: func() (net.Listener, error) { return listenReserved(n.serveAddr) },
		DialRepl: func(addr string) (net.Conn, error) {
			conn, err := r.gate(func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 500*time.Millisecond)
			})
			if err != nil {
				return nil, err
			}
			if ctl != nil {
				conn = ctl.wrap(conn)
			}
			return conn, nil
		},
		RingFrames:  256,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Seed:        seed,
		Metrics:     n.reg,
		OnRole: func(role repl.FailoverRole, epoch uint64) {
			if role == repl.RolePrimary {
				r.win.promoted(name, epoch)
			}
		},
	})
	if err != nil {
		node.Close()
		return err
	}
	r.mu.Lock()
	n.fo = fo
	r.mu.Unlock()
	return nil
}

// replAddrOf maps an elect peer ID to its replication address.
func (r *rig) replAddrOf(peer string) string {
	for _, name := range r.order {
		if n := r.nodes[name]; n.electID == peer {
			return n.serveAddr
		}
	}
	return ""
}

// bootElect builds the peer set and waits for the first election.
func (r *rig) bootElect() error {
	listeners := make([]net.Listener, len(r.order))
	for i, name := range r.order {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = ln
		r.nodes[name].electID = ln.Addr().String()
	}
	for _, name := range r.order {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addr := ln.Addr().String()
		ln.Close()
		r.nodes[name].serveAddr = addr
	}
	for i, name := range r.order {
		if err := r.startElect(r.nodes[name], listeners[i], fault.NewMemFS(), subSeed(r.pl.seed, 32+i)); err != nil {
			return err
		}
	}
	if r.awaitRoles(0, 20*time.Second) == nil {
		return fmt.Errorf("scenario: initial election did not settle")
	}
	return nil
}

// awaitRoles waits until exactly one live node is primary above epoch
// after, with every other live node following at the same epoch.
func (r *rig) awaitRoles(after uint64, timeout time.Duration) *runNode {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p := r.rolesSettled(after); p != nil {
			return p
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

func (r *rig) rolesSettled(after uint64) *runNode {
	var primary *runNode
	var epoch uint64
	for _, name := range r.order {
		n := r.nodes[name]
		if !n.alive {
			continue
		}
		role, e := n.fo.Role()
		if role == repl.RolePrimary {
			if primary != nil {
				return nil
			}
			primary, epoch = n, e
		}
	}
	if primary == nil || epoch <= after {
		return nil
	}
	for _, name := range r.order {
		n := r.nodes[name]
		if !n.alive || n == primary {
			continue
		}
		role, e := n.fo.Role()
		if role != repl.RoleReplica || e != epoch {
			return nil
		}
	}
	return primary
}

// head is the node currently receiving the workload: the static root,
// or the elected leader (nil while an election is in flight). The
// database handle is snapshotted under the rig lock because kill and
// restart swap it while the feeder goroutines are still running.
func (r *rig) head() (*runNode, *strip.DB) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sc.Topology.Mode == "static" {
		n := r.nodes[r.root]
		if n.alive {
			return n, n.db
		}
		return nil, nil
	}
	for _, name := range r.order {
		n := r.nodes[name]
		if n.alive && n.fo != nil {
			if role, _ := n.fo.Role(); role == repl.RolePrimary {
				return n, n.db
			}
		}
	}
	return nil, nil
}

// drive replays the planned workload and fault schedule in real time.
func (r *rig) drive() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := range r.pl.updates {
			u := &r.pl.updates[i]
			r.sleepUntil(u.at)
			_, db := r.head()
			if db == nil {
				r.countDropped()
				continue
			}
			err := db.ApplyUpdate(strip.Update{
				Object:    u.obj,
				Value:     u.val,
				Generated: r.started().Add(time.Duration(u.gen * float64(time.Second))),
			})
			if err != nil {
				r.countDropped()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := range r.pl.txns {
			tx := &r.pl.txns[i]
			r.sleepUntil(tx.at)
			_, db := r.head()
			if db == nil {
				r.countDropped()
				continue
			}
			// Failures are expected — degraded windows abort commits —
			// and are counted by the database itself.
			r.execSet(db, tx.key, tx.val)
		}
	}()
	for _, ev := range r.pl.events {
		r.sleepUntil(ev.at)
		r.exec(ev)
	}
	wg.Wait()
	r.sleepUntil(r.pl.endAt)
}

func (r *rig) countDropped() {
	r.mu.Lock()
	r.dropped++
	r.mu.Unlock()
}

// execSet commits one general-data write, reporting success.
func (r *rig) execSet(db *strip.DB, key string, v float64) bool {
	res := db.Exec(strip.TxnSpec{
		Value:    1,
		Deadline: time.Now().Add(2 * time.Second),
		Func: func(tx *strip.Tx) error {
			tx.Set(key, v)
			return nil
		},
	})
	return res.Committed()
}

// resolve maps a fault's node selector to a live runtime node.
func (r *rig) resolve(selector string) *runNode {
	switch selector {
	case "leader":
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if n, _ := r.head(); n != nil {
				return n
			}
			time.Sleep(5 * time.Millisecond)
		}
		return nil
	case "killed":
		r.mu.Lock()
		name := r.lastKilled
		r.mu.Unlock()
		if name == "" {
			return nil
		}
		return r.nodes[name]
	default:
		return r.nodes[selector]
	}
}

// exec runs one fault event.
func (r *rig) exec(ev *planEvent) {
	switch ev.kind {
	case "wal_on":
		n := r.resolve(ev.node)
		if n == nil || !n.alive || n.fs == nil {
			r.note("wal window at %.3fs found no target for %q", ev.at, ev.node)
			return
		}
		ev.pair.node = n
		n.fs.SetInjector(ev.pair.sched.Injector())
		r.note("wal faults on %s", n.name)
	case "wal_off":
		if n := ev.pair.node; n != nil && n.alive {
			n.fs.SetInjector(nil)
			r.note("wal faults off %s after %d injections", n.name, len(ev.pair.sched.Log()))
		}
	case "checkpoint":
		n := r.resolve(ev.node)
		if n == nil || !n.alive {
			r.note("checkpoint at %.3fs found no target for %q", ev.at, ev.node)
			return
		}
		if err := n.db.Checkpoint(); err != nil {
			r.note("checkpoint on %s failed: %v", n.name, err)
		} else {
			r.note("checkpoint on %s", n.name)
		}
	case "kill":
		n := r.resolve(ev.node)
		if n == nil || !n.alive {
			r.note("kill at %.3fs found no target for %q", ev.at, ev.node)
			return
		}
		r.kill(n)
	case "restart":
		n := r.resolve(ev.node)
		if n == nil || n.alive {
			r.note("restart at %.3fs found no target for %q", ev.at, ev.node)
			return
		}
		if err := r.restart(n); err != nil {
			r.note("restart of %s failed: %v", n.name, err)
		}
	}
}

// kill tears a node down in process-death order, capturing the disk
// image its crash leaves behind. On an elect node with a WAL it first
// commits and syncs durability markers — the synced⇒present evidence
// the durability assertion checks after restart.
func (r *rig) kill(n *runNode) {
	if r.sc.Topology.Mode == "elect" && n.spec.WAL {
		for i := 0; i < 3; i++ {
			key := fmt.Sprintf("durable/%s-%d-%d", n.name, n.lives, i)
			if !r.execSet(n.db, key, float64(i+1)) {
				continue
			}
			if err := n.db.Sync(); err != nil {
				continue
			}
			r.mu.Lock()
			r.markers = append(r.markers, key)
			r.mu.Unlock()
		}
	}
	n.killOps = n.fs.Ops()
	n.killStat = n.db.Stats()
	r.mu.Lock()
	r.deadStats = append(r.deadStats, n.killStat)
	r.lastKilled = n.name
	n.alive = false
	r.mu.Unlock()
	if r.sc.Topology.Mode == "elect" {
		n.fo.Close()
		n.node.Close()
		n.db.Close()
	} else {
		if n.replica != nil {
			n.replica.Close()
			n.replica = nil
		}
		if n.primary != nil {
			n.primary.Close()
			n.primary = nil
		}
		if n.ln != nil {
			n.ln.Close()
			n.ln = nil
		}
		n.db.Close()
	}
	r.note("killed %s", n.name)
}

// restart revives a killed node from the filesystem image its death
// froze. Elect nodes first get their WAL recovery checked against the
// recorded durability markers on a scratch rebuild, then rejoin the
// group on a second rebuild of the same image.
func (r *rig) restart(n *runNode) error {
	full := fault.CrashPoint{OpIdx: len(n.killOps)}
	if r.sc.Topology.Mode == "elect" {
		r.checkDurability(n, fault.BuildFS(n.killOps, full))
		ln, err := listenReserved(n.electID)
		if err != nil {
			return err
		}
		if err := r.startElect(n, ln, fault.BuildFS(n.killOps, full), subSeed(r.pl.seed, 48+n.lives)); err != nil {
			ln.Close()
			return err
		}
		r.note("restarted %s", n.name)
		return nil
	}
	if err := r.openNodeDB(n, fault.BuildFS(n.killOps, full)); err != nil {
		return err
	}
	if err := r.serveStatic(n); err != nil {
		return err
	}
	if n.spec.Upstream != "" {
		if err := r.followStatic(n); err != nil {
			return err
		}
	}
	r.note("restarted %s", n.name)
	return nil
}

// checkDurability opens a scratch database on the crash image and
// verifies every synced marker survived recovery.
func (r *rig) checkDurability(n *runNode, fs *fault.MemFS) {
	r.mu.Lock()
	markers := append([]string(nil), r.markers...)
	r.mu.Unlock()
	if len(markers) == 0 {
		return
	}
	db, err := strip.Open(strip.Config{Policy: strip.UpdatesFirst, WALPath: "wal", FS: fs})
	if err != nil {
		r.mu.Lock()
		r.durFail = append(r.durFail, fmt.Sprintf("recovery open of %s failed: %v", n.name, err))
		r.mu.Unlock()
		return
	}
	defer db.Close()
	var missing []string
	res := db.Exec(strip.TxnSpec{
		Deadline: time.Now().Add(2 * time.Second),
		Func: func(tx *strip.Tx) error {
			for _, key := range markers {
				if _, ok := tx.Get(key); !ok {
					missing = append(missing, key)
				}
			}
			return nil
		},
	})
	var fails []string
	if !res.Committed() {
		fails = append(fails, fmt.Sprintf("recovery read on %s failed: %v", n.name, res.Err))
	} else {
		for _, key := range missing {
			fails = append(fails, fmt.Sprintf("synced marker %s missing after %s recovered", key, n.name))
		}
	}
	r.mu.Lock()
	r.durFail = append(r.durFail, fails...)
	r.mu.Unlock()
	if res.Committed() {
		r.note("durability: %d/%d synced markers recovered on %s", len(markers)-len(missing), len(markers), n.name)
	}
}

// settle waits out every fault window so the assertions measure a
// healed fleet: the partition schedule must be past its last window,
// and an elect fleet must have exactly one primary again.
func (r *rig) settle() {
	if p := r.partition(); p != nil {
		for p.Active() || time.Now().Before(p.HealedBy()) {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if r.sc.Topology.Mode == "elect" {
		if r.awaitRoles(0, 20*time.Second) == nil {
			r.note("fleet did not settle on a single primary after the schedule")
		}
	}
}

// alive lists the live nodes in declaration order.
func (r *rig) aliveNodes() []*runNode {
	var out []*runNode
	for _, name := range r.order {
		if n := r.nodes[name]; n.alive {
			out = append(out, n)
		}
	}
	return out
}

// stateOf is the byte-identical convergence fingerprint: the snapshot
// encoding with the sequence number zeroed.
func stateOf(db *strip.DB) ([]byte, error) {
	s := db.ReplicaSnapshot()
	s.Seq = 0
	return repl.EncodeSnapshot(s)
}

// converge feeds a settle round through the head and polls until every
// live node's state is byte-identical to the head's.
func (r *rig) converge(timeout time.Duration) error {
	head, _ := r.head()
	if head == nil {
		return fmt.Errorf("no live head to converge on")
	}
	for i := 0; i < 5; i++ {
		r.execSet(head.db, "settle", float64(i))
		head.db.ApplyUpdate(strip.Update{Object: r.pl.objects[0].name, Value: float64(i) + 0.5})
	}
	deadline := time.Now().Add(timeout)
	var lagging string
	for time.Now().Before(deadline) {
		want, err := stateOf(head.db)
		if err != nil {
			return err
		}
		lagging = ""
		for _, n := range r.aliveNodes() {
			if n == head {
				continue
			}
			got, err := stateOf(n.db)
			if err != nil {
				return err
			}
			if !bytes.Equal(want, got) {
				lagging = n.name
				break
			}
		}
		if lagging == "" {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("%s never matched %s byte for byte", lagging, head.name)
}

// faultsTotal sums every injector's landed faults.
func (r *rig) faultsTotal() uint64 {
	total := r.faults.Load()
	for _, s := range r.pl.scheds {
		total += uint64(len(s.Log()))
	}
	return total
}

// statRecords returns one Stats per node life: kill-time snapshots of
// dead lives plus the live databases' current counters.
func (r *rig) statRecords() []strip.Stats {
	r.mu.Lock()
	out := append([]strip.Stats(nil), r.deadStats...)
	r.mu.Unlock()
	for _, n := range r.aliveNodes() {
		out = append(out, n.db.Stats())
	}
	return out
}

// teardown closes everything still running and removes temp dirs.
func (r *rig) teardown() {
	// Leaves first so nothing re-dials a closed upstream for long.
	for i := len(r.order) - 1; i >= 0; i-- {
		n := r.nodes[r.order[i]]
		if !n.alive {
			continue
		}
		n.alive = false
		if r.sc.Topology.Mode == "elect" {
			n.fo.Close()
			n.node.Close()
		} else {
			if n.replica != nil {
				n.replica.Close()
			}
			if n.primary != nil {
				n.primary.Close()
			}
			if n.ln != nil {
				n.ln.Close()
			}
		}
		n.db.Close()
	}
	for _, name := range r.order {
		if dir := r.nodes[name].dir; dir != "" {
			os.RemoveAll(dir)
		}
	}
}
