package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestScenarioLibrary runs every shipped scenario end to end: build
// the fleet, drive the planned workload, inflict the fault schedule,
// evaluate the assertions. Each scenario must pass; a failure logs the
// exact command that reproduces it.
func TestScenarioLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs take real wall-clock time")
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("scenario library has %d files, want at least 6", len(paths))
	}
	for _, p := range paths {
		p := p
		t.Run(strings.TrimSuffix(filepath.Base(p), ".yaml"), func(t *testing.T) {
			sc, err := Load(p)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(sc, Options{Logf: t.Logf})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, d := range rep.Details {
				t.Log(d)
			}
			if !rep.Passed {
				t.Errorf("scenario %s seed=%d failed:\n  %s",
					rep.Name, rep.Seed, strings.Join(rep.Failures, "\n  "))
				t.Logf("repro: %s", ReproCommand(p, rep.Seed))
			}
		})
	}
}

// chaosLink runs the chaos-link scenario (the ported replication chaos
// test) once per needed run, shared across the tests below.
var chaosLink struct {
	once sync.Once
	reps []*Report
	err  error
}

func chaosLinkRuns(t *testing.T) []*Report {
	t.Helper()
	chaosLink.once.Do(func() {
		sc, err := Load(filepath.Join("..", "..", "scenarios", "chaos-link.yaml"))
		if err != nil {
			chaosLink.err = err
			return
		}
		for i := 0; i < 2; i++ {
			rep, err := Run(sc, Options{})
			if err != nil {
				chaosLink.err = err
				return
			}
			chaosLink.reps = append(chaosLink.reps, rep)
		}
	})
	if chaosLink.err != nil {
		t.Fatal(chaosLink.err)
	}
	return chaosLink.reps
}

// TestScenarioChaosParity is the scenario-engine port of the bespoke
// TestReplicaChaosConvergence harness: a replication link under seeded
// resets, partial writes, bit flips and latency must absorb every
// injected fault and converge byte-identically once the window closes.
func TestScenarioChaosParity(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs take real wall-clock time")
	}
	rep := chaosLinkRuns(t)[0]
	if rep.FaultsInjected == 0 {
		t.Fatal("chaos injected no faults; the run exercised nothing")
	}
	if !rep.Passed {
		t.Fatalf("chaos scenario failed:\n  %s\nrepro: %s",
			strings.Join(rep.Failures, "\n  "),
			ReproCommand(filepath.Join("..", "..", "scenarios", "chaos-link.yaml"), rep.Seed))
	}
	t.Logf("converged after %d injected faults", rep.FaultsInjected)
}

// TestScenarioTranscriptDeterministic pins the transcript contract:
// the same file and seed produce byte-identical transcripts run to
// run, and the bytes match the committed golden copy — so any change
// to the planner's derivation chain is a reviewed diff, not drift.
func TestScenarioTranscriptDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs take real wall-clock time")
	}
	reps := chaosLinkRuns(t)
	if reps[0].Transcript != reps[1].Transcript {
		t.Fatalf("same seed, different transcripts:\n--- run 1\n%s\n--- run 2\n%s",
			reps[0].Transcript, reps[1].Transcript)
	}
	golden := filepath.Join("testdata", "chaos-link.transcript")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Transcript != string(want) {
		t.Fatalf("transcript drifted from %s:\n--- got\n%s\n--- want\n%s",
			golden, reps[0].Transcript, want)
	}
}

// TestScenarioSeedOverride reruns a scenario under a different seed —
// the repro path — and requires the transcript to advertise that seed.
func TestScenarioSeedOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs take real wall-clock time")
	}
	sc, err := Load(filepath.Join("..", "..", "scenarios", "baseline-convergence.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 99 {
		t.Fatalf("seed override ignored: report says %d", rep.Seed)
	}
	if !strings.Contains(rep.Transcript, "seed=99") {
		t.Fatalf("transcript does not carry the overridden seed:\n%s", rep.Transcript)
	}
	if !rep.Passed {
		t.Errorf("baseline under seed 99 failed:\n  %s", strings.Join(rep.Failures, "\n  "))
	}
}
