package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixturePaths globs one golden-fixture directory.
func fixturePaths(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", dir, "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no fixtures under testdata/%s", dir)
	}
	return paths
}

// TestDecodeAcceptFixtures decodes every accept fixture; each must
// parse, validate, and carry the name its file promises.
func TestDecodeAcceptFixtures(t *testing.T) {
	for _, p := range fixturePaths(t, "accept") {
		t.Run(filepath.Base(p), func(t *testing.T) {
			sc, err := Load(p)
			if err != nil {
				t.Fatalf("accept fixture rejected: %v", err)
			}
			if sc.Name == "" {
				t.Fatal("decoded scenario has no name")
			}
		})
	}
}

// TestDecodeRejectFixtures decodes every reject fixture; each must
// fail with an error containing the substring its "# error:" header
// declares. The header convention keeps the expected diagnostics next
// to the malformed input they diagnose.
func TestDecodeRejectFixtures(t *testing.T) {
	for _, p := range fixturePaths(t, "reject") {
		t.Run(filepath.Base(p), func(t *testing.T) {
			src, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			first, _, _ := bytes.Cut(src, []byte("\n"))
			want := strings.TrimSpace(strings.TrimPrefix(string(first), "# error:"))
			if want == "" || !bytes.HasPrefix(first, []byte("# error:")) {
				t.Fatalf("reject fixture must start with %q", "# error: <substring>")
			}
			sc, err := Decode(src)
			if err == nil {
				t.Fatalf("reject fixture decoded cleanly as %q", sc.Name)
			}
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not contain %q", err, want)
			}
		})
	}
}

// TestDecodeShippedScenarios keeps every file under scenarios/ inside
// the decoder's strict subset.
func TestDecodeShippedScenarios(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("scenario library has %d files, want at least 6", len(paths))
	}
	names := map[string]string{}
	for _, p := range paths {
		sc, err := Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if prev, dup := names[sc.Name]; dup {
			t.Errorf("%s and %s both declare name %q", prev, p, sc.Name)
		}
		names[sc.Name] = p
		if want := strings.TrimSuffix(filepath.Base(p), ".yaml"); sc.Name != want {
			t.Errorf("%s: name %q does not match its filename", p, sc.Name)
		}
	}
}
