package scenario

import (
	"fmt"
	"time"
)

// assertResult is one evaluated assertion.
type assertResult struct {
	kind   string
	ok     bool
	detail string
}

// evaluate runs every declared assertion against the settled rig, in
// declaration order.
func evaluate(sc *Scenario, r *rig) []assertResult {
	var out []assertResult
	for _, a := range sc.Assertions {
		res := assertResult{kind: a.Kind}
		switch a.Kind {
		case "convergence":
			if err := r.converge(20 * time.Second); err != nil {
				res.detail = err.Error()
			} else {
				res.ok = true
				res.detail = fmt.Sprintf("%d live nodes byte-identical", len(r.aliveNodes()))
			}
		case "progress":
			var most uint64
			for _, n := range r.aliveNodes() {
				if got := n.db.Stats().UpdatesReceived; got > most {
					most = got
				}
			}
			res.ok = float64(most) >= a.Min
			res.detail = fmt.Sprintf("%d updates received, want >= %g", most, a.Min)
		case "staleness_p99":
			out = append(out, headHistogram(r, a, "strip_staleness_seconds"))
			continue
		case "uu_p99":
			out = append(out, headHistogram(r, a, "strip_uu_backlog_updates"))
			continue
		case "staleness_max":
			head, _ := r.head()
			if head == nil {
				res.detail = "no live head"
				break
			}
			v, ok := head.reg.Value("strip_staleness_max_seconds")
			if !ok {
				res.detail = "strip_staleness_max_seconds not registered"
				break
			}
			res.ok = v <= a.Max
			res.detail = fmt.Sprintf("max staleness %.4fs on %s, want <= %g", v, head.name, a.Max)
		case "faults_injected":
			got := r.faultsTotal()
			res.ok = float64(got) >= a.Min
			res.detail = fmt.Sprintf("%d faults injected, want >= %g", got, a.Min)
		case "reconnects":
			var total float64
			for _, n := range r.aliveNodes() {
				if v, ok := n.reg.Value("strip_repl_reconnects_total"); ok {
					total += v
				}
			}
			res.ok = (!a.HasMin || total >= a.Min) && (!a.HasMax || total <= a.Max)
			res.detail = fmt.Sprintf("%g reconnects across live replicas (min=%g have_min=%v max=%g have_max=%v)",
				total, a.Min, a.HasMin, a.Max, a.HasMax)
		case "durability":
			r.mu.Lock()
			markers, failures := len(r.markers), append([]string(nil), r.durFail...)
			r.mu.Unlock()
			switch {
			case markers == 0:
				res.detail = "no durability markers were ever synced before a kill"
			case len(failures) > 0:
				res.detail = fmt.Sprintf("%v", failures)
			default:
				res.ok = true
				res.detail = fmt.Sprintf("%d synced markers all survived recovery", markers)
			}
		case "one_winner":
			bad, promotions := r.win.violations()
			var conflicts []string
			for _, n := range r.aliveNodes() {
				conflicts = append(conflicts, n.node.Conflicts()...)
			}
			switch {
			case len(bad) > 0:
				res.detail = fmt.Sprintf("%v", bad)
			case len(conflicts) > 0:
				res.detail = fmt.Sprintf("decision conflicts: %v", conflicts)
			case promotions == 0:
				res.detail = "no node was ever promoted"
			default:
				res.ok = true
				res.detail = fmt.Sprintf("%d promotions, one winner per epoch", promotions)
			}
		case "degraded":
			// One database life must have both entered degraded mode
			// (WAL errors failing commits) and healed out of it.
			for _, st := range r.statRecords() {
				if st.WALErrors > 0 && st.TxnsFailedDurability > 0 && st.DegradedHeals >= 1 && !st.Degraded {
					res.ok = true
					res.detail = fmt.Sprintf("entered (wal_errors=%d, failed_commits=%d) and healed (%d heals)",
						st.WALErrors, st.TxnsFailedDurability, st.DegradedHeals)
					break
				}
			}
			if !res.ok {
				res.detail = describeDegraded(r)
			}
		default:
			res.detail = "unknown assertion kind"
		}
		out = append(out, res)
	}
	return out
}

// headHistogram bounds the p99 of a head-node histogram.
func headHistogram(r *rig, a Assertion, name string) assertResult {
	res := assertResult{kind: a.Kind}
	head, _ := r.head()
	if head == nil {
		res.detail = "no live head"
		return res
	}
	h, ok := head.reg.HistogramFor(name)
	if !ok {
		res.detail = name + " not registered"
		return res
	}
	if h.Count() == 0 {
		res.detail = name + " observed nothing"
		return res
	}
	p99 := h.Quantile(0.99)
	res.ok = p99 <= a.Max
	res.detail = fmt.Sprintf("%s p99 <= %.4g on %s over %d observations, want <= %g",
		name, p99, head.name, h.Count(), a.Max)
	return res
}

// describeDegraded explains which half of the degraded lifecycle was
// never observed.
func describeDegraded(r *rig) string {
	var entered, healed bool
	for _, st := range r.statRecords() {
		if st.WALErrors > 0 && st.TxnsFailedDurability > 0 {
			entered = true
			if st.DegradedHeals >= 1 && !st.Degraded {
				healed = true
			}
		}
	}
	switch {
	case !entered:
		return "no database life both logged WAL errors and failed commits"
	case !healed:
		return "a life entered degraded mode but never healed (needs a checkpoint after the window)"
	default:
		return "entered and healed on different lives"
	}
}
