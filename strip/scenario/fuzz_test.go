package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenarioDecode throws arbitrary bytes at the strict-subset YAML
// decoder and the schema validator. The corpus is every golden fixture
// (accepted and rejected) plus the shipped scenario library, so the
// fuzzer starts from inputs that reach deep into the grammar. The
// decoder must never panic, and any input it accepts must satisfy the
// invariants the engine relies on.
func FuzzScenarioDecode(f *testing.F) {
	for _, dir := range []string{
		filepath.Join("testdata", "accept"),
		filepath.Join("testdata", "reject"),
		filepath.Join("..", "..", "scenarios"),
	} {
		paths, err := filepath.Glob(filepath.Join(dir, "*.yaml"))
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(src)
		}
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		sc, err := Decode(src)
		if err != nil {
			return
		}
		// Accepted documents must be runnable: the engine indexes nodes
		// by name, plans from positive rates, and trusts the mode.
		if sc.Name == "" {
			t.Fatal("accepted a scenario with no name")
		}
		if sc.Topology.Mode != "static" && sc.Topology.Mode != "elect" {
			t.Fatalf("accepted mode %q", sc.Topology.Mode)
		}
		if len(sc.Topology.Nodes) == 0 {
			t.Fatal("accepted an empty topology")
		}
		if sc.Workload.Updates.Rate <= 0 || sc.Workload.Updates.Duration <= 0 {
			t.Fatalf("accepted a non-positive update load: rate=%g duration=%g",
				sc.Workload.Updates.Rate, sc.Workload.Updates.Duration)
		}
		if len(sc.Assertions) == 0 {
			t.Fatal("accepted a scenario with no assertions")
		}
	})
}
