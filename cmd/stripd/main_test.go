package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/strip"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]strip.Policy{
		"UF": strip.UpdatesFirst, "uf": strip.UpdatesFirst,
		"TF": strip.TransactionsFirst, "tf": strip.TransactionsFirst,
		"SU": strip.SplitUpdates, "su": strip.SplitUpdates,
		"OD": strip.OnDemand, "od": strip.OnDemand,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("parsePolicy(bogus) should fail")
	}
}

func TestViewName(t *testing.T) {
	if got := viewName(7); got != "px.007" {
		t.Fatalf("viewName = %q", got)
	}
}

func TestRunRequiresMode(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("run without -listen/-feed should fail")
	}
	if err := run([]string{"-listen", "addr", "-policy", "bogus"}); err == nil {
		t.Fatal("bad policy should fail")
	}
}

func TestServerAndFeedEndToEnd(t *testing.T) {
	// Find a free port, then run server and feed briefly.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	serverErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		serverErr <- run([]string{
			"-listen", addr, "-views", "10", "-duration", "1200ms",
		})
	}()

	// Wait for the server to accept connections, then feed it.
	deadline := time.Now().Add(2 * time.Second)
	var conn net.Conn
	for time.Now().Before(deadline) {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if conn == nil {
		t.Fatal("server did not come up")
	}
	conn.Close()

	feedErr := run([]string{
		"-feed", addr, "-views", "10", "-rate", "200", "-duration", "600ms",
	})
	if feedErr != nil {
		t.Fatalf("feed failed: %v", feedErr)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		t.Fatalf("server failed: %v", err)
	}
	_ = fmt.Sprint() // keep fmt imported for future debug output
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestReplicationFlagsEndToEnd(t *testing.T) {
	feedAddr := freeAddr(t)
	replAddr := freeAddr(t)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs <- run([]string{
			"-listen", feedAddr, "-repl-listen", replAddr,
			"-views", "10", "-duration", "1500ms",
		})
	}()
	go func() {
		defer wg.Done()
		errs <- run([]string{
			"-replicate-from", replAddr, "-policy", "UF",
			"-views", "10", "-duration", "1500ms",
		})
	}()

	deadline := time.Now().Add(2 * time.Second)
	var conn net.Conn
	var err error
	for time.Now().Before(deadline) {
		conn, err = net.Dial("tcp", feedAddr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if conn == nil {
		t.Fatal("primary did not come up")
	}
	conn.Close()
	if err := run([]string{
		"-feed", feedAddr, "-views", "10", "-rate", "200", "-duration", "600ms",
	}); err != nil {
		t.Fatalf("feed failed: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("server/replica failed: %v", err)
		}
	}
}

// TestMetricsFlagsEndToEnd runs a server with -metrics-listen and
// -metrics-dump, feeds it, and checks that the scrape endpoint serves
// the pipeline histograms and that the exit snapshot lands on disk.
func TestMetricsFlagsEndToEnd(t *testing.T) {
	feedAddr := freeAddr(t)
	metricsAddr := freeAddr(t)
	dump := filepath.Join(t.TempDir(), "metrics-snapshot.txt")

	var wg sync.WaitGroup
	wg.Add(1)
	serverErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		serverErr <- run([]string{
			"-listen", feedAddr, "-metrics-listen", metricsAddr,
			"-metrics-dump", dump, "-views", "10", "-duration", "1500ms",
		})
	}()

	deadline := time.Now().Add(2 * time.Second)
	var conn net.Conn
	var err error
	for time.Now().Before(deadline) {
		conn, err = net.Dial("tcp", feedAddr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if conn == nil {
		t.Fatal("server did not come up")
	}
	conn.Close()
	if err := run([]string{
		"-feed", feedAddr, "-views", "10", "-rate", "200", "-duration", "600ms",
	}); err != nil {
		t.Fatalf("feed failed: %v", err)
	}

	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape failed: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read scrape: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"strip_updates_received_total",
		"strip_pipeline_install_seconds_bucket",
		"strip_staleness_seconds_bucket",
		"strip_queue_len",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape output missing %q", want)
		}
	}

	tr, err := http.Get("http://" + metricsAddr + "/debug/traces")
	if err != nil {
		t.Fatalf("traces fetch failed: %v", err)
	}
	trBody, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if !strings.Contains(string(trBody), "seq=") {
		t.Errorf("traces output has no recorded spans: %q", trBody)
	}

	wg.Wait()
	if err := <-serverErr; err != nil {
		t.Fatalf("server failed: %v", err)
	}
	snap, err := os.ReadFile(dump)
	if err != nil {
		t.Fatalf("metrics dump missing: %v", err)
	}
	if !strings.Contains(string(snap), "strip_updates_installed_total") {
		t.Errorf("dump missing installed counter:\n%s", snap)
	}
}

func TestParsePeers(t *testing.T) {
	order, replOf, err := parsePeers("10.0.0.1:7107=10.0.0.1:7207, 10.0.0.2:7107=10.0.0.2:7207,10.0.0.3:7107=10.0.0.3:7207")
	if err != nil {
		t.Fatalf("parsePeers: %v", err)
	}
	wantOrder := []string{"10.0.0.1:7107", "10.0.0.2:7107", "10.0.0.3:7107"}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Errorf("order = %v, want %v", order, wantOrder)
	}
	if got := replOf["10.0.0.2:7107"]; got != "10.0.0.2:7207" {
		t.Errorf("replOf[10.0.0.2:7107] = %q, want 10.0.0.2:7207", got)
	}
}

func TestParsePeersRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, spec, wantErr string
	}{
		{"empty", "", "empty"},
		{"stray comma", "a=b,,c=d", "empty entry"},
		{"no equals", "a=b,cd", "not an elect=repl"},
		{"empty side", "a=b,c=", "empty address side"},
		{"duplicate", "a=b,a=c", "twice"},
		{"single node", "a=b", "at least two"},
	}
	for _, tc := range cases {
		_, _, err := parsePeers(tc.spec)
		if err == nil {
			t.Errorf("%s: parsePeers(%q) accepted", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestRunRejectsBadFailoverSetup pins the clear-exit contract: a
// malformed -peers or a conflicting flag set must error out, not hang
// half-configured.
func TestRunRejectsBadFailoverSetup(t *testing.T) {
	cases := [][]string{
		{"-elect-listen", "127.0.0.1:0"},                                           // missing -peers
		{"-listen", "127.0.0.1:0", "-peers", "a=b,c=d"},                            // missing -elect-listen
		{"-elect-listen", "a", "-peers", "a=b,c=d", "-repl-listen", "127.0.0.1:0"}, // elect manages roles
		{"-elect-listen", "a", "-peers", "garbage"},                                // malformed peers
		{"-elect-listen", "z", "-peers", "a=b,c=d"},                                // self not in peers
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted an invalid failover setup", args)
		}
	}
}
