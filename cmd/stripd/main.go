// Command stripd runs a strip database as a network server: it
// ingests an update stream over TCP (one update per line, see
// strip.ParseUpdateLine) and periodically reports statistics.
//
// Server:
//
//	stripd -listen 127.0.0.1:7007 -views 100 -policy OD -maxage 1s
//
// Built-in synthetic feed (the client side, for trying it out):
//
//	stripd -feed 127.0.0.1:7007 -views 100 -rate 400
//
// Replication: a primary exports its update stream with -repl-listen,
// and any number of replicas import it with -replicate-from:
//
//	stripd -listen :7007 -repl-listen :7008            # primary
//	stripd -replicate-from 127.0.0.1:7008 -policy UF   # replica
//
// A replica can chain by passing its own -repl-listen. The once-a-
// second report shows the replication sequence and, on replicas, the
// MA/UU replication lag.
//
// Failover: -elect-listen and -peers replace the static primary/
// replica split with consensus-elected roles. Every node of the group
// runs the same command with its own -elect-listen; -peers lists the
// full membership as elect=repl address pairs (identical on every
// node). The elected primary serves the replication stream on its
// repl address from the pair list; everyone else follows it:
//
//	stripd -listen :7007 -elect-listen :7107 \
//	    -peers 127.0.0.1:7107=127.0.0.1:7207,127.0.0.1:7108=127.0.0.1:7208
//
// The once-a-second report then carries elect-state and elect-epoch.
// -elect-state names the durable election ledger (promises, accepted
// values, the decided epoch) so a restarted node keeps its word; it
// defaults to <wal>.elect when -wal is set.
//
// Observability: -metrics-listen serves the full metrics registry as
// Prometheus text on /metrics (plus /debug/pprof and, with traces
// enabled, /debug/traces), and -metrics-dump writes one final text
// snapshot to a file on exit:
//
//	stripd -listen :7007 -metrics-listen :9100
//	curl -s localhost:9100/metrics | grep strip_staleness
//
// The once-a-second console report is rendered from the same registry,
// so the two views can never disagree.
//
// The server also runs a sample read-only transaction each second so
// the transaction counters move.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/strip"
	"repro/strip/elect"
	"repro/strip/obs"
	"repro/strip/repl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stripd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stripd", flag.ContinueOnError)
	listen := fs.String("listen", "", "serve updates on this TCP address")
	feed := fs.String("feed", "", "act as a synthetic feed client to this address")
	views := fs.Int("views", 100, "number of view objects (px.000 ... )")
	policyName := fs.String("policy", "OD", "scheduling policy: UF, TF, SU or OD")
	maxAge := fs.Duration("maxage", time.Second, "MA staleness bound (0 selects UU)")
	rate := fs.Float64("rate", 400, "feed mode: updates per second")
	duration := fs.Duration("duration", 0, "exit after this long (0 = run until signal)")
	replListen := fs.String("repl-listen", "", "serve the replication frame stream on this TCP address")
	replicateFrom := fs.String("replicate-from", "", "run as a replica of the primary at this -repl-listen address")
	walPath := fs.String("wal", "", "write-ahead log path: makes general data durable across restarts")
	ckptEvery := fs.Duration("checkpoint-every", 30*time.Second, "checkpoint interval when -wal is set (also heals a degraded log)")
	electListen := fs.String("elect-listen", "", "join leader election with this address as the node's identity")
	peers := fs.String("peers", "", "election membership as elect=repl address pairs, comma separated (identical on every node)")
	electState := fs.String("elect-state", "", "election ledger path: makes promises and decisions durable across restarts (defaults to <wal>.elect when -wal is set)")
	metricsListen := fs.String("metrics-listen", "", "serve Prometheus text on /metrics (plus /debug/pprof) on this HTTP address")
	metricsDump := fs.String("metrics-dump", "", "write a final metrics snapshot (Prometheus text) to this file on exit")
	traceDepth := fs.Int("trace-depth", 256, "keep the last N per-update pipeline traces for /debug/traces (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *feed != "":
		return runFeed(*feed, *views, *rate, *duration)
	case *listen != "" || *replicateFrom != "" || *electListen != "":
		return runServer(serverConfig{
			listen:        *listen,
			views:         *views,
			policyName:    *policyName,
			maxAge:        *maxAge,
			duration:      *duration,
			replListen:    *replListen,
			replicateFrom: *replicateFrom,
			walPath:       *walPath,
			ckptEvery:     *ckptEvery,
			electListen:   *electListen,
			peers:         *peers,
			electState:    *electState,
			metricsListen: *metricsListen,
			metricsDump:   *metricsDump,
			traceDepth:    *traceDepth,
		})
	default:
		return fmt.Errorf("pass -listen <addr> (server), -replicate-from <addr> (replica), -elect-listen <addr> (failover group) or -feed <addr> (feed client)")
	}
}

// serverConfig carries runServer's knobs.
type serverConfig struct {
	listen        string
	views         int
	policyName    string
	maxAge        time.Duration
	duration      time.Duration
	replListen    string
	replicateFrom string
	walPath       string
	ckptEvery     time.Duration
	electListen   string
	peers         string
	electState    string
	metricsListen string
	metricsDump   string
	traceDepth    int
}

// parsePeers parses the -peers membership list: comma-separated
// elect=repl address pairs. It returns the elect addresses in list
// order (the order is part of the protocol configuration and must
// match on every node) and the elect→repl mapping. Every malformed
// shape gets its own message so a misconfigured node dies with a
// reason, not a hung election.
func parsePeers(spec string) (order []string, replOf map[string]string, err error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil, fmt.Errorf("-peers is empty; pass elect=repl address pairs, comma separated")
	}
	replOf = make(map[string]string)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, nil, fmt.Errorf("-peers has an empty entry (stray comma?) in %q", spec)
		}
		electAddr, replAddr, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, nil, fmt.Errorf("-peers entry %q is not an elect=repl address pair", entry)
		}
		electAddr, replAddr = strings.TrimSpace(electAddr), strings.TrimSpace(replAddr)
		if electAddr == "" || replAddr == "" {
			return nil, nil, fmt.Errorf("-peers entry %q has an empty address side", entry)
		}
		if _, dup := replOf[electAddr]; dup {
			return nil, nil, fmt.Errorf("-peers lists elect address %q twice", electAddr)
		}
		order = append(order, electAddr)
		replOf[electAddr] = replAddr
	}
	if len(order) < 2 {
		return nil, nil, fmt.Errorf("-peers needs at least two nodes, got %d", len(order))
	}
	return order, replOf, nil
}

func parsePolicy(name string) (strip.Policy, error) {
	switch name {
	case "UF", "uf":
		return strip.UpdatesFirst, nil
	case "TF", "tf":
		return strip.TransactionsFirst, nil
	case "SU", "su":
		return strip.SplitUpdates, nil
	case "OD", "od":
		return strip.OnDemand, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

func viewName(i int) string { return fmt.Sprintf("px.%03d", i) }

func runServer(cfg serverConfig) error {
	policy, err := parsePolicy(cfg.policyName)
	if err != nil {
		return err
	}
	if cfg.electListen != "" || cfg.peers != "" {
		if cfg.electListen == "" || cfg.peers == "" {
			return fmt.Errorf("-elect-listen and -peers must be used together")
		}
		if cfg.replListen != "" || cfg.replicateFrom != "" {
			return fmt.Errorf("-elect-listen manages the replication roles itself; drop -repl-listen and -replicate-from")
		}
	}
	views := cfg.views
	// One registry for the whole process: the database, replication
	// sides and election node all register into it, the /metrics
	// endpoint exposes it, and the 1s console report reads from it.
	reg := obs.NewRegistry()
	db, err := strip.Open(strip.Config{
		Policy:  policy,
		MaxAge:  cfg.maxAge,
		OnStale: strip.Warn,
		// Replicas install the full stream; an elected node may become
		// one at any moment.
		Coalesce:   cfg.replicateFrom == "" && cfg.electListen == "",
		WALPath:    cfg.walPath,
		Metrics:    reg,
		TraceDepth: cfg.traceDepth,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	if cfg.metricsDump != "" {
		// Runs before the deferred db.Close (LIFO), so gauge funcs still
		// read a live database.
		defer func() {
			if err := dumpMetrics(reg, cfg.metricsDump); err != nil {
				fmt.Fprintln(os.Stderr, "stripd: metrics dump:", err)
			}
		}()
	}
	if cfg.walPath != "" {
		fmt.Printf("write-ahead log at %s (checkpoint every %v)\n", cfg.walPath, cfg.ckptEvery)
	}
	if cfg.replicateFrom == "" {
		// Replicas import the primary's schema from the stream; a
		// primary (or standalone server) defines its own views.
		for i := 0; i < views; i++ {
			// Alternate importance so SplitUpdates has both classes.
			imp := strip.Low
			if i%2 == 1 {
				imp = strip.High
			}
			if err := db.DefineView(viewName(i), imp); err != nil {
				return err
			}
		}
	}

	if cfg.listen != "" {
		l, err := net.Listen("tcp", cfg.listen)
		if err != nil {
			return err
		}
		fmt.Printf("stripd serving %d views on %s (policy %s, maxage %v)\n",
			views, l.Addr(), policy, cfg.maxAge)
		go db.Serve(l)
	}
	if cfg.metricsListen != "" {
		ml, err := net.Listen("tcp", cfg.metricsListen)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: obs.NewMux(reg, db.Traces)}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		go srv.Serve(ml)
	}
	if cfg.replListen != "" {
		primary := repl.NewPrimary(db, repl.PrimaryConfig{Metrics: reg})
		defer primary.Close()
		rl, err := net.Listen("tcp", cfg.replListen)
		if err != nil {
			return err
		}
		fmt.Printf("replication stream on %s\n", rl.Addr())
		go primary.Serve(rl)
	}
	if cfg.replicateFrom != "" {
		replica, err := repl.StartReplica(db, repl.ReplicaConfig{
			Addr:    cfg.replicateFrom,
			Seed:    uint64(time.Now().UnixNano()),
			Metrics: reg,
		})
		if err != nil {
			return err
		}
		defer replica.Close()
		fmt.Printf("replicating from %s (policy %s)\n", cfg.replicateFrom, policy)
	}
	var fo *repl.Failover
	if cfg.electListen != "" {
		peerOrder, replOf, err := parsePeers(cfg.peers)
		if err != nil {
			return err
		}
		selfRepl, ok := replOf[cfg.electListen]
		if !ok {
			return fmt.Errorf("-elect-listen %q is not one of the elect addresses in -peers", cfg.electListen)
		}
		logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
		// The election ledger rides next to the WAL by default: a node
		// durable enough to keep its data should also keep its word.
		statePath := cfg.electState
		if statePath == "" && cfg.walPath != "" {
			statePath = cfg.walPath + ".elect"
		}
		node, err := elect.NewNode(elect.Config{
			Self:      cfg.electListen,
			Peers:     peerOrder,
			Seed:      uint64(time.Now().UnixNano()),
			Logf:      logf,
			StatePath: statePath,
			Metrics:   reg,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		el, err := net.Listen("tcp", cfg.electListen)
		if err != nil {
			return err
		}
		go node.Serve(el)
		fo, err = repl.StartFailover(db, repl.FailoverConfig{
			Node:       node,
			ReplAddrOf: func(id string) string { return replOf[id] },
			ListenRepl: func() (net.Listener, error) { return net.Listen("tcp", selfRepl) },
			Seed:       uint64(time.Now().UnixNano()),
			Logf:       logf,
			Metrics:    reg,
		})
		if err != nil {
			return err
		}
		defer fo.Close()
		fmt.Printf("election on %s across %d peers (replication at %s when primary)\n",
			el.Addr(), len(peerOrder), selfRepl)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var timeout <-chan time.Time
	if cfg.duration > 0 {
		timeout = time.After(cfg.duration)
	}
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	// Periodic checkpoints bound recovery time; a checkpoint is also
	// the degraded-mode heal path after a WAL failure.
	var ckptC <-chan time.Time
	if cfg.walPath != "" && cfg.ckptEvery > 0 {
		ckptTicker := time.NewTicker(cfg.ckptEvery)
		defer ckptTicker.Stop()
		ckptC = ckptTicker.C
	}
	rng := rand.New(rand.NewPCG(1, uint64(time.Now().UnixNano())))
	// finalCheckpoint bounds the next start's recovery replay and, if
	// the log is degraded, leaves it healed: the shutdown counterpart
	// of the periodic checkpoint. The -metrics-dump snapshot is written
	// by its deferred hook after this, while the database is still open.
	finalCheckpoint := func() {
		if cfg.walPath == "" {
			return
		}
		if err := db.Checkpoint(); err != nil {
			fmt.Printf("final checkpoint failed: %v\n", err)
		}
	}
	for {
		select {
		case <-stop:
			fmt.Println("\nshutting down")
			finalCheckpoint()
			return nil
		case <-timeout:
			finalCheckpoint()
			return nil
		case <-ckptC:
			if err := db.Checkpoint(); err != nil {
				fmt.Printf("checkpoint failed: %v\n", err)
			}
		case <-ticker.C:
			// A sample monitoring transaction: average a few views.
			idx := rng.IntN(views)
			res := db.Exec(strip.TxnSpec{
				Name:     "monitor",
				Value:    1,
				Deadline: time.Now().Add(100 * time.Millisecond),
				Func: func(tx *strip.Tx) error {
					sum, n := 0.0, 0
					for i := idx; i < idx+5 && i < views; i++ {
						e, err := tx.Read(viewName(i))
						if err != nil {
							return err
						}
						sum += e.Value
						n++
					}
					if n > 0 {
						tx.Set("monitor.avg", sum/float64(n))
					}
					return nil
				},
			})
			staleViews, _ := db.Aggregate("SELECT COUNT(*) FROM views WHERE stale")
			fmt.Println(reportLine(reg, cfg, fo, staleViews, res.StaleReads))
		}
	}
}

// reportLine renders the once-a-second console report from the
// metrics registry — the same series /metrics serves, so the console
// and the scrape endpoint cannot drift apart. staleViews and
// staleReads come from the sample monitoring transaction, which is
// per-tick state rather than a registered series.
func reportLine(reg *obs.Registry, cfg serverConfig, fo *repl.Failover, staleViews float64, staleReads []string) string {
	mv := func(name string) int64 {
		v, _ := reg.Value(name)
		return int64(v)
	}
	mf := func(name string) float64 {
		v, _ := reg.Value(name)
		return v
	}
	line := fmt.Sprintf("recv=%d installed=%d skipped=%d expired=%d queue=%d txns=%d stale-views=%.0f stale-reads=%v",
		mv("strip_updates_received_total"), mv("strip_updates_installed_total"),
		mv("strip_updates_skipped_total"), mv("strip_updates_expired_total"),
		mv("strip_queue_len"), mv("strip_txns_committed_total"), staleViews, staleReads)
	if cfg.replListen != "" {
		line += fmt.Sprintf(" repl-seq=%d", mv("strip_replication_seq"))
	}
	if cfg.replicateFrom != "" {
		line += fmt.Sprintf(" repl-lag=%.3fs/%du",
			mf("strip_replica_lag_seconds"), mv("strip_replica_lag_updates"))
	}
	if fo != nil {
		role, epoch := fo.Role()
		line += fmt.Sprintf(" elect-state=%s elect-epoch=%d", role, epoch)
		if role == repl.RoleReplica {
			line += fmt.Sprintf(" repl-lag=%.3fs/%du",
				mf("strip_replica_lag_seconds"), mv("strip_replica_lag_updates"))
		}
	}
	if cfg.walPath != "" {
		line += fmt.Sprintf(" wal-errors=%d", mv("strip_wal_errors_total"))
		if mv("strip_degraded") != 0 {
			line += " DEGRADED(commits failing; awaiting checkpoint)"
		}
	}
	return line
}

// dumpMetrics writes one Prometheus-text snapshot of the registry.
func dumpMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runFeed(addr string, views int, rate float64, duration time.Duration) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("feeding %s with %.0f updates/s across %d views\n", addr, rate, views)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var timeout <-chan time.Time
	if duration > 0 {
		timeout = time.After(duration)
	}
	rng := rand.New(rand.NewPCG(2, uint64(time.Now().UnixNano())))
	prices := make([]float64, views)
	for i := range prices {
		prices[i] = 50 + rng.Float64()*100
	}
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	sent := 0
	for {
		select {
		case <-stop:
			fmt.Printf("\nsent %d updates\n", sent)
			return nil
		case <-timeout:
			fmt.Printf("sent %d updates\n", sent)
			return nil
		case <-tick.C:
			i := rng.IntN(views)
			prices[i] *= 1 + (rng.Float64()-0.5)*0.01
			err := strip.WriteUpdate(conn, strip.Update{
				Object:    viewName(i),
				Value:     prices[i],
				Generated: time.Now(),
			})
			if err != nil {
				return err
			}
			sent++
		}
	}
}
