package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig3", "fig16", "ext-coalesce", "ext-fc"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunSingleExperimentToStdout(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "fig15", "-duration", "5", "-seeds", "1", "-v=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OD:AV") {
		t.Fatalf("table output missing series header:\n%s", buf.String())
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-exp", "fig15", "-duration", "5", "-seeds", "1",
		"-o", dir, "-v=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig15.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "pview") {
		t.Fatalf("file content wrong:\n%s", data)
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-exp", "fig15", "-duration", "5", "-seeds", "1",
		"-o", dir, "-csv", "-v=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig15.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 7 { // header + 6 pview points
		t.Fatalf("CSV has %d lines:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "pview,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestRunMultiSeedShowsErrors(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "fig15", "-duration", "5", "-seeds", "2", "-v=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") {
		t.Fatalf("multi-seed table missing error bars:\n%s", buf.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{}, &buf); err == nil {
		t.Error("no action should fail")
	}
}

func TestVerifyMode(t *testing.T) {
	if testing.Short() {
		t.Skip("verification runs many simulations")
	}
	var buf bytes.Buffer
	err := run([]string{"-verify", "-duration", "60", "-seeds", "1", "-v=false"}, &buf)
	if err != nil {
		t.Fatalf("verify failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "claims verified") || strings.Contains(out, "FAIL") {
		t.Fatalf("verify output:\n%s", out)
	}
}

func TestCompareMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "fig15", "-compare", "OD,TF", "-metric", "AV",
		"-duration", "10", "-seeds", "2", "-v=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OD vs TF on AV") {
		t.Fatalf("compare output:\n%s", buf.String())
	}
	// Validation errors.
	if err := run([]string{"-compare", "OD,TF"}, &buf); err == nil {
		t.Error("compare without -exp should fail")
	}
	if err := run([]string{"-exp", "fig15", "-compare", "OD"}, &buf); err == nil {
		t.Error("compare with one policy should fail")
	}
}
