// Command stripexp regenerates the paper's evaluation figures as text
// tables (or CSV).
//
// Usage:
//
//	stripexp -list
//	stripexp -exp fig5 -duration 1000 -seeds 3
//	stripexp -all -duration 200 -o results/
//	stripexp -extensions
//	stripexp -verify -duration 200    # check every qualitative claim
//
// Each figure is a parameter sweep over the four algorithms; the
// tables print the same series the paper plots. Durations below the
// paper's 1000 s trade precision for speed; the qualitative shapes are
// stable from roughly 100 s.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stripexp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stripexp", flag.ContinueOnError)
	list := fs.Bool("list", false, "list known experiments and exit")
	verify := fs.Bool("verify", false, "regenerate the needed figures and check every qualitative claim of the paper")
	compare := fs.String("compare", "", "statistically compare two policies, e.g. OD,TF (requires -exp and -metric)")
	report := fs.String("report", "", "write a full markdown reproduction report (all figures + claims) to this file")
	metric := fs.String("metric", "psuccess", "metric for -compare")
	expID := fs.String("exp", "", "run a single experiment by id (e.g. fig5)")
	all := fs.Bool("all", false, "run every paper figure")
	extensions := fs.Bool("extensions", false, "run the extension/ablation experiments")
	duration := fs.Float64("duration", 1000, "simulated seconds per data point")
	seeds := fs.Int("seeds", 3, "replications per data point")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	outDir := fs.String("o", "", "write one file per experiment into this directory")
	verbose := fs.Bool("v", true, "print progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, d := range append(experiment.All(), experiment.Extensions()...) {
			fmt.Fprintf(stdout, "%-12s %s\n", d.ID, d.Title)
		}
		return nil
	}

	if *verify {
		opts := experiment.Options{Duration: *duration}
		for s := 1; s <= *seeds; s++ {
			opts.Seeds = append(opts.Seeds, uint64(s))
		}
		var progress io.Writer
		if *verbose {
			progress = os.Stderr
		}
		results, err := experiment.VerifyClaims(opts, progress)
		if err != nil {
			return err
		}
		failed := 0
		for _, r := range results {
			status := "PASS"
			if !r.Passed {
				status = "FAIL"
				failed++
			}
			fmt.Fprintf(stdout, "%s  %-28s %s\n      %s\n",
				status, r.Claim.ID, r.Claim.Statement, r.Detail)
		}
		fmt.Fprintf(stdout, "\n%d/%d claims verified\n", len(results)-failed, len(results))
		if failed > 0 {
			return fmt.Errorf("%d claims failed", failed)
		}
		return nil
	}

	if *report != "" {
		opts := experiment.Options{Duration: *duration}
		for s := 1; s <= *seeds; s++ {
			opts.Seeds = append(opts.Seeds, uint64(s))
		}
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		var progress io.Writer
		if *verbose {
			progress = os.Stderr
		}
		err = experiment.WriteReport(f, opts, progress)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}

	if *compare != "" {
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 || *expID == "" {
			return fmt.Errorf("-compare needs two policies (A,B) and -exp")
		}
		opts := experiment.Options{Duration: *duration}
		for s := 1; s <= *seeds; s++ {
			opts.Seeds = append(opts.Seeds, uint64(s))
		}
		cmp, err := experiment.Compare(*expID, parts[0], parts[1], *metric, opts)
		if err != nil {
			return err
		}
		return cmp.Render(stdout)
	}

	var defs []*experiment.Definition
	switch {
	case *expID != "":
		d, err := experiment.ByID(*expID)
		if err != nil {
			return err
		}
		defs = []*experiment.Definition{d}
	case *all && *extensions:
		defs = append(experiment.All(), experiment.Extensions()...)
	case *all:
		defs = experiment.All()
	case *extensions:
		defs = experiment.Extensions()
	default:
		return fmt.Errorf("nothing to do: pass -exp <id>, -all, -extensions or -list")
	}

	opts := experiment.Options{Duration: *duration}
	for s := 1; s <= *seeds; s++ {
		opts.Seeds = append(opts.Seeds, uint64(s))
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	for _, d := range defs {
		start := time.Now()
		tab, err := d.Run(opts)
		if err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%-12s done in %v\n", d.ID, time.Since(start).Round(time.Millisecond))
		}
		w := stdout
		var f *os.File
		if *outDir != "" {
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			f, err = os.Create(filepath.Join(*outDir, d.ID+ext))
			if err != nil {
				return err
			}
			w = f
		}
		if *csv {
			err = tab.CSV(w)
		} else {
			err = tab.Render(w)
			fmt.Fprintln(w)
		}
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
