package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"repro/strip"
)

// startServer brings up an in-process strip server for client tests.
func startServer(t *testing.T) (*strip.DB, string) {
	t.Helper()
	db, err := strip.Open(strip.Config{Policy: strip.UpdatesFirst})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, name := range []string{"px.000", "px.001"} {
		if err := db.DefineView(name, strip.High); err != nil {
			t.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go db.Serve(l)
	return db, l.Addr().String()
}

func waitInstalled(t *testing.T, db *strip.DB, n uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if db.Stats().UpdatesInstalled >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("only %d updates installed", db.Stats().UpdatesInstalled)
}

func TestPutThenQuery(t *testing.T) {
	db, addr := startServer(t)
	if err := run([]string{"-addr", addr, "-put", "px.000=42.5"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	waitInstalled(t, db, 1)

	var buf bytes.Buffer
	err := run([]string{"-addr", addr, "SELECT * FROM views WHERE value > 40"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "px.000") || !strings.Contains(out, "42.5") ||
		!strings.Contains(out, "(1 rows)") {
		t.Fatalf("query output:\n%s", out)
	}
}

func TestAggregateQuery(t *testing.T) {
	db, addr := startServer(t)
	run([]string{"-addr", addr, "-put", "px.000=10"}, &bytes.Buffer{})
	run([]string{"-addr", addr, "-put", "px.001=20"}, &bytes.Buffer{})
	waitInstalled(t, db, 2)

	var buf bytes.Buffer
	err := run([]string{"-addr", addr, "-agg", "SELECT SUM(value) FROM views"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "30" {
		t.Fatalf("aggregate output = %q", got)
	}
}

func TestServerError(t *testing.T) {
	_, addr := startServer(t)
	var buf bytes.Buffer
	if err := run([]string{"-addr", addr, "SELECT gibberish"}, &buf); err == nil {
		t.Fatal("server parse error should surface")
	}
}

func TestClientValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:1", "-timeout", "100ms", "SELECT * FROM views"}, &buf); err == nil {
		t.Error("unreachable server should fail")
	}
	_, addr := startServer(t)
	if err := run([]string{"-addr", addr}, &buf); err == nil {
		t.Error("missing query should fail")
	}
	if err := run([]string{"-addr", addr, "-put", "novalue"}, &buf); err == nil {
		t.Error("malformed -put should fail")
	}
	if err := run([]string{"-addr", addr, "-put", "x=notafloat"}, &buf); err == nil {
		t.Error("bad -put value should fail")
	}
}
