// Command stripquery is a client for a running stripd server: it
// sends row queries and aggregates over the line protocol and prints
// the results.
//
//	stripquery -addr 127.0.0.1:7007 "SELECT * FROM views WHERE stale LIMIT 5"
//	stripquery -addr 127.0.0.1:7007 -agg "SELECT COUNT(*) FROM views WHERE stale"
//
// The same connection can also feed updates with -put:
//
//	stripquery -addr 127.0.0.1:7007 -put "px.003=101.25"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/strip"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stripquery:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stripquery", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7007", "stripd server address")
	agg := fs.Bool("agg", false, "treat the query as an aggregate (SELECT COUNT/AVG/... )")
	put := fs.String("put", "", "send one update instead of a query: object=value")
	timeout := fs.Duration("timeout", 5*time.Second, "network timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(*timeout))

	if *put != "" {
		object, valueStr, ok := strings.Cut(*put, "=")
		if !ok {
			return fmt.Errorf("-put wants object=value, got %q", *put)
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return fmt.Errorf("bad value in -put: %v", err)
		}
		return strip.WriteUpdate(conn, strip.Update{
			Object:    object,
			Value:     value,
			Generated: time.Now(),
		})
	}

	query := strings.TrimSpace(strings.Join(fs.Args(), " "))
	if query == "" {
		return fmt.Errorf("pass a query, e.g. \"SELECT * FROM views LIMIT 5\"")
	}
	verb := "QUERY"
	if *agg {
		verb = "AGG"
	}
	if _, err := fmt.Fprintf(conn, "%s %s\n", verb, query); err != nil {
		return err
	}

	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "ERR "):
			return fmt.Errorf("server: %s", strings.TrimPrefix(line, "ERR "))
		case strings.HasPrefix(line, "VAL "):
			fmt.Fprintln(out, strings.TrimPrefix(line, "VAL "))
			return nil
		case strings.HasPrefix(line, "OK "):
			fmt.Fprintf(out, "(%s rows)\n", strings.TrimPrefix(line, "OK "))
			return nil
		case strings.HasPrefix(line, "ROW "):
			fields := strings.Fields(strings.TrimPrefix(line, "ROW "))
			if len(fields) == 4 {
				nanos, _ := strconv.ParseInt(fields[1], 10, 64)
				age := ""
				if nanos > 0 {
					age = fmt.Sprintf(" age=%v", time.Since(time.Unix(0, nanos)).Round(time.Millisecond))
				}
				fmt.Fprintf(out, "%-24s %12s  stale=%s%s\n", fields[0], fields[2], fields[3], age)
			} else {
				fmt.Fprintln(out, line)
			}
		default:
			fmt.Fprintln(out, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("connection closed before a terminator arrived")
}
