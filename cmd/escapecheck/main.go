// Command escapecheck gates compiler-reported heap escapes on the hot
// path. It runs `go build -gcflags=-m` over the allocation-budget
// packages, keeps only the escape diagnostics ("escapes to heap",
// "moved to heap") that land inside the hot-path closure striplint
// computes (see striplint -hotpaths), normalizes them to
// line-number-insensitive entries, and diffs the result against a
// checked-in baseline:
//
//	go run ./cmd/escapecheck            # diff against escape.baseline
//	go run ./cmd/escapecheck -update    # accept the current set
//
// A new hot-path escape — one not in the baseline — exits 1, so `make
// lint-alloc` and CI fail when a change introduces heap allocation on
// the ingest/install/replication path that the static rule cannot see
// (escape analysis is the compiler's, not a reimplementation).
// Entries are "file func: message" without positions, so unrelated
// line shifts do not churn the baseline. Exit status: 0 clean or
// updated, 1 on new escapes, 2 on usage, build or load errors.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// defaultPkgs are the allocation-budget packages, mirroring
// lint.AllocReportPkgs as build patterns.
var defaultPkgs = []string{"./strip", "./strip/repl", "./strip/obs", "./internal/uqueue"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("escapecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "escape.baseline", "baseline file, relative to the module root")
	update := fs.Bool("update", false, "rewrite the baseline with the current escape set and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: escapecheck [flags] [packages]\n\n"+
			"Packages default to the allocation-budget set (%s).\nFlags:\n",
			strings.Join(defaultPkgs, " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = defaultPkgs
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if _, err := loader.Load(loader.Root() + "/..."); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	hot := lint.BuildFacts(loader.All(), nil).HotFunctions()
	if len(hot) == 0 {
		fmt.Fprintln(stderr, "escapecheck: hot-path closure is empty; check lint.HotPathRoots")
		return 2
	}

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, pkgs...)...)
	cmd.Dir = loader.Root()
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(stderr, "escapecheck: go build failed: %v\n%s", err, out)
		return 2
	}
	current := normalize(out, loader.Root(), hot)

	path := filepath.Join(loader.Root(), *baselinePath)
	if *update {
		data := strings.Join(current, "\n")
		if data != "" {
			data += "\n"
		}
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "escapecheck: wrote %d hot-path escape(s) to %s\n", len(current), *baselinePath)
		return 0
	}

	baseline, err := readBaseline(path)
	if err != nil {
		fmt.Fprintf(stderr, "escapecheck: %v (run with -update to create the baseline)\n", err)
		return 2
	}
	added, removed := diffLines(baseline, current)
	if len(removed) > 0 {
		fmt.Fprintf(stdout, "escapecheck: %d baseline entr(ies) no longer escape (run -update to shrink the baseline):\n", len(removed))
		for _, l := range removed {
			fmt.Fprintf(stdout, "\t- %s\n", l)
		}
	}
	if len(added) > 0 {
		fmt.Fprintf(stdout, "escapecheck: %d NEW hot-path heap escape(s) not in %s:\n", len(added), *baselinePath)
		for _, l := range added {
			fmt.Fprintf(stdout, "\t+ %s\n", l)
		}
		fmt.Fprintln(stderr, "escapecheck: fix the escape or accept it with -update (and a review of the cost)")
		return 1
	}
	fmt.Fprintf(stdout, "escapecheck: ok — %d hot-path escape(s), all in the baseline\n", len(current))
	return 0
}

// diagRe matches one compiler diagnostic: path:line:col: message.
var diagRe = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.*)$`)

// parseDiag splits a -gcflags=-m output line into its position and
// message, reporting ok=false for non-diagnostic lines (package
// banners, inlining notes are filtered later by message).
func parseDiag(line string) (file string, lineNo int, msg string, ok bool) {
	m := diagRe.FindStringSubmatch(line)
	if m == nil {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(m[2])
	if err != nil {
		return "", 0, "", false
	}
	return m[1], n, m[4], true
}

// escapeMsg reports whether a diagnostic message describes a heap
// escape rather than an inlining or other -m note.
func escapeMsg(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// span is one hot function's line extent within a file.
type span struct {
	start, end int
	name       string
}

// hotSpans indexes the hot-path closure by module-root-relative file
// path, the shape `go build` reports positions in.
func hotSpans(root string, hot []lint.HotFunc) map[string][]span {
	byFile := make(map[string][]span)
	for _, hf := range hot {
		rel, err := filepath.Rel(root, hf.File)
		if err != nil {
			rel = hf.File
		}
		rel = filepath.ToSlash(rel)
		byFile[rel] = append(byFile[rel], span{start: hf.StartLine, end: hf.EndLine, name: hf.Name})
	}
	return byFile
}

// normalize extracts the hot-path escape entries from raw `go build
// -gcflags=-m` output: each kept diagnostic becomes "file func:
// message", positions dropped so line shifts elsewhere in the file do
// not churn the baseline (identical messages within one function
// collapse for the same reason). The result is sorted and unique.
func normalize(out []byte, root string, hot []lint.HotFunc) []string {
	byFile := hotSpans(root, hot)
	seen := make(map[string]bool)
	var res []string
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		file, lineNo, msg, ok := parseDiag(sc.Text())
		if !ok || !escapeMsg(msg) {
			continue
		}
		for _, sp := range byFile[file] {
			if lineNo >= sp.start && lineNo <= sp.end {
				entry := fmt.Sprintf("%s %s: %s", file, sp.name, msg)
				if !seen[entry] {
					seen[entry] = true
					res = append(res, entry)
				}
				break
			}
		}
	}
	sort.Strings(res)
	return res
}

// readBaseline loads the committed baseline, one entry per line,
// blank lines and #-comments skipped.
func readBaseline(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, l := range strings.Split(string(data), "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		out = append(out, l)
	}
	sort.Strings(out)
	return out, nil
}

// diffLines compares two sorted entry sets: added holds entries only
// in current (new escapes, the failure), removed entries only in the
// baseline (fixed escapes, informational).
func diffLines(baseline, current []string) (added, removed []string) {
	inBase := make(map[string]bool, len(baseline))
	for _, l := range baseline {
		inBase[l] = true
	}
	inCur := make(map[string]bool, len(current))
	for _, l := range current {
		inCur[l] = true
	}
	for _, l := range current {
		if !inBase[l] {
			added = append(added, l)
		}
	}
	for _, l := range baseline {
		if !inCur[l] {
			removed = append(removed, l)
		}
	}
	return added, removed
}
