package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestParseDiag(t *testing.T) {
	cases := []struct {
		in   string
		file string
		line int
		msg  string
		ok   bool
	}{
		{"strip/wal.go:208:22: &walWriter{...} escapes to heap", "strip/wal.go", 208, "&walWriter{...} escapes to heap", true},
		{"internal/uqueue/treap.go:71:7: &node{...} escapes to heap", "internal/uqueue/treap.go", 71, "&node{...} escapes to heap", true},
		{"# repro/strip", "", 0, "", false},
		{"strip/wal.go:10:2: can inline (*DB).secs", "strip/wal.go", 10, "can inline (*DB).secs", true},
		{"random noise", "", 0, "", false},
	}
	for _, c := range cases {
		file, line, msg, ok := parseDiag(c.in)
		if file != c.file || line != c.line || msg != c.msg || ok != c.ok {
			t.Errorf("parseDiag(%q) = (%q, %d, %q, %v), want (%q, %d, %q, %v)",
				c.in, file, line, msg, ok, c.file, c.line, c.msg, c.ok)
		}
	}
}

func TestEscapeMsg(t *testing.T) {
	if !escapeMsg("&node{...} escapes to heap") || !escapeMsg("moved to heap: n") {
		t.Error("escape diagnostics not recognized")
	}
	if escapeMsg("can inline (*treap).len") || escapeMsg("inlining call to less") {
		t.Error("inlining notes misclassified as escapes")
	}
}

// TestNormalizeFiltersToHotSpans pins the filter: only escape
// diagnostics inside a hot function's line extent survive, positions
// are dropped, and duplicates collapse.
func TestNormalizeFiltersToHotSpans(t *testing.T) {
	root := string(filepath.Separator) + "mod"
	hot := []lint.HotFunc{
		{Name: "strip.DB.install", Root: "strip.DB.ApplyUpdate", File: filepath.Join(root, "strip", "install.go"), StartLine: 10, EndLine: 30},
	}
	out := strings.Join([]string{
		"# repro/strip",
		"strip/install.go:12:5: &Entry{...} escapes to heap",   // in span: kept
		"strip/install.go:12:9: can inline (*DB).secs",         // not an escape
		"strip/install.go:40:5: &Entry{...} escapes to heap",   // outside span: cold
		"strip/other.go:12:5: make([]byte, n) escapes to heap", // no hot span in file
		"strip/install.go:20:5: &Entry{...} escapes to heap",   // same normalized entry: collapses
	}, "\n")
	got := normalize([]byte(out), root, hot)
	want := []string{"strip/install.go strip.DB.install: &Entry{...} escapes to heap"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("normalize = %q, want %q", got, want)
	}
}

// TestSeededNewEscapeFails is the acceptance check: an escape absent
// from the baseline must surface in added (the exit-1 path), while a
// baseline-covered set must not.
func TestSeededNewEscapeFails(t *testing.T) {
	baseline := []string{
		"strip/wal.go strip.walWriter.appendBatch: w.kvScratch escapes to heap",
	}
	current := append([]string{
		// The seeded regression: a fresh allocation on the hot path.
		"strip/ingest.go strip.DB.ApplyUpdate: make([]byte, n) escapes to heap",
	}, baseline...)

	added, removed := diffLines(baseline, current)
	if len(added) != 1 || added[0] != current[0] {
		t.Fatalf("seeded escape not detected: added = %q", added)
	}
	if len(removed) != 0 {
		t.Fatalf("unexpected removed entries: %q", removed)
	}

	added, removed = diffLines(baseline, baseline)
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("clean diff not clean: added %q removed %q", added, removed)
	}
}

// TestReadBaselineSkipsCommentsAndSorts exercises the file loader.
func TestReadBaselineSkipsCommentsAndSorts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "escape.baseline")
	content := "# hot-path escapes accepted with a reason\n\nz/b.go f: x escapes to heap\na/a.go g: y escapes to heap\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a/a.go g: y escapes to heap", "z/b.go f: x escapes to heap"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("readBaseline = %q, want %q", got, want)
	}
}
