package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTextReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "OD", "-duration", "5", "-txnrate", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"policy OD", "MA staleness", "rho_t=", "pMD=", "psuccess=",
		"fold_l=", "installed=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "TF", "-duration", "5", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if _, ok := decoded["PSuccess"]; !ok {
		t.Fatalf("JSON missing PSuccess: %v", decoded)
	}
}

func TestRunAllStalenessAndOrders(t *testing.T) {
	for _, args := range [][]string{
		{"-staleness", "uu", "-duration", "3"},
		{"-staleness", "uustrict", "-duration", "3"},
		{"-staleness", "mauu", "-duration", "3"},
		{"-onstale", "abort", "-duration", "3"},
		{"-order", "lifo", "-duration", "3"},
		{"-policy", "FC", "-fraction", "0.3", "-duration", "3"},
		{"-coalesce", "-duration", "3"},
		{"-partition", "-duration", "3"},
		{"-periodic", "2", "-duration", "3"},
		{"-warmup", "1", "-duration", "3"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Errorf("run(%v) failed: %v", args, err)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "XX"},
		{"-staleness", "nope"},
		{"-onstale", "nope"},
		{"-order", "nope"},
		{"-duration", "-1"},
		{"-txnrate", "-5", "-duration", "3"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRecordAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/stream.trace"
	var buf bytes.Buffer
	if err := run([]string{"-record", trace, "-duration", "5", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	// The replayed run must match the synthetic run with the same
	// seed on the update-side metrics.
	var synth, replay bytes.Buffer
	if err := run([]string{"-duration", "5", "-seed", "3", "-policy", "TF", "-json"}, &synth); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-duration", "5", "-seed", "3", "-policy", "TF", "-json",
		"-replay", trace}, &replay); err != nil {
		t.Fatal(err)
	}
	var a, b map[string]any
	json.Unmarshal(synth.Bytes(), &a)
	json.Unmarshal(replay.Bytes(), &b)
	for _, key := range []string{"UpdatesArrived", "UpdatesInstalled", "FOldLow"} {
		if a[key] != b[key] {
			t.Errorf("%s: synthetic %v != replay %v", key, a[key], b[key])
		}
	}
	if err := run([]string{"-replay", dir + "/missing.trace"}, &buf); err == nil {
		t.Error("missing trace file should fail")
	}
}
