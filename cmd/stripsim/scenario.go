package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/strip/scenario"
)

// scenarioPaths resolves the -scenario argument: a file runs alone, a
// directory runs every *.yaml inside it in name order.
func scenarioPaths(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	paths, err := filepath.Glob(filepath.Join(path, "*.yaml"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.yaml scenarios under %s", path)
	}
	return paths, nil
}

// runScenarios loads and executes scenario files. A non-zero
// seedOverride reruns each with that seed (reproducing a failure); on
// any failure the repro command line is printed and an error returned.
func runScenarios(out io.Writer, path string, seedOverride uint64, list bool, transcriptDir string) error {
	paths, err := scenarioPaths(path)
	if err != nil {
		return err
	}
	if list {
		for _, p := range paths {
			sc, err := scenario.Load(p)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-24s %s/%d nodes, %s, %d faults — %s\n",
				sc.Name, sc.Topology.Mode, len(sc.Topology.Nodes),
				sc.Workload.Updates.Shape, len(sc.Faults), sc.Description)
		}
		return nil
	}
	if transcriptDir != "" {
		if err := os.MkdirAll(transcriptDir, 0o755); err != nil {
			return err
		}
	}
	failed := 0
	for _, p := range paths {
		sc, err := scenario.Load(p)
		if err != nil {
			return err
		}
		rep, err := scenario.Run(sc, scenario.Options{Seed: seedOverride})
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		status := "PASS"
		if !rep.Passed {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(out, "scenario %-24s seed=%-6d %s (%d faults injected)\n",
			rep.Name, rep.Seed, status, rep.FaultsInjected)
		for _, d := range rep.Details {
			fmt.Fprintf(out, "    %s\n", d)
		}
		for _, f := range rep.Failures {
			fmt.Fprintf(out, "    FAIL %s\n", f)
		}
		if !rep.Passed {
			fmt.Fprintf(out, "    repro: %s\n", scenario.ReproCommand(p, rep.Seed))
		}
		if transcriptDir != "" {
			name := filepath.Join(transcriptDir, rep.Name+".transcript")
			if err := os.WriteFile(name, []byte(rep.Transcript), 0o644); err != nil {
				return err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(paths))
	}
	fmt.Fprintf(out, "%d scenarios passed\n", len(paths))
	return nil
}
