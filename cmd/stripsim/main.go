// Command stripsim runs one simulation of the paper's model and
// prints its metrics.
//
// Usage:
//
//	stripsim -policy OD -duration 1000 -txnrate 10
//	stripsim -policy TF -staleness uu -onstale abort -json
//
// All parameters default to the paper's baseline (Tables 1-3).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stripsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stripsim", flag.ContinueOnError)
	p := model.DefaultParams()

	policyName := fs.String("policy", "OD", "scheduling algorithm: UF, TF, SU, OD or FC")
	duration := fs.Float64("duration", 1000, "simulated seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	staleness := fs.String("staleness", "ma", "staleness criterion: ma, uu, uustrict or mauu")
	onStale := fs.String("onstale", "ignore", "action on stale read: ignore or abort")
	order := fs.String("order", "fifo", "update queue discipline: fifo or lifo")
	jsonOut := fs.Bool("json", false, "emit the result as JSON")
	replay := fs.String("replay", "", "replay a recorded update trace file instead of the synthetic stream")
	record := fs.String("record", "", "write the synthetic update stream to this trace file and exit (no simulation)")
	scenarioPath := fs.String("scenario", "", "run a declarative scenario file, or every *.yaml in a directory (see scenarios/)")
	listScenarios := fs.Bool("list", false, "with -scenario: list the scenarios instead of running them")
	transcriptDir := fs.String("transcript", "", "with -scenario: write each run's seeded transcript into this directory")

	fs.Float64Var(&p.TxnRate, "txnrate", p.TxnRate, "transaction arrival rate lambda_t (1/s)")
	fs.Float64Var(&p.UpdateRate, "updaterate", p.UpdateRate, "update arrival rate lambda_u (1/s)")
	fs.Float64Var(&p.MaxAgeDelta, "delta", p.MaxAgeDelta, "maximum data age Delta (s, MA)")
	fs.Float64Var(&p.PView, "pview", p.PView, "fraction of computation before view reads")
	fs.Float64Var(&p.XUpdate, "xupdate", p.XUpdate, "instructions per update install")
	fs.Float64Var(&p.XQueue, "xqueue", p.XQueue, "queue op cost constant (instr)")
	fs.Float64Var(&p.XScan, "xscan", p.XScan, "queue scan cost per element (instr)")
	fs.Float64Var(&p.XSwitch, "xswitch", p.XSwitch, "context switch cost (instr)")
	fs.IntVar(&p.NLow, "nlow", p.NLow, "low-importance view objects")
	fs.IntVar(&p.NHigh, "nhigh", p.NHigh, "high-importance view objects")
	fs.BoolVar(&p.CoalesceQueue, "coalesce", false, "use the hash-coalescing update queue")
	fs.BoolVar(&p.PartitionedQueues, "partition", false, "drain high-importance updates first")
	fs.Float64Var(&p.UpdateCPUFraction, "fraction", p.UpdateCPUFraction, "update CPU share (FC policy)")
	fs.Float64Var(&p.MetricsWarmup, "warmup", 0, "seconds excluded from metrics")
	fs.Float64Var(&p.PeriodicPeriod, "periodic", 0, "periodic update stream: refresh period per object (0 = Poisson stream)")
	fs.Float64Var(&p.BurstFactor, "burst", 0, "bursty update stream: burst-to-quiet rate ratio (0 = smooth Poisson)")

	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenarioPath != "" {
		// The scenario file carries its own seed; -seed overrides it
		// only when passed explicitly (the repro command line does).
		var seedOverride uint64
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedOverride = *seed
			}
		})
		return runScenarios(out, *scenarioPath, seedOverride, *listScenarios, *transcriptDir)
	}

	policy, err := sched.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	switch *staleness {
	case "ma":
		p.Staleness = model.MaxAge
	case "uu":
		p.Staleness = model.UnappliedUpdate
	case "uustrict":
		p.Staleness = model.UnappliedUpdateStrict
	case "mauu":
		p.Staleness = model.CombinedMAUU
	default:
		return fmt.Errorf("unknown staleness criterion %q", *staleness)
	}
	switch *onStale {
	case "ignore":
		p.OnStale = model.StaleIgnore
	case "abort":
		p.OnStale = model.StaleAbort
	default:
		return fmt.Errorf("unknown stale action %q", *onStale)
	}
	switch *order {
	case "fifo":
		p.Order = model.FIFO
	case "lifo":
		p.Order = model.LIFO
	default:
		return fmt.Errorf("unknown queue order %q", *order)
	}

	if *record != "" {
		return recordTrace(*record, &p, *seed, *duration)
	}

	cfg := sched.Config{
		Params:   p,
		Policy:   policy,
		Seed:     *seed,
		Duration: *duration,
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.UpdateTrace = f
	}
	r, err := sched.Run(cfg)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	printReport(out, policy, &p, r)
	return nil
}

// recordTrace writes the synthetic update stream (derived exactly as
// a simulation with the same seed would) to a trace file.
func recordTrace(path string, p *model.Params, seed uint64, duration float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	root := stats.NewRNG(seed, 0x5DEECE66D)
	gen := workload.NewUpdateGenerator(p, root.Split())
	n := 0
	for {
		u := gen.Next()
		if u == nil || u.ArrivalTime > duration {
			break
		}
		if _, err := fmt.Fprintln(w, workload.WriteTraceLine(u)); err != nil {
			f.Close()
			return err
		}
		n++
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %d updates to %s\n", n, path)
	return nil
}

func printReport(out io.Writer, policy sched.Policy, p *model.Params, r metrics.Result) {
	fmt.Fprintf(out, "policy %s, %s staleness, on-stale %s, %s order, %.0f s simulated\n",
		policy, p.Staleness, p.OnStale, p.Order, r.Duration)
	fmt.Fprintf(out, "  lambda_t=%.0f/s  lambda_u=%.0f/s  Delta=%.1fs\n\n",
		p.TxnRate, p.UpdateRate, p.MaxAgeDelta)

	fmt.Fprintf(out, "CPU:            rho_t=%.3f  rho_u=%.3f  total=%.3f\n",
		r.RhoTxn, r.RhoUpdate, r.RhoTxn+r.RhoUpdate)
	fmt.Fprintf(out, "transactions:   arrived=%d resolved=%d committed=%d\n",
		r.TxnsArrived, r.TxnsResolved, r.TxnsCommitted)
	fmt.Fprintf(out, "                aborted: deadline=%d stale=%d\n",
		r.TxnsAbortedDeadline, r.TxnsAbortedStale)
	fmt.Fprintf(out, "  pMD=%.4f  psuccess=%.4f  psuc|nontardy=%.4f  AV=%.3f/s\n",
		r.PMissedDeadline, r.PSuccess, r.PSuccessGivenNonTardy, r.AvgValuePerSecond)
	fmt.Fprintf(out, "staleness:      fold_l=%.4f  fold_h=%.4f\n", r.FOldLow, r.FOldHigh)
	fmt.Fprintf(out, "updates:        arrived=%d installed=%d skipped=%d expired=%d\n",
		r.UpdatesArrived, r.UpdatesInstalled, r.UpdatesSkippedUnworthy, r.UpdatesExpired)
	fmt.Fprintf(out, "                dropped: queue=%d os=%d  mean queue len=%.1f\n",
		r.UpdatesOverflowDropped, r.UpdatesOSDropped, r.MeanQueueLen)
}
