// Command striplint runs the repo-specific determinism and locking
// lint rules over the module (see internal/lint). It is stdlib-only
// and wired into `make lint` and CI:
//
//	go run ./cmd/striplint ./...
//
// Exit status is 0 when the tree is clean, 1 when any diagnostic is
// reported, 2 on usage or load errors. Individual findings can be
// suppressed with a
//
//	//striplint:ignore <rule>[,<rule>...] -- <reason>
//
// comment on the offending line or the line directly above it.
//
// The -lockgraph mode skips linting and instead dumps the module-wide
// lock-acquisition-order graph in DOT form (mutex identities as nodes,
// "acquired while held" edges labelled with their witness call sites,
// deadlock cycles in red) for review alongside the lock-order rule.
//
// The -hotpaths mode dumps the hot-path closure — every function
// reachable from the configured allocation-budget roots, with its
// source extent and seeding root — the same set alloc-in-hotpath
// reports over and cmd/escapecheck filters compiler escape
// diagnostics to.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("striplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	scope := fs.String("scope", "", "comma-separated package path suffixes overriding the deterministic scope\n(default: the built-in simulator packages; see striplint -list)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list available rules and exit")
	lockgraph := fs.Bool("lockgraph", false, "dump the lock-acquisition-order graph as DOT and exit")
	hotpaths := fs.Bool("hotpaths", false, "dump the hot-path closure (functions reachable from the\nconfigured roots, with source extents) and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: striplint [flags] [packages]\n\n"+
			"Packages are directories, optionally ending in /... for a subtree\n"+
			"(default ./...). Flags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *rules != "" {
		for _, n := range strings.Split(*rules, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	analyzers, err := lint.Select(names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// The interprocedural rules trace call chains through every module
	// package the loader touched, including dependency-only ones.
	opts := &lint.Options{Modules: loader.All()}
	if *scope != "" {
		var s lint.Scope
		for _, e := range strings.Split(*scope, ",") {
			if e = strings.TrimSpace(e); e != "" {
				s = append(s, e)
			}
		}
		opts.Deterministic = s
	}

	if *lockgraph {
		facts := lint.BuildFacts(loader.All(), opts)
		fmt.Fprint(stdout, facts.LockGraphDOT())
		return 0
	}

	if *hotpaths {
		facts := lint.BuildFacts(loader.All(), opts)
		hot := facts.HotFunctions()
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if hot == nil {
				hot = []lint.HotFunc{}
			}
			if err := enc.Encode(hot); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			return 0
		}
		for _, hf := range hot {
			fmt.Fprintf(stdout, "%s:%d-%d\t%s\t(root %s)\n", hf.File, hf.StartLine, hf.EndLine, hf.Name, hf.Root)
		}
		return 0
	}

	diags := lint.RunAnalyzers(pkgs, analyzers, opts)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			// Chain notes (interprocedural rules) print indented under
			// the finding, one hop per line.
			for _, note := range d.Notes {
				fmt.Fprintf(stdout, "\t%s\n", note)
			}
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "striplint: %d finding(s) in %d package(s) checked\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
