package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fixture is a known-dirty tree: the concurrency-in-sim golden
// fixture, reached relative to this package directory.
const fixture = "../../internal/lint/testdata/concurrency-in-sim/..."

func TestRunCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	// The repository itself must be clean — the same acceptance gate
	// as `go run ./cmd/striplint ./...` in CI.
	if code := run([]string{"../../..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on shipped tree, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("diagnostics on the shipped tree:\n%s", out.String())
	}
}

func TestRunDirtyFixtureExitsNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{fixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on dirty fixture, want 1\nstderr: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"concurrency-in-sim", "go statement", "channel send", "fixture.go:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Diagnostics must carry file:line:col positions.
	if !strings.Contains(text, "fixture.go:8:") && !strings.Contains(text, "fixture.go:9:") {
		t.Errorf("output has no positioned diagnostic:\n%s", text)
	}
}

func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", fixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []map[string]any
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output is empty, want diagnostics")
	}
	for _, key := range []string{"file", "line", "column", "rule", "message"} {
		if _, ok := diags[0][key]; !ok {
			t.Errorf("JSON diagnostic missing %q: %v", key, diags[0])
		}
	}
}

func TestRunRuleSelection(t *testing.T) {
	var out, errb bytes.Buffer
	// Only float-eq selected: the concurrency fixture must pass.
	if code := run([]string{"-rules", "float-eq", fixture}, &out, &errb); code != 0 {
		t.Fatalf("exit %d with non-matching rule, want 0\n%s", code, out.String())
	}
	if code := run([]string{"-rules", "no-such-rule", fixture}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown rule, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for -list, want 0", code)
	}
	for _, rule := range []string{
		"concurrency-in-sim", "float-eq", "global-rand",
		"map-order-leak", "nondeterministic-time",
	} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list missing rule %q:\n%s", rule, out.String())
		}
	}
}

// taintFixture hides nondeterminism sources behind helper functions;
// see internal/lint/testdata/nondeterminism-taint.
const taintFixture = "../../internal/lint/testdata/nondeterminism-taint/..."

func TestRunChainNotes(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-rules", "nondeterminism-taint", taintFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on taint fixture, want 1\nstderr: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"transitively reaches time.Now",
		"\ttick.Wrapped calls tick.deep at ",
		"\ttick.deep touches time.Now (wall clock) at ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing chain line %q:\n%s", want, text)
		}
	}
}

func TestRunChainNotesJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-rules", "nondeterminism-taint", taintFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []map[string]any
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	withNotes := 0
	for _, d := range diags {
		if notes, ok := d["notes"].([]any); ok && len(notes) > 0 {
			withNotes++
		}
	}
	if withNotes == 0 {
		t.Fatalf("no JSON diagnostic carries notes: %v", diags)
	}
}

func TestRunScopeOverride(t *testing.T) {
	tickDir := "../../internal/lint/testdata/nondeterminism-taint/tick"
	var out, errb bytes.Buffer
	// By default the helper package is out of the deterministic scope,
	// so the direct time.Now inside it passes.
	if code := run([]string{"-rules", "nondeterministic-time", tickDir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d without -scope, want 0\n%s", code, out.String())
	}
	// Pulling it into scope flags the wall-clock read directly.
	out.Reset()
	errb.Reset()
	code := run([]string{"-scope", "nondeterminism-taint/tick", "-rules", "nondeterministic-time", tickDir}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d with -scope, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "time.Now") {
		t.Errorf("scoped run missing the time.Now finding:\n%s", out.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"/no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for missing dir, want 2", code)
	}
	if errb.Len() == 0 {
		t.Error("no error message for missing dir")
	}
}
