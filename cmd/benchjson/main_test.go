package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: some cpu model
BenchmarkStripIngest-8   	 5000000	       250.0 ns/op	   4000000 updates/s	      10 B/op	       2 allocs/op
BenchmarkStripInstallLatency-8   	   20000	     52000 ns/op	        52.00 us-install-latency	     128 B/op	       3 allocs/op
BenchmarkReplIngest-8   	 1000000	      1100 ns/op	    900000 replicated/s	      64 B/op	       1 allocs/op
PASS
ok  	repro	12.345s
`

func TestParseBenchLine(t *testing.T) {
	res, ok := parseBenchLine("BenchmarkStripIngest-8 5000000 250.0 ns/op 4000000 updates/s")
	if !ok {
		t.Fatal("line not parsed")
	}
	if res.Name != "StripIngest" || res.Procs != 8 || res.Iterations != 5000000 {
		t.Errorf("bad header fields: %+v", res)
	}
	if res.Metrics["ns/op"] != 250 || res.Metrics["updates/s"] != 4000000 {
		t.Errorf("bad metrics: %v", res.Metrics)
	}
	for _, line := range []string{
		"PASS",
		"ok  \trepro\t12.345s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 250 ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("non-benchmark line parsed: %q", line)
		}
	}
}

func TestRunEmitsSortedStableJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, strings.NewReader(sample), &out, &errOut); code != 0 {
		t.Fatalf("run failed: %d, stderr %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("want 3 benchmarks, got %d", len(rep.Benchmarks))
	}
	// Sorted by name: ReplIngest, StripIngest, StripInstallLatency.
	order := []string{"ReplIngest", "StripIngest", "StripInstallLatency"}
	for i, want := range order {
		if rep.Benchmarks[i].Name != want {
			t.Errorf("benchmark %d = %s, want %s", i, rep.Benchmarks[i].Name, want)
		}
	}
	if lat := rep.Benchmarks[2].Metrics["us-install-latency"]; lat != 52 {
		t.Errorf("install latency metric = %v, want 52", lat)
	}
	if strings.Contains(out.String(), "cpu") || strings.Contains(out.String(), "linux") {
		t.Errorf("output leaks host identifiers:\n%s", out.String())
	}

	// No benchmark lines at all is an error, not an empty document.
	if code := run(nil, strings.NewReader("PASS\n"), &out, &errOut); code == 0 {
		t.Error("run accepted input with no benchmark lines")
	}
}

// writeReport marshals a report to a temp file for the diff tests.
func writeReport(t *testing.T, dir, name string, rep report) string {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, metrics map[string]float64) benchResult {
	return benchResult{Name: name, Procs: 8, Iterations: 1000, Metrics: metrics}
}

// TestDiffPassesWithinThreshold pins the happy path: small ns/op
// drift under the threshold and an allocs/op improvement exit 0, and
// every shared metric appears in the delta listing.
func TestDiffPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report{Benchmarks: []benchResult{
		bench("StripIngest", map[string]float64{"ns/op": 250, "allocs/op": 3, "updates/s": 4e6}),
	}})
	newPath := writeReport(t, dir, "new.json", report{Benchmarks: []benchResult{
		bench("StripIngest", map[string]float64{"ns/op": 260, "allocs/op": 2, "updates/s": 3.9e6}),
	}})
	var out, errOut bytes.Buffer
	if code := run([]string{"-diff", oldPath, newPath}, nil, &out, &errOut); code != 0 {
		t.Fatalf("diff failed: %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"ns/op: 250 -> 260 (+4.0%)", "allocs/op: 3 -> 2", "updates/s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDiffFailsOnAllocRegression is the CI gate: one more alloc per
// op exceeds the default 10%% threshold and must exit non-zero.
func TestDiffFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report{Benchmarks: []benchResult{
		bench("ReplIngest", map[string]float64{"ns/op": 1100, "allocs/op": 3}),
	}})
	newPath := writeReport(t, dir, "new.json", report{Benchmarks: []benchResult{
		bench("ReplIngest", map[string]float64{"ns/op": 1100, "allocs/op": 4}),
	}})
	var out, errOut bytes.Buffer
	if code := run([]string{"-diff", oldPath, newPath}, nil, &out, &errOut); code != 1 {
		t.Fatalf("diff exit = %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(errOut.String(), "ReplIngest allocs/op") {
		t.Errorf("regression not reported:\nstdout: %s\nstderr: %s", out.String(), errOut.String())
	}
}

// TestDiffFailsOnTimeRegressionBeyondThreshold checks the ns/op gate
// and that -max-regress moves it.
func TestDiffFailsOnTimeRegressionBeyondThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report{Benchmarks: []benchResult{
		bench("StripInstallLatency", map[string]float64{"ns/op": 50000, "allocs/op": 3}),
	}})
	newPath := writeReport(t, dir, "new.json", report{Benchmarks: []benchResult{
		bench("StripInstallLatency", map[string]float64{"ns/op": 60000, "allocs/op": 3}),
	}})
	var out, errOut bytes.Buffer
	if code := run([]string{"-diff", oldPath, newPath}, nil, &out, &errOut); code != 1 {
		t.Fatalf("20%% ns/op growth passed the 10%% gate: exit %d\n%s", code, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-diff", "-max-regress", "0.5", oldPath, newPath}, nil, &out, &errOut); code != 0 {
		t.Fatalf("20%% ns/op growth failed the 50%% gate: exit %d\n%s", code, out.String())
	}
}

// TestDiffUnsharedBenchmarksInformational: added or removed
// benchmarks are listed but do not fail the gate.
func TestDiffUnsharedBenchmarksInformational(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report{Benchmarks: []benchResult{
		bench("Gone", map[string]float64{"ns/op": 10, "allocs/op": 1}),
	}})
	newPath := writeReport(t, dir, "new.json", report{Benchmarks: []benchResult{
		bench("Fresh", map[string]float64{"ns/op": 10, "allocs/op": 1}),
	}})
	var out, errOut bytes.Buffer
	if code := run([]string{"-diff", oldPath, newPath}, nil, &out, &errOut); code != 0 {
		t.Fatalf("unshared benchmarks failed the diff: exit %d\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Gone: only in") || !strings.Contains(out.String(), "Fresh: only in") {
		t.Errorf("unshared benchmarks not listed:\n%s", out.String())
	}
}

// TestDiffUsageErrors: wrong arity and unreadable files exit 2.
func TestDiffUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-diff", "only-one.json"}, nil, &out, &errOut); code != 2 {
		t.Errorf("one-arg diff exit = %d, want 2", code)
	}
	if code := run([]string{"-diff", "nope.json", "also-nope.json"}, nil, &out, &errOut); code != 2 {
		t.Errorf("missing-file diff exit = %d, want 2", code)
	}
}
