package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: some cpu model
BenchmarkStripIngest-8   	 5000000	       250.0 ns/op	   4000000 updates/s	      10 B/op	       2 allocs/op
BenchmarkStripInstallLatency-8   	   20000	     52000 ns/op	        52.00 us-install-latency	     128 B/op	       3 allocs/op
BenchmarkReplIngest-8   	 1000000	      1100 ns/op	    900000 replicated/s	      64 B/op	       1 allocs/op
PASS
ok  	repro	12.345s
`

func TestParseBenchLine(t *testing.T) {
	res, ok := parseBenchLine("BenchmarkStripIngest-8 5000000 250.0 ns/op 4000000 updates/s")
	if !ok {
		t.Fatal("line not parsed")
	}
	if res.Name != "StripIngest" || res.Procs != 8 || res.Iterations != 5000000 {
		t.Errorf("bad header fields: %+v", res)
	}
	if res.Metrics["ns/op"] != 250 || res.Metrics["updates/s"] != 4000000 {
		t.Errorf("bad metrics: %v", res.Metrics)
	}
	for _, line := range []string{
		"PASS",
		"ok  \trepro\t12.345s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 250 ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("non-benchmark line parsed: %q", line)
		}
	}
}

func TestRunEmitsSortedStableJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader(sample), &out, &errOut); code != 0 {
		t.Fatalf("run failed: %d, stderr %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("want 3 benchmarks, got %d", len(rep.Benchmarks))
	}
	// Sorted by name: ReplIngest, StripIngest, StripInstallLatency.
	order := []string{"ReplIngest", "StripIngest", "StripInstallLatency"}
	for i, want := range order {
		if rep.Benchmarks[i].Name != want {
			t.Errorf("benchmark %d = %s, want %s", i, rep.Benchmarks[i].Name, want)
		}
	}
	if lat := rep.Benchmarks[2].Metrics["us-install-latency"]; lat != 52 {
		t.Errorf("install latency metric = %v, want 52", lat)
	}
	if strings.Contains(out.String(), "cpu") || strings.Contains(out.String(), "linux") {
		t.Errorf("output leaks host identifiers:\n%s", out.String())
	}

	// No benchmark lines at all is an error, not an empty document.
	if code := run(strings.NewReader("PASS\n"), &out, &errOut); code == 0 {
		t.Error("run accepted input with no benchmark lines")
	}
}
