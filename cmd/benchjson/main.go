// Command benchjson converts `go test -bench` text output on stdin
// into a stable JSON document on stdout, so benchmark baselines can be
// committed (BENCH_7.json) and diffed across PRs.
//
//	go test -run='^$' -bench=. -benchmem . | go run ./cmd/benchjson > BENCH_7.json
//
// Each benchmark line
//
//	BenchmarkStripIngest-8   5000000   250 ns/op   4.0e+06 updates/s
//
// becomes one entry with the name split from the -GOMAXPROCS suffix
// and every "<value> <unit>" pair collected into a metrics map. The
// output carries no timestamps or host identifiers, so reruns on the
// same machine produce minimal diffs.
//
// The -diff mode compares two such documents instead of converting:
//
//	go run ./cmd/benchjson -diff BENCH_6.json BENCH_7.json
//
// It prints a per-metric delta for every benchmark the two documents
// share and exits 1 when a cost metric — ns/op or allocs/op — grows by
// more than -max-regress (a fraction, default 0.10). Throughput and
// latency metrics are reported but not gated: wall-clock noise belongs
// in review, allocation counts are exact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark line, parsed.
type benchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// report is the whole document.
type report struct {
	Unit       string        `json:"unit"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// gatedMetrics are the per-op cost metrics -diff fails on: exact
// allocation counts and the time per operation.
var gatedMetrics = map[string]bool{"ns/op": true, "allocs/op": true}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	diff := fs.Bool("diff", false, "compare two benchmark JSON files (old new) instead of converting stdin")
	maxRegress := fs.Float64("max-regress", 0.10, "with -diff: fail when ns/op or allocs/op grows by more than this fraction")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchjson < bench.txt > bench.json\n"+
			"       benchjson -diff [-max-regress 0.10] old.json new.json\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diff {
		if fs.NArg() != 2 {
			fs.Usage()
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), *maxRegress, stdout, stderr)
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	rep := report{Unit: "go test -bench", Benchmarks: []benchResult{}}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := parseBenchLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "benchjson: reading stdin: %v\n", err)
		return 1
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found on stdin")
		return 1
	}
	sort.SliceStable(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// runDiff loads two reports and prints per-metric deltas for every
// shared benchmark; gated cost metrics that regress beyond maxRegress
// fail the run.
func runDiff(oldPath, newPath string, maxRegress float64, stdout, stderr io.Writer) int {
	oldRep, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	oldBy := indexByName(oldRep)
	newBy := indexByName(newRep)

	var regressions []string
	for _, name := range sortedUnion(oldBy, newBy) {
		o, inOld := oldBy[name]
		n, inNew := newBy[name]
		switch {
		case !inNew:
			fmt.Fprintf(stdout, "%s: only in %s\n", name, oldPath)
			continue
		case !inOld:
			fmt.Fprintf(stdout, "%s: only in %s\n", name, newPath)
			continue
		}
		for _, metric := range sortedUnion(o.Metrics, n.Metrics) {
			ov, inO := o.Metrics[metric]
			nv, inN := n.Metrics[metric]
			if !inO || !inN {
				continue
			}
			line := fmt.Sprintf("%s %s: %s -> %s (%s)", name, metric, trimFloat(ov), trimFloat(nv), deltaPct(ov, nv))
			if gatedMetrics[metric] && nv > ov*(1+maxRegress) {
				line += "  REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s %s", name, metric))
			}
			fmt.Fprintln(stdout, line)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stderr, "benchjson: %d regression(s) beyond %.0f%%: %s\n",
			len(regressions), maxRegress*100, strings.Join(regressions, ", "))
		return 1
	}
	return 0
}

// readReport loads one benchjson document.
func readReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// indexByName maps a report's benchmarks by name; duplicate names keep
// the first entry, matching the converter's stable sort.
func indexByName(rep report) map[string]benchResult {
	out := make(map[string]benchResult, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if _, ok := out[b.Name]; !ok {
			out[b.Name] = b
		}
	}
	return out
}

// sortedUnion returns the sorted union of two maps' keys.
func sortedUnion[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for k := range a {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// deltaPct renders the relative change between two metric values.
func deltaPct(old, new float64) string {
	switch {
	case old == new:
		return "±0%"
	case old == 0:
		return "+inf%"
	}
	pct := (new - old) / math.Abs(old) * 100
	return fmt.Sprintf("%+.1f%%", pct)
}

// trimFloat renders a metric value without trailing zero noise.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// parseBenchLine parses one "Benchmark<Name>-<P> <N> <v> <unit> ..."
// line; ok is false for any other line (headers, PASS, ok, metrics
// summaries).
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	res := benchResult{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return benchResult{}, false
	}
	return res, true
}
