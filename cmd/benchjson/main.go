// Command benchjson converts `go test -bench` text output on stdin
// into a stable JSON document on stdout, so benchmark baselines can be
// committed (BENCH_6.json) and diffed across PRs.
//
//	go test -run='^$' -bench=. -benchmem . | go run ./cmd/benchjson > BENCH_6.json
//
// Each benchmark line
//
//	BenchmarkStripIngest-8   5000000   250 ns/op   4.0e+06 updates/s
//
// becomes one entry with the name split from the -GOMAXPROCS suffix
// and every "<value> <unit>" pair collected into a metrics map. The
// output carries no timestamps or host identifiers, so reruns on the
// same machine produce minimal diffs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark line, parsed.
type benchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// report is the whole document.
type report struct {
	Unit       string        `json:"unit"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

func run(stdin io.Reader, stdout, stderr io.Writer) int {
	rep := report{Unit: "go test -bench", Benchmarks: []benchResult{}}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := parseBenchLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "benchjson: reading stdin: %v\n", err)
		return 1
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found on stdin")
		return 1
	}
	sort.SliceStable(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// parseBenchLine parses one "Benchmark<Name>-<P> <N> <v> <unit> ..."
// line; ok is false for any other line (headers, PASS, ok, metrics
// summaries).
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	res := benchResult{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return benchResult{}, false
	}
	return res, true
}
