# Convenience targets for the reproduction workflow.

GO ?= go

.PHONY: all build test race bench figures extensions verify report clean lint vet striplint

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static checks: go vet plus the repo-specific determinism/locking
# rules (see internal/lint and `go run ./cmd/striplint -list`).
lint: vet striplint

vet:
	$(GO) vet ./...

striplint:
	$(GO) run ./cmd/striplint ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every paper figure at publication scale (about 10 min).
figures:
	$(GO) run ./cmd/stripexp -all -duration 1000 -seeds 2 -o results

extensions:
	$(GO) run ./cmd/stripexp -extensions -duration 1000 -seeds 2 -o results

# Check every qualitative claim of the paper (a few minutes).
verify:
	$(GO) run ./cmd/stripexp -verify -duration 200 -seeds 1

# One self-contained markdown report: figures + claims + extensions.
report:
	$(GO) run ./cmd/stripexp -report REPORT.md -duration 1000 -seeds 2

clean:
	rm -rf results test_output.txt bench_output.txt
