# Convenience targets for the reproduction workflow.

GO ?= go

# Per-target budget for the fuzz smoke (see `make fuzz`).
FUZZTIME ?= 10s

.PHONY: all build test race bench fuzz torture figures extensions verify report clean lint vet striplint

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static checks: go vet plus the repo-specific determinism/locking
# rules (see internal/lint and `go run ./cmd/striplint -list`).
lint: vet striplint

vet:
	$(GO) vet ./...

striplint:
	$(GO) run ./cmd/striplint ./...

race:
	$(GO) test -race ./...

# Fuzz smoke: run every Fuzz* target in ./strip and ./strip/repl for
# FUZZTIME each. `go test -fuzz` accepts only one matching target per
# invocation, so the targets are listed first and fuzzed one by one.
FUZZPKGS = ./strip ./strip/repl

fuzz:
	@set -e; for pkg in $(FUZZPKGS); do \
		for f in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "fuzzing $$pkg $$f ($(FUZZTIME))"; \
			$(GO) test -run='^$$' -fuzz="^$$f$$" -fuzztime=$(FUZZTIME) $$pkg; \
		done; \
	done

# Crash-recovery torture: every byte-level crash point of a scripted
# workload, seeded WAL fault schedules, degraded-mode policy and
# replication connection chaos, all under the race detector.
torture:
	$(GO) test -race -count=1 -run 'Torture|CrashPoint|Chaos|Degraded|Replay|Checkpoint|Fault|MemFS|Schedule' \
		./strip ./strip/fault ./strip/repl

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every paper figure at publication scale (about 10 min).
figures:
	$(GO) run ./cmd/stripexp -all -duration 1000 -seeds 2 -o results

extensions:
	$(GO) run ./cmd/stripexp -extensions -duration 1000 -seeds 2 -o results

# Check every qualitative claim of the paper (a few minutes).
verify:
	$(GO) run ./cmd/stripexp -verify -duration 200 -seeds 1

# One self-contained markdown report: figures + claims + extensions.
report:
	$(GO) run ./cmd/stripexp -report REPORT.md -duration 1000 -seeds 2

clean:
	rm -rf results test_output.txt bench_output.txt
