package lint

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadCallgraphFacts builds Facts over the callgraph coverage fixture
// and returns them with the fixture package for symbol lookup.
func loadCallgraphFacts(t *testing.T) (*Facts, *Package) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "callgraph") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	var fixture *Package
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, "/cg") {
			fixture = p
		}
	}
	if fixture == nil {
		t.Fatal("callgraph fixture package not loaded")
	}
	return BuildFacts(loader.All(), &Options{}), fixture
}

// pkgFunc resolves a package-level function from the fixture.
func pkgFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture function %s not found", name)
	}
	return fn
}

// methodFunc resolves a named type's method from the fixture.
func methodFunc(t *testing.T, pkg *Package, typeName, method string) *types.Func {
	t.Helper()
	tn, ok := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("fixture type %s not found", typeName)
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		t.Fatalf("fixture type %s is not named", typeName)
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	t.Fatalf("fixture method %s.%s not found", typeName, method)
	return nil
}

// TestCallgraphEdgeClasses pins the edge classes the mention-based
// callgraph must keep. Each subtest covers one class; if a future
// "precision" change drops the class, the corresponding taint or lock
// fact disappears and the assertion fails.
func TestCallgraphEdgeClasses(t *testing.T) {
	facts, fixture := loadCallgraphFacts(t)

	t.Run("method-value", func(t *testing.T) {
		fn := pkgFunc(t, fixture, "MethodValue")
		fact := facts.Tainted(fn)
		if fact == nil {
			t.Fatal("method-value edge dropped: MethodValue no longer reaches the time.Now source through f := c.read")
		}
		if !strings.Contains(fact.source, "time.Now") {
			t.Errorf("unexpected taint source %q, want time.Now", fact.source)
		}
	})

	t.Run("deferred-closure", func(t *testing.T) {
		fn := pkgFunc(t, fixture, "DeferredClosure")
		if facts.Tainted(fn) == nil {
			t.Fatal("deferred-closure edge dropped: DeferredClosure no longer reaches the source through its defer func(){...}()")
		}
	})

	t.Run("interface-dispatch", func(t *testing.T) {
		fn := pkgFunc(t, fixture, "ThroughIface")
		locks := facts.AcquiredLocks(fn)
		found := false
		for _, name := range locks {
			if strings.Contains(name, "impl.mu") {
				found = true
			}
		}
		if !found {
			t.Fatalf("interface-dispatch edge dropped: ThroughIface no longer inherits impl.grab's acquisition of impl.mu; acquired = %v", locks)
		}
	})

	t.Run("negative-clean", func(t *testing.T) {
		fn := pkgFunc(t, fixture, "Clean")
		if fact := facts.Tainted(fn); fact != nil {
			t.Errorf("Clean spuriously tainted via %q", fact.source)
		}
		if locks := facts.AcquiredLocks(fn); len(locks) != 0 {
			t.Errorf("Clean spuriously acquires %v", locks)
		}
	})

	// The direct-acquisition baseline the dispatch subtest depends on:
	// if this fails, fix grab's facts before trusting the others.
	t.Run("baseline-direct", func(t *testing.T) {
		grab := methodFunc(t, fixture, "impl", "grab")
		locks := facts.AcquiredLocks(grab)
		if len(locks) != 1 || !strings.Contains(locks[0], "impl.mu") {
			t.Fatalf("impl.grab's direct acquisition missing; acquired = %v", locks)
		}
	})
}
