package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the seed-explicit entry points of math/rand
// and math/rand/v2. Constructing a generator from an explicit seed is
// deterministic; everything reached through one is a method on
// *rand.Rand, which the rule leaves alone.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
	"NewSource":  true,
}

// GlobalRand forbids the package-level math/rand state everywhere
// except internal/stats, whose seeded PCG wrapper (stats.RNG) is the
// one sanctioned source of randomness. The global generator is seeded
// from the OS at process start, so any draw from it is a fresh
// nondeterminism leak; the v1 global can additionally be reseeded
// behind the caller's back.
var GlobalRand = &Analyzer{
	Name: "global-rand",
	Doc: "forbid package-level math/rand and math/rand/v2 functions outside " +
		"internal/stats' seeded PCG wrapper (seed-explicit constructors like " +
		"rand.New(rand.NewPCG(...)) are allowed)",
	Run: func(pass *Pass) {
		if pass.Opts.RandAllowed.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := useOf(pass.Info, id)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				path := obj.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok {
					return true // types like rand.Rand are fine
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on a seeded generator are fine
				}
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(id.Pos(),
					"%s.%s draws from the global generator; use the seeded stats.RNG wrapper",
					path, fn.Name())
				return true
			})
		}
	},
}
