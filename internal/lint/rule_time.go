package lint

import (
	"go/ast"
	"go/types"
)

// NondeterministicTime forbids wall-clock reads inside the
// deterministic simulator packages. Simulated time is sim.Simulator's
// clock; a single time.Now (or time.Since, which calls time.Now
// internally) makes two runs with the same seed diverge without any
// test failing.
var NondeterministicTime = &Analyzer{
	Name: "nondeterministic-time",
	Doc: "forbid time.Now and time.Since in deterministic simulator packages " +
		"(use the sim.Simulator clock instead)",
	Run: func(pass *Pass) {
		if !pass.Opts.Deterministic.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := useOf(pass.Info, id).(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(id.Pos(),
						"time.%s reads the wall clock inside deterministic package %s; use the simulator clock",
						fn.Name(), pass.Pkg.Path())
				}
				return true
			})
		}
	},
}
