package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BlockUnderLock flags operations that can block indefinitely or on
// I/O while a strip mutex is held — the latency hazard that directly
// violates the soft real-time budget, because every other goroutine
// contending for the lock inherits the stall. Blocking sources are
// fsync (os.File.Sync, and fault.File.Sync through interface
// dispatch), net.Conn reads/writes, time.Sleep, sync.WaitGroup.Wait,
// channel operations outside a select with a default case, and
// sync.Cond.Wait on a lock other than the cond's own (waiting on the
// cond's own mutex releases it — that is the idiom, not a hazard).
// The check is interprocedural: a call, under a held lock, to a
// module function that transitively reaches a blocking operation is
// reported with the full witness chain.
var BlockUnderLock = &Analyzer{
	Name: "block-under-lock",
	Doc: "flag potentially blocking operations (fsync, net I/O, time.Sleep, " +
		"bare channel ops, cond.Wait on a different lock) reached while a " +
		"strip mutex is held, directly or through a call chain",
	needsFacts: true,
	Run: func(pass *Pass) {
		if !pass.Opts.LockChecked.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			for _, fd := range sortedFuncDecls(f) {
				self, _ := pass.Info.Defs[fd.Name].(*types.Func)
				for _, body := range declScopes(fd) {
					checkBlockingInScope(pass, body, self)
				}
			}
		}
	},
}

func checkBlockingInScope(pass *Pass, body *ast.BlockStmt, self *types.Func) {
	s, _ := analyzeScopeLocks(pass.Info, body)
	if len(s.spans) == 0 {
		return
	}
	launched := goLaunchedIdents(body)

	// Direct blocking operations inside a held interval.
	blockingSites(pass.Info, body, false, pass.Facts.blockingFn, func(pos token.Pos, desc string, condRecv ast.Expr) {
		held := s.heldAt(pos)
		if condRecv != nil {
			condKey, _ := resolveLockExpr(pass.Info, condRecv)
			if condKey == "" {
				return // unattributable cond; documented false negative
			}
			if locker, ok := pass.Facts.condLockers[condKey]; ok {
				held = dropHeldKey(held, locker)
			}
		}
		if len(held) == 0 {
			return
		}
		pass.Reportf(pos, "%s while holding %s — a blocked lock holder stalls every waiter past the soft real-time budget",
			desc, heldNames(held, s.names))
	})

	// Calls to module functions that transitively block.
	inspectScope(body, func(nd ast.Node) {
		id, ok := nd.(*ast.Ident)
		if !ok || launched[id] {
			return
		}
		fn, ok := useOf(pass.Info, id).(*types.Func)
		if !ok || fn == self || fn.Pkg() == nil {
			return
		}
		fact := pass.Facts.blockers[fn]
		if fact == nil {
			return
		}
		held := s.heldAt(id.Pos())
		if len(held) == 0 {
			return
		}
		notes := chainFacts(pass.Facts.blockers, fn, "blocks in")
		pass.ReportfNotes(id.Pos(), notes, "call to %s may block (%s) while holding %s",
			funcDisplayName(fn), fact.source, heldNames(held, s.names))
	})
}

// dropHeldKey removes one lock from a held set (the cond.Wait
// exemption).
func dropHeldKey(held []heldEntry, key lockKey) []heldEntry {
	out := held[:0]
	for _, h := range held {
		if h.key != key {
			out = append(out, h)
		}
	}
	return out
}

// goLaunchedIdents returns the callee identifiers of go statements in
// the scope: a mention that only launches a goroutine does not block
// (or acquire locks) on the current goroutine.
func goLaunchedIdents(body ast.Node) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	inspectScope(body, func(n ast.Node) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		if id := calleeIdent(g.Call); id != nil {
			out[id] = true
		}
	})
	return out
}

// blockingSites walks a function scope and reports every potentially
// blocking operation: a select without a default case, channel
// sends/receives outside any select, ranges over channels, and calls
// to known blocking externals (time.Sleep, os.File.Sync, net
// reads/writes, sync.WaitGroup.Wait, sync.Cond.Wait — the last passed
// with its receiver so the caller can apply the own-lock exemption).
// Channel operations in a select's communication clauses are never
// reported individually: the select itself is the blocking point, and
// only when it has no default. With wholeDecl set the walk descends
// into nested function literals (used for the module-wide blocker
// facts, where any literal is a potential call). extern classifies
// called functions as blocking (Facts.blockingFn in normal use).
func blockingSites(info *types.Info, body ast.Node, wholeDecl bool, extern func(*types.Func) string, visit func(pos token.Pos, desc string, condRecv ast.Expr)) {
	walk := inspectScope
	if wholeDecl {
		walk = func(b ast.Node, fn func(ast.Node)) {
			ast.Inspect(b, func(n ast.Node) bool {
				if n != nil {
					fn(n)
				}
				return true
			})
		}
	}
	// Channel ops appearing as a select communication clause belong to
	// the select, not to themselves.
	inSelect := make(map[ast.Node]bool)
	walk(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					inSelect[m] = true
				}
				return true
			})
		}
	})
	walk(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				visit(n.Select, "select without a default case", nil)
			}
		case *ast.SendStmt:
			if !inSelect[n] {
				visit(n.Arrow, "channel send", nil)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inSelect[n] && isChan(info, n.X) {
				visit(n.OpPos, "channel receive", nil)
			}
		case *ast.RangeStmt:
			if isChan(info, n.X) {
				visit(n.For, "range over channel", nil)
			}
		case *ast.CallExpr:
			id := calleeIdent(n)
			if id == nil {
				return
			}
			fn, ok := useOf(info, id).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return
			}
			if fn.Pkg().Path() == "sync" && recvTypeName(fn) == "Cond" && fn.Name() == "Wait" {
				var recv ast.Expr
				if se, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					recv = se.X
				}
				visit(n.Pos(), "sync.Cond.Wait", recv)
				return
			}
			if desc := extern(fn); desc != "" {
				visit(n.Pos(), desc, nil)
			}
		}
	})
}

// blockingFn classifies a called function as a known blocking
// operation. Beyond the stdlib set, the Sync methods of the fault
// durability interfaces (and their implementations) count: the
// production implementation of fault.File is *os.File, whose Sync is
// an fsync — the interface dispatch hides it from the call graph, so
// the interface operation itself carries the fact.
func (f *Facts) blockingFn(fn *types.Func) string {
	if desc, ok := f.durabilityOps[fn]; ok && fn.Name() == "Sync" {
		return desc + " (fsync in production)"
	}
	return blockingExtern(fn)
}

// blockingExtern classifies a non-module function as a known blocking
// operation, returning a short description or "".
func blockingExtern(fn *types.Func) string {
	path, name, recv := fn.Pkg().Path(), fn.Name(), recvTypeName(fn)
	switch path {
	case "time":
		if recv == "" && name == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		if recv == "File" && name == "Sync" {
			return "os.File.Sync (fsync)"
		}
	case "net":
		if recv != "" {
			switch name {
			case "Read", "Write", "Accept", "ReadFrom", "WriteTo":
				return "net." + recv + "." + name + " (network I/O)"
			}
		}
	case "sync":
		if recv == "WaitGroup" && name == "Wait" {
			return "sync.WaitGroup.Wait"
		}
	}
	return ""
}

// recvTypeName returns the name of a method's receiver type
// (pointers unwrapped), or "" for a plain function.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// buildBlockFacts computes the module-wide "transitively blocks"
// closure: a function blocks intrinsically when any of its scopes
// (nested literals included — any mention is a potential call)
// contains a blocking site, and the property propagates to callers
// over the call graph, interface dispatch included.
func buildBlockFacts(f *Facts, order []*cgNode, nodes map[*types.Func]*cgNode) {
	blockers := make(map[*types.Func]*taintFact)
	var queue []*types.Func
	for _, n := range order {
		if n.decl == nil {
			continue
		}
		var intr *taintFact
		blockingSites(n.pkg.Info, n.decl.Body, true, f.blockingFn, func(pos token.Pos, desc string, condRecv ast.Expr) {
			if intr != nil {
				return
			}
			p := n.pkg.Fset.Position(pos)
			intr = &taintFact{source: desc, srcPos: p, hopPos: p}
		})
		if intr != nil {
			blockers[n.fn] = intr
			queue = append(queue, n.fn)
		}
	}
	callers := reverseEdges(order, true)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fact := blockers[cur]
		for _, caller := range callers[cur] {
			cfn := caller.callee // reversed edge: callee field holds the caller
			if _, seen := blockers[cfn]; seen {
				continue
			}
			hop := fact.srcPos
			if n := nodes[cfn]; n != nil {
				hop = n.pkg.Fset.Position(caller.pos)
			}
			blockers[cfn] = &taintFact{source: fact.source, srcPos: fact.srcPos, next: cur, hopPos: hop}
			queue = append(queue, cfn)
		}
	}
	f.blockers = blockers
}
