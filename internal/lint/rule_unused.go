package lint

// UnusedIgnore is the meta-rule keeping the suppression inventory
// honest: a //striplint:ignore directive that no longer suppresses
// any diagnostic is itself reported, so waivers cannot outlive the
// code they excused. It is evaluated by RunAnalyzers over the other
// rules' results rather than by walking syntax, and only when the
// full rule set runs — under a -rules subset, directives for the
// unselected rules would look stale spuriously, so the check is
// skipped. Like malformed-directive reports, its findings cannot be
// suppressed.
var UnusedIgnore = &Analyzer{
	Name: "unused-ignore",
	Doc: "report //striplint:ignore directives that suppress nothing (checked " +
		"only when every rule runs; not suppressable)",
	Run:  func(*Pass) {},
	meta: true,
}
