// Negative fixture: map usage map-order-leak must NOT flag — the
// collect-sort-use idiom feeding an ordering-sensitive sink, and
// order-insensitive folds.
package sched

import (
	"fmt"
	"sort"
)

// Report prints deterministically: keys are sorted before any output.
func Report(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

// Sum folds into an order-insensitive accumulator.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// MaxKeyLen tracks a maximum — also order-insensitive.
func MaxKeyLen(m map[string]int) int {
	best := 0
	for k := range m {
		if len(k) > best {
			best = len(k)
		}
	}
	return best
}
