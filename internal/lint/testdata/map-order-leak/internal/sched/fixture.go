// Package sched is a striplint fixture: map iteration order must not
// leak into ordering-sensitive sinks here.
package sched

import (
	"fmt"
	"sort"
	"strings"
)

// BadAppend lets map order leak into a slice.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map .* appends to a slice"
		out = append(out, k)
	}
	return out
}

// BadPrint writes output in map order.
func BadPrint(m map[string]int) {
	for k, v := range m { // want "range over map .* writes output via fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// BadWriter writes through an io.Writer-shaped method in map order.
func BadWriter(m map[string]int, sb *strings.Builder) {
	for k := range m { // want "range over map .* writes output via method WriteString"
		sb.WriteString(k)
	}
}

// GoodSortedKeys is the canonical deterministic idiom: collect, sort,
// then use. The collecting append is exempt because the slice is
// sorted afterwards.
func GoodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodAccumulate only folds into an order-insensitive accumulator.
func GoodAccumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodSliceRange ranges over a slice, not a map: never flagged.
func GoodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Suppressed documents a deliberate exception.
func Suppressed(m map[string]int) []string {
	var out []string
	//striplint:ignore map-order-leak -- fixture exercises suppression
	for k := range m {
		out = append(out, k)
	}
	return out
}
