// Package app is a striplint fixture outside internal/stats: the
// global math/rand state is forbidden here.
package app

import (
	"math/rand/v2"
)

// Bad draws from the process-global generator, which is seeded from
// the OS at startup.
func Bad() (int, float64) {
	n := rand.IntN(10)     // want "math/rand/v2.IntN draws from the global generator"
	f := rand.Float64()    // want "math/rand/v2.Float64 draws from the global generator"
	rand.Shuffle(n, func(i, j int) {}) // want "math/rand/v2.Shuffle draws from the global generator"
	return n, f
}

// Good builds a seed-explicit generator; its methods are local state
// and deterministic, so they pass.
func Good() int {
	r := rand.New(rand.NewPCG(1, 2))
	return r.IntN(10)
}

// Suppressed is the sanctioned escape hatch.
func Suppressed() float64 {
	//striplint:ignore global-rand -- fixture exercises suppression
	return rand.Float64()
}
