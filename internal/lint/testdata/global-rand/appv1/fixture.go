// Package appv1 is a striplint fixture for the math/rand (v1)
// global functions, which are additionally reseedable behind the
// caller's back.
package appv1

import "math/rand"

// Bad uses the v1 global generator.
func Bad() int {
	return rand.Intn(10) // want "math/rand.Intn draws from the global generator"
}

// Good is a seed-explicit v1 generator: deterministic, allowed.
func Good() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(10)
}
