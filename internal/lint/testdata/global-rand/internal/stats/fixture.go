// Package stats matches the allowed scope (internal/stats): this is
// where the seeded wrapper lives, so the rule must stay silent even
// on global draws.
package stats

import "math/rand/v2"

// AnythingGoes is allowed here — internal/stats is the one package
// permitted to touch math/rand directly.
func AnythingGoes() float64 {
	return rand.Float64()
}
