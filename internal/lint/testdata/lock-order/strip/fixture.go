// Package strip is the lock-order fixture: two mutexes acquired in
// opposite orders by two code paths, with each nested acquisition
// hidden behind a function call so no single scope ever sees both
// locks — the interprocedural inversion the v2 per-scope rules cannot
// detect.
package strip

import "sync"

// Registry and Journal each own one mutex; the deadlock needs both.
type Registry struct {
	mu    sync.Mutex
	items map[string]int
}

type Journal struct {
	mu  sync.Mutex
	log []string
}

// Install takes Registry.mu, then (through Record) Journal.mu.
func (r *Registry) Install(j *Journal, k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items[k] = 1
	j.Record(k)
}

func (j *Journal) Record(k string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.log = append(j.log, k)
}

// Compact takes Journal.mu, then (through drop) Registry.mu — the
// opposite order. The cycle is anchored here, on the call that closes
// it.
func (j *Journal) Compact(r *Registry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.drop(j.log) // want "lock ordering cycle strip.Journal.mu -> strip.Registry.mu -> strip.Journal.mu"
	j.log = j.log[:0]
}

func (r *Registry) drop(keys []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range keys {
		delete(r.items, k)
	}
}

// Cache demonstrates the single-mutex self-cycle: a write acquisition
// reached while the same RWMutex is read-held (the upgrade deadlock —
// the write waits for the read to release, the read waits for fill to
// return).
type Cache struct {
	rw sync.RWMutex
	m  map[string]int
}

func (c *Cache) Get(k string) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	v, ok := c.m[k]
	if !ok {
		return c.fill(k) // want "lock ordering cycle strip.Cache.rw -> strip.Cache.rw"
	}
	return v
}

func (c *Cache) fill(k string) int {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.m[k] = 1
	return 1
}
