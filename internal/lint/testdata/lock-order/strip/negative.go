// Negative fixture: two mutexes taken by two different paths in the
// SAME order, including one interprocedural nesting. A consistent
// order produces edges but no cycle, so lock-order stays silent.
package strip

import "sync"

type Index struct {
	mu   sync.Mutex
	keys []string
}

type Store struct {
	mu   sync.Mutex
	vals map[string]int
}

// Both paths order Index.mu before Store.mu.
func (ix *Index) Add(s *Store, k string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.keys = append(ix.keys, k)
	s.put(k)
}

func (ix *Index) Rebuild(s *Store) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, k := range ix.keys {
		s.put(k)
	}
}

func (s *Store) put(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[k]++
}

// Nested shared reads of one RWMutex — directly or through a call —
// are not an ordering event: no write acquisition is ever reached, so
// there is nothing to deadlock against.
type Shared struct {
	rw sync.RWMutex
	n  int
}

func (sh *Shared) Peek() int {
	sh.rw.RLock()
	defer sh.rw.RUnlock()
	return sh.n + sh.sum()
}

func (sh *Shared) sum() int {
	sh.rw.RLock()
	defer sh.rw.RUnlock()
	return sh.n * 2
}
