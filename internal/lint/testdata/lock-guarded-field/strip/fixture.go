// Package strip is a striplint fixture: its import path ends in
// strip, so the lock-discipline rules apply. The DB mirror below
// exercises both guarded-field inference forms — mu-adjacency and the
// explicit "guarded by mu" comment — and the zone break a blank line
// introduces.
package strip

import "sync"

type DB struct {
	mu    sync.RWMutex
	names map[string]int
	count int

	queue []int // separate group: scheduler-owned, deliberately unguarded

	derived map[string]bool // guarded by mu
}

func (db *DB) GoodRead() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.count
}

func (db *DB) GoodWrite(k string, v int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.names[k] = v
}

func (db *DB) GoodManualPair() int {
	db.mu.RLock()
	n := db.count
	db.mu.RUnlock()
	return n
}

func (db *DB) BadRead() int {
	return db.count // want "read db.count \\(guarded by DB.mu\\) without holding"
}

func (db *DB) BadWrite(v int) {
	db.count = v // want "write to db.count \\(guarded by DB.mu\\) without holding db.mu.Lock"
}

// BadUnderRead holds only the read lock while mutating.
func (db *DB) BadUnderRead(k string) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.names[k] = 1 // want "write to db.names \\(guarded by DB.mu\\) without holding db.mu.Lock"
}

// BadDerived shows the explicit-comment form is enforced too.
func (db *DB) BadDerived() bool {
	return db.derived["x"] // want "read db.derived \\(guarded by DB.mu\\) without holding"
}

// Scheduler touches the unguarded group freely.
func (db *DB) Scheduler() {
	db.queue = append(db.queue, 1)
}

// countLocked follows the caller-holds-the-lock convention and is
// exempt by its name suffix.
func (db *DB) countLocked() int { return db.count }

func (db *DB) UseLocked() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.countLocked()
}

// InLiteral shows a plain function literal is its own lock scope: the
// enclosing function's future callers cannot hold anything for it.
func (db *DB) InLiteral() func() int {
	return func() int {
		return db.count // want "read db.count \\(guarded by DB.mu\\) without holding"
	}
}

// Justified documents a sanctioned exception.
func (db *DB) Justified() int {
	//striplint:ignore lock-guarded-field -- fixture exercises suppression
	return db.count
}
