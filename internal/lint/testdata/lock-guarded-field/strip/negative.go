// Negative fixture: accesses lock-guarded-field must NOT flag —
// guarded fields always touched under their mutex, and fields outside
// any guard zone touched freely.
package strip

import "sync"

type Ledger struct {
	mu      sync.Mutex
	entries map[string]int
	total   int

	epoch int // separate group: single-writer, deliberately unguarded
}

func (l *Ledger) Post(k string, v int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[k] += v
	l.total += v
}

func (l *Ledger) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// ManualZone accesses guarded state between a manual Lock/Unlock pair.
func (l *Ledger) ManualZone(k string) int {
	l.mu.Lock()
	v := l.entries[k]
	l.mu.Unlock()
	return v
}

// Epoch is outside the guard zone: free access, never flagged.
func (l *Ledger) Epoch() int {
	l.epoch++
	return l.epoch
}
