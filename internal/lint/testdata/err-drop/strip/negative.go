// Negative fixture: the legitimate dispositions of a durability error
// — checked, returned, wrapped, stored somewhere visible, or read
// before being reassigned.
package strip

import (
	"errors"
	"fmt"

	"repro/strip/fault"
)

type Sink struct {
	f       fault.File
	fs      fault.FS
	lastErr error
}

func (s *Sink) checked() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("sink: %w", err)
	}
	return nil
}

func (s *Sink) propagated() error {
	return s.f.Sync()
}

func (s *Sink) wrappedArg() error {
	return fmt.Errorf("sink: %w", s.f.Sync())
}

func (s *Sink) stored() {
	s.lastErr = s.fs.Remove("old")
}

func (s *Sink) readBeforeReassign() error {
	err := s.f.Sync()
	if errors.Is(err, fault.ErrInjected) {
		return err
	}
	err = s.fs.Remove("old")
	return err
}

// Named results are read by every return, bare or not.
func (s *Sink) namedResult() (err error) {
	err = s.f.Sync()
	return
}
