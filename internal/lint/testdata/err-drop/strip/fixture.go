// Package strip is the err-drop fixture: every drop shape for an
// error born on a durability path — bare call, blank assignment,
// defer/go statements, overwrite before check, assignment never read —
// both on direct fault.FS/fault.File operations and behind a module
// helper.
package strip

import "repro/strip/fault"

type W struct {
	f  fault.File
	fs fault.FS
}

func (w *W) bareDrop() {
	w.f.Sync() // want "error from fault.File.Sync discarded"
}

func (w *W) blankDrop() {
	_ = w.f.Sync() // want "error from fault.File.Sync assigned to _"
}

func (w *W) deferDrop() {
	defer w.f.Sync() // want "deferred call discards the error from fault.File.Sync"
}

func (w *W) goDrop() {
	go w.fs.Remove("stale") // want "go statement discards the error from fault.FS.Remove"
}

func (w *W) overwriteDrop() error {
	err := w.f.Sync() // want "error from fault.File.Sync overwritten at .* before being checked"
	err = fault.ErrInjected
	return err
}

func (w *W) assignedNeverRead() error {
	err := w.fs.Remove("a")
	if err != nil {
		return err
	}
	err = w.f.Sync() // want "error from fault.File.Sync is never checked"
	return nil
}

// persist launders the durability error through a helper: the helper
// returns it faithfully, so the drop is the caller's.
func persist(f fault.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

func (w *W) indirectDrop() {
	persist(w.f) // want "error from strip.persist \\(durability path: fault.File.Sync\\) discarded"
}
