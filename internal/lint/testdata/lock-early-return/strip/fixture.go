// Package strip is a striplint fixture: its import path ends in
// strip, so the lock-discipline rules apply. It exercises the two
// shapes lock-early-return flags — a return between a manual
// Lock/Unlock pair, and a second Unlock on another exit path — plus
// the clean forms that stay silent.
package strip

import "sync"

type Store struct {
	mu sync.Mutex
	v  int
}

func (s *Store) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v
}

func (s *Store) GoodManualPair() int {
	s.mu.Lock()
	v := s.v
	s.mu.Unlock()
	return v
}

func (s *Store) BadEarlyReturn(cond bool) int {
	s.mu.Lock() // want "s.mu.Lock is followed by a return before its Unlock"
	if cond {
		return 0
	}
	v := s.v
	s.mu.Unlock()
	return v
}

func (s *Store) BadSecondaryExit(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return 0
	}
	v := s.v
	s.mu.Unlock() // want "manual s.mu.Unlock on a secondary exit path"
	return v
}

type RW struct {
	mu sync.RWMutex
	v  int
}

func (r *RW) BadReadEarlyReturn(cond bool) int {
	r.mu.RLock() // want "r.mu.RLock is followed by a return before its RUnlock"
	if cond {
		return -1
	}
	v := r.v
	r.mu.RUnlock()
	return v
}
