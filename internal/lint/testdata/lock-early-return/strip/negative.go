// Negative fixture: the lock/unlock shapes lock-early-return must NOT
// flag — the defer idiom, a manual pair with no intervening exit, and
// a manual pair where every branch unlocks before returning.
package strip

import "sync"

type Gauge struct {
	mu sync.Mutex
	v  int
}

// DeferIdiom is the canonical form.
func (g *Gauge) DeferIdiom() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// ManualPair has no exit between Lock and Unlock.
func (g *Gauge) ManualPair(delta int) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// SequentialZones holds the lock twice, each zone a clean manual
// pair.
func (g *Gauge) SequentialZones(delta int) int {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()

	g.mu.Lock()
	v := g.v
	g.mu.Unlock()
	return v
}
