// Negative fixture: a directive that still suppresses a live finding
// is in active use, so unused-ignore stays silent — as does every
// other rule, because the finding is waived.
package sim

import "time"

// Deadline's waiver earns its keep: the wall-clock read below would
// be a nondeterministic-time finding without it.
func Deadline(budget time.Duration) time.Time {
	//striplint:ignore nondeterministic-time -- fixture: the directive suppresses the line below
	return time.Now().Add(budget)
}
