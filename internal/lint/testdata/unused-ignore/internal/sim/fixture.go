// Package sim is a striplint fixture for the unused-ignore meta-rule:
// its import path ends in internal/sim so the determinism rules
// apply, giving the first directive something real to suppress while
// the second has outlived its finding.
package sim

import "time"

// Sanctioned documents a real, suppressed finding: its directive is
// used and must not be reported.
func Sanctioned() time.Time {
	//striplint:ignore nondeterministic-time -- fixture: directive in active use
	return time.Now()
}

// stale is clean code whose waiver outlived it.
func stale() int {
	//striplint:ignore nondeterministic-time -- nothing left here // want "//striplint:ignore nondeterministic-time suppresses nothing"
	return 42
}
