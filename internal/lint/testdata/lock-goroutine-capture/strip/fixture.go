// Package strip is a striplint fixture: its import path ends in
// strip, so the lock-discipline rules apply. It exercises goroutine
// literals capturing mutex-guarded fields: the launcher's lock does
// not outlive the launch, so only a lock taken inside the literal
// counts.
package strip

import "sync"

type Pool struct {
	mu   sync.Mutex
	jobs []int
}

func (p *Pool) GoodLaunch() {
	go func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.jobs = append(p.jobs, 1)
	}()
}

func (p *Pool) BadLaunch() {
	go func() {
		p.jobs = append(p.jobs, 1) // want "goroutine launched in BadLaunch captures guarded field p.jobs"
	}()
}

// BadLaunchUnderLock shows the launcher's own lock proves nothing:
// the goroutine runs after the deferred unlock releases it.
func (p *Pool) BadLaunchUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.jobs = nil // want "goroutine launched in BadLaunchUnderLock captures guarded field p.jobs"
	}()
}
