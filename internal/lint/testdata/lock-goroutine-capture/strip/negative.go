// Negative fixture: goroutine launches lock-goroutine-capture must
// NOT flag — literals that take the lock themselves, literals that
// receive copies as parameters, and literals touching unguarded
// state.
package strip

import "sync"

type Queue struct {
	mu    sync.Mutex
	items []int

	hits int // separate group: deliberately unguarded counter
	done chan struct{}
}

// LocksInside takes the mutex inside the literal.
func (q *Queue) LocksInside(v int) {
	go func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		q.items = append(q.items, v)
	}()
}

// PassesCopy hands the goroutine a value parameter, not the field.
func (q *Queue) PassesCopy() {
	q.mu.Lock()
	snapshot := len(q.items)
	q.mu.Unlock()
	go func(n int) {
		_ = n
	}(snapshot)
}

// TouchesUnguarded only uses state outside any lock's zone.
func (q *Queue) TouchesUnguarded() {
	go func() {
		q.hits++
	}()
}
