// Package strip is the alloc-in-hotpath positive fixture: one example
// of every allocation class the rule reports, inside functions
// reachable from the configured hot-path root strip.DB.ApplyUpdate.
// The helpers are hot purely by reachability — stage at depth one,
// convert at depth two — so the findings also pin the witness chain
// machinery.
package strip

import (
	"fmt"

	"repro/internal/lint/testdata/alloc-in-hotpath/other"
)

// Update mirrors the shape of a streamed update.
type Update struct {
	Object string
	Value  float64
}

// DB carries the hot-path receiver; ApplyUpdate matches the
// configured root spec strip.DB.ApplyUpdate.
type DB struct {
	out  []float64
	last *Update
}

// ApplyUpdate is the configured root: everything it reaches is hot.
func (db *DB) ApplyUpdate(u Update) error {
	mu := &Update{Object: u.Object, Value: u.Value} // want "address-taken composite literal Update escapes to the heap on the hot path from strip.DB.ApplyUpdate"
	db.last = mu
	db.stage(u)
	// Reached from the root, but outside the alloc-report scope: the
	// callee's allocations produce no findings.
	other.Scratch()
	// scratch (clean.go) is hot too; everything in it is exempt.
	if err := db.scratch(u); err != nil {
		return err
	}
	return db.flush(u)
}

// stage is hot at depth one from the root.
func (db *DB) stage(u Update) {
	weights := []float64{u.Value, 1}               // want "slice literal allocates its backing array on the hot path from strip.DB.ApplyUpdate"
	index := map[string]float64{u.Object: u.Value} // want "map literal allocates on the hot path"
	cb := func() float64 { return u.Value }        // want "capturing closure allocates its environment on the hot path"
	db.out = append(db.out, weights[0], index[u.Object], cb())
	db.convert(u.Object)
}

// convert is hot at depth two; its witness chain threads stage.
func (db *DB) convert(name string) {
	raw := []byte(name)   // want "byte-slice conversion copies the string on the hot path"
	_ = string(raw)       // want "string conversion copies the byte slice on the hot path"
	runes := []rune(name) // want "rune-slice conversion allocates on the hot path"
	_ = string(runes)     // want "string conversion copies the rune slice on the hot path"
}

// flush covers the builtin and call classifications.
func (db *DB) flush(u Update) error {
	seen := make(map[string]bool) // want "make allocates a map on the hot path"
	wake := make(chan struct{})   // want "make allocates a channel on the hot path"
	buf := make([]float64, 1)     // want "make allocates a slice without an explicit capacity on the hot path"
	var tail []float64
	tail = append(tail, u.Value)                // want "append to tail may grow with unknown capacity on the hot path"
	ids := append([]string{}, u.Object)         // want "append to a fresh literal allocates on the hot path"
	_ = fmt.Sprintf("%s=%v", u.Object, u.Value) // want "call to fmt.Sprintf allocates formatting buffers and boxes its arguments on the hot path"
	record(u.Value)                             // want "passing float64 as an interface argument boxes the value on the hot path"
	boxed := any(u.Value)                       // want "conversion to an interface boxes the value on the hot path"
	seen[u.Object] = len(ids) > 0 && buf[0] < tail[0]
	close(wake)
	_ = boxed
	return nil
}

// record is the boxing sink; its own body is allocation-free.
func record(v any) { _ = v }
