// The negative half of the fixture: allocation sites the rule must
// NOT report — cold functions, and the documented exemption classes
// inside hot ones.
package strip

import (
	"errors"
	"fmt"
)

// Cold is never reached from a configured root: the same allocation
// classes the positive fixture flags stay silent off the hot path.
func Cold(u Update) (*Update, error) {
	mu := &Update{Object: u.Object}
	weights := []float64{1, 2}
	m := make(map[string]bool)
	var tail []float64
	tail = append(tail, u.Value)
	_ = fmt.Sprintf("%v", u.Value)
	m[u.Object] = weights[0] < tail[0]
	return mu, errors.New("cold")
}

// scratch is hot (the root calls it directly), but every site below
// is a documented exemption: explicit capacity, scratch reuse,
// caller-owned destinations, error-exit construction, escape-free
// literals and pointer-shaped interface values.
func (db *DB) scratch(u Update) error {
	kvs := make([]float64, 0, 4)        // three-argument make: explicit preallocation
	kvs = append(kvs, u.Value)          // seeded by the make above
	db.out = append(db.out[:0], kvs...) // scratch-reuse idiom: slice-expression destination
	reset := db.out[:0]                 // a slice expression seeds its destination
	reset = append(reset, u.Value)
	double := func(x float64) float64 { return 2 * x } // non-capturing literal
	v := func() float64 { return double(u.Value) }()   // IIFE: the call frame replaces the closure
	val := Update{Object: u.Object, Value: v}          // value literal, no escape
	record(db)                                         // pointer-shaped argument: fits the interface word, no boxing
	record(nil)                                        // nil boxes nothing
	var extras []any
	recordAll(extras...) // variadic pass-through: no per-element boxing
	if u.Object == "" {
		return fmt.Errorf("strip: empty object (value %v)", val.Value) // error exit
	}
	if v < 0 {
		return errors.New("strip: negative value")
	}
	return db.fill(kvs)
}

// fill appends into its parameter: capacity is the caller's contract.
func (db *DB) fill(dst []float64) error {
	dst = append(dst, 1)
	_ = dst
	return nil
}

// recordAll is the variadic pass-through sink.
func recordAll(vs ...any) { _ = vs }
