// Package other is reached from the hot root but lies outside the
// alloc-report scope: reachability alone produces no findings, only
// reachable code in reported packages does.
package other

// Scratch allocates freely; the report scope does not include this
// package.
func Scratch() []int {
	return append([]int{}, 1, 2, 3)
}
