// Negative fixture: plain sequential code in the deterministic
// package — loops, maps used locally, function values — none of it
// touches a concurrency construct, so concurrency-in-sim stays
// silent.
package sim

// Fold is order-insensitive sequential accumulation.
func Fold(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Apply passes a function value around — mentions of functions are
// not goroutine launches.
func Apply(f func(int) int, x int) int {
	return f(x)
}

// Histogram uses a map as a local accumulator.
func Histogram(xs []int) map[int]int {
	h := make(map[int]int)
	for _, x := range xs {
		h[x]++
	}
	return h
}
