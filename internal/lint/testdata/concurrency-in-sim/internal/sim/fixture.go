// Package sim is a striplint fixture: concurrency constructs are
// forbidden in the single-threaded event-loop packages.
package sim

// Bad exercises every forbidden construct.
func Bad() {
	ch := make(chan int, 1) // want "make\\(chan \\.\\.\\.\\) inside deterministic package"
	go func() {             // want "go statement spawns a goroutine"
		ch <- 1 // want "channel send inside deterministic package"
	}()
	<-ch // want "channel receive inside deterministic package"
	select { // want "select is scheduler-nondeterministic"
	default:
	}
	close(ch) // want "close of channel inside deterministic package"
}

// BadRange drains a channel in a range loop.
func BadRange(ch chan int) int { // parameter of channel type alone is not flagged
	total := 0
	for v := range ch { // want "range over channel inside deterministic package"
		total += v
	}
	return total
}

// Good is plain sequential code.
func Good(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
