// Negative fixture: the comparisons float-eq must NOT flag —
// tolerance checks built on ordering, integer and string equality,
// and float arithmetic that never compares exactly.
package metrics

import "math"

// WithinTolerance is the sanctioned comparison idiom.
func WithinTolerance(a, b, eps float64) bool {
	return math.Abs(a-b) < eps
}

// Clamp only uses ordering operators.
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// NonFloatEquality compares ints and strings.
func NonFloatEquality(n int, s string) bool {
	return n == 0 || s == "p99"
}

// Mean does float arithmetic without any equality test.
func Mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
