// Package metrics is a striplint fixture: exact float equality is
// forbidden in the metric-computing packages.
package metrics

// Seconds is a named float type; the rule sees through it.
type Seconds float64

// Bad compares floats exactly.
func Bad(a, b float64, s Seconds) int {
	n := 0
	if a == b { // want "floating-point == comparison"
		n++
	}
	if a != 0 { // want "floating-point != comparison"
		n++
	}
	if s == 1.5 { // want "floating-point == comparison"
		n++
	}
	return n
}

// GoodNaNIdiom is the portable NaN self-test: exempt.
func GoodNaNIdiom(x float64) bool {
	return x != x
}

// GoodInts compares integers, never flagged.
func GoodInts(a, b int) bool {
	return a == b
}

// GoodOrdering uses <, which is what tolerance comparisons build on.
func GoodOrdering(a, b float64) bool {
	return a < b
}

// Suppressed records a deliberate exact comparison with its reason.
func Suppressed(a float64) bool {
	//striplint:ignore float-eq -- fixture exercises suppression
	return a == 0.25
}
