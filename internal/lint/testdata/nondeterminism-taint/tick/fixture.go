// Package tick is a striplint fixture living outside the
// deterministic scope, so the syntactic v1 rules never inspect it.
// Its helpers launder nondeterminism sources that only the
// interprocedural taint rule can trace back.
package tick

import (
	"math/rand"
	"time"
)

// Wrapped is what the deterministic fixture calls: the wall clock is
// two helper levels away.
func Wrapped() int64 { return deep() }

func deep() int64 { return time.Now().UnixNano() }

// Roll launders the global math/rand generator one level deep.
func Roll() int { return rand.Int() }

// Keys leaks map iteration order into the returned slice. In an
// out-of-scope helper this is an intrinsic taint source rather than a
// map-order-leak finding.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Pure is deterministic; calls to it must not be flagged.
func Pure(x int) int { return x + 1 }
