// Package sim is a striplint fixture: its import path ends in
// internal/sim, so the deterministic-package rules apply. Every
// nondeterminism source here hides behind helpers in package tick,
// out of reach of the syntactic v1 rules — only the taint closure
// sees them.
package sim

import (
	"os"

	"repro/internal/lint/testdata/nondeterminism-taint/tick"
)

func Clocked() int64 {
	return tick.Wrapped() // want "tick.Wrapped transitively reaches time.Now \\(wall clock\\)"
}

func Rolled() int {
	return tick.Roll() // want "tick.Roll transitively reaches math/rand.Int \\(global generator\\)"
}

func Ordered(m map[string]int) []string {
	return tick.Keys(m) // want "tick.Keys transitively reaches map iteration order"
}

// Env reads the process environment directly — no v1 rule covers
// that, so the taint rule reports it itself.
func Env() string {
	return os.Getenv("STRIP_SEED") // want "os.Getenv \\(process environment\\) read inside deterministic package"
}

// Fine calls an untainted helper and stays silent.
func Fine(x int) int {
	return tick.Pure(x)
}

// Suppressed documents a sanctioned exception.
func Suppressed() int64 {
	//striplint:ignore nondeterminism-taint -- fixture exercises suppression of a taint finding
	return tick.Wrapped()
}
