// Package clock is outside the deterministic scope, so wall-clock
// reads are allowed here: the rule must stay silent.
package clock

import "time"

// Now is fine: this package's import path matches no deterministic
// package suffix.
func Now() time.Time { return time.Now() }
