// Package sim is a striplint fixture: its import path ends in
// internal/sim, so the deterministic-package rules apply.
package sim

import "time"

var epoch time.Time

// Bad reads the wall clock three ways.
func Bad() (time.Time, time.Duration, time.Duration) {
	now := time.Now()                // want "time.Now reads the wall clock"
	since := time.Since(epoch)       // want "time.Since reads the wall clock"
	until := time.Until(epoch)       // want "time.Until reads the wall clock"
	return now, since, until
}

// Renamed still resolves through the type-checker.
func Renamed() time.Time {
	return clock() // helper below keeps the alias honest
}

func clock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// Allowed uses of package time are fine: durations, constructors,
// parsing and formatting do not read the wall clock.
func Allowed() time.Duration {
	d := 3 * time.Second
	t := time.Unix(0, 42)
	_ = t.Add(d)
	return d
}

// Suppressed documents a sanctioned exception.
func Suppressed() time.Time {
	//striplint:ignore nondeterministic-time -- fixture exercises standalone suppression
	return time.Now()
}

// SuppressedTrailing uses the same-line form.
func SuppressedTrailing() time.Time {
	return time.Now() //striplint:ignore nondeterministic-time -- fixture exercises trailing suppression
}
