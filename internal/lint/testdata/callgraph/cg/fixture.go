// Package cg is the callgraph coverage fixture: one function per edge
// class the mention-based callgraph must keep — method values,
// deferred closures, and interface dispatch — plus a clean function
// that must stay fact-free. callgraph_test.go asserts on the Facts
// built from this package directly; if an edge class regresses, the
// corresponding assertion fails.
package cg

import (
	"sync"
	"time"
)

// source is the nondeterminism seed every taint chain below must reach.
func source() time.Time { return time.Now() }

type C struct{ last time.Time }

func (c *C) read() { c.last = source() }

// MethodValue reaches the source through a method value: the callee is
// mentioned as a bound value, never in call position.
func MethodValue(c *C) {
	f := c.read
	f()
}

// DeferredClosure reaches the source through a closure that only runs
// at defer time.
func DeferredClosure(c *C) {
	defer func() { c.read() }()
}

// locker/impl exercise interface dispatch: ThroughIface never names
// impl, but the method-set edge must still carry impl.grab's lock
// acquisition back to it.
type locker interface{ grab() }

type impl struct {
	mu sync.Mutex
	n  int
}

func (i *impl) grab() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.n++
}

func ThroughIface(l locker) { l.grab() }

// Clean touches no source, no lock, no blocker: every fact table must
// stay empty for it.
func Clean(x int) int { return x + 1 }
