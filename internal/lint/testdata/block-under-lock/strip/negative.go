// Negative fixture: the idioms block-under-lock must NOT flag — a
// select guarded by default, channel traffic after the unlock,
// cond.Wait on its own lock, goroutine launches, and blocking with no
// lock held at all.
package strip

import (
	"sync"
	"time"
)

type Quiet struct {
	mu   sync.Mutex
	cond *sync.Cond // wraps mu (see NewQuiet)
	ch   chan int
	n    int
}

func NewQuiet() *Quiet {
	q := &Quiet{ch: make(chan int, 1)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// A select with a default case cannot block.
func (q *Quiet) TryNotify(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
	default:
	}
}

// Sending after the unlock is the loop.go idiom: compute under the
// lock, publish outside it.
func (q *Quiet) NotifyOutside(v int) {
	q.mu.Lock()
	q.n = v
	q.mu.Unlock()
	q.ch <- v
}

// Waiting on the cond's own lock releases it — the sanctioned idiom.
func (q *Quiet) AwaitNonZero() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		q.cond.Wait()
	}
	return q.n
}

// A go statement only launches the blocker; the holder itself does
// not block.
func (q *Quiet) SpawnDrain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go q.drain()
}

func (q *Quiet) drain() {
	for range q.ch {
	}
}

// Blocking with no lock held is fine.
func (q *Quiet) Pause() {
	time.Sleep(time.Millisecond)
}
