// Package strip is the block-under-lock fixture: every class of
// potentially blocking operation reached while a mutex is held —
// sleeps, bare channel operations, selects without default, net I/O,
// cond.Wait on a different lock, and a blocking call hidden behind a
// module function.
package strip

import (
	"net"
	"sync"
	"time"
)

type Box struct {
	mu      sync.Mutex
	waitMu  sync.Mutex
	cond    *sync.Cond // wraps waitMu (see NewBox)
	updates chan int
	n       int
}

func NewBox() *Box {
	b := &Box{updates: make(chan int)}
	b.cond = sync.NewCond(&b.waitMu)
	return b
}

func (b *Box) SleepUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding strip.Box.mu"
	b.n++
}

func (b *Box) SendUnderLock(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.updates <- v // want "channel send while holding strip.Box.mu"
}

func (b *Box) RecvUnderLock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.updates // want "channel receive while holding strip.Box.mu"
}

func (b *Box) SelectUnderLock(done chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want "select without a default case while holding strip.Box.mu"
	case v := <-b.updates:
		b.n += v
	case <-done:
	}
}

func (b *Box) NetUnderLock(conn net.Conn, buf []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return conn.Read(buf) // want "net.Conn.Read \\(network I/O\\) while holding strip.Box.mu"
}

// WaitWrongLock parks on a cond whose locker is waitMu while ALSO
// holding mu: every other goroutine needing mu stalls until someone
// signals.
func (b *Box) WaitWrongLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.waitMu.Lock()
	defer b.waitMu.Unlock()
	for b.n == 0 {
		b.cond.Wait() // want "sync.Cond.Wait while holding strip.Box.mu"
	}
}

// slowFlush hides the blocking operation one call away.
func (b *Box) slowFlush() {
	time.Sleep(time.Millisecond)
}

func (b *Box) FlushUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.slowFlush() // want "call to strip.Box.slowFlush may block \\(time.Sleep\\) while holding strip.Box.mu"
}
