package lint

import (
	"go/ast"
	"go/types"
)

// useOf resolves an identifier to the object it uses, or nil.
func useOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return nil
}

// pkgLevelFunc returns the package-level (non-method) function an
// expression refers to, unwrapping selectors, or nil. It resolves
// through renamed imports and dot imports because it goes through the
// type-checker's Uses map rather than matching source text.
func pkgLevelFunc(info *types.Info, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	f, ok := useOf(info, id).(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil
	}
	return f
}

// calleeIdent returns the rightmost identifier of a call expression's
// function (the x of x(...) or of pkg.x(...)), or nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin
// (append, close, make, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id := calleeIdent(call)
	if id == nil || id.Name != name {
		return false
	}
	b, ok := useOf(info, id).(*types.Builtin)
	return ok && b.Name() == name
}

// isFloat reports whether the expression's type is (or has an
// underlying) floating-point basic type.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMap reports whether the expression's type is (or has an
// underlying) map type.
func isMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

// isChan reports whether the expression's type is (or has an
// underlying) channel type.
func isChan(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}
