package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide facts behind the interprocedural
// rules: a direct call graph over every function declared in the
// module, the set of functions that intrinsically touch a
// nondeterminism source, and the taint closure of "transitively
// reaches a source" propagated backwards over the graph.
//
// The graph is deliberately syntactic-plus-types, not a full
// points-to analysis: an edge exists wherever a function's body
// mentions another module function (a call, a method value, a
// callback being passed along — any mention is treated as a potential
// call, which over-approximates in the safe direction). Two dynamic
// mechanisms escape it and are documented limitations: calls through
// interface methods resolve to the interface, not to implementations,
// and calls through function-typed variables or struct fields (e.g. a
// Config.Clock) resolve to nothing.

// Facts are module-wide results shared by interprocedural rules.
type Facts struct {
	// taint maps every module function that transitively reaches a
	// nondeterminism source to the first hop of its witness chain.
	taint map[*types.Func]*taintFact

	// fset renders positions for the lock-order graph (the loader
	// shares one FileSet across every package it loads).
	fset *token.FileSet
	// acquires maps fn -> lock -> how fn transitively acquires it;
	// acquiresWrite records whether any of fn's paths to the lock is a
	// write acquisition (Lock rather than RLock), which decides whether
	// a read-held same-key nesting is the benign shared-read idiom or
	// the RWMutex upgrade deadlock.
	acquires      map[*types.Func]map[lockKey]*taintFact
	acquiresWrite map[*types.Func]map[lockKey]bool
	// lockGraph is the global lock-acquisition-order graph and
	// lockCycles its potential deadlocks.
	lockGraph  *lockGraph
	lockCycles []lockCycle
	// condLockers maps an attributable *sync.Cond to the mutex it
	// wraps (cond.Wait on that mutex is the idiom, not a hazard).
	condLockers map[lockKey]lockKey
	// blockers maps every module function that transitively reaches a
	// potentially blocking operation to its witness chain.
	blockers map[*types.Func]*taintFact
	// errProducers maps every error-returning module function whose
	// error transitively originates on a durability path to its
	// witness chain; durabilityOps are the intrinsic sources.
	errProducers  map[*types.Func]*taintFact
	durabilityOps map[*types.Func]string
	// hot maps every module function reachable from a configured
	// hot-path root (Options.HotRoots) to its witness chain back to
	// that root. Unlike the other closures this one runs forward —
	// from the roots down the call graph — because the property of
	// interest ("work done per ingested update") belongs to callees.
	hot map[*types.Func]*taintFact
	// hotFuncs lists the hot functions with their source extents, for
	// tools that correlate external diagnostics (cmd/escapecheck
	// filters `go build -gcflags=-m` output to these ranges).
	hotFuncs []HotFunc
}

// HotFunc is one function in the hot-path closure, positioned for
// tools that need to map file:line diagnostics onto the closure.
type HotFunc struct {
	// Name is the display name (pkg.Func or pkg.Recv.Method).
	Name string
	// Root is the root spec this function is reachable from.
	Root string
	// File is the declaring file as the loader's FileSet renders it.
	File string
	// StartLine and EndLine bound the declaration, inclusive.
	StartLine, EndLine int
}

// HotFunctions returns the hot-path closure as positioned entries,
// sorted by file and line. Exposed for cmd/escapecheck and the
// striplint -hotpaths dump.
func (f *Facts) HotFunctions() []HotFunc {
	if f == nil {
		return nil
	}
	return f.hotFuncs
}

// taintFact is one function's entry in the taint closure: a witness
// path toward a nondeterminism source, stored as a linked next-hop so
// full chains can be reconstructed for diagnostics.
type taintFact struct {
	// source describes the root cause, e.g. "time.Now (wall clock)".
	source string
	// srcPos is where the root source is touched.
	srcPos token.Position
	// next is the callee this function reaches the source through;
	// nil when the function touches the source directly.
	next *types.Func
	// hopPos is where this function mentions next (or, for a direct
	// source, the source itself).
	hopPos token.Position
}

// Tainted returns the taint fact for fn, or nil. Exposed for tests.
func (f *Facts) Tainted(fn *types.Func) *taintFact {
	if f == nil {
		return nil
	}
	return f.taint[fn]
}

// cgNode is one declared function in the call graph.
type cgNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// edges are mentions of other module functions, in source order.
	edges []cgEdge
	// ifaceEdges link an interface method (a node with no decl) to the
	// module methods that implement it. They feed the lock-order,
	// blocking and err-discipline closures — where dispatching to any
	// implementation over-approximates in the safe direction — but not
	// the determinism taint, where the simulator's injected-clock
	// pattern would make every interface with one wall-clock
	// implementation a false positive.
	ifaceEdges []cgEdge
	// intrinsic is non-nil when the body itself touches a source.
	intrinsic *taintFact
}

// cgEdge is one mention of a module function inside another.
type cgEdge struct {
	callee *types.Func
	pos    token.Pos
}

// BuildFacts constructs the call graph over modules and computes the
// nondeterminism taint closure. The modules slice should cover every
// module package reachable from the analysis targets (Loader.All());
// packages outside it contribute no nodes, so chains through them are
// invisible.
func BuildFacts(modules []*Package, opts *Options) *Facts {
	opts = opts.effective()
	nodes := make(map[*types.Func]*cgNode)
	var order []*cgNode
	modPaths := make(map[string]bool, len(modules))
	for _, pkg := range modules {
		modPaths[pkg.Path] = true
	}

	for _, pkg := range modules {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgNode{fn: fn, decl: fd, pkg: pkg}
				nodes[fn] = n
				order = append(order, n)
			}
		}
	}

	for _, n := range order {
		collectEdges(n, modPaths, opts)
	}
	order = addInterfaceEdges(modules, nodes, order)

	f := &Facts{taint: propagateTaint(order, nodes)}
	if len(modules) > 0 {
		f.fset = modules[0].Fset
	}
	buildLockFacts(f, modules, order, nodes)
	// durabilityOps feed both the blocking classifier (interface Sync is
	// an fsync in production) and the err-drop sources, so they are
	// computed before either closure.
	f.durabilityOps = collectDurabilityOps(modules)
	buildBlockFacts(f, order, nodes)
	buildErrFacts(f, order, nodes)
	buildHotFacts(f, order, nodes, opts)
	return f
}

// hotRootSpec is one parsed Options.HotRoots entry:
// "<pkg-suffix>.<Func>" or "<pkg-suffix>.<Type>.<Method>", where the
// package suffix may contain slashes ("strip/repl.Primary.publish").
type hotRootSpec struct {
	raw  string
	pkg  string // import-path suffix, e.g. "strip/repl"
	recv string // receiver type name, "" for package-level functions
	name string
}

// parseHotRoot splits a root spec. The package suffix is everything up
// to the first dot after the last slash; one further dot separates a
// receiver type from a method name.
func parseHotRoot(raw string) (hotRootSpec, bool) {
	head, tail := "", raw
	if i := strings.LastIndex(raw, "/"); i >= 0 {
		head, tail = raw[:i+1], raw[i+1:]
	}
	parts := strings.Split(tail, ".")
	switch len(parts) {
	case 2:
		if parts[0] == "" || parts[1] == "" {
			return hotRootSpec{}, false
		}
		return hotRootSpec{raw: raw, pkg: head + parts[0], name: parts[1]}, true
	case 3:
		if parts[0] == "" || parts[1] == "" || parts[2] == "" {
			return hotRootSpec{}, false
		}
		return hotRootSpec{raw: raw, pkg: head + parts[0], recv: parts[1], name: parts[2]}, true
	}
	return hotRootSpec{}, false
}

// matches reports whether the declared function n is the one the spec
// names, using the same import-path suffix matching as Scope.
func (s hotRootSpec) matches(n *cgNode) bool {
	if n.decl == nil || n.fn.Name() != s.name || recvTypeName(n.fn) != s.recv {
		return false
	}
	path := n.pkg.Path
	return path == s.pkg || hasPathSuffix(path, s.pkg)
}

// buildHotFacts resolves Options.HotRoots against the graph and runs a
// forward breadth-first closure over direct and interface-dispatch
// edges — from the roots down to everything they can call. Each hot
// function's fact chains back toward its root: next is the caller it
// was reached from and hopPos the mention site in that caller, so
// hotChain can render "X is reached from Y" witness lines. Node and
// edge order is source order, making the chosen chains deterministic.
func buildHotFacts(f *Facts, order []*cgNode, nodes map[*types.Func]*cgNode, opts *Options) {
	f.hot = make(map[*types.Func]*taintFact)
	var specs []hotRootSpec
	for _, raw := range opts.HotRoots {
		if s, ok := parseHotRoot(raw); ok {
			specs = append(specs, s)
		}
	}
	var queue []*types.Func
	for _, n := range order {
		for _, s := range specs {
			if !s.matches(n) {
				continue
			}
			pos := n.pkg.Fset.Position(n.decl.Name.Pos())
			f.hot[n.fn] = &taintFact{source: s.raw, srcPos: pos, hopPos: pos}
			queue = append(queue, n.fn)
			break
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := nodes[cur]
		if n == nil {
			continue
		}
		fact := f.hot[cur]
		for _, edges := range [][]cgEdge{n.edges, n.ifaceEdges} {
			for _, e := range edges {
				if _, seen := f.hot[e.callee]; seen {
					continue
				}
				f.hot[e.callee] = &taintFact{
					source: fact.source,
					srcPos: fact.srcPos,
					next:   cur,
					hopPos: n.pkg.Fset.Position(e.pos),
				}
				queue = append(queue, e.callee)
			}
		}
	}
	for _, n := range order {
		fact := f.hot[n.fn]
		if fact == nil || n.decl == nil {
			continue
		}
		start := n.pkg.Fset.Position(n.decl.Pos())
		end := n.pkg.Fset.Position(n.decl.End())
		f.hotFuncs = append(f.hotFuncs, HotFunc{
			Name:      funcDisplayName(n.fn),
			Root:      fact.source,
			File:      start.Filename,
			StartLine: start.Line,
			EndLine:   end.Line,
		})
	}
	sort.Slice(f.hotFuncs, func(i, j int) bool {
		a, b := f.hotFuncs[i], f.hotFuncs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.StartLine < b.StartLine
	})
}

// Hot returns the hot-path fact for fn, or nil. Exposed for rules and
// tests.
func (f *Facts) Hot(fn *types.Func) *taintFact {
	if f == nil {
		return nil
	}
	return f.hot[fn]
}

// hotChain renders why fn sits on a hot path: one positioned line per
// hop back up the call chain, ending at the configured root.
func (f *Facts) hotChain(fn *types.Func) []string {
	var notes []string
	cur := fn
	for cur != nil {
		fact := f.hot[cur]
		if fact == nil {
			break
		}
		if fact.next == nil {
			notes = append(notes, funcDisplayName(cur)+" is a configured hot-path root ("+fact.source+") at "+fact.srcPos.String())
			break
		}
		notes = append(notes, funcDisplayName(cur)+" is reached from "+funcDisplayName(fact.next)+" at "+fact.hopPos.String())
		cur = fact.next
	}
	return notes
}

// addInterfaceEdges creates a node for every method of every interface
// declared in the module and links it to each module method that
// implements it, so the lock/blocking/err closures see through
// interface dispatch (e.g. fault.File.Sync reaching os.File.Sync via
// the osFS implementation). Returns the extended order slice.
func addInterfaceEdges(modules []*Package, nodes map[*types.Func]*cgNode, order []*cgNode) []*cgNode {
	type namedIface struct {
		pkg   *Package
		iface *types.Interface
	}
	var ifaces []namedIface
	type concrete struct {
		pkg *Package
		t   *types.Named
	}
	var concretes []concrete
	for _, pkg := range modules {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, namedIface{pkg: pkg, iface: iface})
				}
				continue
			}
			concretes = append(concretes, concrete{pkg: pkg, t: named})
		}
	}
	for _, ni := range ifaces {
		for _, c := range concretes {
			ptr := types.NewPointer(c.t)
			if !types.Implements(ptr, ni.iface) && !types.Implements(c.t, ni.iface) {
				continue
			}
			ms := types.NewMethodSet(ptr)
			for i := 0; i < ni.iface.NumMethods(); i++ {
				im := ni.iface.Method(i)
				sel := ms.Lookup(im.Pkg(), im.Name())
				if sel == nil {
					continue
				}
				impl, ok := sel.Obj().(*types.Func)
				if !ok {
					continue
				}
				implNode, ok := nodes[impl]
				if !ok {
					continue // implementation without a module body
				}
				in := nodes[im]
				if in == nil {
					in = &cgNode{fn: im, pkg: ni.pkg}
					nodes[im] = in
					order = append(order, in)
				}
				in.ifaceEdges = append(in.ifaceEdges, cgEdge{callee: impl, pos: implNode.decl.Name.Pos()})
			}
		}
	}
	return order
}

// reverseEdges inverts the graph for backward propagation: for each
// callee, the list of (caller, mention position) pairs, stored in the
// cgEdge shape with the callee field holding the caller. Interface
// dispatch edges are included when useIface is set.
func reverseEdges(order []*cgNode, useIface bool) map[*types.Func][]cgEdge {
	callers := make(map[*types.Func][]cgEdge)
	for _, n := range order {
		for _, e := range n.edges {
			callers[e.callee] = append(callers[e.callee], cgEdge{callee: n.fn, pos: e.pos})
		}
		if useIface {
			for _, e := range n.ifaceEdges {
				callers[e.callee] = append(callers[e.callee], cgEdge{callee: n.fn, pos: e.pos})
			}
		}
	}
	return callers
}

// collectEdges fills one node's outgoing edges and intrinsic source by
// walking its body. Every identifier resolving to a function is
// considered: module functions become edges, known nondeterministic
// stdlib functions become the intrinsic source. A map-range whose
// iteration order escapes (same sink analysis as map-order-leak) is
// also an intrinsic source, but only for functions outside the
// map-order scope — in-scope leaks are map-order-leak's own,
// directly positioned findings.
func collectEdges(n *cgNode, modPaths map[string]bool, opts *Options) {
	info := n.pkg.Info
	ast.Inspect(n.decl, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.Ident:
			fn, ok := useOf(info, nd).(*types.Func)
			if !ok || fn == n.fn || fn.Pkg() == nil {
				return true
			}
			if modPaths[fn.Pkg().Path()] {
				n.edges = append(n.edges, cgEdge{callee: fn, pos: nd.Pos()})
				return true
			}
			if n.intrinsic == nil {
				if desc := nondetSource(fn); desc != "" {
					pos := n.pkg.Fset.Position(nd.Pos())
					n.intrinsic = &taintFact{source: desc, srcPos: pos, hopPos: pos}
				}
			}
		case *ast.RangeStmt:
			if n.intrinsic != nil || opts.MapOrder.Match(n.pkg.Path) {
				return true
			}
			if !isMap(info, nd.X) {
				return true
			}
			if sink := findOrderSink(info, n.decl, nd); sink != "" {
				pos := n.pkg.Fset.Position(nd.For)
				n.intrinsic = &taintFact{
					source: "map iteration order (" + sink + ")",
					srcPos: pos,
					hopPos: pos,
				}
			}
		}
		return true
	})
}

// nondetSource reports whether fn is a nondeterminism source outside
// the module, returning a short description or "". The source set
// mirrors the syntactic v1 rules — wall clock, global math/rand — and
// adds the process environment, which no v1 rule covers.
func nondetSource(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "" // methods (e.g. on a seeded *rand.Rand) are fine
	}
	path := fn.Pkg().Path()
	switch path {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + " (wall clock)"
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return path + "." + fn.Name() + " (global generator)"
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return "os." + fn.Name() + " (process environment)"
		}
	}
	return ""
}

// propagateTaint runs a breadth-first backward closure from the
// intrinsically tainted nodes over reversed edges. Node and edge
// ordering is source order, so the witness chain chosen for each
// function is deterministic (shortest, ties broken by position).
func propagateTaint(order []*cgNode, nodes map[*types.Func]*cgNode) map[*types.Func]*taintFact {
	taint := make(map[*types.Func]*taintFact)

	// Reverse edges: callee -> callers, in deterministic order. The
	// determinism taint deliberately excludes interface-dispatch
	// edges; see cgNode.ifaceEdges.
	callers := reverseEdges(order, false)

	var queue []*types.Func
	for _, n := range order {
		if n.intrinsic != nil {
			taint[n.fn] = n.intrinsic
			queue = append(queue, n.fn)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fact := taint[cur]
		for _, caller := range callers[cur] {
			if _, seen := taint[caller.callee]; seen {
				continue
			}
			n := nodes[caller.callee]
			taint[caller.callee] = &taintFact{
				source: fact.source,
				srcPos: fact.srcPos,
				next:   cur,
				hopPos: n.pkg.Fset.Position(caller.pos),
			}
			queue = append(queue, caller.callee)
		}
	}
	return taint
}

// chain renders the witness path from fn (exclusive of the flagged
// call site) to the source as a compact arrow string plus one
// positioned note per hop.
func (f *Facts) chain(fn *types.Func) (arrows string, notes []string) {
	var parts []string
	cur := fn
	for cur != nil {
		fact := f.taint[cur]
		if fact == nil {
			break
		}
		parts = append(parts, funcDisplayName(cur))
		if fact.next == nil {
			notes = append(notes, funcDisplayName(cur)+" touches "+fact.source+" at "+fact.srcPos.String())
			parts = append(parts, fact.source)
			break
		}
		notes = append(notes, funcDisplayName(cur)+" calls "+funcDisplayName(fact.next)+" at "+fact.hopPos.String())
		cur = fact.next
	}
	return joinArrows(parts), notes
}

// chainFacts renders the witness chain of a fact map entry: one
// positioned "calls" line per hop and a terminal line using verb
// ("blocks in", "returns the error of", ...).
func chainFacts(m map[*types.Func]*taintFact, fn *types.Func, verb string) []string {
	var notes []string
	cur := fn
	for cur != nil {
		fact := m[cur]
		if fact == nil {
			break
		}
		if fact.next == nil {
			notes = append(notes, funcDisplayName(cur)+" "+verb+" "+fact.source+" at "+fact.srcPos.String())
			break
		}
		notes = append(notes, funcDisplayName(cur)+" calls "+funcDisplayName(fact.next)+" at "+fact.hopPos.String())
		cur = fact.next
	}
	return notes
}

func joinArrows(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " -> "
		}
		out += p
	}
	return out
}

// funcDisplayName renders pkg.Func or pkg.(Recv).Method for
// diagnostics.
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// sortedFuncDecls returns the file's function declarations in source
// order (parsing already yields them ordered; this is a stable copy
// used by rules that iterate more than once).
func sortedFuncDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
