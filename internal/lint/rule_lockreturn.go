package lint

import (
	"go/ast"
	"go/token"
)

// LockEarlyReturn flags the manual Lock ... Unlock pattern when the
// span between the pair contains a return statement: every exit path
// between the calls either leaks the lock or forces a duplicated
// Unlock before each return, both of which defer mu.Unlock() fixes in
// one line. Manual unlocks left unmatched (a second Unlock on a
// different exit path, after the first already closed the pair) are
// flagged for the same reason: branch-dependent unlocking is exactly
// the shape that rots into a missed path.
var LockEarlyReturn = &Analyzer{
	Name: "lock-early-return",
	Doc: "flag manual Lock/Unlock pairs with a return between them, and " +
		"manual Unlocks on secondary exit paths — prefer defer mu.Unlock()",
	Run: func(pass *Pass) {
		if !pass.Opts.LockChecked.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			for _, scope := range funcScopes(f) {
				checkEarlyReturns(pass, scope)
			}
		}
	},
}

func checkEarlyReturns(pass *Pass, scope funcScope) {
	events := collectLockEvents(pass.Info, scope.body)
	if len(events) == 0 {
		return
	}

	// Return positions within this scope, in source order.
	var returns []token.Pos
	inspectScope(scope.body, func(n ast.Node) {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
	})

	// Pair manual locks with manual unlocks, LIFO per mutex path. A
	// deferred Unlock legitimately closes any span, so it consumes the
	// open lock without complaint.
	open := make(map[string][]lockEvent)
	for _, ev := range events {
		switch ev.op {
		case "Lock", "RLock":
			if !ev.deferred {
				open[ev.path] = append(open[ev.path], ev)
			}
		case "Unlock", "RUnlock":
			stack := open[ev.path]
			if len(stack) == 0 {
				if !ev.deferred {
					pass.Reportf(ev.pos,
						"manual %s.%s on a secondary exit path of %s; unlock once with defer instead",
						ev.path, ev.op, scope.name)
				}
				continue
			}
			l := stack[len(stack)-1]
			open[ev.path] = stack[:len(stack)-1]
			if ev.deferred {
				continue
			}
			for _, rp := range returns {
				if rp > l.end && rp < ev.pos {
					pass.Reportf(l.pos,
						"%s.%s is followed by a return before its %s in %s — the lock leaks on that path; use defer %s.%s",
						l.path, l.op, ev.op, scope.name, l.path, unlockFor(l.op))
					break
				}
			}
		}
	}
}

func unlockFor(lockOp string) string {
	if lockOp == "RLock" {
		return "RUnlock()"
	}
	return "Unlock()"
}
