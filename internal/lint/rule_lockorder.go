package lint

import (
	"fmt"
	"strings"
)

// LockOrder reports cycles in the module-wide lock-acquisition-order
// graph as potential deadlocks. The graph gains an edge A -> B
// whenever some function acquires mutex B while holding mutex A —
// either directly in one scope, or because a call made under A leads
// (transitively, interface dispatch included) to a function that
// acquires B. Two code paths that take the same pair of mutexes in
// opposite orders therefore form a cycle, even when the two
// acquisitions live in different functions, files or packages — the
// interprocedural case the v2 per-scope rules cannot see. Each cycle
// is reported once, anchored at its first in-scope witness, with one
// witness chain per edge so both (all) conflicting paths are shown.
var LockOrder = &Analyzer{
	Name: "lock-order",
	Doc: "build the global lock-acquisition-order graph over the callgraph " +
		"and report any cycle (two paths taking the same mutexes in opposite " +
		"orders) as a potential deadlock with full witness chains",
	needsFacts: true,
	Run: func(pass *Pass) {
		scope := pass.Opts.LockOrder
		for _, cyc := range pass.Facts.lockCycles {
			// Anchor each cycle at its first edge witnessed by an
			// in-scope function, and report it only from that function's
			// package so a multi-package cycle appears exactly once.
			rep := -1
			for i, e := range cyc.edges {
				if e.fn.Pkg() != nil && scope.Match(e.fn.Pkg().Path()) {
					rep = i
					break
				}
			}
			if rep < 0 || cyc.edges[rep].fn.Pkg() != pass.Pkg {
				continue
			}
			names := make([]string, 0, len(cyc.keys)+1)
			for _, k := range cyc.keys {
				names = append(names, pass.Facts.lockGraph.names[k])
			}
			names = append(names, names[0])
			var notes []string
			for _, e := range cyc.edges {
				notes = append(notes, lockEdgeNotes(pass.Facts, e)...)
			}
			pass.ReportfNotes(cyc.edges[rep].pos, notes,
				"lock ordering cycle %s — potential deadlock across these call paths",
				strings.Join(names, " -> "))
		}
	},
}

// lockEdgeNotes renders one order-graph edge's witness: the direct
// acquisition, or the call plus the callee's transitive chain down to
// the lock.
func lockEdgeNotes(f *Facts, e *lockEdge) []string {
	pos := f.fset.Position(e.pos).String()
	from, to := f.lockGraph.names[e.from], f.lockGraph.names[e.to]
	if e.via == nil {
		return []string{fmt.Sprintf("%s acquires %s at %s while holding %s",
			funcDisplayName(e.fn), to, pos, from)}
	}
	notes := []string{fmt.Sprintf("%s calls %s at %s while holding %s",
		funcDisplayName(e.fn), funcDisplayName(e.via), pos, from)}
	return append(notes, f.acquireNotes(e.via, e.to)...)
}
