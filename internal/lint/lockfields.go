package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// This file holds the shared machinery of the lock-discipline rule
// family (scoped to strip/ via Options.LockChecked):
//
//   - inference of which struct fields are guarded by which mutex,
//   - extraction of Lock/Unlock events from a function body, and
//   - the derived "held" intervals an access must fall into.
//
// A field is considered guarded when it sits in the same contiguous
// declaration run as a sync.Mutex/sync.RWMutex field (no blank line
// in between — the dominant Go idiom "mu guards the fields below"),
// or when its doc or trailing comment says "guarded by <mu>"
// explicitly. A blank line or a freshly documented group ends the
// mu-adjacent zone, which is exactly how strip.DB separates its
// mutex-guarded registry from its scheduler-owned state.
//
// Two conventions keep the rules usable:
//
//   - functions whose name ends in "Locked" are exempt from the
//     guarded-field access check: the suffix declares "caller holds
//     the lock", and the call sites are themselves checked.
//   - function literals are analyzed as their own scope; a literal
//     launched by `go` is the lock-goroutine-capture rule's business
//     and is skipped by the plain access rule.

// guardedField records the mutex protecting one struct field.
type guardedField struct {
	mu         string // mutex field name, e.g. "mu"
	structName string
	explicit   bool // came from a "guarded by" comment, not adjacency
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// inferGuardedFields maps field objects of structs declared in this
// package to the mutex guarding them.
func inferGuardedFields(pass *Pass) map[*types.Var]*guardedField {
	out := make(map[*types.Var]*guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			inferStructGuards(pass, ts.Name.Name, st, out)
			return true
		})
	}
	return out
}

func inferStructGuards(pass *Pass, structName string, st *ast.StructType, out map[*types.Var]*guardedField) {
	zoneMu := ""        // active mu-adjacent zone, "" when closed
	lastEnd := -1 << 30 // line the previous field ended on
	for _, field := range st.Fields.List {
		start := pass.Fset.Position(field.Pos()).Line
		if field.Doc != nil {
			start = pass.Fset.Position(field.Doc.Pos()).Line
		}
		end := pass.Fset.Position(field.End()).Line

		if muName, ok := mutexFieldName(pass, field); ok {
			zoneMu = muName
			lastEnd = end
			continue
		}

		gapped := start != lastEnd+1
		lastEnd = end
		guard := ""
		explicit := false
		if m := guardedByRe.FindStringSubmatch(fieldCommentText(field)); m != nil {
			guard = m[1]
			explicit = true
		} else if zoneMu != "" && !gapped {
			guard = zoneMu
		} else {
			zoneMu = ""
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok {
				out[v] = &guardedField{mu: guard, structName: structName, explicit: explicit}
			}
		}
	}
}

// mutexFieldName reports whether the field is a named sync.Mutex or
// sync.RWMutex declaration, returning the field name.
func mutexFieldName(pass *Pass, field *ast.Field) (string, bool) {
	if len(field.Names) != 1 {
		return "", false
	}
	tv, ok := pass.Info.Types[field.Type]
	if !ok || !isSyncMutex(tv.Type) {
		return "", false
	}
	return field.Names[0].Name, true
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

func fieldCommentText(field *ast.Field) string {
	var b strings.Builder
	if field.Doc != nil {
		b.WriteString(field.Doc.Text())
	}
	if field.Comment != nil {
		b.WriteString(field.Comment.Text())
	}
	return b.String()
}

// lockEvent is one Lock/Unlock-family call (or deferral) on a mutex
// reached through a plain selector path like "db.mu" or "tx.db.mu".
type lockEvent struct {
	pos      token.Pos // the call's position
	end      token.Pos // just past the call
	path     string    // receiver path including the mutex field
	op       string    // Lock, RLock, Unlock, RUnlock
	deferred bool
	// muExpr is the receiver expression naming the mutex ("db.mu" in
	// db.mu.Lock()), kept so the lock-order machinery can resolve the
	// mutex's module-wide identity through the type checker.
	muExpr ast.Expr
}

// collectLockEvents gathers the lock events of one function scope
// (literal bodies excluded — they are scopes of their own), in source
// order.
func collectLockEvents(info *types.Info, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	inspectScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if ev, ok := lockCall(info, n.X, false); ok {
				events = append(events, ev)
			}
		case *ast.DeferStmt:
			if ev, ok := lockCall(info, n.Call, true); ok {
				events = append(events, ev)
			}
		}
	})
	return events
}

// lockCall decodes expr as a mutex Lock/Unlock-family call.
func lockCall(info *types.Info, expr ast.Expr, deferred bool) (lockEvent, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return lockEvent{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	path := selectorPath(sel.X)
	if path == "" {
		return lockEvent{}, false
	}
	return lockEvent{pos: call.Pos(), end: call.End(), path: path, op: op, deferred: deferred, muExpr: sel.X}, true
}

// selectorPath renders a pure identifier chain ("db.mu", "tx.db.mu")
// or "" for anything with calls, indexing or dereferences in it.
func selectorPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := selectorPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// heldSpan is one interval of the function body during which a mutex
// is held. write distinguishes Lock from RLock.
type heldSpan struct {
	from, to token.Pos
	write    bool
}

// heldIntervals turns a scope's lock events into per-mutex-path held
// intervals. Manual pairs are matched LIFO in source order; a
// deferred unlock — and, conservatively, a lock never unlocked in
// source order — holds to the end of the scope.
func heldIntervals(events []lockEvent, scopeEnd token.Pos) map[string][]heldSpan {
	out := make(map[string][]heldSpan)
	open := make(map[string][]lockEvent)
	for _, ev := range events {
		switch ev.op {
		case "Lock", "RLock":
			if ev.deferred {
				continue // defer mu.Lock() is nonsense; ignore
			}
			open[ev.path] = append(open[ev.path], ev)
		case "Unlock", "RUnlock":
			stack := open[ev.path]
			if len(stack) == 0 {
				continue // unmatched unlock; lock-early-return reports it
			}
			l := stack[len(stack)-1]
			open[ev.path] = stack[:len(stack)-1]
			to := ev.pos
			if ev.deferred {
				to = scopeEnd
			}
			out[ev.path] = append(out[ev.path], heldSpan{from: l.end, to: to, write: l.op == "Lock"})
		}
	}
	for path, stack := range open {
		for _, l := range stack {
			out[path] = append(out[path], heldSpan{from: l.end, to: scopeEnd, write: l.op == "Lock"})
		}
	}
	return out
}

// covered reports whether pos lies in a held interval of the mutex at
// path; needWrite requires the interval to be a write (Lock) hold.
func covered(spans map[string][]heldSpan, path string, pos token.Pos, needWrite bool) bool {
	for _, s := range spans[path] {
		if pos >= s.from && pos < s.to && (s.write || !needWrite) {
			return true
		}
	}
	return false
}

// guardedAccess is one mention of a guarded field in a scope.
type guardedAccess struct {
	sel   *ast.SelectorExpr
	field *types.Var
	guard *guardedField
	// base is the receiver path of the struct value ("db", "tx.db").
	base  string
	write bool
}

// collectGuardedAccesses finds guarded-field mentions in one scope
// (literal bodies excluded). Accesses through anything but a plain
// identifier chain are skipped: the lock path cannot be named, so the
// check would only guess.
func collectGuardedAccesses(info *types.Info, body ast.Node, guarded map[*types.Var]*guardedField) []guardedAccess {
	writes := make(map[*ast.SelectorExpr]bool)
	markWrites := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
			return true
		})
	}
	inspectScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrites(lhs)
			}
		case *ast.IncDecStmt:
			markWrites(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Taking the address lets the caller mutate through
				// the pointer; treat as a write conservatively.
				markWrites(n.X)
			}
		}
	})

	var out []guardedAccess
	inspectScope(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		v, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return
		}
		g, ok := guarded[v]
		if !ok {
			return
		}
		base := selectorPath(sel.X)
		if base == "" {
			return
		}
		out = append(out, guardedAccess{sel: sel, field: v, guard: g, base: base, write: writes[sel]})
	})
	return out
}

// lineKey identifies a guarded access by field and source line, so
// rules can collapse multiple mentions on one line (x = append(x, v))
// into a single finding.
func lineKey(pass *Pass, acc guardedAccess) string {
	return fmt.Sprintf("%s.%s:%d", acc.base, acc.field.Name(), pass.Fset.Position(acc.sel.Pos()).Line)
}

// inspectScope walks body, calling fn for every node but never
// descending into function literals: a literal is its own lock scope.
func inspectScope(body ast.Node, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// funcScopes yields every analysis scope in a file's functions: each
// FuncDecl body and each nested FuncLit body, with the launching
// context. goLit marks literals launched directly by a go statement.
type funcScope struct {
	name  string // enclosing declaration name, for messages
	body  *ast.BlockStmt
	goLit bool
}

func funcScopes(f *ast.File) []funcScope {
	var out []funcScope
	for _, fd := range sortedFuncDecls(f) {
		out = append(out, funcScope{name: fd.Name.Name, body: fd.Body})
		goLits := make(map[*ast.FuncLit]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					goLits[lit] = true
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcScope{name: fd.Name.Name, body: lit.Body, goLit: goLits[lit]})
			}
			return true
		})
	}
	return out
}
