package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point operands in the
// metric-computing packages. Exact float equality silently changes
// meaning under re-association, FMA contraction or a different
// compiler, which is precisely the kind of nondeterminism the paper's
// reported numbers must not depend on. The NaN self-test idiom
// (x != x) is exempt, as is comparison where both operands are
// untyped constants (folded at compile time).
var FloatEq = &Analyzer{
	Name: "float-eq",
	Doc: "flag == and != on floating-point operands in internal/metrics and " +
		"internal/analytic — compare with a tolerance or restructure; x != x " +
		"(the NaN idiom) is exempt",
	Run: func(pass *Pass) {
		if !pass.Opts.FloatStrict.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.Info, be.X) && !isFloat(pass.Info, be.Y) {
					return true
				}
				if bothConstant(pass, be) {
					return true
				}
				if isNaNIdiom(pass, be) {
					return true
				}
				pass.Reportf(be.OpPos,
					"floating-point %s comparison in metrics code; exact float equality is fragile — compare with a tolerance",
					be.Op)
				return true
			})
		}
	},
}

// bothConstant reports whether both operands are compile-time
// constants, in which case the comparison is folded and harmless.
func bothConstant(pass *Pass, be *ast.BinaryExpr) bool {
	xv, xok := pass.Info.Types[be.X]
	yv, yok := pass.Info.Types[be.Y]
	return xok && yok && xv.Value != nil && yv.Value != nil
}

// isNaNIdiom reports whether the comparison is x != x or x == x on
// the same simple variable — the portable NaN test.
func isNaNIdiom(pass *Pass, be *ast.BinaryExpr) bool {
	x := targetObject(pass.Info, be.X)
	y := targetObject(pass.Info, be.Y)
	return x != nil && x == y
}
