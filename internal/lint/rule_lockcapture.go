package lint

// LockGoroutineCapture flags function literals launched with `go` that
// touch a mutex-guarded field without taking the guarding lock inside
// the literal itself. A lock held by the launching function proves
// nothing: the goroutine runs after the launcher releases it, so every
// guarded access inside the literal needs its own Lock/Unlock span.
var LockGoroutineCapture = &Analyzer{
	Name: "lock-goroutine-capture",
	Doc: "flag go-launched function literals that access mutex-guarded " +
		"fields without locking inside the literal — the launcher's lock " +
		"does not outlive the launch",
	Run: func(pass *Pass) {
		if !pass.Opts.LockChecked.Match(pass.Pkg.Path()) {
			return
		}
		guarded := inferGuardedFields(pass)
		if len(guarded) == 0 {
			return
		}
		for _, f := range pass.Files {
			for _, scope := range funcScopes(f) {
				if !scope.goLit {
					continue
				}
				events := collectLockEvents(pass.Info, scope.body)
				spans := heldIntervals(events, scope.body.End())
				seen := make(map[string]bool)
				for _, acc := range collectGuardedAccesses(pass.Info, scope.body, guarded) {
					muPath := acc.base + "." + acc.guard.mu
					if covered(spans, muPath, acc.sel.Pos(), acc.write) {
						continue
					}
					key := lineKey(pass, acc)
					if seen[key] {
						continue
					}
					seen[key] = true
					pass.Reportf(acc.sel.Pos(),
						"goroutine launched in %s captures guarded field %s.%s without locking %s inside the literal",
						scope.name, acc.base, acc.field.Name(), muPath)
				}
			}
		}
	},
}
