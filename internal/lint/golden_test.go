package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted regexps from a // want "..." comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one // want entry pinned to a file and line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants scans every comment in the loaded packages for
//
//	// want "regexp" ["regexp" ...]
//
// expectations, in the style of golang.org/x/tools analysistest.
func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// The marker may trail other comment text (e.g. an
					// ignore directive whose own line expects an
					// unused-ignore finding).
					marker := strings.Index(c.Text, "// want ")
					if marker < 0 {
						continue
					}
					rest := c.Text[marker+len("// want "):]
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range wantRe.FindAllString(rest, -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

// runGolden loads testdata/<name>/... and checks the single rule's
// diagnostics against the fixtures' want comments, both directions.
// The unused-ignore meta-rule is only evaluated under the full rule
// set, so its golden run selects every rule and the fixture must be
// clean apart from the wanted findings.
func runGolden(t *testing.T, ruleName string) {
	t.Helper()
	names := []string{ruleName}
	if ruleName == UnusedIgnore.Name {
		names = nil
	}
	analyzers, err := Select(names)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", ruleName)
	pkgs, err := loader.Load(dir + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s", dir)
	}

	diags := RunAnalyzers(pkgs, analyzers, &Options{Modules: loader.All()})
	wants := collectWants(t, pkgs)

	for _, d := range diags {
		if d.Rule == "striplint" {
			t.Errorf("fixture has a malformed ignore directive: %s", d)
			continue
		}
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// matchWant consumes the first unmatched expectation on the
// diagnostic's line whose regexp matches its message.
func matchWant(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func TestNondeterministicTimeGolden(t *testing.T) { runGolden(t, "nondeterministic-time") }
func TestGlobalRandGolden(t *testing.T)           { runGolden(t, "global-rand") }
func TestMapOrderLeakGolden(t *testing.T)         { runGolden(t, "map-order-leak") }
func TestConcurrencyInSimGolden(t *testing.T)     { runGolden(t, "concurrency-in-sim") }
func TestFloatEqGolden(t *testing.T)              { runGolden(t, "float-eq") }
func TestNondeterminismTaintGolden(t *testing.T)  { runGolden(t, "nondeterminism-taint") }
func TestLockGuardedFieldGolden(t *testing.T)     { runGolden(t, "lock-guarded-field") }
func TestLockEarlyReturnGolden(t *testing.T)      { runGolden(t, "lock-early-return") }
func TestLockGoroutineCaptureGolden(t *testing.T) { runGolden(t, "lock-goroutine-capture") }
func TestUnusedIgnoreGolden(t *testing.T)         { runGolden(t, "unused-ignore") }
func TestLockOrderGolden(t *testing.T)            { runGolden(t, "lock-order") }
func TestBlockUnderLockGolden(t *testing.T)       { runGolden(t, "block-under-lock") }
func TestErrDropGolden(t *testing.T)              { runGolden(t, "err-drop") }
func TestAllocInHotpathGolden(t *testing.T)       { runGolden(t, "alloc-in-hotpath") }

// TestInterproceduralGain pins the reason nondeterminism-taint exists:
// over the taint fixture — where time.Now is reached from the
// deterministic package only through two levels of helpers in another
// package — every v1 syntactic determinism rule stays silent, and the
// v2 taint rule reports the call with its full witness chain.
func TestInterproceduralGain(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "nondeterminism-taint") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	// The claim under test is about the deterministic package: the
	// helper package holding the sources is out of the v1 rules' scope
	// by construction (global-rand would flag the helper's own body,
	// but nothing ties it to the simulator).
	var simPkgs []*Package
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, "internal/sim") {
			simPkgs = append(simPkgs, p)
		}
	}
	if len(simPkgs) != 1 {
		t.Fatalf("expected one deterministic fixture package, got %d", len(simPkgs))
	}
	pkgs = simPkgs
	opts := &Options{Modules: loader.All()}

	v1, err := Select([]string{"nondeterministic-time", "global-rand", "map-order-leak", "concurrency-in-sim"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAnalyzers(pkgs, v1, opts) {
		t.Errorf("v1 rule unexpectedly caught the laundered source: %s", d)
	}

	v2, err := Select([]string{"nondeterminism-taint"})
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkgs, v2, opts)
	found := false
	for _, d := range diags {
		if !strings.Contains(d.Message, "time.Now") {
			continue
		}
		found = true
		if len(d.Notes) < 2 {
			t.Errorf("taint diagnostic should carry one note per hop (>= 2 for two helper levels), got %d: %v", len(d.Notes), d.Notes)
		}
		for _, note := range d.Notes {
			if !strings.Contains(note, ".go:") {
				t.Errorf("chain note lacks a source position: %q", note)
			}
		}
	}
	if !found {
		t.Fatalf("nondeterminism-taint missed the two-level time.Now chain; got %v", diags)
	}
}

// TestLockOrderInterproceduralGain pins the reason lock-order exists:
// over the lock-order fixture — where each nested acquisition hides
// behind a function call, so no single scope ever holds both locks —
// every v2 per-scope lock rule stays silent, and lock-order reports
// the inversion with a witness chain naming both call paths.
func TestLockOrderInterproceduralGain(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "lock-order") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	opts := &Options{Modules: loader.All()}

	v2, err := Select([]string{"lock-guarded-field", "lock-early-return", "lock-goroutine-capture"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAnalyzers(pkgs, v2, opts) {
		t.Errorf("v2 lock rule unexpectedly caught the interprocedural inversion: %s", d)
	}

	v3, err := Select([]string{"lock-order"})
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkgs, v3, opts)
	found := false
	for _, d := range diags {
		if !strings.Contains(d.Message, "Registry.mu") {
			continue
		}
		found = true
		notes := strings.Join(d.Notes, "\n")
		for _, path := range []string{"Install", "Compact"} {
			if !strings.Contains(notes, path) {
				t.Errorf("cycle diagnostic should name the %s call path in its witness chain; notes:\n%s", path, notes)
			}
		}
		if !strings.Contains(notes, ".go:") {
			t.Errorf("witness chain lacks source positions:\n%s", notes)
		}
	}
	if !found {
		t.Fatalf("lock-order missed the two-mutex inversion; got %v", diags)
	}
}

// TestShippedTreeClean is the acceptance gate: the linter must exit
// clean on the repository itself, with every rule enabled. Any
// violation must be fixed or carry a reasoned //striplint:ignore.
func TestShippedTreeClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.Root() + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from the module; loader is missing the tree", len(pkgs))
	}
	for _, d := range RunAnalyzers(pkgs, Analyzers(), &Options{Modules: loader.All()}) {
		t.Errorf("shipped tree violation: %s", d)
	}
}

// TestRuleScoping checks that every deterministic package the rules
// guard actually exists in the tree, so a future rename cannot
// silently shrink the lint's coverage.
func TestRuleScoping(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.Root() + "/...")
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool)
	for _, p := range pkgs {
		have[p.Path] = true
	}
	for _, scope := range []Scope{DeterministicPkgs, TaintPkgs, MapOrderPkgs, FloatStrictPkgs, RandAllowedPkgs, LockCheckedPkgs, LockOrderPkgs, ErrCheckedPkgs, AllocReportPkgs} {
		for _, entry := range scope {
			found := false
			for path := range have {
				if scope.Match(path) && strings.HasSuffix(path, entry) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("scope entry %q matches no package in the tree; update the scope after the rename", entry)
			}
		}
	}
}

// TestHotRootsResolve pins every configured hot-path root spec to a
// real function in the tree: a rename that orphaned a spec would
// silently shrink alloc-in-hotpath's coverage, exactly the failure
// TestRuleScoping guards against for package scopes.
func TestHotRootsResolve(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(loader.Root() + "/..."); err != nil {
		t.Fatal(err)
	}
	facts := BuildFacts(loader.All(), (&Options{}).effective())
	resolved := make(map[string]bool)
	for _, hf := range facts.HotFunctions() {
		resolved[hf.Root] = true
	}
	for _, spec := range HotPathRoots {
		if !resolved[spec] {
			t.Errorf("hot-path root %q matches no function in the tree; update HotPathRoots after the rename", spec)
		}
	}
}

// TestDeterminismScopeCoversQueueAndSched pins the event-loop data
// structures inside the determinism rules' coverage: internal/uqueue
// (the update queue) and internal/sched (the scheduler) must stay in
// both the concurrency/time scope and the map-order scope. A scope
// edit that drops either package silently un-lints the exact code the
// paper's determinism claims rest on.
func TestDeterminismScopeCoversQueueAndSched(t *testing.T) {
	for _, pkg := range []string{"repro/internal/uqueue", "repro/internal/sched"} {
		if !DeterministicPkgs.Match(pkg) {
			t.Errorf("DeterministicPkgs no longer covers %s", pkg)
		}
		if !MapOrderPkgs.Match(pkg) {
			t.Errorf("MapOrderPkgs no longer covers %s", pkg)
		}
	}
}

// TestElectScopeCoverage pins the election package inside the lint
// coverage the failover invariants rest on: its wire frames must be
// byte-stable (map-order), its shell's mutexes follow the lock
// discipline, its I/O errors cannot be dropped silently, and nothing
// may launder wall-clock or global randomness into the seeded core
// (taint). It must NOT be in DeterministicPkgs wholesale — the shell
// legitimately runs goroutines and defaults its clock to time.Now.
func TestElectScopeCoverage(t *testing.T) {
	const pkg = "repro/strip/elect"
	for name, scope := range map[string]Scope{
		"TaintPkgs":       TaintPkgs,
		"MapOrderPkgs":    MapOrderPkgs,
		"LockCheckedPkgs": LockCheckedPkgs,
		"LockOrderPkgs":   LockOrderPkgs,
		"ErrCheckedPkgs":  ErrCheckedPkgs,
	} {
		if !scope.Match(pkg) {
			t.Errorf("%s no longer covers %s", name, pkg)
		}
	}
	if DeterministicPkgs.Match(pkg) {
		t.Errorf("strip/elect joined DeterministicPkgs; the concurrency and wall-clock rules would flag its network shell")
	}
}

// TestObsScopeCoverage pins the metrics package inside the lint
// coverage its contracts rest on: byte-identical exposition forbids
// map-order leaks, the registry's snapshot-under-lock discipline is
// lock-checked, a scrape-time inversion against db.mu must surface
// as a lock-order cycle, and Observe/Inc anchor alloc-in-hotpath
// reports because they run on every installed update. It must NOT be
// in DeterministicPkgs — the atomics that make Observe lock-free are
// exactly what that scope forbids.
func TestObsScopeCoverage(t *testing.T) {
	const pkg = "repro/strip/obs"
	for name, scope := range map[string]Scope{
		"MapOrderPkgs":    MapOrderPkgs,
		"LockCheckedPkgs": LockCheckedPkgs,
		"LockOrderPkgs":   LockOrderPkgs,
		"AllocReportPkgs": AllocReportPkgs,
	} {
		if !scope.Match(pkg) {
			t.Errorf("%s no longer covers %s", name, pkg)
		}
	}
	if DeterministicPkgs.Match(pkg) {
		t.Errorf("strip/obs joined DeterministicPkgs; the wall-clock and concurrency rules would flag its atomics")
	}
}
