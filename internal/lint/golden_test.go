package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted regexps from a // want "..." comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one // want entry pinned to a file and line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants scans every comment in the loaded packages for
//
//	// want "regexp" ["regexp" ...]
//
// expectations, in the style of golang.org/x/tools analysistest.
func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range wantRe.FindAllString(rest, -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

// runGolden loads testdata/<name>/... and checks the single rule's
// diagnostics against the fixtures' want comments, both directions.
func runGolden(t *testing.T, ruleName string) {
	t.Helper()
	analyzers, err := Select([]string{ruleName})
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", ruleName)
	pkgs, err := loader.Load(dir + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s", dir)
	}

	diags := RunAnalyzers(pkgs, analyzers)
	wants := collectWants(t, pkgs)

	for _, d := range diags {
		if d.Rule == "striplint" {
			t.Errorf("fixture has a malformed ignore directive: %s", d)
			continue
		}
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// matchWant consumes the first unmatched expectation on the
// diagnostic's line whose regexp matches its message.
func matchWant(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func TestNondeterministicTimeGolden(t *testing.T) { runGolden(t, "nondeterministic-time") }
func TestGlobalRandGolden(t *testing.T)           { runGolden(t, "global-rand") }
func TestMapOrderLeakGolden(t *testing.T)         { runGolden(t, "map-order-leak") }
func TestConcurrencyInSimGolden(t *testing.T)     { runGolden(t, "concurrency-in-sim") }
func TestFloatEqGolden(t *testing.T)              { runGolden(t, "float-eq") }

// TestShippedTreeClean is the acceptance gate: the linter must exit
// clean on the repository itself, with every rule enabled. Any
// violation must be fixed or carry a reasoned //striplint:ignore.
func TestShippedTreeClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.Root() + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from the module; loader is missing the tree", len(pkgs))
	}
	for _, d := range RunAnalyzers(pkgs, Analyzers()) {
		t.Errorf("shipped tree violation: %s", d)
	}
}

// TestRuleScoping checks that every deterministic package the rules
// guard actually exists in the tree, so a future rename cannot
// silently shrink the lint's coverage.
func TestRuleScoping(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.Root() + "/...")
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool)
	for _, p := range pkgs {
		have[p.Path] = true
	}
	for _, scope := range []Scope{DeterministicPkgs, FloatStrictPkgs, RandAllowedPkgs} {
		for _, entry := range scope {
			found := false
			for path := range have {
				if scope.Match(path) && strings.HasSuffix(path, entry) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("scope entry %q matches no package in the tree; update the scope after the rename", entry)
			}
		}
	}
}
