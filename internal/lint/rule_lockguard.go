package lint

import (
	"strings"
)

// LockGuardedField checks that fields inferred to be mutex-guarded
// (see lockfields.go) are only touched while the guarding mutex is
// held in the same function: writes require the write lock, reads are
// satisfied by either Lock or RLock. Functions named *Locked are
// exempt — the suffix is the repo's caller-holds-the-lock convention —
// and goroutine-launched function literals are left to the
// lock-goroutine-capture rule so each finding has one cause.
var LockGuardedField = &Analyzer{
	Name: "lock-guarded-field",
	Doc: "flag accesses to mutex-guarded struct fields (mu-adjacent or " +
		"'guarded by mu' comment) outside a Lock/Unlock span in the same " +
		"function; *Locked-suffixed functions are exempt",
	Run: func(pass *Pass) {
		if !pass.Opts.LockChecked.Match(pass.Pkg.Path()) {
			return
		}
		guarded := inferGuardedFields(pass)
		if len(guarded) == 0 {
			return
		}
		for _, f := range pass.Files {
			for _, scope := range funcScopes(f) {
				if scope.goLit || strings.HasSuffix(scope.name, "Locked") {
					continue
				}
				events := collectLockEvents(pass.Info, scope.body)
				spans := heldIntervals(events, scope.body.End())
				seen := make(map[string]bool)
				for _, acc := range collectGuardedAccesses(pass.Info, scope.body, guarded) {
					muPath := acc.base + "." + acc.guard.mu
					if covered(spans, muPath, acc.sel.Pos(), acc.write) {
						continue
					}
					// x = append(x, ...) mentions the field twice on one
					// line; one finding per field and line is enough.
					key := lineKey(pass, acc)
					if seen[key] {
						continue
					}
					seen[key] = true
					verb := "read"
					want := muPath + ".Lock or ." + "RLock"
					if acc.write {
						verb = "write to"
						want = muPath + ".Lock"
					}
					pass.Reportf(acc.sel.Pos(),
						"%s %s.%s (guarded by %s.%s) without holding %s in %s",
						verb, acc.base, acc.field.Name(), acc.guard.structName,
						acc.guard.mu, want, scope.name)
				}
			}
		}
	},
}
