package lint

import (
	"go/ast"
	"go/types"
)

// MapOrderLeak flags `range` over a map, inside the map-order scope
// (the deterministic simulator packages plus the strip durability
// code), whose loop body lets Go's randomized iteration order
// escape into an ordering-sensitive sink: appending to a slice,
// sending on a channel, or writing output. A loop that only collects
// the keys and sorts them afterwards (the standard deterministic
// iteration idiom) is exempt:
//
//	for k := range m {           // exempt: keys are sorted below
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//	for _, k := range keys { ... }
var MapOrderLeak = &Analyzer{
	Name: "map-order-leak",
	Doc: "flag range over a map whose body appends to a slice, sends on a " +
		"channel or writes output, unless the collected values are sorted " +
		"afterwards — map iteration order would leak into results",
	Run: func(pass *Pass) {
		if !pass.Opts.MapOrder.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFuncForMapLeaks(pass, fd)
			}
		}
	},
}

func checkFuncForMapLeaks(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMap(pass.Info, rs.X) {
			return true
		}
		if sink := findOrderSink(pass.Info, fd, rs); sink != "" {
			pass.Reportf(rs.For,
				"range over map%s %s; iteration order is randomized and leaks into results — sort the keys first",
				describeRangeExpr(rs.X), sink)
		}
		return true
	})
}

// describeRangeExpr renders a short suffix naming the ranged
// expression when it is simple enough to print.
func describeRangeExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return " (" + e.Name + ")"
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return " (" + x.Name + "." + e.Sel.Name + ")"
		}
	}
	return ""
}

// findOrderSink scans the loop body for an ordering-sensitive sink
// and returns a short description of the first one found, or "". It
// is shared with the call-graph builder, which uses it to mark
// out-of-scope helpers as intrinsic map-order taint sources.
func findOrderSink(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel"
			return false
		case *ast.AssignStmt:
			// x = append(x, ...) — exempt when x is sorted later in
			// the same function.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") {
					continue
				}
				if i < len(n.Lhs) && appendTargetSorted(info, fd, rs, n.Lhs[i]) {
					continue
				}
				sink = "appends to a slice"
				return false
			}
		case *ast.CallExpr:
			if name := outputCallName(info, n); name != "" {
				sink = "writes output via " + name
				return false
			}
		}
		return true
	})
	return sink
}

// appendTargetSorted reports whether the append target (an identifier
// or simple selector) is passed to a sort.* or slices.Sort* call
// somewhere in the function after the range loop.
func appendTargetSorted(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, lhs ast.Expr) bool {
	obj := targetObject(info, lhs)
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := pkgLevelFunc(info, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if targetObject(info, arg) == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// targetObject resolves an identifier (possibly wrapped in & or
// parens) to its object, or nil for anything more complex.
func targetObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.UnaryExpr:
		return targetObject(info, e.X)
	}
	return nil
}

// outputCallName recognizes calls that write externally visible
// output: anything in fmt, log or os printing families, and Write*
// methods (io.Writer and friends). It returns a short name for the
// diagnostic, or "".
func outputCallName(info *types.Info, call *ast.CallExpr) string {
	if fn := pkgLevelFunc(info, call.Fun); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	// Method calls named Write/WriteString/WriteByte/WriteRune/
	// WriteTo or Print/Printf/Println on any receiver.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return ""
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo",
		"Print", "Printf", "Println", "Encode":
		return "method " + fn.Name()
	}
	return ""
}
