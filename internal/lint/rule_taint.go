package lint

import (
	"go/ast"
	"go/types"
)

// NondeterminismTaint is the interprocedural complement to the
// syntactic determinism rules. The v1 rules only see a source touched
// in the flagged package itself, so a one-line helper wrapping
// time.Now in another package launders the nondeterminism past all of
// them. This rule builds a call graph over the whole module, closes
// "transitively reaches a nondeterminism source" backwards over it,
// and flags every mention, inside the deterministic scope, of a
// module function carrying taint — with the full witness chain in the
// diagnostic notes. Direct uses of wall-clock or global-rand sources
// are left to their dedicated v1 rules (one finding per cause);
// direct environment reads, which no v1 rule covers, are reported
// here.
var NondeterminismTaint = &Analyzer{
	Name: "nondeterminism-taint",
	Doc: "flag calls, inside the deterministic simulator packages and the " +
		"election core, to module functions that transitively reach time.Now, " +
		"global math/rand, os.Getenv or a map-order leak — the full call chain " +
		"is printed with the diagnostic",
	needsFacts: true,
	Run: func(pass *Pass) {
		if !pass.Opts.Taint.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			for _, fd := range sortedFuncDecls(f) {
				self, _ := pass.Info.Defs[fd.Name].(*types.Func)
				checkTaintedMentions(pass, fd, self)
			}
		}
	},
}

func checkTaintedMentions(pass *Pass, fd *ast.FuncDecl, self *types.Func) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := useOf(pass.Info, id).(*types.Func)
		if !ok || fn == self || fn.Pkg() == nil {
			return true
		}
		if fact := pass.Facts.Tainted(fn); fact != nil {
			arrows, notes := pass.Facts.chain(fn)
			pass.ReportfNotes(id.Pos(), notes,
				"%s transitively reaches %s inside deterministic package %s: %s",
				funcDisplayName(fn), fact.source, pass.Pkg.Path(), arrows)
			return true
		}
		// Direct source uses not covered by a v1 rule: the process
		// environment.
		if fn.Pkg().Path() == "os" {
			if desc := nondetSource(fn); desc != "" {
				pass.Reportf(id.Pos(),
					"%s read inside deterministic package %s; inject the value instead",
					desc, pass.Pkg.Path())
			}
		}
		return true
	})
}
