package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide lock-order facts behind the v3
// concurrency-protocol rules: a per-mutex identity scheme, the global
// lock-acquisition-order graph, its cycle detection, the transitive
// "acquires" closure over the call graph, and the cond -> locker map
// that lets block-under-lock exempt the cond.Wait-on-its-own-lock
// idiom.
//
// Mutex identity is per declaration site, not per instance: every
// strip.DB shares the identity "strip.DB.mu" for its mu field. That is
// the standard lock-annotation over-approximation — two *different* DB
// instances locked in opposite orders by different goroutines would be
// reported as a cycle even though a single-instance program cannot
// deadlock on them, and conversely a deadlock that depends on two
// instances of the same struct is modelled by the self-edge the
// analysis does report. Mutexes that cannot be named this way — local
// variables, mutexes reached through function calls or indexing,
// embedded sync.Mutex promoted methods — resolve to nothing and are
// invisible to the order graph; they are listed in DESIGN.md as the
// rule family's known false-negative classes.

// lockKey uniquely identifies a mutex declaration across the module:
// "pkgpath:Struct.field" for a struct field, "pkgpath:var" for a
// package-level mutex. The display name shown in diagnostics uses the
// package's short name instead of its import path.
type lockKey string

// resolveLockExpr maps the receiver expression of a Lock/Unlock/Wait
// call ("db.mu" in db.mu.Lock()) to its module-wide identity and
// display name, or ("", "") when the mutex cannot be attributed to a
// declaration site.
func resolveLockExpr(info *types.Info, e ast.Expr) (lockKey, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj, ok := useOf(info, e.Sel).(*types.Var)
		if !ok {
			return "", ""
		}
		if obj.IsField() {
			t := info.TypeOf(e.X)
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return "", ""
			}
			tn := named.Obj()
			key := lockKey(tn.Pkg().Path() + ":" + tn.Name() + "." + obj.Name())
			return key, tn.Pkg().Name() + "." + tn.Name() + "." + obj.Name()
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return lockKey(obj.Pkg().Path() + ":" + obj.Name()), obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		obj, ok := useOf(info, e).(*types.Var)
		if !ok || obj.Pkg() == nil {
			return "", ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return lockKey(obj.Pkg().Path() + ":" + obj.Name()), obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return "", ""
}

// heldEntry is one attributable mutex held at a program point.
type heldEntry struct {
	path  string
	key   lockKey
	write bool
}

// scopeLocks is the per-scope lock state shared by the v3 rules: the
// scope's held intervals plus the identity of each locked path.
type scopeLocks struct {
	spans map[string][]heldSpan
	keys  map[string]lockKey
	names map[lockKey]string
}

// analyzeScopeLocks computes the lock state of one function scope
// (literal bodies excluded, as everywhere in the lock rules).
func analyzeScopeLocks(info *types.Info, body *ast.BlockStmt) (*scopeLocks, []lockEvent) {
	events := collectLockEvents(info, body)
	s := &scopeLocks{
		spans: heldIntervals(events, body.End()),
		keys:  make(map[string]lockKey),
		names: make(map[lockKey]string),
	}
	for _, ev := range events {
		if _, ok := s.keys[ev.path]; ok {
			continue
		}
		key, name := resolveLockExpr(info, ev.muExpr)
		s.keys[ev.path] = key
		if key != "" {
			s.names[key] = name
		}
	}
	return s, events
}

// heldAt returns the attributable mutexes held at pos, sorted by key
// so downstream processing is deterministic.
func (s *scopeLocks) heldAt(pos token.Pos) []heldEntry {
	var out []heldEntry
	for path, spans := range s.spans {
		key := s.keys[path]
		if key == "" {
			continue
		}
		held, write := false, false
		for _, sp := range spans {
			if pos >= sp.from && pos < sp.to {
				held = true
				write = write || sp.write
			}
		}
		if held {
			out = append(out, heldEntry{path: path, key: key, write: write})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key != out[j].key {
			return out[i].key < out[j].key
		}
		return out[i].path < out[j].path
	})
	return out
}

// heldNames renders the held set for a diagnostic message.
func heldNames(held []heldEntry, names map[lockKey]string) string {
	parts := make([]string, 0, len(held))
	for _, h := range held {
		parts = append(parts, names[h.key])
	}
	return strings.Join(parts, ", ")
}

// lockEdge is one order-graph edge "from is held while to is
// acquired", with its witness: the function whose body proves it, the
// position of the acquisition (direct) or of the call that leads to it
// (via != nil).
type lockEdge struct {
	from, to lockKey
	fn       *types.Func
	pos      token.Pos
	via      *types.Func // callee whose transitive acquires include to
}

// lockGraph is the global acquisition-order graph.
type lockGraph struct {
	names map[lockKey]string
	edges map[[2]lockKey]*lockEdge // first witness wins
}

func (g *lockGraph) add(e *lockEdge) {
	k := [2]lockKey{e.from, e.to}
	if _, ok := g.edges[k]; !ok {
		g.edges[k] = e
	}
}

// sortedEdges returns the graph's edges ordered by (from, to).
func (g *lockGraph) sortedEdges() []*lockEdge {
	keys := make([][2]lockKey, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]*lockEdge, len(keys))
	for i, k := range keys {
		out[i] = g.edges[k]
	}
	return out
}

// lockCycle is one potential deadlock: a cycle in the order graph,
// keys in cycle order starting from the smallest, edges[i] witnessing
// keys[i] -> keys[(i+1)%len(keys)].
type lockCycle struct {
	keys  []lockKey
	edges []*lockEdge
}

// heldCall is a module-function mention at a program point where
// attributable locks are held; after the acquires closure is computed
// it expands into order-graph edges.
type heldCall struct {
	caller *types.Func
	callee *types.Func
	pos    token.Pos
	held   []heldEntry
}

// buildLockFacts fills the lock-order facts: the transitive acquires
// closure, the order graph, its cycles, and the cond -> locker map.
func buildLockFacts(f *Facts, modules []*Package, order []*cgNode, nodes map[*types.Func]*cgNode) {
	g := &lockGraph{names: make(map[lockKey]string), edges: make(map[[2]lockKey]*lockEdge)}
	direct := make(map[*types.Func]map[lockKey]*taintFact)
	directWrite := make(map[*types.Func]map[lockKey]bool)
	var calls []heldCall
	modPaths := make(map[string]bool, len(modules))
	for _, pkg := range modules {
		modPaths[pkg.Path] = true
	}

	for _, n := range order {
		if n.decl == nil {
			continue
		}
		info := n.pkg.Info
		for _, body := range declScopes(n.decl) {
			s, events := analyzeScopeLocks(info, body)
			for k, name := range s.names {
				g.names[k] = name
			}
			for _, ev := range events {
				if (ev.op != "Lock" && ev.op != "RLock") || ev.deferred {
					continue
				}
				key := s.keys[ev.path]
				if key == "" {
					continue
				}
				if direct[n.fn] == nil {
					direct[n.fn] = make(map[lockKey]*taintFact)
					directWrite[n.fn] = make(map[lockKey]bool)
				}
				if direct[n.fn][key] == nil {
					pos := n.pkg.Fset.Position(ev.pos)
					direct[n.fn][key] = &taintFact{source: s.names[key], srcPos: pos, hopPos: pos}
				}
				directWrite[n.fn][key] = directWrite[n.fn][key] || ev.op == "Lock"
				for _, h := range s.heldAt(ev.pos) {
					if h.key == key && !h.write && ev.op == "RLock" {
						continue // nested read locks of one mutex: not an ordering event
					}
					g.add(&lockEdge{from: h.key, to: key, fn: n.fn, pos: ev.pos})
				}
			}
			// Module-function mentions under a held lock expand into
			// transitive edges once the acquires closure is known.
			inspectScope(body, func(nd ast.Node) {
				id, ok := nd.(*ast.Ident)
				if !ok {
					return
				}
				fn, ok := useOf(info, id).(*types.Func)
				if !ok || fn == n.fn || fn.Pkg() == nil || !modPaths[fn.Pkg().Path()] {
					return
				}
				if held := s.heldAt(id.Pos()); len(held) > 0 {
					calls = append(calls, heldCall{caller: n.fn, callee: fn, pos: id.Pos(), held: held})
				}
			})
		}
	}

	f.acquires, f.acquiresWrite = propagateAcquires(direct, directWrite, order, nodes)
	for _, c := range calls {
		acq := f.acquires[c.callee]
		keys := make([]lockKey, 0, len(acq))
		for k := range acq {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			for _, h := range c.held {
				if h.key == k && !h.write && !f.acquiresWrite[c.callee][k] {
					continue // nested shared reads of one RWMutex, as in the direct case
				}
				g.add(&lockEdge{from: h.key, to: k, fn: c.caller, pos: c.pos, via: c.callee})
			}
		}
	}
	f.lockGraph = g
	f.lockCycles = findLockCycles(g)
	f.condLockers = collectCondLockers(modules)
}

// declScopes yields the analysis scopes of one declaration: the body
// itself plus every nested function literal (each literal is its own
// lock scope, exactly as in the v2 lock rules).
func declScopes(fd *ast.FuncDecl) []*ast.BlockStmt {
	out := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// propagateAcquires closes "transitively acquires lock k" backwards
// over the call graph (interface-dispatch edges included), one witness
// chain per (function, lock), plus a separate write-mode closure: a
// function write-acquires k when ANY of its paths to k ends in Lock
// rather than RLock (the witness chain may differ — write-ness is a
// property of the whole path set, not of the chosen witness).
func propagateAcquires(direct map[*types.Func]map[lockKey]*taintFact, directWrite map[*types.Func]map[lockKey]bool, order []*cgNode, nodes map[*types.Func]*cgNode) (map[*types.Func]map[lockKey]*taintFact, map[*types.Func]map[lockKey]bool) {
	callers := reverseEdges(order, true)
	acq := make(map[*types.Func]map[lockKey]*taintFact)
	writes := make(map[*types.Func]map[lockKey]bool)
	keySet := make(map[lockKey]bool)
	for _, n := range order {
		for k, fact := range direct[n.fn] {
			if acq[n.fn] == nil {
				acq[n.fn] = make(map[lockKey]*taintFact)
			}
			acq[n.fn][k] = fact
			keySet[k] = true
		}
	}
	keys := make([]lockKey, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, k := range keys {
		var queue []*types.Func
		for _, n := range order {
			if direct[n.fn] != nil && direct[n.fn][k] != nil {
				queue = append(queue, n.fn)
			}
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			fact := acq[cur][k]
			for _, caller := range callers[cur] {
				cfn := caller.callee // reversed edge: callee field holds the caller
				if acq[cfn] != nil && acq[cfn][k] != nil {
					continue
				}
				if acq[cfn] == nil {
					acq[cfn] = make(map[lockKey]*taintFact)
				}
				n := nodes[cfn]
				hop := fact.srcPos
				if n != nil {
					hop = n.pkg.Fset.Position(caller.pos)
				}
				acq[cfn][k] = &taintFact{source: fact.source, srcPos: fact.srcPos, next: cur, hopPos: hop}
				queue = append(queue, cfn)
			}
		}
		// Write-mode closure for k, seeded from direct Lock() calls.
		queue = queue[:0]
		for _, n := range order {
			if directWrite[n.fn] != nil && directWrite[n.fn][k] {
				queue = append(queue, n.fn)
				if writes[n.fn] == nil {
					writes[n.fn] = make(map[lockKey]bool)
				}
				writes[n.fn][k] = true
			}
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, caller := range callers[cur] {
				cfn := caller.callee
				if writes[cfn] != nil && writes[cfn][k] {
					continue
				}
				if writes[cfn] == nil {
					writes[cfn] = make(map[lockKey]bool)
				}
				writes[cfn][k] = true
				queue = append(queue, cfn)
			}
		}
	}
	return acq, writes
}

// findLockCycles enumerates the cycles of the order graph, one
// representative per distinct lock set, deterministically ordered.
func findLockCycles(g *lockGraph) []lockCycle {
	adj := make(map[lockKey][]lockKey)
	for _, e := range g.sortedEdges() {
		adj[e.from] = append(adj[e.from], e.to)
	}
	var cycles []lockCycle
	seen := make(map[string]bool)
	for _, e := range g.sortedEdges() {
		path := shortestLockPath(e.to, e.from, adj)
		if path == nil {
			continue
		}
		// keys: e.from, e.to, ... back to e.from (exclusive). path runs
		// from e.to (exclusive) to e.from (inclusive); dropping its last
		// element closes the cycle without repeating e.from. A self-loop
		// (from == to) is the single-node cycle.
		keys := []lockKey{e.from}
		if e.to != e.from {
			keys = append(append(keys, e.to), path[:len(path)-1]...)
		}
		rot := 0
		for i, k := range keys {
			if k < keys[rot] {
				rot = i
			}
		}
		keys = append(keys[rot:], keys[:rot]...)
		sig := make([]string, len(keys))
		for i, k := range keys {
			sig[i] = string(k)
		}
		s := strings.Join(sig, "|")
		if seen[s] {
			continue
		}
		seen[s] = true
		cyc := lockCycle{keys: keys}
		for i := range keys {
			cyc.edges = append(cyc.edges, g.edges[[2]lockKey{keys[i], keys[(i+1)%len(keys)]}])
		}
		cycles = append(cycles, cyc)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i].keys[0] < cycles[j].keys[0] })
	return cycles
}

// shortestLockPath returns a shortest from -> to node path (to
// inclusive, from exclusive) over adj, or nil. A self-loop query
// (from == to) returns the single-node path when the edge exists.
func shortestLockPath(from, to lockKey, adj map[lockKey][]lockKey) []lockKey {
	if from == to {
		return []lockKey{to}
	}
	prev := make(map[lockKey]lockKey)
	visited := map[lockKey]bool{from: true}
	queue := []lockKey{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if visited[next] {
				continue
			}
			visited[next] = true
			prev[next] = cur
			if next == to {
				var path []lockKey
				for n := to; n != from; n = prev[n] {
					path = append([]lockKey{n}, path...)
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// collectCondLockers maps every attributable *sync.Cond to the mutex
// it wraps, by scanning for sync.NewCond(&x.mu) in assignments and
// composite literals.
func collectCondLockers(modules []*Package) map[lockKey]lockKey {
	out := make(map[lockKey]lockKey)
	for _, pkg := range modules {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, rhs := range n.Rhs {
						mu, ok := newCondArg(info, rhs)
						if !ok {
							continue
						}
						condKey, _ := resolveLockExpr(info, n.Lhs[i])
						muKey, _ := resolveLockExpr(info, mu)
						if condKey != "" && muKey != "" {
							out[condKey] = muKey
						}
					}
				case *ast.CompositeLit:
					t := info.TypeOf(n)
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
					}
					named, ok := t.(*types.Named)
					if !ok || named.Obj().Pkg() == nil {
						return true
					}
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						mu, ok := newCondArg(info, kv.Value)
						if !ok {
							continue
						}
						muKey, _ := resolveLockExpr(info, mu)
						if muKey == "" {
							continue
						}
						tn := named.Obj()
						out[lockKey(tn.Pkg().Path()+":"+tn.Name()+"."+key.Name)] = muKey
					}
				}
				return true
			})
		}
	}
	return out
}

// newCondArg decodes sync.NewCond(&mu) and returns the mutex
// expression.
func newCondArg(info *types.Info, e ast.Expr) (ast.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	fn := pkgLevelFunc(info, call.Fun)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "NewCond" {
		return nil, false
	}
	if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X, true
	}
	return call.Args[0], true
}

// acquireNotes renders the witness chain from fn to its (transitive)
// acquisition of lock k, one positioned line per hop.
func (f *Facts) acquireNotes(fn *types.Func, k lockKey) []string {
	var notes []string
	cur := fn
	for cur != nil {
		var fact *taintFact
		if m := f.acquires[cur]; m != nil {
			fact = m[k]
		}
		if fact == nil {
			break
		}
		if fact.next == nil {
			notes = append(notes, funcDisplayName(cur)+" locks "+fact.source+" at "+fact.srcPos.String())
			break
		}
		notes = append(notes, funcDisplayName(cur)+" calls "+funcDisplayName(fact.next)+" at "+fact.hopPos.String())
		cur = fact.next
	}
	return notes
}

// AcquiredLocks returns the display names of every lock fn
// transitively acquires, sorted. Exposed for tests.
func (f *Facts) AcquiredLocks(fn *types.Func) []string {
	if f == nil || f.acquires[fn] == nil {
		return nil
	}
	var out []string
	for k := range f.acquires[fn] {
		out = append(out, f.lockGraph.names[k])
	}
	sort.Strings(out)
	return out
}

// LockCycleCount reports how many distinct cycles the order graph
// holds. Exposed for tests.
func (f *Facts) LockCycleCount() int {
	if f == nil {
		return 0
	}
	return len(f.lockCycles)
}

// LockGraphDOT renders the acquisition-order graph in DOT form for
// the striplint -lockgraph mode. Nodes are mutex identities, edges
// carry their witness function and position; cyclic edges are drawn
// red and bold so a deadlock candidate stands out in the rendering.
func (f *Facts) LockGraphDOT() string {
	cyclic := make(map[[2]lockKey]bool)
	for _, c := range f.lockCycles {
		for _, e := range c.edges {
			cyclic[[2]lockKey{e.from, e.to}] = true
		}
	}
	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("\trankdir=LR;\n\tnode [shape=box, fontname=\"monospace\"];\n")
	nodes := make([]lockKey, 0, len(f.lockGraph.names))
	for k := range f.lockGraph.names {
		nodes = append(nodes, k)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, k := range nodes {
		fmt.Fprintf(&b, "\t%q;\n", f.lockGraph.names[k])
	}
	for _, e := range f.lockGraph.sortedEdges() {
		label := funcDisplayName(e.fn)
		if e.via != nil {
			label += " -> " + funcDisplayName(e.via)
		}
		// \n is DOT's own line-break escape, so quote by hand rather
		// than with %q (which would escape the backslash).
		attrs := fmt.Sprintf("label=\"%s\\n%s\"", label, f.fset.Position(e.pos))
		if cyclic[[2]lockKey{e.from, e.to}] {
			attrs += ", color=red, penwidth=2"
		}
		fmt.Fprintf(&b, "\t%q -> %q [%s];\n", f.lockGraph.names[e.from], f.lockGraph.names[e.to], attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
