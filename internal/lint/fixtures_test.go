package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtureInventory enforces the golden-fixture contract: every
// registered rule has a testdata/<rule>/ directory holding at least
// one positive fixture (a .go file with // want expectations) and at
// least one negative fixture (a .go file with none), so both firing
// and staying silent are pinned. `make lint-fixtures` runs this test
// by itself.
func TestFixtureInventory(t *testing.T) {
	for _, a := range Analyzers() {
		dir := filepath.Join("testdata", a.Name)
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			t.Errorf("rule %s has no fixture directory %s", a.Name, dir)
			continue
		}
		positives, negatives := 0, 0
		err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if strings.Contains(string(src), "// want ") {
				positives++
			} else {
				negatives++
			}
			return nil
		})
		if err != nil {
			t.Errorf("rule %s: walking %s: %v", a.Name, dir, err)
			continue
		}
		if positives == 0 {
			t.Errorf("rule %s has no positive fixture (a .go file with // want expectations) under %s", a.Name, dir)
		}
		if negatives == 0 {
			t.Errorf("rule %s has no negative fixture (a .go file with no // want expectations) under %s", a.Name, dir)
		}
	}
}
