package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ignorePrefix is the directive marker. The full syntax is
//
//	//striplint:ignore <rule>[,<rule>...] -- <reason>
//
// where <rule> is a rule name or "all", the " -- " separator is
// mandatory, and <reason> is mandatory free text. The explicit
// separator keeps the reason unambiguous (a reason can start with any
// word without being mistaken for a rule name) and makes a
// reason-less directive a syntax error rather than a silent guess.
// The directive suppresses matching diagnostics on its own line and,
// when it stands alone on its line, on the next line as well.
const ignorePrefix = "striplint:ignore"

// ignoreDirective is one parsed, well-formed directive.
type ignoreDirective struct {
	file  string
	line  int // line the comment appears on
	col   int
	text  string // the rule list as written, for diagnostics
	rules map[string]bool
	all   bool
	used  bool // suppressed at least one diagnostic this run
}

func (d *ignoreDirective) matches(rule string) bool {
	return d.all || d.rules[rule]
}

// ignoreIndex answers "is this diagnostic suppressed?" for one
// package.
type ignoreIndex struct {
	// byLine maps file -> line -> directives covering that line.
	byLine map[string]map[int][]*ignoreDirective
	// all lists every well-formed directive once, in scan order.
	all []*ignoreDirective
}

func (idx *ignoreIndex) suppresses(d Diagnostic) bool {
	hit := false
	for _, dir := range idx.byLine[d.File][d.Line] {
		if dir.matches(d.Rule) {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// unused reports every well-formed directive that suppressed nothing,
// so stale suppressions cannot rot in the tree after the code they
// excused is fixed or deleted. The diagnostics carry the pseudo-rule
// unused-ignore and — like malformed-directive reports — cannot
// themselves be suppressed.
func (idx *ignoreIndex) unused() []Diagnostic {
	var out []Diagnostic
	for _, dir := range idx.all {
		if dir.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     token.Position{Filename: dir.file, Line: dir.line, Column: dir.col},
			File:    dir.file,
			Line:    dir.line,
			Column:  dir.col,
			Rule:    UnusedIgnore.Name,
			Message: fmt.Sprintf("//striplint:ignore %s suppresses nothing — remove the stale directive", dir.text),
		})
	}
	return out
}

// buildIgnoreIndex scans every comment in the package for ignore
// directives. Malformed directives (no rule list, or a missing
// reason) are returned as diagnostics under the pseudo-rule
// "striplint"; they suppress nothing and cannot themselves be
// suppressed, so a bare //striplint:ignore can never silently widen.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (*ignoreIndex, []Diagnostic) {
	idx := &ignoreIndex{byLine: make(map[string]map[int][]*ignoreDirective)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				dir, errMsg := parseIgnore(text)
				if errMsg != "" {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						File:    pos.Filename,
						Line:    pos.Line,
						Column:  pos.Column,
						Rule:    "striplint",
						Message: errMsg,
					})
					continue
				}
				dir.file = pos.Filename
				dir.line = pos.Line
				dir.col = pos.Column
				idx.all = append(idx.all, dir)
				lines := idx.byLine[dir.file]
				if lines == nil {
					lines = make(map[int][]*ignoreDirective)
					idx.byLine[dir.file] = lines
				}
				lines[dir.line] = append(lines[dir.line], dir)
				// A directive alone on its line covers the next line,
				// so it can sit above the offending statement.
				if standsAlone(fset, f, c) {
					lines[dir.line+1] = append(lines[dir.line+1], dir)
				}
			}
		}
	}
	return idx, bad
}

// directiveText strips the comment marker and reports whether the
// comment is an ignore directive. Directives must use the //-form
// with no space before "striplint:", matching go directive style.
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	rest, ok := strings.CutPrefix(body, ignorePrefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //striplint:ignoreXXX is not ours
	}
	return strings.TrimSpace(rest), true
}

// parseIgnore splits "rule1,rule2 -- reason..." and validates it
// against the registered rule names. It returns a directive or a
// non-empty error message.
func parseIgnore(text string) (*ignoreDirective, string) {
	if text == "" {
		return nil, "malformed //striplint:ignore: missing rule name and reason"
	}
	// The rule list is a single comma-joined field, then the mandatory
	// "--" separator, then free-text reason.
	ruleText, reason, found := strings.Cut(text, "--")
	if !found || strings.TrimSpace(reason) == "" {
		return nil, "malformed //striplint:ignore: missing reason (syntax: //striplint:ignore <rule> -- <reason>)"
	}
	fields := strings.Fields(ruleText)
	if len(fields) == 0 {
		return nil, "malformed //striplint:ignore: missing rule name (syntax: //striplint:ignore <rule> -- <reason>)"
	}
	if len(fields) > 1 {
		return nil, "malformed //striplint:ignore: rule list must be one comma-joined token (syntax: //striplint:ignore <rule>[,<rule>...] -- <reason>)"
	}
	dir := &ignoreDirective{rules: make(map[string]bool), text: fields[0]}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, r := range strings.Split(fields[0], ",") {
		if r == "all" {
			dir.all = true
			continue
		}
		if !known[r] {
			return nil, "malformed //striplint:ignore: unknown rule " + strconv.Quote(r)
		}
		dir.rules[r] = true
	}
	return dir, ""
}

// standsAlone reports whether the comment is the only token on its
// line (i.e. a leading comment rather than a trailing one).
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cLine := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		// Any non-comment node ending on the comment's line means the
		// comment trails code.
		if _, isFile := n.(*ast.File); !isFile {
			if fset.Position(n.End()).Line == cLine && n.End() <= c.Pos() {
				alone = false
				return false
			}
		}
		return true
	})
	return alone
}
