// Package lint is a repo-specific static-analysis framework
// ("striplint") that mechanically enforces the two invariants the
// compiler cannot see:
//
//   - the discrete-event simulation (internal/sim, internal/sched,
//     internal/uqueue, internal/workload, internal/stats,
//     internal/metrics, internal/analytic) must be bit-for-bit
//     deterministic under a fixed seed, and
//   - the live strip/ runtime must keep its sync.RWMutex locking
//     discipline race-free.
//
// The framework is stdlib-only (go/ast, go/parser, go/types): it
// loads and type-checks packages itself (see Loader), runs a set of
// named Analyzers over each package, and reports positioned
// Diagnostics. Individual diagnostics can be suppressed with a
//
//	//striplint:ignore <rule>[,<rule>...] -- <reason>
//
// comment on the offending line or on the line directly above it; the
// " -- " separator and the reason are mandatory and a malformed
// directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one positioned finding from one rule.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Column  int            `json:"column"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
	// Notes are secondary lines elaborating the finding — for the
	// interprocedural rules, one positioned line per hop of the call
	// chain from the flagged function to the nondeterminism source.
	Notes []string `json:"notes,omitempty"`
}

// String formats the diagnostic in the conventional
// file:line:col: rule: message shape used by go vet.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Rule, d.Message)
}

// Pass carries everything one Analyzer needs to inspect one
// type-checked package, mirroring golang.org/x/tools/go/analysis
// without the dependency.
type Pass struct {
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's facts about every expression and
	// identifier in Files.
	Info *types.Info
	// Opts are the effective analysis options (scopes); never nil.
	Opts *Options
	// Facts are the module-wide call-graph facts; non-nil only while
	// an interprocedural rule runs.
	Facts *Facts

	rule  string
	diags *[]Diagnostic
}

// Reportf records a diagnostic for the running rule at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportfNotes records a diagnostic carrying secondary note lines
// (e.g. a call chain) for the running rule at pos.
func (p *Pass) ReportfNotes(pos token.Pos, notes []string, format string, args ...any) {
	p.report(pos, notes, format, args...)
}

func (p *Pass) report(pos token.Pos, notes []string, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
		Notes:   notes,
	})
}

// Analyzer is one named, documented rule.
type Analyzer struct {
	// Name identifies the rule on the command line, in output and in
	// //striplint:ignore directives. Names are kebab-case.
	Name string
	// Doc is a one-paragraph description of what the rule enforces
	// and why.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
	// needsFacts marks interprocedural rules: RunAnalyzers builds the
	// module call graph and taint facts before running them.
	needsFacts bool
	// meta marks rules that do not inspect packages themselves but are
	// evaluated by RunAnalyzers over the results of the others
	// (unused-ignore).
	meta bool
}

// Analyzers returns every registered rule in stable (alphabetical)
// order.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		ConcurrencyInSim,
		FloatEq,
		GlobalRand,
		MapOrderLeak,
		NondeterministicTime,
		NondeterminismTaint,
		LockGuardedField,
		LockEarlyReturn,
		LockGoroutineCapture,
		LockOrder,
		BlockUnderLock,
		ErrDrop,
		AllocInHotpath,
		UnusedIgnore,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Select resolves a list of rule names to analyzers. An empty list
// selects every rule; an unknown name is an error.
func Select(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", n)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// Options configures an analysis run. The zero value (and a nil
// *Options) selects the package-level default scopes below.
type Options struct {
	// Deterministic overrides DeterministicPkgs, the scope of the
	// syntactic determinism rules (nondeterministic-time,
	// concurrency-in-sim).
	Deterministic Scope
	// Taint overrides TaintPkgs, the scope of nondeterminism-taint
	// (the interprocedural closure is always module-wide; this scope
	// selects where tainted mentions are reported).
	Taint Scope
	// MapOrder overrides MapOrderPkgs, the scope of map-order-leak.
	MapOrder Scope
	// FloatStrict overrides FloatStrictPkgs (float-eq).
	FloatStrict Scope
	// RandAllowed overrides RandAllowedPkgs (global-rand exemption).
	RandAllowed Scope
	// LockChecked overrides LockCheckedPkgs, the scope of the lock
	// discipline rules.
	LockChecked Scope
	// LockOrder overrides LockOrderPkgs, the scope whose lock-order
	// cycles are reported (the graph itself is always module-wide).
	LockOrder Scope
	// ErrChecked overrides ErrCheckedPkgs, the scope of err-drop.
	ErrChecked Scope
	// AllocReport overrides AllocReportPkgs, the scope whose functions
	// may anchor an alloc-in-hotpath report (the closure itself is
	// always module-wide).
	AllocReport Scope
	// HotRoots overrides HotPathRoots, the hot-path root set closed
	// over the call graph. Entries are "<pkg-suffix>.<Func>" or
	// "<pkg-suffix>.<Type>.<Method>".
	HotRoots []string
	// Modules is the full set of loaded module packages over which the
	// interprocedural call graph is built (typically Loader.All()).
	// When nil the analyzed packages alone are used, so taint chains
	// passing through unlisted dependency packages become invisible.
	Modules []*Package
}

// effective returns a fully populated copy of o (which may be nil).
func (o *Options) effective() *Options {
	var e Options
	if o != nil {
		e = *o
	}
	if e.Deterministic == nil {
		e.Deterministic = DeterministicPkgs
	}
	if e.Taint == nil {
		e.Taint = TaintPkgs
	}
	if e.MapOrder == nil {
		e.MapOrder = MapOrderPkgs
	}
	if e.FloatStrict == nil {
		e.FloatStrict = FloatStrictPkgs
	}
	if e.RandAllowed == nil {
		e.RandAllowed = RandAllowedPkgs
	}
	if e.LockChecked == nil {
		e.LockChecked = LockCheckedPkgs
	}
	if e.LockOrder == nil {
		e.LockOrder = LockOrderPkgs
	}
	if e.ErrChecked == nil {
		e.ErrChecked = ErrCheckedPkgs
	}
	if e.AllocReport == nil {
		e.AllocReport = AllocReportPkgs
	}
	if e.HotRoots == nil {
		e.HotRoots = HotPathRoots
	}
	return &e
}

// RunAnalyzers runs every analyzer over every package, applies
// //striplint:ignore suppression, and returns the surviving
// diagnostics sorted by position. Malformed ignore directives are
// reported under the pseudo-rule "striplint" and cannot themselves be
// suppressed. When the full rule set runs, well-formed directives that
// suppressed nothing are reported under unused-ignore. opts may be
// nil for the default scopes.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, opts *Options) []Diagnostic {
	eff := opts.effective()
	var facts *Facts
	for _, a := range analyzers {
		if a.needsFacts {
			modules := eff.Modules
			if modules == nil {
				modules = pkgs
			}
			facts = BuildFacts(modules, eff)
			break
		}
	}
	// unused-ignore is only meaningful when every rule had the chance
	// to use each directive; with a subset selected, directives for
	// unselected rules would be reported as rotten spuriously.
	checkUnused := false
	if selected := make(map[string]bool, len(analyzers)); true {
		for _, a := range analyzers {
			selected[a.Name] = true
		}
		checkUnused = selected[UnusedIgnore.Name]
		for _, a := range Analyzers() {
			if !selected[a.Name] {
				checkUnused = false
			}
		}
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.meta {
				continue
			}
			pass := &Pass{
				Fset:  pkg.Fset,
				Files: pkg.Files,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
				Opts:  eff,
				Facts: facts,
				rule:  a.Name,
				diags: &raw,
			}
			a.Run(pass)
		}
		idx, bad := buildIgnoreIndex(pkg.Fset, pkg.Files)
		for _, d := range raw {
			if !idx.suppresses(d) {
				out = append(out, d)
			}
		}
		out = append(out, bad...)
		if checkUnused {
			out = append(out, idx.unused()...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// Scope is a set of package-import-path suffixes, e.g.
// "internal/sim". A path is in scope when it equals an entry or ends
// with "/"+entry, so both "repro/internal/sim" and test fixtures
// living under a deeper prefix match.
type Scope []string

// Match reports whether the import path is in scope.
func (s Scope) Match(path string) bool {
	for _, e := range s {
		if path == e || hasPathSuffix(path, e) {
			return true
		}
	}
	return false
}

func hasPathSuffix(path, suffix string) bool {
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// DeterministicPkgs lists the packages that make up the
// discrete-event simulator. Everything here must be bit-for-bit
// reproducible under a fixed seed: no wall-clock reads, no global
// randomness, no goroutines, no iteration-order leaks.
var DeterministicPkgs = Scope{
	"internal/sim",
	"internal/sched",
	"internal/uqueue",
	"internal/workload",
	"internal/stats",
	"internal/metrics",
	"internal/analytic",
}

// MapOrderPkgs is the scope of map-order-leak: the deterministic
// simulator packages plus the strip durability code. WAL segments,
// checkpoint snapshots and replication frames must be byte-identical
// for equal states (the crash-point torture tests and the replica
// convergence checks compare them bit for bit), so map iteration
// order must never leak into a record sequence there either.
var MapOrderPkgs = append(append(Scope{}, DeterministicPkgs...),
	"strip",
	"strip/fault",
	"strip/repl",
	"strip/elect",
	// The metrics registry promises byte-identical exposition for
	// identical histories; a map-range over its series index would
	// break that the first time two series swapped places.
	"strip/obs",
)

// TaintPkgs is the scope of nondeterminism-taint: the deterministic
// simulator packages plus the election core. strip/elect cannot join
// DeterministicPkgs wholesale — its network shell legitimately runs
// goroutines and defaults its clock to time.Now — but the protocol
// core is clock-injected and PCG-seeded so that elections replay
// identically under test, and a helper that transitively launders
// wall-clock or global randomness into it would silently break the
// seeded-determinism regression.
var TaintPkgs = append(append(Scope{}, DeterministicPkgs...),
	"strip/elect",
)

// FloatStrictPkgs lists the packages whose float arithmetic feeds the
// paper's reported metrics, where == / != on floats silently destroys
// reproducibility across compilers and optimization levels.
var FloatStrictPkgs = Scope{
	"internal/metrics",
	"internal/analytic",
}

// RandAllowedPkgs lists the packages allowed to touch math/rand
// package-level state: only the seeded PCG wrapper in internal/stats.
var RandAllowedPkgs = Scope{
	"internal/stats",
}

// LockCheckedPkgs lists the packages swept by the lock-discipline
// rules: the live strip/ runtime, whose sync.RWMutex protocol around
// the registry, view entries, general store and WAL must hold under
// heavy concurrent traffic, and the replication subsystem, whose
// frame ring and connection registries are hit by one goroutine per
// replica.
var LockCheckedPkgs = Scope{
	"strip",
	"strip/repl",
	"strip/elect",
	// The metrics registry is read by the scrape endpoint while every
	// pipeline stage observes into it; its snapshot-under-lock,
	// format-outside-lock split is load-bearing.
	"strip/obs",
}

// LockOrderPkgs lists the packages whose functions may anchor a
// lock-order cycle report. It adds strip/fault to the lock-discipline
// scope: the fault-injecting filesystem holds its own mutexes
// (MemFS.mu, memFile.mu) under the strip WAL path, so an inversion
// involving them is exactly the cross-package deadlock the upcoming
// shard refactor must not introduce.
var LockOrderPkgs = Scope{
	"strip",
	"strip/repl",
	"strip/fault",
	"strip/elect",
	// Gauge funcs registered into the obs registry take db.mu under
	// the registry's own mutex during a scrape; an inversion against
	// an Observe call from under db.mu would deadlock the scheduler.
	"strip/obs",
}

// ErrCheckedPkgs lists the packages swept by err-drop: everywhere a
// durability error (WAL append/sync/rotate, fault.FS operations) can
// surface and must not be silently discarded (the PR-5 degraded-mode
// contract).
var ErrCheckedPkgs = Scope{
	"strip",
	"strip/repl",
	"strip/fault",
	"strip/elect",
}

// AllocReportPkgs lists the packages whose functions may anchor an
// alloc-in-hotpath report: the live strip/ runtime, its replication
// subsystem, and the update queue the scheduler drains per update. The
// hot-path closure is module-wide (a chain may pass through any
// package), but findings in simulator-only code would be noise — the
// simulator allocates freely and is measured for fidelity, not
// nanoseconds.
var AllocReportPkgs = Scope{
	"strip",
	"strip/repl",
	"internal/uqueue",
	// Histogram.Observe and Counter.Inc run on every update the
	// pipeline installs; an allocation there taxes every install.
	"strip/obs",
}

// HotPathRoots is the default hot-path root set: the per-update entry
// points whose transitive cost bounds the soft real-time budget —
// feed ingest and replicated apply, the scheduler's enqueue/install
// path, WAL batch encoding, replication frame encode/decode and
// fan-out, the update-queue operations the scheduler performs per
// update, and the simulator's dispatch loop (kept hot so the sim
// mirrors production costs). Specs resolve via TestHotRootsResolve.
var HotPathRoots = []string{
	"strip.DB.ApplyUpdate",
	"strip.DB.ApplyReplicated",
	"strip.DB.ApplyReplicatedBatch",
	"strip.DB.enqueue",
	"strip.DB.installNext",
	"strip.DB.refreshOnDemand",
	"strip.DB.install",
	"strip.walWriter.appendBatch",
	"strip/repl.EncodeEvent",
	"strip/repl.Decode",
	"strip/repl.WriteFrame",
	"strip/repl.ReadFrame",
	"strip/repl.Primary.publish",
	"strip/repl.Replica.apply",
	"internal/uqueue.GenQueue.Insert",
	"internal/uqueue.GenQueue.TakeFor",
	"internal/uqueue.CoalescedQueue.Insert",
	"internal/sched.Controller.dispatch",
}
