package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocInHotpath flags allocation sites inside functions reachable
// from the configured hot-path roots (Options.HotRoots closed over the
// module call graph, interface dispatch included). The paper's soft
// real-time budget is a per-update cost bound, so every heap
// allocation on the ingest/install/replication path is either a bug, a
// missing preallocation, or a deliberate trade-off that deserves a
// reasoned //striplint:ignore.
//
// Classified sites: address-taken composite literals, non-empty slice
// and map literals, make of maps/channels/capacity-less slices, append
// growth into destinations with unknown capacity, string<->[]byte and
// []rune conversions, fmt.* formatting calls, concrete values boxed
// into interface parameters, and variable-capturing closures.
//
// Deliberately exempt (the documented false-negative classes):
// three-argument make (an explicit preallocation — and it seeds its
// destination, so later appends to it are trusted), appends whose
// destination is a parameter, selector, index or slice expression (the
// scratch-reuse idiom buf = append(buf[:0], ...)), fmt.Errorf and the
// errors package (error-exit construction is off the fast path by
// definition), non-capturing function literals and immediately-invoked
// ones, value struct literals, pointer-shaped values passed to
// interface parameters (no boxing allocation), and boxing at return
// statements rather than call arguments.
var AllocInHotpath = &Analyzer{
	Name: "alloc-in-hotpath",
	Doc: "flag heap allocation sites (composite literals, capacity-less make " +
		"and append, string/[]byte conversions, fmt calls, interface boxing, " +
		"capturing closures) in functions reachable from the configured " +
		"hot-path roots, with the witness chain back to the root",
	needsFacts: true,
	Run: func(pass *Pass) {
		if !pass.Opts.AllocReport.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			for _, fd := range sortedFuncDecls(f) {
				self, _ := pass.Info.Defs[fd.Name].(*types.Func)
				if self == nil || pass.Facts.Hot(self) == nil {
					continue
				}
				checkHotAllocs(pass, fd, self)
			}
		}
	},
}

// checkHotAllocs classifies every allocation site in one hot
// function's body, nested literals included (any mention is a
// potential call, so a literal's body runs on the hot path too).
func checkHotAllocs(pass *Pass, fd *ast.FuncDecl, self *types.Func) {
	info := pass.Info
	fact := pass.Facts.Hot(self)
	notes := pass.Facts.hotChain(self)
	report := func(pos token.Pos, desc string) {
		pass.ReportfNotes(pos, notes, "%s on the hot path from %s", desc, fact.source)
	}
	seeded, exemptDests := seededIdents(info, fd)
	iife := iifeLits(fd)
	covered := make(map[ast.Node]bool) // literals already reported via their &

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				covered[cl] = true
				report(n.Pos(), "address-taken composite literal "+litTypeName(info, cl)+" escapes to the heap")
			}
		case *ast.CompositeLit:
			if covered[n] {
				return true
			}
			switch typeOf(info, n).(type) {
			case *types.Slice:
				if len(n.Elts) > 0 {
					report(n.Pos(), "slice literal allocates its backing array")
				}
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.FuncLit:
			if !iife[n] && capturesVars(info, fd, n) {
				report(n.Pos(), "capturing closure allocates its environment")
			}
		case *ast.CallExpr:
			checkHotCall(pass, report, n, seeded, exemptDests)
		}
		return true
	})
}

// checkHotCall classifies one call expression: a builtin make/append,
// a type conversion, a fmt formatting call, or interface boxing of a
// concrete argument.
func checkHotCall(pass *Pass, report func(token.Pos, string), call *ast.CallExpr, seeded, exemptDests map[types.Object]bool) {
	info := pass.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			if desc := convAllocDesc(info, tv.Type, call.Args[0]); desc != "" {
				report(call.Pos(), desc)
			}
		}
		return
	}
	if isBuiltin(info, call, "make") {
		switch typeOf(info, call).(type) {
		case *types.Map:
			report(call.Pos(), "make allocates a map")
		case *types.Chan:
			report(call.Pos(), "make allocates a channel")
		case *types.Slice:
			if len(call.Args) < 3 {
				report(call.Pos(), "make allocates a slice without an explicit capacity")
			}
		}
		return
	}
	if isBuiltin(info, call, "append") && len(call.Args) > 0 {
		switch dst := ast.Unparen(call.Args[0]).(type) {
		case *ast.CompositeLit:
			report(call.Pos(), "append to a fresh literal allocates")
		case *ast.Ident:
			obj := useOf(info, dst)
			if obj != nil && !seeded[obj] && !exemptDests[obj] {
				report(call.Pos(), "append to "+dst.Name+" may grow with unknown capacity")
			}
		}
		return
	}

	fn, _ := useOf(info, calleeIdent(call)).(*types.Func)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			if fn.Name() != "Errorf" {
				report(call.Pos(), "call to fmt."+fn.Name()+" allocates formatting buffers and boxes its arguments")
			}
			return
		case "errors":
			return // error-exit construction, off the fast path
		}
	}

	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if pos, desc := boxedArg(info, call, sig); desc != "" {
		report(pos, desc)
	}
}

// boxedArg finds the first call argument whose concrete,
// non-pointer-shaped value converts to an interface parameter — the
// conversion that heap-allocates the boxed copy. One finding per call:
// fixing the call fixes every argument.
func boxedArg(info *types.Info, call *ast.CallExpr, sig *types.Signature) (token.Pos, string) {
	params := sig.Params()
	if params.Len() == 0 {
		return token.NoPos, ""
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				return token.NoPos, "" // slice passed through, no per-element boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv := info.Types[arg]
		if atv.Type == nil || atv.IsNil() {
			continue
		}
		if _, argIface := atv.Type.Underlying().(*types.Interface); argIface {
			continue
		}
		if pointerShaped(atv.Type) {
			continue
		}
		return arg.Pos(), "passing " + atv.Type.String() + " as an interface argument boxes the value"
	}
	return token.NoPos, ""
}

// convAllocDesc classifies an explicit conversion that allocates:
// string<->[]byte, string<->[]rune, and concrete-to-interface.
func convAllocDesc(info *types.Info, target types.Type, arg ast.Expr) string {
	atv := info.Types[arg]
	if atv.Type == nil || atv.IsNil() {
		return ""
	}
	tu, au := target.Underlying(), atv.Type.Underlying()
	switch {
	case isStringType(tu) && isSliceOf(au, types.Byte):
		return "string conversion copies the byte slice"
	case isSliceOf(tu, types.Byte) && isStringType(au):
		return "byte-slice conversion copies the string"
	case isStringType(tu) && isSliceOf(au, types.Rune):
		return "string conversion copies the rune slice"
	case isSliceOf(tu, types.Rune) && isStringType(au):
		return "rune-slice conversion allocates"
	}
	if _, isIface := tu.(*types.Interface); isIface {
		if _, argIface := au.(*types.Interface); !argIface && !pointerShaped(atv.Type) {
			return "conversion to an interface boxes the value"
		}
	}
	return ""
}

// pointerShaped reports whether values of t fit an interface's data
// word without a heap copy: pointers, channels, maps, funcs and unsafe
// pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(u types.Type) bool {
	b, ok := u.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSliceOf(u types.Type, kind types.BasicKind) bool {
	sl, ok := u.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// typeOf returns the expression's underlying type, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// litTypeName renders a composite literal's type for diagnostics.
func litTypeName(info *types.Info, cl *ast.CompositeLit) string {
	if cl.Type != nil {
		return types.ExprString(cl.Type)
	}
	if tv, ok := info.Types[cl]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "literal"
}

// seededIdents scans one declaration for append destinations the rule
// trusts: function parameters and receivers (capacity is the caller's
// contract, and growth mutates caller-visible state deliberately), and
// locals assigned from a three-argument make, a slice expression
// (buf[:0] reuse), or an append to an already-exempt destination.
func seededIdents(info *types.Info, fd *ast.FuncDecl) (seeded, exemptDests map[types.Object]bool) {
	seeded = make(map[types.Object]bool)
	exemptDests = make(map[types.Object]bool)
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					exemptDests[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || !seedExpr(info, n.Rhs[i]) {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					seeded[obj] = true
				} else if obj := useOf(info, id); obj != nil {
					seeded[obj] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, id := range n.Names {
				if seedExpr(info, n.Values[i]) {
					if obj := info.Defs[id]; obj != nil {
						seeded[obj] = true
					}
				}
			}
		}
		return true
	})
	return seeded, exemptDests
}

// seedExpr reports whether the right-hand side carries known capacity:
// a three-argument make, a slice expression, or an append whose own
// destination is exempt (selector/index/slice — the scratch idiom).
func seedExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		if isBuiltin(info, e, "make") {
			return len(e.Args) == 3
		}
		if isBuiltin(info, e, "append") && len(e.Args) > 0 {
			switch ast.Unparen(e.Args[0]).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
				return true
			}
		}
	}
	return false
}

// iifeLits collects immediately-invoked function literals: the call
// frame replaces the closure, so nothing escapes.
func iifeLits(fd *ast.FuncDecl) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			out[fl] = true
		}
		return true
	})
	return out
}

// capturesVars reports whether the literal references a variable
// declared in the enclosing function outside the literal itself — the
// capture that forces a heap-allocated environment.
func capturesVars(info *types.Info, fd *ast.FuncDecl, fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := useOf(info, id).(*types.Var)
		if !ok || v.IsField() || !v.Pos().IsValid() {
			return true
		}
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true // local to the literal
		}
		if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() {
			found = true
		}
		return true
	})
	return found
}
