package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestScopeMatch(t *testing.T) {
	s := Scope{"internal/sim", "internal/stats"}
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/sim", true},
		{"internal/sim", true},
		{"repro/internal/lint/testdata/x/internal/sim", true},
		{"repro/internal/simx", false},
		{"repro/xinternal/sim", false},
		{"repro/strip", false},
		{"repro/internal/stats", true},
	}
	for _, c := range cases {
		if got := s.Match(c.path); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 14 {
		t.Fatalf("Select(nil) returned %d rules, want 14", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("analyzers out of order: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
	one, err := Select([]string{"float-eq"})
	if err != nil || len(one) != 1 || one[0].Name != "float-eq" {
		t.Fatalf("Select(float-eq) = %v, %v", one, err)
	}
	if _, err := Select([]string{"no-such-rule"}); err == nil {
		t.Fatal("Select(no-such-rule) succeeded, want error")
	}
}

// buildIndex parses one source string and runs the suppression
// scanner over it; the ignore layer needs no type information.
func buildIndex(t *testing.T, src string) (*ignoreIndex, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return buildIgnoreIndex(fset, []*ast.File{f})
}

func TestIgnoreSameLineAndNextLine(t *testing.T) {
	idx, bad := buildIndex(t, `package p

func f() {
	_ = 1 //striplint:ignore float-eq -- trailing form covers its own line
	//striplint:ignore global-rand -- standalone form covers the next line
	_ = 2
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	cases := []struct {
		line int
		rule string
		want bool
	}{
		{4, "float-eq", true},
		{4, "global-rand", false},
		{5, "global-rand", true}, // the directive's own line
		{6, "global-rand", true}, // the line below a standalone directive
		{7, "global-rand", false},
		{6, "float-eq", false},
	}
	for _, c := range cases {
		d := Diagnostic{File: "fix.go", Line: c.line, Rule: c.rule}
		if got := idx.suppresses(d); got != c.want {
			t.Errorf("suppresses(line %d, %s) = %v, want %v", c.line, c.rule, got, c.want)
		}
	}
}

func TestIgnoreAllAndLists(t *testing.T) {
	idx, bad := buildIndex(t, `package p

func f() {
	_ = 1 //striplint:ignore all -- broad waiver with a reason
	_ = 2 //striplint:ignore float-eq,map-order-leak -- two rules, one reason
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	for _, rule := range []string{"float-eq", "global-rand", "concurrency-in-sim"} {
		if !idx.suppresses(Diagnostic{File: "fix.go", Line: 4, Rule: rule}) {
			t.Errorf("ignore all did not suppress %s", rule)
		}
	}
	if !idx.suppresses(Diagnostic{File: "fix.go", Line: 5, Rule: "map-order-leak"}) {
		t.Error("comma list did not suppress map-order-leak")
	}
	if idx.suppresses(Diagnostic{File: "fix.go", Line: 5, Rule: "global-rand"}) {
		t.Error("comma list suppressed a rule it does not name")
	}
}

func TestIgnoreMalformed(t *testing.T) {
	_, bad := buildIndex(t, `package p

//striplint:ignore
func a() {}

//striplint:ignore float-eq
func b() {}

//striplint:ignore not-a-rule -- because reasons
func c() {}

//striplint:ignore float-eq a reason in the pre-v3 syntax, no separator
func d() {}

//striplint:ignore -- a reason but no rule
func e() {}
`)
	if len(bad) != 5 {
		t.Fatalf("got %d malformed-directive diagnostics, want 5: %v", len(bad), bad)
	}
	wants := []string{"missing rule name", "missing reason", "unknown rule", "missing reason", "missing rule name"}
	for i, w := range wants {
		if bad[i].Rule != "striplint" {
			t.Errorf("diagnostic %d rule = %q, want striplint", i, bad[i].Rule)
		}
		if !strings.Contains(bad[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, bad[i].Message, w)
		}
	}
}

func TestIgnoreDoesNotMatchLookalikes(t *testing.T) {
	idx, bad := buildIndex(t, `package p

func f() {
	_ = 1 //striplint:ignoreXXX float-eq not a directive at all
	_ = 2 // striplint:ignore float-eq spaced marker is prose, not a directive
}
`)
	if len(bad) != 0 {
		t.Fatalf("lookalike comments reported as malformed: %v", bad)
	}
	for _, line := range []int{4, 5} {
		if idx.suppresses(Diagnostic{File: "fix.go", Line: line, Rule: "float-eq"}) {
			t.Errorf("lookalike comment on line %d suppressed a diagnostic", line)
		}
	}
}

func TestIgnoreBlockCommentIsNotADirective(t *testing.T) {
	idx, bad := buildIndex(t, `package p

/*striplint:ignore float-eq block comments are prose, not directives*/
func a() {}

func f() {
	_ = 1 /* striplint:ignore float-eq same inline */
}
`)
	if len(bad) != 0 {
		t.Fatalf("block comments reported as malformed: %v", bad)
	}
	for _, line := range []int{3, 4, 7} {
		if idx.suppresses(Diagnostic{File: "fix.go", Line: line, Rule: "float-eq"}) {
			t.Errorf("block comment on/above line %d suppressed a diagnostic", line)
		}
	}
}

func TestIgnoreWrongLineDoesNotSuppress(t *testing.T) {
	idx, bad := buildIndex(t, `package p

func f() {
	//striplint:ignore float-eq -- directive two lines above the finding

	_ = 1
	_ = 2 //striplint:ignore float-eq -- trailing directive on the previous line
	_ = 3
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	// The standalone form covers its own line and the next — not the
	// line after a blank, and a trailing directive never covers the
	// following line.
	for _, line := range []int{6, 8} {
		if idx.suppresses(Diagnostic{File: "fix.go", Line: line, Rule: "float-eq"}) {
			t.Errorf("directive on the wrong line suppressed line %d", line)
		}
	}
}

func TestUnusedIgnoreReporting(t *testing.T) {
	idx, bad := buildIndex(t, `package p

func f() {
	_ = 1 //striplint:ignore float-eq,global-rand -- one used, whole directive counts
	_ = 2 //striplint:ignore map-order-leak -- never matches anything
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	if !idx.suppresses(Diagnostic{File: "fix.go", Line: 4, Rule: "float-eq"}) {
		t.Fatal("directive failed to suppress its own rule")
	}
	unused := idx.unused()
	if len(unused) != 1 {
		t.Fatalf("got %d unused-ignore diagnostics, want 1: %v", len(unused), unused)
	}
	d := unused[0]
	if d.Rule != UnusedIgnore.Name || d.Line != 5 {
		t.Errorf("unused diagnostic = %s, want unused-ignore at line 5", d)
	}
	if !strings.Contains(d.Message, "map-order-leak") || !strings.Contains(d.Message, "suppresses nothing") {
		t.Errorf("unused diagnostic message = %q, want the rule list and 'suppresses nothing'", d.Message)
	}
	// A second run that uses the directive clears it.
	if !idx.suppresses(Diagnostic{File: "fix.go", Line: 5, Rule: "map-order-leak"}) {
		t.Fatal("directive failed to suppress map-order-leak")
	}
	if left := idx.unused(); len(left) != 0 {
		t.Errorf("directive still reported unused after suppressing: %v", left)
	}
}

func TestUnusedIgnoreMultiRuleDirective(t *testing.T) {
	// One directive naming several rules is used as soon as any of
	// them fires; it is reported only when none do.
	idx, bad := buildIndex(t, `package p

func f() {
	_ = 1 //striplint:ignore float-eq,map-order-leak,global-rand -- broad but unused
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	if got := idx.unused(); len(got) != 1 {
		t.Fatalf("got %d unused diagnostics, want 1: %v", len(got), got)
	}
	idx.suppresses(Diagnostic{File: "fix.go", Line: 4, Rule: "global-rand"})
	if got := idx.unused(); len(got) != 0 {
		t.Errorf("multi-rule directive still unused after one rule fired: %v", got)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 3, Column: 9, Rule: "float-eq", Message: "m"}
	if got, want := d.String(), "a/b.go:3:9: float-eq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLoaderRejectsOutsideModule(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.importPathFor("/"); err == nil {
		t.Fatal("importPathFor(/) succeeded, want error")
	}
}

func TestLoaderModulePath(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if loader.module != "repro" {
		t.Fatalf("module path = %q, want repro", loader.module)
	}
	path, err := loader.importPathFor(loader.root + "/internal/sim")
	if err != nil || path != "repro/internal/sim" {
		t.Fatalf("importPathFor(internal/sim) = %q, %v", path, err)
	}
}
