package lint

import (
	"go/ast"
	"go/token"
)

// ConcurrencyInSim forbids concurrency constructs inside the
// single-threaded discrete-event packages. The simulator's
// determinism contract is that every event handler runs to completion
// on one goroutine in (time, seq) order; a `go` statement, a channel
// operation or a `select` reintroduces scheduler nondeterminism that
// no seed controls. Live-runtime concurrency belongs in strip/, which
// this rule does not sweep.
var ConcurrencyInSim = &Analyzer{
	Name: "concurrency-in-sim",
	Doc: "forbid go statements, channel operations and select inside the " +
		"single-threaded simulator packages — event handlers must run to " +
		"completion deterministically",
	Run: func(pass *Pass) {
		if !pass.Opts.Deterministic.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(), "go statement spawns a goroutine inside deterministic package %s", pass.Pkg.Path())
				case *ast.SelectStmt:
					pass.Reportf(n.Pos(), "select is scheduler-nondeterministic inside deterministic package %s", pass.Pkg.Path())
				case *ast.SendStmt:
					pass.Reportf(n.Pos(), "channel send inside deterministic package %s", pass.Pkg.Path())
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						pass.Reportf(n.Pos(), "channel receive inside deterministic package %s", pass.Pkg.Path())
					}
				case *ast.RangeStmt:
					if isChan(pass.Info, n.X) {
						pass.Reportf(n.For, "range over channel inside deterministic package %s", pass.Pkg.Path())
					}
				case *ast.CallExpr:
					if isBuiltin(pass.Info, n, "make") && len(n.Args) > 0 && isChan(pass.Info, n.Args[0]) {
						pass.Reportf(n.Pos(), "make(chan ...) inside deterministic package %s", pass.Pkg.Path())
					}
					if isBuiltin(pass.Info, n, "close") && len(n.Args) == 1 && isChan(pass.Info, n.Args[0]) {
						pass.Reportf(n.Pos(), "close of channel inside deterministic package %s", pass.Pkg.Path())
					}
				}
				return true
			})
		}
	},
}
