package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path, derived from the module path and the
	// directory's position under the module root.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is shared by every package a Loader produces.
	Fset *token.FileSet
	// Files are the non-test syntax trees, sorted by file name.
	Files []*ast.File
	// Types and Info are the type-checker's output.
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of the enclosing module using
// only the standard library. Module-local imports are resolved by
// mapping import paths onto directories under the module root;
// standard-library imports are type-checked from $GOROOT source by
// go/importer's source importer. Loaded packages are cached, so a
// package reached both as an analysis target and as a dependency is
// parsed once.
type Loader struct {
	fset    *token.FileSet
	root    string // module root (directory containing go.mod)
	module  string // module path from go.mod
	std     types.Importer
	cache   map[string]*Package // by import path
	loading map[string]bool     // import cycle detection
}

// NewLoader locates the module enclosing dir (walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// All returns every module package the loader has parsed so far —
// analysis targets and their module-local dependencies — sorted by
// import path. Interprocedural rules build their call graph over this
// set so taint can be traced through helper packages that were loaded
// only as dependencies.
func (l *Loader) All() []*Package {
	paths := make([]string, 0, len(l.cache))
	for p := range l.cache {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, len(paths))
	for i, p := range paths {
		pkgs[i] = l.cache[p]
	}
	return pkgs
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load expands the patterns and returns the matching packages, sorted
// by import path. A pattern is a directory, optionally ending in
// "/..." to include every package in its subtree (directories named
// testdata or starting with "." or "_" are skipped during expansion,
// matching the go tool). Directories without non-test .go files are
// skipped silently under "/..." but are an error when named directly.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			if !hasGoFiles(abs) {
				return nil, fmt.Errorf("lint: no Go files in %s", abs)
			}
			dirs[abs] = true
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPathFor maps an absolute directory under the module root to
// its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.root)
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer so the type-checker can resolve
// the dependencies of a package being loaded.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module)))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package in dir, memoized by import
// path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	parsed, err := parser.ParseDir(l.fset, dir, func(fi fs.FileInfo) bool {
		name := fi.Name()
		return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var files []*ast.File
	var pkgName string
	for name, p := range parsed {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		if pkgName != "" {
			return nil, fmt.Errorf("lint: multiple packages (%s, %s) in %s", pkgName, name, dir)
		}
		pkgName = name
		names := make([]string, 0, len(p.Files))
		for fname := range p.Files {
			names = append(names, fname)
		}
		sort.Strings(names)
		for _, fname := range names {
			files = append(files, p.Files[fname])
		}
	}
	if pkgName == "" {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
