package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop enforces the PR-5 degraded-mode contract: an error produced
// on a durability path (WAL append/sync/rotate, any fault.FS / fault.File
// operation) must never be discarded. Dropping one silently converts a
// durability failure into data loss the caller believes was persisted.
// The rule is taint-style: the intrinsic sources are the mutating
// error-returning methods of the fault filesystem interfaces (and their
// module implementations), the "produces a durability error" property
// propagates backwards to every error-returning caller over the call
// graph, and each call site of a producer is checked for the four drop
// shapes — bare call statement, defer/go statement, assignment to _,
// and overwrite of the error variable before any read.
var ErrDrop = &Analyzer{
	Name: "err-drop",
	Doc: "flag durability-path errors (WAL append/sync/rotate, fault.FS ops) " +
		"that are discarded: bare call, _ =, defer/go, or overwritten before " +
		"being checked",
	needsFacts: true,
	Run: func(pass *Pass) {
		if !pass.Opts.ErrChecked.Match(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			for _, fd := range sortedFuncDecls(f) {
				checkErrDrops(pass, fd)
			}
		}
	},
}

// durabilityOpNames are the mutating operations of the fault
// filesystem interfaces. Close, Read, Open and ReadDir are deliberately
// excluded: they sit on cleanup and read paths where best-effort
// handling is legitimate, and including Close would force annotations
// on every deferred cleanup in the tree.
var durabilityOpNames = map[string]bool{
	"OpenFile": true,
	"Create":   true,
	"Rename":   true,
	"Remove":   true,
	"Write":    true,
	"Sync":     true,
	"Truncate": true,
	"Seek":     true,
}

var faultFSScope = Scope{"strip/fault"}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// errorResultIndex returns the index of fn's last error result, or -1.
func errorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if types.Identical(res.At(i).Type(), errorType) {
			return i
		}
	}
	return -1
}

// collectDurabilityOps finds the intrinsic durability-error sources:
// the mutating error-returning methods of the FS and File interfaces in
// strip/fault, plus the same-named methods of every module type that
// implements one of those interfaces (so a direct call on a concrete
// *MemFS is a source too, not only calls through the interface).
func collectDurabilityOps(modules []*Package) map[*types.Func]string {
	ops := make(map[*types.Func]string)
	type faultIface struct {
		pkgName string
		name    string
		iface   *types.Interface
	}
	var ifaces []faultIface
	for _, pkg := range modules {
		if !faultFSScope.Match(pkg.Path) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range []string{"FS", "File"} {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				if durabilityOpNames[m.Name()] && errorResultIndex(m) >= 0 {
					ops[m] = pkg.Types.Name() + "." + name + "." + m.Name()
				}
			}
			ifaces = append(ifaces, faultIface{pkgName: pkg.Types.Name(), name: name, iface: iface})
		}
	}
	if len(ifaces) == 0 {
		return ops
	}
	for _, pkg := range modules {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, ok := named.Underlying().(*types.Interface); ok {
				continue
			}
			ptr := types.NewPointer(named)
			for _, fi := range ifaces {
				if !types.Implements(ptr, fi.iface) && !types.Implements(named, fi.iface) {
					continue
				}
				ms := types.NewMethodSet(ptr)
				for i := 0; i < fi.iface.NumMethods(); i++ {
					im := fi.iface.Method(i)
					if !durabilityOpNames[im.Name()] || errorResultIndex(im) < 0 {
						continue
					}
					sel := ms.Lookup(im.Pkg(), im.Name())
					if sel == nil {
						continue
					}
					if impl, ok := sel.Obj().(*types.Func); ok {
						if _, seen := ops[impl]; !seen {
							ops[impl] = pkg.Types.Name() + "." + named.Obj().Name() + "." + impl.Name()
						}
					}
				}
			}
		}
	}
	return ops
}

// buildErrFacts computes the "returns a durability-path error"
// closure over the already-computed f.durabilityOps. A function is an
// intrinsic producer when it returns an error and its body mentions a
// durability op; the property propagates to error-returning callers
// over the call graph (interface dispatch included), and stops at any
// function that does not return an error — that function is where the
// error is either handled or dropped.
func buildErrFacts(f *Facts, order []*cgNode, nodes map[*types.Func]*cgNode) {
	prod := make(map[*types.Func]*taintFact)
	var queue []*types.Func
	for _, n := range order {
		if n.decl == nil || errorResultIndex(n.fn) < 0 {
			continue
		}
		var intr *taintFact
		ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
			if intr != nil {
				return false
			}
			id, ok := nd.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := useOf(n.pkg.Info, id).(*types.Func)
			if !ok {
				return true
			}
			if desc, ok := f.durabilityOps[fn]; ok {
				p := n.pkg.Fset.Position(id.Pos())
				intr = &taintFact{source: desc, srcPos: p, hopPos: p}
			}
			return true
		})
		if intr != nil {
			prod[n.fn] = intr
			queue = append(queue, n.fn)
		}
	}
	callers := reverseEdges(order, true)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fact := prod[cur]
		for _, caller := range callers[cur] {
			cfn := caller.callee // reversed edge: callee field holds the caller
			if _, seen := prod[cfn]; seen {
				continue
			}
			if errorResultIndex(cfn) < 0 {
				continue
			}
			hop := fact.srcPos
			if n := nodes[cfn]; n != nil && n.decl != nil {
				hop = n.pkg.Fset.Position(caller.pos)
			}
			prod[cfn] = &taintFact{source: fact.source, srcPos: fact.srcPos, next: cur, hopPos: hop}
			queue = append(queue, cfn)
		}
	}
	f.errProducers = prod
}

// producerCall resolves a call expression to a durability-error
// producer, returning its display description, witness notes, and the
// callee, or ("", nil, nil).
func producerCall(pass *Pass, call *ast.CallExpr) (string, []string, *types.Func) {
	id := calleeIdent(call)
	if id == nil {
		return "", nil, nil
	}
	fn, ok := useOf(pass.Info, id).(*types.Func)
	if !ok {
		return "", nil, nil
	}
	if desc, ok := pass.Facts.durabilityOps[fn]; ok {
		return desc, nil, fn
	}
	if fact := pass.Facts.errProducers[fn]; fact != nil {
		notes := chainFacts(pass.Facts.errProducers, fn, "surfaces the durability error of")
		return funcDisplayName(fn) + " (durability path: " + fact.source + ")", notes, fn
	}
	return "", nil, nil
}

// checkErrDrops walks one declaration, maintaining a parent stack, and
// checks the disposition of every durability-producer call's error.
func checkErrDrops(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if desc, notes, fn := producerCall(pass, call); fn != nil {
				checkDisposition(pass, fd, call, fn, desc, notes, stack)
			}
		}
		stack = append(stack, n)
		return true
	})
}

func checkDisposition(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func, desc string, notes []string, stack []ast.Node) {
	var parent ast.Node
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.ReportfNotes(call.Pos(), notes,
			"error from %s discarded — a durability failure must be handled or explicitly degraded", desc)
	case *ast.DeferStmt:
		if p.Call == call {
			pass.ReportfNotes(call.Pos(), notes, "deferred call discards the error from %s", desc)
		}
	case *ast.GoStmt:
		if p.Call == call {
			pass.ReportfNotes(call.Pos(), notes, "go statement discards the error from %s", desc)
		}
	case *ast.AssignStmt:
		lhs := errLHS(pass.Info, p.Lhs, p.Rhs, call, fn)
		checkErrTarget(pass, fd, lhs, call, desc, notes, stack)
	case *ast.ValueSpec:
		// var err = op(); same shapes as assignment.
		var lhs ast.Expr
		if len(p.Values) == 1 && ast.Unparen(p.Values[0]) == call {
			if idx := errorResultIndex(fn); idx >= 0 && idx < len(p.Names) && len(p.Names) == resultCount(fn) {
				lhs = p.Names[idx]
			}
		} else {
			for i, v := range p.Values {
				if ast.Unparen(v) == call && i < len(p.Names) && resultCount(fn) == 1 {
					lhs = p.Names[i]
				}
			}
		}
		checkErrTarget(pass, fd, lhs, call, desc, notes, stack)
	}
}

// errLHS finds the assignment target receiving the call's error
// result: the error-index LHS for the tuple form err-producing call,
// or the matching 1:1 target for a single-result call.
func errLHS(info *types.Info, lhsList, rhsList []ast.Expr, call *ast.CallExpr, fn *types.Func) ast.Expr {
	idx := errorResultIndex(fn)
	if idx < 0 {
		return nil
	}
	if len(rhsList) == 1 && ast.Unparen(rhsList[0]) == call {
		if len(lhsList) == resultCount(fn) {
			return lhsList[idx]
		}
		return nil
	}
	if resultCount(fn) != 1 {
		return nil
	}
	for i, r := range rhsList {
		if ast.Unparen(r) == call && i < len(lhsList) {
			return lhsList[i]
		}
	}
	return nil
}

func resultCount(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	return sig.Results().Len()
}

// checkErrTarget classifies the variable the error landed in: blank is
// a drop; a named variable is followed to its first later mention —
// none at all, or a pure overwrite (assigned again without appearing
// on the right-hand side), is a drop.
func checkErrTarget(pass *Pass, fd *ast.FuncDecl, lhs ast.Expr, call *ast.CallExpr, desc string, notes []string, stack []ast.Node) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // stored through a selector/index: visible to others, assume checked
	}
	if id.Name == "_" {
		pass.ReportfNotes(call.Pos(), notes, "error from %s assigned to _", desc)
		return
	}
	v := lhsObj(pass.Info, id)
	if v == nil {
		return
	}
	// Named results are implicitly read by every (bare) return.
	if results := enclosingFuncResults(stack, fd); results != nil {
		for _, f := range results.List {
			for _, name := range f.Names {
				if pass.Info.Defs[name] == v {
					return
				}
			}
		}
	}
	mention, mentionParent := firstMentionAfter(pass.Info, fd, v, call.End())
	if mention == nil {
		pass.ReportfNotes(call.Pos(), notes, "error from %s is never checked", desc)
		return
	}
	if as, ok := mentionParent.(*ast.AssignStmt); ok && pureOverwrite(pass.Info, as, mention, v) {
		pass.ReportfNotes(call.Pos(), notes,
			"error from %s overwritten at %s before being checked", desc,
			pass.Fset.Position(mention.Pos()))
	}
}

// lhsObj resolves an assignment target identifier whether it declares
// (:=) or reuses the variable.
func lhsObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// enclosingFuncResults returns the result list of the innermost
// function literal on the stack, or the declaration's.
func enclosingFuncResults(stack []ast.Node, fd *ast.FuncDecl) *ast.FieldList {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return fl.Type.Results
		}
	}
	return fd.Type.Results
}

// firstMentionAfter finds the earliest identifier after pos referring
// to v anywhere in the declaration (closures included), along with its
// direct parent node.
func firstMentionAfter(info *types.Info, fd *ast.FuncDecl, v types.Object, pos token.Pos) (*ast.Ident, ast.Node) {
	var best *ast.Ident
	var bestParent ast.Node
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok && id.Pos() > pos {
			if info.Uses[id] == v || info.Defs[id] == v {
				if best == nil || id.Pos() < best.Pos() {
					best = id
					bestParent = nil
					if len(stack) > 0 {
						bestParent = stack[len(stack)-1]
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return best, bestParent
}

// pureOverwrite reports whether the mention is an assignment target
// whose right-hand side does not read v — i.e. the old error value is
// destroyed without ever being looked at.
func pureOverwrite(info *types.Info, as *ast.AssignStmt, mention *ast.Ident, v types.Object) bool {
	onLHS := false
	for _, l := range as.Lhs {
		if ast.Unparen(l) == mention {
			onLHS = true
		}
	}
	if !onLHS {
		return false
	}
	for _, r := range as.Rhs {
		read := false
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
				read = true
			}
			return true
		})
		if read {
			return false
		}
	}
	return true
}
