package sim

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunOrdersByTime(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{3, 1, 2, 5, 4} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.Run(10)
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1.0, func() { got = append(got, i) })
	}
	s.Run(2)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	s.At(2.5, func() {
		if s.Now() != 2.5 {
			t.Fatalf("Now = %v inside event at 2.5", s.Now())
		}
	})
	s.Run(10)
	if s.Now() != 10 {
		t.Fatalf("Now after Run = %v, want horizon 10", s.Now())
	}
}

func TestHorizonExcludesLaterEvents(t *testing.T) {
	s := New()
	fired := 0
	s.At(5, func() { fired++ })
	s.At(10, func() { fired++ }) // exactly at horizon: fires
	s.At(10.0001, func() { fired++ })
	if n := s.Run(10); n != 2 {
		t.Fatalf("Run fired %d events, want 2", n)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var at float64 = -1
	s.At(3, func() {
		s.After(2, func() { at = s.Now() })
	})
	s.Run(10)
	if at != 5 {
		t.Fatalf("After fired at %v, want 5", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run(10)
}

func TestScheduleNaNPanics(t *testing.T) {
	// The NaN check must win even when the clock has advanced: NaN
	// compares false with everything, so a before-now check running
	// first would let NaN through to the wrong panic (or none).
	s := New()
	s.At(5, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("scheduling at NaN did not panic")
				return
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "NaN") {
				t.Errorf("NaN scheduling panicked with %v, want the NaN message", r)
			}
		}()
		s.At(math.NaN(), func() {})
	})
	s.Run(10)
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(5, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending")
	}
	s.Cancel(e)
	if e.Pending() {
		t.Fatal("cancelled event should not be pending")
	}
	s.Run(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	s.Cancel(e) // double cancel is a no-op
	s.Cancel(nil)
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New()
	fired := false
	var victim *Event
	victim = s.At(5, func() { fired = true })
	s.At(3, func() { s.Cancel(victim) })
	s.Run(10)
	if fired {
		t.Fatal("event cancelled at t=3 still fired at t=5")
	}
}

func TestHalt(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run(100)
	if count != 3 {
		t.Fatalf("count = %d after Halt, want 3", count)
	}
	// Run can resume after a halt.
	s.Run(100)
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestStep(t *testing.T) {
	s := New()
	count := 0
	s.At(1, func() { count++ })
	s.At(2, func() { count++ })
	if !s.Step() || count != 1 || s.Now() != 1 {
		t.Fatalf("first Step: count=%d now=%v", count, s.Now())
	}
	if !s.Step() || count != 2 || s.Now() != 2 {
		t.Fatalf("second Step: count=%d now=%v", count, s.Now())
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEventPendingLifecycle(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	if !e.Pending() {
		t.Fatal("fresh event not pending")
	}
	s.Run(2)
	if e.Pending() {
		t.Fatal("fired event still pending")
	}
	var nilEvent *Event
	if nilEvent.Pending() {
		t.Fatal("nil event pending")
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(float64(i), func() {})
	}
	s.Run(100)
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain that reschedules itself must run to the horizon.
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.After(1, tick)
	}
	s.After(1, tick)
	s.Run(100)
	if count != 100 {
		t.Fatalf("ticks = %d, want 100", count)
	}
}

func TestQuickRandomScheduleOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		var fired []float64
		for i := 0; i < int(n); i++ {
			at := r.Float64() * 100
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run(1000)
		return len(fired) == int(n) && sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCancelSubset(t *testing.T) {
	// Cancelling an arbitrary subset fires exactly the complement.
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		fired := make(map[int]bool)
		events := make([]*Event, int(n))
		for i := range events {
			i := i
			events[i] = s.At(r.Float64()*100, func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range events {
			if r.Intn(2) == 0 {
				s.Cancel(events[i])
				cancelled[i] = true
			}
		}
		s.Run(1000)
		for i := range events {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
