package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A periodic process re-arming itself, the basic DES idiom.
func Example() {
	s := sim.New()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		s.After(1.0, tick)
	}
	s.After(1.0, tick)
	s.Run(5.0)
	fmt.Println(ticks, s.Now())
	// Output: 5 5
}

// Cancelling a pending event.
func ExampleSimulator_Cancel() {
	s := sim.New()
	e := s.At(2.0, func() { fmt.Println("never") })
	s.At(1.0, func() { s.Cancel(e) })
	s.Run(10)
	fmt.Println(e.Pending())
	// Output: false
}
