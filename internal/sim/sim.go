// Package sim is a small deterministic discrete-event simulation
// kernel. It replaces the DeNet simulation language used by the
// original paper: a monotone simulated clock, an event heap with
// stable FIFO ordering among simultaneous events, and cancellable
// event handles.
//
// Time is measured in float64 seconds of simulated time. Two events
// scheduled for the same instant fire in the order they were
// scheduled, which makes runs fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. The zero value is inert. Events are
// created by Simulator.At / Simulator.After and may be cancelled until
// they fire.
type Event struct {
	time   float64
	seq    uint64
	index  int // position in the heap, -1 when not queued
	fn     func()
	fired  bool
	cancel bool
}

// Time returns the simulated time at which the event is (or was)
// scheduled to fire.
func (e *Event) Time() float64 { return e.time }

// Pending reports whether the event is still queued: not yet fired and
// not cancelled.
func (e *Event) Pending() bool { return e != nil && !e.fired && !e.cancel }

// Simulator owns the clock and the event queue.
type Simulator struct {
	now    float64
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// New returns a simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far. It is useful for
// instrumentation and runaway detection in tests.
func (s *Simulator) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute simulated time t. Scheduling in
// the past panics: the model must never rewind the clock. The NaN
// check runs first because NaN comparisons are always false, so a NaN
// time would otherwise slip past the before-now check and be
// misreported.
func (s *Simulator) At(t float64, fn func()) *Event {
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{time: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (s *Simulator) After(d float64, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event from the queue. Cancelling a nil,
// fired or already-cancelled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Halt stops the run loop after the currently executing event returns.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events in time order until the queue is empty, the
// horizon is passed, or Halt is called. Events scheduled exactly at
// the horizon still fire; the clock finishes at the horizon. It
// returns the number of events fired during this call.
func (s *Simulator) Run(horizon float64) uint64 {
	s.halted = false
	start := s.fired
	for s.queue.Len() > 0 && !s.halted {
		e := s.queue[0]
		if e.time > horizon {
			break
		}
		heap.Pop(&s.queue)
		e.fired = true
		s.now = e.time
		s.fired++
		e.fn()
	}
	if s.now < horizon {
		s.now = horizon
	}
	return s.fired - start
}

// Step executes exactly one pending event (if any) and reports whether
// an event fired. It is intended for tests that need fine-grained
// control of the clock.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	e.fired = true
	s.now = e.time
	s.fired++
	e.fn()
	return true
}

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return s.queue.Len() }

// eventHeap orders events by (time, seq) so that ties fire in
// scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
