package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestCompareODvsTF(t *testing.T) {
	cmp, err := Compare("fig6", "OD", "TF", "psuccess",
		Options{Duration: 30, Seeds: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PolicyA != "OD" || cmp.PolicyB != "TF" || len(cmp.Points) != 7 {
		t.Fatalf("comparison shape: %+v", cmp)
	}
	// At heavy load the difference is enormous and must be
	// significant even with three seeds.
	last := cmp.Points[len(cmp.Points)-1]
	if !last.Significant || last.MeanA <= last.MeanB {
		t.Fatalf("OD vs TF at overload: %+v", last)
	}

	var buf bytes.Buffer
	if err := cmp.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"OD vs TF", "p-value", "lambda_t", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCompareSamePolicy(t *testing.T) {
	// A policy against itself: identical runs, never significant.
	cmp, err := Compare("fig15", "TF", "TF", "AV",
		Options{Duration: 10, Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range cmp.Points {
		if pt.Significant || pt.MeanA != pt.MeanB {
			t.Fatalf("self-comparison flagged significant: %+v", pt)
		}
	}
}

func TestCompareValidation(t *testing.T) {
	opts := Options{Duration: 10, Seeds: []uint64{1, 2}}
	if _, err := Compare("nope", "OD", "TF", "psuccess", opts); err == nil {
		t.Error("unknown experiment should fail")
	}
	if _, err := Compare("fig6", "XX", "TF", "psuccess", opts); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := Compare("fig6", "OD", "YY", "psuccess", opts); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := Compare("fig6", "OD", "TF", "nonsense", opts); err == nil {
		t.Error("unknown metric should fail")
	}
	if _, err := Compare("fig6", "OD", "TF", "psuccess",
		Options{Duration: 10, Seeds: []uint64{1}}); err == nil {
		t.Error("single seed should fail")
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("report regenerates every figure")
	}
	var buf, progress bytes.Buffer
	err := WriteReport(&buf, Options{Duration: 10, Seeds: []uint64{1}}, &progress)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Reproduction report",
		"### Fig 6: successful transactions",
		"| lambda_t |",
		"## Claim verification",
		"claims verified",
		"### Extension: fixed CPU fraction",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if !strings.Contains(progress.String(), "ran fig3") {
		t.Error("progress stream missing")
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		XLabel:   "x",
		Xs:       []float64{1},
		Policies: []string{"UF"},
		Metrics:  []string{"AV"},
		Values:   [][][]float64{{{2.5}}},
	}
	var buf bytes.Buffer
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| x | UF:AV |") || !strings.Contains(out, "| 2.5000 |") {
		t.Fatalf("markdown:\n%s", out)
	}
}
