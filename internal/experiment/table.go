package experiment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sched"
)

// Table holds the result of one experiment sweep: Values[xi][pi][mi]
// is the (seed-averaged) value of metric mi for policy pi at sweep
// point xi.
type Table struct {
	ID       string
	Title    string
	XLabel   string
	Xs       []float64
	Policies []string
	Metrics  []string
	Values   [][][]float64
	// Errs, non-nil for multi-seed runs, holds the standard error of
	// each seed-averaged value (same shape as Values).
	Errs [][][]float64
}

func newTable(d *Definition, pols []sched.Policy) *Table {
	t := &Table{
		ID:     d.ID,
		Title:  d.Title,
		XLabel: d.XLabel,
		Xs:     append([]float64(nil), d.Xs...),
	}
	for _, p := range pols {
		t.Policies = append(t.Policies, p.String())
	}
	for _, m := range d.Metrics {
		t.Metrics = append(t.Metrics, m.Name)
	}
	t.Values = make([][][]float64, len(d.Xs))
	t.Errs = make([][][]float64, len(d.Xs))
	for xi := range t.Values {
		t.Values[xi] = make([][]float64, len(pols))
		t.Errs[xi] = make([][]float64, len(pols))
		for pi := range t.Values[xi] {
			t.Values[xi][pi] = make([]float64, len(d.Metrics))
			t.Errs[xi][pi] = make([]float64, len(d.Metrics))
		}
	}
	return t
}

// Series returns the metric values across the sweep for one policy,
// or nil if the policy or metric is unknown.
func (t *Table) Series(policy, metric string) []float64 {
	pi := index(t.Policies, policy)
	mi := index(t.Metrics, metric)
	if pi < 0 || mi < 0 {
		return nil
	}
	out := make([]float64, len(t.Xs))
	for xi := range t.Xs {
		out[xi] = t.Values[xi][pi][mi]
	}
	return out
}

// Value returns a single cell, or zero if unknown.
func (t *Table) Value(x float64, policy, metric string) float64 {
	pi := index(t.Policies, policy)
	mi := index(t.Metrics, metric)
	for xi, xv := range t.Xs {
		if xv == x && pi >= 0 && mi >= 0 {
			return t.Values[xi][pi][mi]
		}
	}
	return 0
}

func index(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// Render writes an aligned text table, one column per (policy,
// metric) pair, matching the series the paper plots.
func (t *Table) Render(w io.Writer) error {
	headers := []string{t.XLabel}
	for _, m := range t.Metrics {
		for _, p := range t.Policies {
			headers = append(headers, p+":"+m)
		}
	}
	rows := [][]string{headers}
	for xi, x := range t.Xs {
		row := []string{trimFloat(x)}
		for mi := range t.Metrics {
			for pi := range t.Policies {
				cell := fmt.Sprintf("%.4f", t.Values[xi][pi][mi])
				if t.Errs != nil {
					cell += fmt.Sprintf("±%.3f", t.Errs[xi][pi][mi])
				}
				row = append(row, cell)
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(headers))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s [%s]\n", t.Title, t.ID); err != nil {
		return err
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
		if ri == 0 {
			if _, err := fmt.Fprintln(w, strings.Repeat("-", len(b.String()))); err != nil {
				return err
			}
		}
	}
	return nil
}

// CSV writes the table as comma-separated values with a header row.
func (t *Table) CSV(w io.Writer) error {
	headers := []string{t.XLabel}
	for _, m := range t.Metrics {
		for _, p := range t.Policies {
			headers = append(headers, p+":"+m)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for xi, x := range t.Xs {
		row := []string{trimFloat(x)}
		for mi := range t.Metrics {
			for pi := range t.Policies {
				row = append(row, fmt.Sprintf("%g", t.Values[xi][pi][mi]))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%g", x)
	return s
}
