package experiment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Comparison is the statistical comparison of two policies on one
// figure's sweep: per sweep point, the replicated means and a Welch
// t-test on the difference.
type Comparison struct {
	// ExperimentID, PolicyA, PolicyB, Metric identify the comparison.
	ExperimentID     string
	PolicyA, PolicyB string
	Metric           string
	XLabel           string
	// Points holds one row per sweep value.
	Points []ComparePoint
}

// ComparePoint is the comparison at one sweep value.
type ComparePoint struct {
	X float64
	// MeanA, MeanB are the seed-replicated means.
	MeanA, MeanB float64
	// P is the two-sided Welch p-value for mean inequality.
	P float64
	// Significant is P < 0.05.
	Significant bool
}

// Compare runs the experiment's sweep for two policies across the
// option's seeds and tests, at every sweep point, whether the chosen
// metric differs significantly. At least two seeds are required for a
// meaningful test.
func Compare(expID, policyA, policyB, metric string, opts Options) (*Comparison, error) {
	def, err := ByID(expID)
	if err != nil {
		return nil, err
	}
	opts.fill()
	if len(opts.Seeds) < 2 {
		return nil, fmt.Errorf("experiment: Compare needs at least 2 seeds, got %d", len(opts.Seeds))
	}
	pa, err := sched.ParsePolicy(policyA)
	if err != nil {
		return nil, err
	}
	pb, err := sched.ParsePolicy(policyB)
	if err != nil {
		return nil, err
	}
	var extract func(metrics.Result) float64
	for _, m := range def.Metrics {
		if m.Name == metric {
			extract = m.Extract
		}
	}
	if extract == nil {
		return nil, fmt.Errorf("experiment: %s does not plot metric %q", expID, metric)
	}

	out := &Comparison{
		ExperimentID: expID,
		PolicyA:      pa.String(),
		PolicyB:      pb.String(),
		Metric:       metric,
		XLabel:       def.XLabel,
	}
	for _, x := range def.Xs {
		var sa, sb []float64
		for _, seed := range opts.Seeds {
			ra, err := def.runOne(def.Configure, pa, x, seed, opts.Duration)
			if err != nil {
				return nil, err
			}
			rb, err := def.runOne(def.Configure, pb, x, seed, opts.Duration)
			if err != nil {
				return nil, err
			}
			sa = append(sa, extract(ra))
			sb = append(sb, extract(rb))
		}
		tt := stats.WelchTTest(sa, sb)
		out.Points = append(out.Points, ComparePoint{
			X:           x,
			MeanA:       tt.MeanA,
			MeanB:       tt.MeanB,
			P:           tt.P,
			Significant: tt.P < 0.05,
		})
	}
	return out, nil
}

// Render writes the comparison as an aligned text table.
func (c *Comparison) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s vs %s on %s\n",
		c.ExperimentID, c.PolicyA, c.PolicyB, c.Metric); err != nil {
		return err
	}
	header := fmt.Sprintf("%10s  %12s  %12s  %10s  %s",
		c.XLabel, c.PolicyA, c.PolicyB, "p-value", "significant")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, pt := range c.Points {
		mark := ""
		if pt.Significant {
			mark = "*"
		}
		if _, err := fmt.Fprintf(w, "%10g  %12.4f  %12.4f  %10.2g  %s\n",
			pt.X, pt.MeanA, pt.MeanB, pt.P, mark); err != nil {
			return err
		}
	}
	return nil
}
