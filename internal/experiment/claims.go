package experiment

import (
	"fmt"
	"io"
	"math"
)

// Claim is one qualitative statement from the paper's evaluation that
// the reproduction must satisfy — a winner, an ordering, a crossover
// or a flat-vs-falling response. Claims are checked against the
// regenerated tables, so the reproduction can certify itself.
type Claim struct {
	// ID is a short key, e.g. "fig6-ranking".
	ID string
	// Statement is the paper's claim in one sentence.
	Statement string
	// Figures lists the experiment IDs the claim reads.
	Figures []string
	// Check evaluates the claim; get returns the table for a figure
	// ID. It returns a pass/fail verdict and a short detail string.
	Check func(get func(string) *Table) (bool, string)
}

// ClaimResult is the outcome of checking one claim.
type ClaimResult struct {
	Claim  Claim
	Passed bool
	Detail string
}

// at reads one cell, tolerating a missing policy/metric with zero.
func at(t *Table, x float64, policy, metric string) float64 {
	return t.Value(x, policy, metric)
}

// seriesRange returns max-min over a policy's series.
func seriesRange(t *Table, policy, metric string) float64 {
	s := t.Series(policy, metric)
	if len(s) == 0 {
		return math.NaN()
	}
	lo, hi := s[0], s[0]
	for _, v := range s {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// Claims returns every checked claim, in paper order.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "fig3-uf-flat",
			Statement: "UF's update utilization is flat at the stream's CPU demand (~0.19) across loads",
			Figures:   []string{"fig3"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig3")
				r := seriesRange(t, "UF", "rho_u")
				mid := at(t, 10, "UF", "rho_u")
				ok := r < 0.02 && math.Abs(mid-0.19) < 0.02
				return ok, fmt.Sprintf("range=%.4f, rho_u(10)=%.3f", r, mid)
			},
		},
		{
			ID:        "fig3-tf-starves",
			Statement: "TF's update utilization collapses under transaction overload",
			Figures:   []string{"fig3"},
			Check: func(get func(string) *Table) (bool, string) {
				v := at(get("fig3"), 25, "TF", "rho_u")
				return v < 0.05, fmt.Sprintf("TF rho_u(25)=%.4f", v)
			},
		},
		{
			ID:        "fig4-txn-first-wins-deadlines",
			Statement: "TF and OD miss fewer deadlines and return more value than UF and SU at load",
			Figures:   []string{"fig4"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig4")
				ok := true
				for _, x := range []float64{10, 25} {
					for _, a := range []string{"TF", "OD"} {
						for _, b := range []string{"UF", "SU"} {
							ok = ok && at(t, x, a, "pMD") < at(t, x, b, "pMD")
							ok = ok && at(t, x, a, "AV") > at(t, x, b, "AV")
						}
					}
				}
				return ok, fmt.Sprintf("pMD(25): TF=%.3f UF=%.3f; AV(25): TF=%.2f UF=%.2f",
					at(t, 25, "TF", "pMD"), at(t, 25, "UF", "pMD"),
					at(t, 25, "TF", "AV"), at(t, 25, "UF", "AV"))
			},
		},
		{
			ID:        "fig4-value-grows",
			Statement: "Value returned keeps growing past CPU saturation",
			Figures:   []string{"fig4"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig4")
				ok := true
				for _, pol := range t.Policies {
					s := t.Series(pol, "AV")
					for i := 1; i < len(s); i++ {
						ok = ok && s[i] > s[i-1]
					}
				}
				return ok, fmt.Sprintf("AV(TF) %v", t.Series("TF", "AV"))
			},
		},
		{
			ID:        "fig5-uf-fresh",
			Statement: "UF keeps the stale fraction under ~10% at every load",
			Figures:   []string{"fig5"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig5")
				ok := true
				for _, m := range []string{"fold_l", "fold_h"} {
					for _, v := range t.Series("UF", m) {
						ok = ok && v <= 0.10
					}
				}
				return ok, fmt.Sprintf("max fold(UF)=%.3f",
					math.Max(seriesMax(t, "UF", "fold_l"), seriesMax(t, "UF", "fold_h")))
			},
		},
		{
			ID:        "fig5-su-protects-high",
			Statement: "SU keeps the high-importance partition fresh while its low partition decays",
			Figures:   []string{"fig5"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig5")
				ok := seriesMax(t, "SU", "fold_h") <= 0.10 &&
					at(t, 25, "SU", "fold_l") >= 0.5
				return ok, fmt.Sprintf("SU fold_h max=%.3f fold_l(25)=%.3f",
					seriesMax(t, "SU", "fold_h"), at(t, 25, "SU", "fold_l"))
			},
		},
		{
			ID:        "fig6-ranking",
			Statement: "psuccess ranking is OD > UF > SU > TF at moderate load; OD first and TF last everywhere (UF and SU converge at extreme overload, as the paper's curves do)",
			Figures:   []string{"fig6"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig6")
				ok := true
				// Full ordering where the paper's curves separate.
				for _, x := range []float64{10, 15} {
					od, uf := at(t, x, "OD", "psuccess"), at(t, x, "UF", "psuccess")
					su, tf := at(t, x, "SU", "psuccess"), at(t, x, "TF", "psuccess")
					ok = ok && od > uf && uf > su && su > tf
				}
				// Winner and loser everywhere under load.
				for _, x := range []float64{10, 15, 20, 25} {
					od, tf := at(t, x, "OD", "psuccess"), at(t, x, "TF", "psuccess")
					for _, pol := range []string{"UF", "SU"} {
						v := at(t, x, pol, "psuccess")
						ok = ok && od > v && v > tf
					}
				}
				return ok, fmt.Sprintf("at 10: OD=%.3f UF=%.3f SU=%.3f TF=%.3f",
					at(t, 10, "OD", "psuccess"), at(t, 10, "UF", "psuccess"),
					at(t, 10, "SU", "psuccess"), at(t, 10, "TF", "psuccess"))
			},
		},
		{
			ID:        "fig6-nontardy",
			Statement: "Non-tardy transactions almost always read fresh data under OD and UF, rarely under TF",
			Figures:   []string{"fig6"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig6")
				ok := at(t, 25, "OD", "psuc|nontardy") >= 0.7 &&
					at(t, 25, "UF", "psuc|nontardy") >= 0.7 &&
					at(t, 25, "TF", "psuc|nontardy") <= 0.4
				return ok, fmt.Sprintf("at 25: OD=%.3f UF=%.3f TF=%.3f",
					at(t, 25, "OD", "psuc|nontardy"), at(t, 25, "UF", "psuc|nontardy"),
					at(t, 25, "TF", "psuc|nontardy"))
			},
		},
		{
			ID:        "fig7a-heavy-updates-sink-uf",
			Statement: "Heavyweight updates sink UF while TF/OD are insensitive",
			Figures:   []string{"fig7a"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig7a")
				ufDrop := at(t, 0, "UF", "AV") - at(t, 50000, "UF", "AV")
				tfDrop := math.Abs(at(t, 0, "TF", "AV") - at(t, 50000, "TF", "AV"))
				return ufDrop > 2 && tfDrop < 0.5,
					fmt.Sprintf("UF drop=%.2f TF drift=%.2f", ufDrop, tfDrop)
			},
		},
		{
			ID:        "fig8-scan-cost-od-only",
			Statement: "Only OD pays the queue scan cost under MA",
			Figures:   []string{"fig8"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig8")
				odDecline := at(t, t.Xs[0], "OD", "AV") - at(t, t.Xs[len(t.Xs)-1], "OD", "AV")
				othersFlat := seriesRange(t, "UF", "AV") < 0.2 &&
					seriesRange(t, "TF", "AV") < 0.2 &&
					seriesRange(t, "SU", "AV") < 0.2
				return odDecline > 1 && othersFlat,
					fmt.Sprintf("OD decline=%.2f", odDecline)
			},
		},
		{
			ID:        "fig9-od-psuccess-rises",
			Statement: "OD's psuccess rises with the update rate; TF's value stays flat while UF's falls",
			Figures:   []string{"fig9"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig9")
				odRise := at(t, 600, "OD", "psuccess") - at(t, 200, "OD", "psuccess")
				tfFlat := seriesRange(t, "TF", "AV") < 0.3
				ufFall := at(t, 200, "UF", "AV") - at(t, 600, "UF", "AV")
				return odRise > 0.1 && tfFlat && ufFall > 0.5,
					fmt.Sprintf("OD rise=%.3f UF fall=%.2f", odRise, ufFall)
			},
		},
		{
			ID:        "fig10-ratio-matters",
			Statement: "Shrinking Delta alone cuts value; scaling Nl,Nh with Delta leaves it flat",
			Figures:   []string{"fig10a", "fig10b"},
			Check: func(get func(string) *Table) (bool, string) {
				a, b := get("fig10a"), get("fig10b")
				drop := at(a, 9, "OD", "AV") - at(a, 3, "OD", "AV")
				flat := seriesRange(b, "OD", "AV") < 0.05*at(b, 7, "OD", "AV")
				return drop > 1 && flat,
					fmt.Sprintf("10a drop=%.2f, 10b range=%.3f", drop, seriesRange(b, "OD", "AV"))
			},
		},
		{
			ID:        "fig11-lifo-fresher",
			Statement: "FIFO keeps data staler than LIFO for the queue-based policies; UF is unaffected",
			Figures:   []string{"fig11"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig11")
				tfRatio := at(t, 10, "TF", "fold_l")
				ufFlat := seriesRange(t, "UF", "fold_l") < 1e-9 && at(t, 10, "UF", "fold_l") == 1
				return tfRatio > 1.2 && ufFlat,
					fmt.Sprintf("TF ratio(10)=%.2f", tfRatio)
			},
		},
		{
			ID:        "fig12-aborts-freshen-tf",
			Statement: "Abort-on-stale makes TF's data dramatically fresher",
			Figures:   []string{"fig12b"},
			Check: func(get func(string) *Table) (bool, string) {
				v := at(get("fig12b"), 10, "TF", "fold_h")
				return v < 0.5, fmt.Sprintf("TF fold_h ratio(10)=%.3f", v)
			},
		},
		{
			ID:        "fig13-od-wins-under-aborts",
			Statement: "OD is the clear value winner with abort-on-stale; SU beats both UF and TF",
			Figures:   []string{"fig13a"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig13a")
				od := at(t, 25, "OD", "AV")
				ok := od > at(t, 25, "UF", "AV") && od > at(t, 25, "TF", "AV") &&
					od > at(t, 25, "SU", "AV") &&
					at(t, 25, "SU", "AV") > at(t, 25, "UF", "AV") &&
					at(t, 25, "SU", "AV") > at(t, 25, "TF", "AV")
				return ok, fmt.Sprintf("AV(25): OD=%.2f SU=%.2f UF=%.2f TF=%.2f",
					od, at(t, 25, "SU", "AV"), at(t, 25, "UF", "AV"), at(t, 25, "TF", "AV"))
			},
		},
		{
			ID:        "fig14-od-wins-psuccess-aborts",
			Statement: "OD wins psuccess at every load with abort-on-stale",
			Figures:   []string{"fig14"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig14")
				ok := true
				for _, x := range t.Xs {
					od := at(t, x, "OD", "psuccess")
					for _, pol := range []string{"UF", "TF", "SU"} {
						ok = ok && od >= at(t, x, pol, "psuccess")
					}
				}
				return ok, fmt.Sprintf("OD(10)=%.3f", at(t, 10, "OD", "psuccess"))
			},
		},
		{
			ID:        "fig15-read-early",
			Statement: "Deferring view reads wastes work under aborts; every policy degrades, TF worst",
			Figures:   []string{"fig15"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig15")
				ok := true
				worstDrop, worstPol := 0.0, ""
				for _, pol := range t.Policies {
					drop := at(t, 0, pol, "AV") - at(t, 1, pol, "AV")
					ok = ok && drop > 0
					if drop > worstDrop {
						worstDrop, worstPol = drop, pol
					}
				}
				return ok && worstPol == "TF",
					fmt.Sprintf("worst drop %s=%.2f", worstPol, worstDrop)
			},
		},
		{
			ID:        "fig16-uu-ranking",
			Statement: "The OD > UF > SU > TF ranking holds under UU staleness",
			Figures:   []string{"fig16"},
			Check: func(get func(string) *Table) (bool, string) {
				t := get("fig16")
				ok := true
				for _, x := range []float64{10, 14} {
					od, uf := at(t, x, "OD", "psuccess"), at(t, x, "UF", "psuccess")
					su, tf := at(t, x, "SU", "psuccess"), at(t, x, "TF", "psuccess")
					ok = ok && od > uf && uf > su && su > tf
				}
				return ok, fmt.Sprintf("at 10: OD=%.3f UF=%.3f SU=%.3f TF=%.3f",
					at(t, 10, "OD", "psuccess"), at(t, 10, "UF", "psuccess"),
					at(t, 10, "SU", "psuccess"), at(t, 10, "TF", "psuccess"))
			},
		},
	}
}

func seriesMax(t *Table, policy, metric string) float64 {
	out := math.Inf(-1)
	for _, v := range t.Series(policy, metric) {
		out = math.Max(out, v)
	}
	return out
}

// VerifyClaims runs every figure the claims need (reusing runs across
// claims) and checks each claim, streaming progress to log (which may
// be nil).
func VerifyClaims(opts Options, log io.Writer) ([]ClaimResult, error) {
	claims := Claims()
	need := map[string]bool{}
	for _, c := range claims {
		for _, f := range c.Figures {
			need[f] = true
		}
	}
	tables := make(map[string]*Table, len(need))
	for id := range need {
		def, err := ByID(id)
		if err != nil {
			return nil, err
		}
		t, err := def.Run(opts)
		if err != nil {
			return nil, err
		}
		tables[id] = t
		if log != nil {
			fmt.Fprintf(log, "ran %s\n", id)
		}
	}
	get := func(id string) *Table { return tables[id] }
	out := make([]ClaimResult, 0, len(claims))
	for _, c := range claims {
		passed, detail := c.Check(get)
		out = append(out, ClaimResult{Claim: c, Passed: passed, Detail: detail})
	}
	return out, nil
}
