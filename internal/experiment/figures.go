package experiment

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/sched"
)

// txnRateSweep is the transaction-rate axis used by Figures 3-6 and
// 11-14.
var txnRateSweep = []float64{1, 2, 5, 10, 15, 20, 25}

func setTxnRate(p *model.Params, x float64) { p.TxnRate = x }

// abortBase is the §6.2 scenario: MA staleness with abort-on-stale.
func abortBase() model.Params {
	p := model.DefaultParams()
	p.OnStale = model.StaleAbort
	return p
}

// uuBase is the §6.3 scenario: UU staleness, no aborts.
func uuBase() model.Params {
	p := model.DefaultParams()
	p.Staleness = model.UnappliedUpdate
	return p
}

// All returns every figure reproduction, in paper order.
func All() []*Definition {
	return []*Definition{
		{
			ID:        "fig3",
			Title:     "Fig 3: CPU time split between transactions and updates vs lambda_t",
			XLabel:    "lambda_t",
			Xs:        txnRateSweep,
			Metrics:   []Metric{MetricRhoTxn, MetricRhoUpdate},
			Configure: setTxnRate,
		},
		{
			ID:        "fig4",
			Title:     "Fig 4: missed deadlines and value returned vs lambda_t",
			XLabel:    "lambda_t",
			Xs:        txnRateSweep,
			Metrics:   []Metric{MetricPMD, MetricAV},
			Configure: setTxnRate,
		},
		{
			ID:        "fig5",
			Title:     "Fig 5: fraction of stale objects vs lambda_t",
			XLabel:    "lambda_t",
			Xs:        txnRateSweep,
			Metrics:   []Metric{MetricFoldLow, MetricFoldHigh},
			Configure: setTxnRate,
		},
		{
			ID:        "fig6",
			Title:     "Fig 6: successful transactions vs lambda_t",
			XLabel:    "lambda_t",
			Xs:        txnRateSweep,
			Metrics:   []Metric{MetricPSuccess, MetricPSucNT},
			Configure: setTxnRate,
		},
		{
			ID:        "fig7a",
			Title:     "Fig 7(a): value returned vs update installation cost",
			XLabel:    "xupdate",
			Xs:        []float64{0, 10000, 20000, 30000, 40000, 50000},
			Metrics:   []Metric{MetricAV},
			Configure: func(p *model.Params, x float64) { p.XUpdate = x },
		},
		{
			ID:        "fig7b",
			Title:     "Fig 7(b): value returned vs queue management cost",
			XLabel:    "xqueue",
			Xs:        []float64{0, 1000, 2000, 3000, 4000, 5000},
			Metrics:   []Metric{MetricAV},
			Configure: func(p *model.Params, x float64) { p.XQueue = x },
		},
		{
			ID:     "fig8",
			Title:  "Fig 8: value returned vs update queue scan cost",
			XLabel: "xscan",
			// The paper sweeps to 10000 and argues realistic costs sit
			// "well within the less than 1,000 range"; the dense low
			// end shows the tolerable region. Our baseline queue runs
			// longer than the original's, so OD's collapse comes at a
			// smaller xscan (see EXPERIMENTS.md).
			Xs:        []float64{0, 100, 250, 500, 1000, 2000, 5000, 10000},
			Metrics:   []Metric{MetricAV},
			Configure: func(p *model.Params, x float64) { p.XScan = x },
		},
		{
			ID:        "fig9",
			Title:     "Fig 9: performance vs update arrival rate",
			XLabel:    "lambda_u",
			Xs:        []float64{200, 250, 300, 350, 400, 450, 500, 550, 600},
			Metrics:   []Metric{MetricPSuccess, MetricAV},
			Configure: func(p *model.Params, x float64) { p.UpdateRate = x },
		},
		{
			ID:     "fig10a",
			Title:  "Fig 10(a): value returned vs maximum age Delta",
			XLabel: "Delta",
			Xs:     []float64{3, 4, 5, 6, 7, 8, 9},
			// AV can only depend on Delta when staleness has a cost:
			// the figure's sharp drop at small Delta requires the
			// abort-on-stale action (see EXPERIMENTS.md).
			Base:      abortBase,
			Metrics:   []Metric{MetricAV},
			Configure: func(p *model.Params, x float64) { p.MaxAgeDelta = x },
		},
		{
			ID:      "fig10b",
			Title:   "Fig 10(b): value returned vs Delta with Nl, Nh scaled to hold fold constant",
			XLabel:  "Delta",
			Xs:      []float64{3, 4, 5, 6, 7, 8, 9},
			Base:    abortBase,
			Metrics: []Metric{MetricAV},
			Configure: func(p *model.Params, x float64) {
				p.MaxAgeDelta = x
				scale := x / 7.0
				p.NLow = int(math.Round(500 * scale))
				p.NHigh = int(math.Round(500 * scale))
			},
		},
		{
			ID:      "fig11",
			Title:   "Fig 11: FIFO/LIFO queue discipline ratios vs lambda_t",
			XLabel:  "lambda_t",
			Xs:      []float64{5, 10, 15, 20, 25},
			Metrics: []Metric{MetricFoldLow, MetricPSuccess},
			Configure: func(p *model.Params, x float64) {
				p.TxnRate = x
				p.Order = model.FIFO
			},
			Denominator: func(p *model.Params, x float64) {
				p.TxnRate = x
				p.Order = model.LIFO
			},
		},
		{
			ID:        "fig12a",
			Title:     "Fig 12(a): fraction of stale high-importance objects vs lambda_t (MA with abortion)",
			XLabel:    "lambda_t",
			Xs:        txnRateSweep,
			Metrics:   []Metric{MetricFoldHigh},
			Base:      abortBase,
			Configure: setTxnRate,
		},
		{
			ID:        "fig12b",
			Title:     "Fig 12(b): fold_h with abortion / fold_h without abortion vs lambda_t",
			XLabel:    "lambda_t",
			Xs:        []float64{5, 10, 15, 20, 25},
			Metrics:   []Metric{MetricFoldHigh},
			Base:      abortBase,
			Configure: setTxnRate,
			Denominator: func(p *model.Params, x float64) {
				p.TxnRate = x
				p.OnStale = model.StaleIgnore
			},
		},
		{
			ID:        "fig13a",
			Title:     "Fig 13(a): value returned vs lambda_t (MA with abortion)",
			XLabel:    "lambda_t",
			Xs:        txnRateSweep,
			Metrics:   []Metric{MetricAV},
			Base:      abortBase,
			Configure: setTxnRate,
		},
		{
			ID:        "fig13b",
			Title:     "Fig 13(b): AV with abortion / AV without abortion vs lambda_t",
			XLabel:    "lambda_t",
			Xs:        []float64{5, 10, 15, 20, 25},
			Metrics:   []Metric{MetricAV},
			Base:      abortBase,
			Configure: setTxnRate,
			Denominator: func(p *model.Params, x float64) {
				p.TxnRate = x
				p.OnStale = model.StaleIgnore
			},
		},
		{
			ID:        "fig14",
			Title:     "Fig 14: successful transactions vs lambda_t (MA with abortion)",
			XLabel:    "lambda_t",
			Xs:        txnRateSweep,
			Metrics:   []Metric{MetricPSuccess},
			Base:      abortBase,
			Configure: setTxnRate,
		},
		{
			ID:        "fig15",
			Title:     "Fig 15: value returned vs pview (MA with abortion)",
			XLabel:    "pview",
			Xs:        []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
			Metrics:   []Metric{MetricAV},
			Base:      abortBase,
			Configure: func(p *model.Params, x float64) { p.PView = x },
		},
		{
			ID:        "fig16",
			Title:     "Fig 16: successful transactions vs lambda_t (UU staleness)",
			XLabel:    "lambda_t",
			Xs:        []float64{2, 4, 6, 8, 10, 12, 14, 16},
			Metrics:   []Metric{MetricPSuccess},
			Base:      uuBase,
			Configure: setTxnRate,
		},
	}
}

// Extensions returns ablation experiments for the future-work features
// implemented beyond the paper (DESIGN.md §6).
func Extensions() []*Definition {
	return []*Definition{
		{
			ID:      "ext-coalesce",
			Title:   "Ablation: hash-coalesced update queue (one update per object) vs baseline queue",
			XLabel:  "lambda_t",
			Xs:      []float64{5, 10, 15, 20, 25},
			Metrics: []Metric{MetricPSuccess, MetricAV},
			Base: func() model.Params {
				p := model.DefaultParams()
				p.CoalesceQueue = true
				return p
			},
			Configure: setTxnRate,
		},
		{
			ID:      "ext-partition",
			Title:   "Ablation: importance-partitioned queue drain (high first) under TF/OD",
			XLabel:  "lambda_t",
			Xs:      []float64{5, 10, 15, 20, 25},
			Metrics: []Metric{MetricFoldHigh, MetricPSuccess},
			Base: func() model.Params {
				p := model.DefaultParams()
				p.PartitionedQueues = true
				return p
			},
			Configure: setTxnRate,
		},
		{
			ID:       "ext-fc",
			Title:    "Extension: fixed CPU fraction for the update process (FC policy)",
			XLabel:   "update CPU fraction",
			Xs:       []float64{0.05, 0.1, 0.2, 0.3, 0.4},
			Policies: []sched.Policy{sched.FC},
			Metrics:  []Metric{MetricPSuccess, MetricAV, MetricFoldHigh, MetricRhoUpdate},
			Base: func() model.Params {
				p := model.DefaultParams()
				p.TxnRate = 15
				return p
			},
			Configure: func(p *model.Params, x float64) { p.UpdateCPUFraction = x },
		},
		{
			ID:      "ext-disk",
			Title:   "Extension: disk-resident database (LRU buffer pool, 10 ms I/O per miss)",
			XLabel:  "buffer pool pages",
			Xs:      []float64{100, 250, 500, 750, 1000},
			Metrics: []Metric{MetricPMD, MetricAV, MetricPSuccess},
			Base: func() model.Params {
				p := model.DefaultParams()
				// A 1995 disk cannot sustain the memory-resident
				// rates: scale the workload down so the I/O-bound
				// system is merely loaded, not hopeless.
				p.DiskResident = true
				p.IOSeconds = 0.01
				p.UpdateRate = 40
				p.TxnRate = 2
				return p
			},
			Configure: func(p *model.Params, x float64) { p.BufferPoolPages = int(x) },
		},
		{
			ID:      "ext-periodic",
			Title:   "Extension: periodic per-object update stream (plant-control workload)",
			XLabel:  "refresh period (s)",
			Xs:      []float64{1, 2, 3, 5, 7},
			Metrics: []Metric{MetricFoldLow, MetricPSuccess},
			Configure: func(p *model.Params, x float64) {
				p.PeriodicPeriod = x
			},
		},
		{
			ID:      "ext-combined",
			Title:   "Extension: combined MA+UU staleness criterion",
			XLabel:  "lambda_t",
			Xs:      []float64{5, 10, 15},
			Metrics: []Metric{MetricFoldLow, MetricPSuccess},
			Base: func() model.Params {
				p := model.DefaultParams()
				p.Staleness = model.CombinedMAUU
				return p
			},
			Configure: setTxnRate,
		},
		{
			ID:      "ext-bursty",
			Title:   "Extension: bursty (Markov-modulated) update stream at constant average rate",
			XLabel:  "burst factor",
			Xs:      []float64{1, 2, 4, 8},
			Metrics: []Metric{MetricPSuccess, MetricPMD, MetricFoldHigh},
			Configure: func(p *model.Params, x float64) {
				p.BurstFactor = x
			},
		},
		{
			ID:      "ext-uustrict",
			Title:   "Extension: strict UU staleness (dropped updates keep objects stale)",
			XLabel:  "lambda_t",
			Xs:      []float64{5, 10, 15},
			Metrics: []Metric{MetricFoldLow, MetricPSuccess},
			Base: func() model.Params {
				p := model.DefaultParams()
				p.Staleness = model.UnappliedUpdateStrict
				return p
			},
			Configure: setTxnRate,
		},
	}
}

// ByID finds a figure or extension definition by its key.
func ByID(id string) (*Definition, error) {
	for _, d := range append(All(), Extensions()...) {
		if d.ID == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("experiment: unknown experiment %q (known: %v)", id, IDs())
}

// IDs lists every known experiment key, sorted.
func IDs() []string {
	var ids []string
	for _, d := range append(All(), Extensions()...) {
		ids = append(ids, d.ID)
	}
	sort.Strings(ids)
	return ids
}
