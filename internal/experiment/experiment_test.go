package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
)

// tinyOpts keeps sweep tests fast.
var tinyOpts = Options{Duration: 20, Seeds: []uint64{1}}

func TestAllFiguresDefined(t *testing.T) {
	defs := All()
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9",
		"fig10a", "fig10b", "fig11", "fig12a", "fig12b", "fig13a", "fig13b",
		"fig14", "fig15", "fig16",
	}
	if len(defs) != len(want) {
		t.Fatalf("All() has %d figures, want %d", len(defs), len(want))
	}
	for i, d := range defs {
		if d.ID != want[i] {
			t.Errorf("figure %d = %s, want %s", i, d.ID, want[i])
		}
		if d.Title == "" || d.XLabel == "" || len(d.Xs) == 0 || len(d.Metrics) == 0 {
			t.Errorf("figure %s is incompletely defined", d.ID)
		}
	}
}

func TestByID(t *testing.T) {
	d, err := ByID("fig5")
	if err != nil || d.ID != "fig5" {
		t.Fatalf("ByID(fig5) = %v, %v", d, err)
	}
	if _, err := ByID("ext-fc"); err != nil {
		t.Fatalf("ByID(ext-fc) failed: %v", err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID(nope) should fail")
	}
	ids := IDs()
	if len(ids) != len(All())+len(Extensions()) {
		t.Fatalf("IDs() has %d entries", len(ids))
	}
}

func TestRunProducesCompleteTable(t *testing.T) {
	d := &Definition{
		ID:        "t",
		Title:     "test",
		XLabel:    "lambda_t",
		Xs:        []float64{2, 10},
		Metrics:   []Metric{MetricPMD, MetricAV},
		Configure: func(p *model.Params, x float64) { p.TxnRate = x },
	}
	tab, err := d.Run(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Xs) != 2 || len(tab.Policies) != 4 || len(tab.Metrics) != 2 {
		t.Fatalf("table shape wrong: %v %v %v", tab.Xs, tab.Policies, tab.Metrics)
	}
	// AV must rise with load for every policy.
	for _, pol := range tab.Policies {
		s := tab.Series(pol, "AV")
		if len(s) != 2 || s[1] <= s[0] {
			t.Errorf("%s AV series %v should increase with load", pol, s)
		}
	}
}

func TestRunSeedAveraging(t *testing.T) {
	d := &Definition{
		ID:        "t",
		Title:     "test",
		XLabel:    "x",
		Xs:        []float64{10},
		Metrics:   []Metric{MetricAV},
		Configure: func(p *model.Params, x float64) { p.TxnRate = x },
	}
	one, err := d.Run(Options{Duration: 20, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	two, err := d.Run(Options{Duration: 20, Seeds: []uint64{2}})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := d.Run(Options{Duration: 20, Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := (one.Values[0][0][0] + two.Values[0][0][0]) / 2
	if got := avg.Values[0][0][0]; got != want {
		t.Fatalf("seed average = %v, want %v", got, want)
	}
}

func TestRatioDefinition(t *testing.T) {
	// A definition whose denominator equals its numerator must give
	// ratios of exactly 1.
	d := &Definition{
		ID:          "t",
		Title:       "test",
		XLabel:      "x",
		Xs:          []float64{10},
		Metrics:     []Metric{MetricAV},
		Configure:   func(p *model.Params, x float64) { p.TxnRate = x },
		Denominator: func(p *model.Params, x float64) { p.TxnRate = x },
	}
	tab, err := d.Run(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range tab.Policies {
		if v := tab.Values[0][pi][0]; v != 1 {
			t.Fatalf("self-ratio = %v, want 1", v)
		}
	}
}

func TestRunPolicyRestriction(t *testing.T) {
	d := &Definition{
		ID:        "t",
		Title:     "test",
		XLabel:    "x",
		Xs:        []float64{0.2},
		Policies:  []sched.Policy{sched.FC},
		Metrics:   []Metric{MetricRhoUpdate},
		Configure: func(p *model.Params, x float64) { p.UpdateCPUFraction = x },
	}
	tab, err := d.Run(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Policies) != 1 || tab.Policies[0] != "FC" {
		t.Fatalf("policies = %v", tab.Policies)
	}
}

func TestRunInvalidConfigSurfacesError(t *testing.T) {
	d := &Definition{
		ID:        "t",
		Title:     "test",
		XLabel:    "x",
		Xs:        []float64{1},
		Metrics:   []Metric{MetricAV},
		Configure: func(p *model.Params, x float64) { p.IPS = -1 },
	}
	if _, err := d.Run(tinyOpts); err == nil {
		t.Fatal("invalid sweep config should error")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	d := &Definition{
		ID:        "t",
		Title:     "render test",
		XLabel:    "lambda_t",
		Xs:        []float64{5},
		Metrics:   []Metric{MetricPMD},
		Configure: func(p *model.Params, x float64) { p.TxnRate = x },
	}
	tab, err := d.Run(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"render test", "UF:pMD", "TF:pMD", "SU:pMD", "OD:pMD", "lambda_t"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want 2", len(lines))
	}
	if got := len(strings.Split(lines[1], ",")); got != 5 {
		t.Fatalf("CSV row has %d fields, want 5", got)
	}
}

func TestTableSeriesAndValue(t *testing.T) {
	tab := &Table{
		Xs:       []float64{1, 2},
		Policies: []string{"UF", "TF"},
		Metrics:  []string{"AV"},
		Values: [][][]float64{
			{{1.5}, {2.5}},
			{{3.5}, {4.5}},
		},
	}
	if s := tab.Series("TF", "AV"); len(s) != 2 || s[0] != 2.5 || s[1] != 4.5 {
		t.Fatalf("Series = %v", s)
	}
	if tab.Series("XX", "AV") != nil || tab.Series("TF", "XX") != nil {
		t.Fatal("unknown series should be nil")
	}
	if v := tab.Value(2, "UF", "AV"); v != 3.5 {
		t.Fatalf("Value = %v", v)
	}
	if v := tab.Value(9, "UF", "AV"); v != 0 {
		t.Fatalf("unknown Value = %v", v)
	}
}

func TestDefaultAndQuickOptions(t *testing.T) {
	d := DefaultOptions()
	if d.Duration != 1000 || len(d.Seeds) != 3 {
		t.Fatalf("DefaultOptions = %+v", d)
	}
	q := QuickOptions()
	if q.Duration <= 0 || len(q.Seeds) == 0 {
		t.Fatalf("QuickOptions = %+v", q)
	}
	var o Options
	o.fill()
	if o.Duration != 1000 || len(o.Seeds) != 3 {
		t.Fatalf("fill() defaults = %+v", o)
	}
}

// TestFig10bScalesPartitions verifies the Fig 10(b) configure hook
// keeps the objects-per-Delta ratio constant.
func TestFig10bScalesPartitions(t *testing.T) {
	d, err := ByID("fig10b")
	if err != nil {
		t.Fatal(err)
	}
	p := model.DefaultParams()
	d.Configure(&p, 14)
	if p.NLow != 1000 || p.NHigh != 1000 || p.MaxAgeDelta != 14 {
		t.Fatalf("fig10b configure: Nl=%d Nh=%d Delta=%v", p.NLow, p.NHigh, p.MaxAgeDelta)
	}
}

// TestExtensionBasesApply checks the extension experiments flip their
// feature switches.
func TestExtensionBasesApply(t *testing.T) {
	for _, id := range []string{"ext-coalesce", "ext-partition", "ext-fc", "ext-uustrict"} {
		d, err := ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		p := d.Base()
		switch id {
		case "ext-coalesce":
			if !p.CoalesceQueue {
				t.Error("ext-coalesce base must enable CoalesceQueue")
			}
		case "ext-partition":
			if !p.PartitionedQueues {
				t.Error("ext-partition base must enable PartitionedQueues")
			}
		case "ext-uustrict":
			if p.Staleness != model.UnappliedUpdateStrict {
				t.Error("ext-uustrict base must select strict UU")
			}
		}
	}
}

// TestEveryDefinitionRunsBriefly smoke-runs each figure and extension
// at a tiny horizon on a single sweep point, catching configuration
// regressions in any definition.
func TestEveryDefinitionRunsBriefly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every definition")
	}
	for _, d := range append(All(), Extensions()...) {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			trimmed := *d
			trimmed.Xs = d.Xs[:1]
			tab, err := trimmed.Run(Options{Duration: 5, Seeds: []uint64{1}})
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Xs) != 1 || len(tab.Metrics) != len(d.Metrics) {
				t.Fatalf("table shape wrong for %s", d.ID)
			}
			for pi := range tab.Policies {
				for mi := range tab.Metrics {
					v := tab.Values[0][pi][mi]
					if v != v { // NaN guard
						t.Fatalf("%s: NaN value for %s/%s", d.ID, tab.Policies[pi], tab.Metrics[mi])
					}
				}
			}
		})
	}
}
