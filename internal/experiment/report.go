package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Markdown writes the table as a GitHub-style markdown table.
func (t *Table) Markdown(w io.Writer) error {
	headers := []string{t.XLabel}
	for _, m := range t.Metrics {
		for _, p := range t.Policies {
			headers = append(headers, p+":"+m)
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(headers, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for xi, x := range t.Xs {
		row := []string{trimFloat(x)}
		for mi := range t.Metrics {
			for pi := range t.Policies {
				cell := fmt.Sprintf("%.4f", t.Values[xi][pi][mi])
				if t.Errs != nil {
					cell += fmt.Sprintf(" ± %.3f", t.Errs[xi][pi][mi])
				}
				row = append(row, cell)
			}
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport regenerates every paper figure and the extension
// experiments, checks every claim, and writes one self-contained
// markdown report. progress (may be nil) receives one line per
// completed experiment.
func WriteReport(w io.Writer, opts Options, progress io.Writer) error {
	opts.fill()
	fmt.Fprintf(w, "# Reproduction report\n\n")
	fmt.Fprintf(w, "Adelberg, Garcia-Molina, Kao — *Applying Update Streams in a "+
		"Soft Real-Time Database System* (SIGMOD 1995).\n\n")
	fmt.Fprintf(w, "Configuration: %.0f simulated seconds per data point, %d seed(s).\n\n",
		opts.Duration, len(opts.Seeds))

	tables := map[string]*Table{}
	fmt.Fprintf(w, "## Figures\n")
	for _, d := range All() {
		t, err := d.Run(opts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", d.ID, err)
		}
		tables[d.ID] = t
		if progress != nil {
			fmt.Fprintf(progress, "ran %s\n", d.ID)
		}
		fmt.Fprintf(w, "\n### %s\n\n", t.Title)
		if err := t.Markdown(w); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "\n## Claim verification\n\n")
	get := func(id string) *Table { return tables[id] }
	passed := 0
	claims := Claims()
	for _, c := range claims {
		ok, detail := c.Check(get)
		mark := "❌ FAIL"
		if ok {
			mark = "✅ PASS"
			passed++
		}
		fmt.Fprintf(w, "- %s **%s** — %s  \n  `%s`\n", mark, c.ID, c.Statement, detail)
	}
	fmt.Fprintf(w, "\n**%d/%d claims verified.**\n", passed, len(claims))

	fmt.Fprintf(w, "\n## Extensions\n")
	for _, d := range Extensions() {
		t, err := d.Run(opts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", d.ID, err)
		}
		if progress != nil {
			fmt.Fprintf(progress, "ran %s\n", d.ID)
		}
		fmt.Fprintf(w, "\n### %s\n\n", t.Title)
		if err := t.Markdown(w); err != nil {
			return err
		}
	}
	return nil
}
