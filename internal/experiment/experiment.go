// Package experiment defines and runs the paper's evaluation (§6):
// one Definition per figure, a sweep runner that averages replicated
// simulation runs, and text/CSV table rendering that prints the same
// series the paper plots.
package experiment

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Metric names one plotted quantity and how to extract it from a run.
type Metric struct {
	// Name is the paper's symbol, e.g. "fold_l" or "psuccess".
	Name string
	// Extract pulls the value out of a run result.
	Extract func(metrics.Result) float64
}

// Standard metric extractors shared by the figure definitions.
var (
	MetricRhoTxn    = Metric{"rho_t", func(r metrics.Result) float64 { return r.RhoTxn }}
	MetricRhoUpdate = Metric{"rho_u", func(r metrics.Result) float64 { return r.RhoUpdate }}
	MetricPMD       = Metric{"pMD", func(r metrics.Result) float64 { return r.PMissedDeadline }}
	MetricAV        = Metric{"AV", func(r metrics.Result) float64 { return r.AvgValuePerSecond }}
	MetricFoldLow   = Metric{"fold_l", func(r metrics.Result) float64 { return r.FOldLow }}
	MetricFoldHigh  = Metric{"fold_h", func(r metrics.Result) float64 { return r.FOldHigh }}
	MetricPSuccess  = Metric{"psuccess", func(r metrics.Result) float64 { return r.PSuccess }}
	MetricPSucNT    = Metric{"psuc|nontardy", func(r metrics.Result) float64 { return r.PSuccessGivenNonTardy }}
)

// Definition describes one figure: a parameter sweep evaluated for a
// set of policies and metrics. When Denominator is set, every metric
// becomes the ratio of the Configure run over the Denominator run at
// the same sweep point (used for the FIFO/LIFO and abort/no-abort
// comparison figures).
type Definition struct {
	// ID is the experiment key, e.g. "fig5".
	ID string
	// Title describes the figure as in the paper.
	Title string
	// XLabel names the sweep parameter.
	XLabel string
	// Xs are the sweep values.
	Xs []float64
	// Policies are the algorithms evaluated (the paper's four unless
	// a figure restricts them).
	Policies []sched.Policy
	// Metrics are the plotted quantities.
	Metrics []Metric
	// Base returns the base parameter set; nil means the Tables 1-3
	// baseline.
	Base func() model.Params
	// Configure applies the sweep value to the parameters.
	Configure func(*model.Params, float64)
	// Denominator, if non-nil, configures the comparison run for
	// ratio figures.
	Denominator func(*model.Params, float64)
}

// Options controls a sweep run.
type Options struct {
	// Duration is the simulated seconds per data point (the paper
	// uses 1000).
	Duration float64
	// Seeds lists the replication seeds; metric values are averaged
	// across them.
	Seeds []uint64
}

// DefaultOptions returns the paper's setting: 1000 simulated seconds,
// three replications.
func DefaultOptions() Options {
	return Options{Duration: 1000, Seeds: []uint64{1, 2, 3}}
}

// QuickOptions returns a fast setting for tests and benchmarks.
func QuickOptions() Options {
	return Options{Duration: 60, Seeds: []uint64{1}}
}

func (o *Options) fill() {
	if o.Duration <= 0 {
		o.Duration = 1000
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
}

// Run executes the sweep and returns the result table.
func (d *Definition) Run(opts Options) (*Table, error) {
	opts.fill()
	pols := d.Policies
	if len(pols) == 0 {
		pols = sched.Policies
	}
	t := newTable(d, pols)
	multiSeed := len(opts.Seeds) > 1
	for xi, x := range d.Xs {
		for pi, pol := range pols {
			samples := make([][]float64, len(d.Metrics))
			for _, seed := range opts.Seeds {
				num, err := d.runOne(d.Configure, pol, x, seed, opts.Duration)
				if err != nil {
					return nil, fmt.Errorf("experiment %s (x=%v, %v): %w", d.ID, x, pol, err)
				}
				var den *metrics.Result
				if d.Denominator != nil {
					r, err := d.runOne(d.Denominator, pol, x, seed, opts.Duration)
					if err != nil {
						return nil, fmt.Errorf("experiment %s denominator (x=%v, %v): %w", d.ID, x, pol, err)
					}
					den = &r
				}
				for mi, m := range d.Metrics {
					v := m.Extract(num)
					if den != nil {
						dv := m.Extract(*den)
						if dv != 0 {
							v /= dv
						} else {
							v = 0
						}
					}
					samples[mi] = append(samples[mi], v)
				}
			}
			for mi := range d.Metrics {
				mean, std := stats.MeanStd(samples[mi])
				t.Values[xi][pi][mi] = mean
				if multiSeed {
					// Standard error of the seed mean.
					t.Errs[xi][pi][mi] = std / math.Sqrt(float64(len(samples[mi])))
				}
			}
		}
	}
	if !multiSeed {
		t.Errs = nil
	}
	return t, nil
}

func (d *Definition) runOne(configure func(*model.Params, float64), pol sched.Policy,
	x float64, seed uint64, duration float64) (metrics.Result, error) {
	var p model.Params
	if d.Base != nil {
		p = d.Base()
	} else {
		p = model.DefaultParams()
	}
	if configure != nil {
		configure(&p, x)
	}
	return sched.Run(sched.Config{Params: p, Policy: pol, Seed: seed, Duration: duration})
}
