package experiment_test

import (
	"fmt"

	"repro/internal/experiment"
)

// Running one figure at a reduced horizon and reading a series.
func ExampleDefinition_Run() {
	def, err := experiment.ByID("fig3")
	if err != nil {
		panic(err)
	}
	table, err := def.Run(experiment.Options{Duration: 20, Seeds: []uint64{1}})
	if err != nil {
		panic(err)
	}
	// UF's update utilization is pinned at the stream's CPU demand.
	series := table.Series("UF", "rho_u")
	flat := true
	for _, v := range series {
		if v < 0.17 || v > 0.21 {
			flat = false
		}
	}
	fmt.Println(len(series), flat)
	// Output: 7 true
}
