package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestClaimsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Statement == "" || len(c.Figures) == 0 || c.Check == nil {
			t.Errorf("claim %+v incompletely defined", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim id %q", c.ID)
		}
		seen[c.ID] = true
		for _, f := range c.Figures {
			if _, err := ByID(f); err != nil {
				t.Errorf("claim %s references unknown figure %s", c.ID, f)
			}
		}
	}
	if len(seen) < 15 {
		t.Fatalf("only %d claims defined", len(seen))
	}
}

func TestSeriesHelpers(t *testing.T) {
	tab := &Table{
		Xs:       []float64{1, 2, 3},
		Policies: []string{"UF"},
		Metrics:  []string{"AV"},
		Values:   [][][]float64{{{1.0}}, {{3.0}}, {{2.0}}},
	}
	if got := seriesRange(tab, "UF", "AV"); got != 2.0 {
		t.Fatalf("seriesRange = %v", got)
	}
	if got := seriesMax(tab, "UF", "AV"); got != 3.0 {
		t.Fatalf("seriesMax = %v", got)
	}
	if got := seriesRange(tab, "XX", "AV"); got == got { // NaN check
		t.Fatalf("missing series range = %v, want NaN", got)
	}
}

// TestVerifyClaimsEndToEnd regenerates the needed figures at a reduced
// horizon and requires every qualitative claim of the paper to pass.
// This is the repository's self-certification.
func TestVerifyClaimsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("claims verification runs many simulations")
	}
	var log bytes.Buffer
	results, err := VerifyClaims(Options{Duration: 60, Seeds: []uint64{1}}, &log)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Claims()) {
		t.Fatalf("checked %d claims, want %d", len(results), len(Claims()))
	}
	for _, r := range results {
		if !r.Passed {
			t.Errorf("CLAIM FAILED %s: %s (%s)", r.Claim.ID, r.Claim.Statement, r.Detail)
		}
	}
	if !strings.Contains(log.String(), "ran fig6") {
		t.Error("progress log missing")
	}
}
