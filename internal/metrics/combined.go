package metrics

import "repro/internal/model"

// CombinedTracker implements the §2 "variation" that combines MA and
// UU: an object is stale if it is stale under *either* definition —
// its installed value is older than Delta, or an update for it waits
// unapplied in the queue. The stale-time integral is computed exactly
// by tracking the union of the two conditions per object.
type CombinedTracker struct {
	params  *model.Params
	ma      *MaxAgeTracker
	uu      *UnappliedTracker
	warmup  float64
	staleAt []float64
	wasStal []bool
	stale   [2]float64
	done    bool
}

// NewCombinedTracker returns a tracker for the combined criterion.
func NewCombinedTracker(p *model.Params) *CombinedTracker {
	n := p.NumObjects()
	return &CombinedTracker{
		params:  p,
		ma:      NewMaxAgeTracker(p),
		uu:      NewUnappliedTracker(p),
		warmup:  p.MetricsWarmup,
		staleAt: make([]float64, n),
		wasStal: make([]bool, n),
	}
}

// accrue charges union-stale time for obj over (staleAt[obj], now],
// recomputing the exact span from the sub-trackers' state.
//
// Within a span between two events for the object, the UU state is
// constant, and the MA state is false before gen+Delta and true
// after. The union over the span [from, now] is therefore:
//
//	uuStale ? (now - from) : max(0, now - max(from, gen+Delta))
func (t *CombinedTracker) accrue(obj model.ObjectID, now float64) {
	from := t.staleAt[obj]
	if now <= from {
		return
	}
	var staleSpan float64
	if t.wasStal[obj] {
		// UU was stale for the whole span: the union is the span.
		staleSpan = now - from
	} else {
		// Only MA can have contributed: stale from gen+Delta.
		maFrom := t.ma.GenTime(obj) + t.params.MaxAgeDelta
		if maFrom < from {
			maFrom = from
		}
		if now > maFrom {
			staleSpan = now - maFrom
		}
	}
	if staleSpan > 0 {
		// Clip to the measurement window.
		start := now - staleSpan
		if d := clip(start, now, t.warmup); d > 0 {
			t.stale[t.params.ObjectClass(obj)] += d
		}
	}
	t.staleAt[obj] = now
	t.wasStal[obj] = t.uu.IsStale(obj, now)
}

// Received forwards to both sub-trackers and integrates the union.
func (t *CombinedTracker) Received(obj model.ObjectID, gen, now float64) {
	t.accrue(obj, now)
	t.ma.Received(obj, gen, now)
	t.uu.Received(obj, gen, now)
	t.wasStal[obj] = t.uu.IsStale(obj, now)
}

// Removed forwards to both sub-trackers and integrates the union.
func (t *CombinedTracker) Removed(obj model.ObjectID, gen, now float64) {
	t.accrue(obj, now)
	t.ma.Removed(obj, gen, now)
	t.uu.Removed(obj, gen, now)
	t.wasStal[obj] = t.uu.IsStale(obj, now)
}

// Installed forwards to both sub-trackers and integrates the union.
func (t *CombinedTracker) Installed(obj model.ObjectID, gen, now float64) {
	t.accrue(obj, now)
	t.ma.Installed(obj, gen, now)
	t.uu.Installed(obj, gen, now)
	t.wasStal[obj] = t.uu.IsStale(obj, now)
}

// IsStale reports staleness under either criterion.
func (t *CombinedTracker) IsStale(obj model.ObjectID, now float64) bool {
	return t.ma.IsStale(obj, now) || t.uu.IsStale(obj, now)
}

// GenTime returns the installed generation time.
func (t *CombinedTracker) GenTime(obj model.ObjectID) float64 { return t.ma.GenTime(obj) }

// Finish closes every open span.
func (t *CombinedTracker) Finish(end float64) {
	if t.done {
		return
	}
	t.done = true
	for obj := range t.staleAt {
		t.accrue(model.ObjectID(obj), end)
	}
	t.ma.Finish(end)
	t.uu.Finish(end)
}

// StaleSeconds returns the integrated union-stale object-seconds.
func (t *CombinedTracker) StaleSeconds(class model.Importance) float64 {
	return t.stale[class]
}
