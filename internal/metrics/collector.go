package metrics

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/stats"
)

// CPUKind labels where CPU time was spent, for the ρt/ρu split of
// Fig. 3. Per §6.1 context-switch time is charged to the activity
// being (re)started and OD's in-line installs are charged to updates.
type CPUKind int

const (
	// CPUTxn is CPU time spent running transactions (including OD's
	// update-queue scans, which lengthen the reading transaction).
	CPUTxn CPUKind = iota
	// CPUUpdate is CPU time spent receiving, queueing and installing
	// updates.
	CPUUpdate
)

// Collector accumulates the per-run metrics. It is not safe for
// concurrent use; the simulation is single threaded.
type Collector struct {
	params *model.Params
	warmup float64

	// Transaction outcomes. A transaction is counted when it
	// resolves (commits or aborts); transactions still in flight at
	// the end of the run whose deadlines have not passed are not
	// counted in any fraction.
	resolved       int
	committed      int
	committedFresh int
	abortedStale   int
	abortedDL      int
	valueSum       float64

	arrivedTxns    int
	arrivedUpdates int

	// Update accounting.
	installed        int
	skippedUnworthy  int
	expiredDiscarded int
	overflowDropped  int
	osDropped        int

	// CPU seconds by kind, clipped to the post-warm-up window.
	cpu [2]float64

	// Queue length observation (simple mean of samples at scheduling
	// points).
	queueLenSum     float64
	queueLenSamples int

	// Response times (finish - arrival) of committed transactions.
	responses []float64

	// Buffer pool accesses (disk-resident extension).
	pageHits, pageMisses int

	end      float64
	finished bool
}

// NewCollector returns a collector for one run.
func NewCollector(p *model.Params) *Collector {
	return &Collector{params: p, warmup: p.MetricsWarmup}
}

// TxnArrived counts an arrival (diagnostic only).
func (c *Collector) TxnArrived() { c.arrivedTxns++ }

// UpdateArrived counts an update arrival (diagnostic only).
func (c *Collector) UpdateArrived() { c.arrivedUpdates++ }

// TxnResolved records a transaction outcome. Transactions that arrive
// before the warm-up period ends are excluded from all fractions.
func (c *Collector) TxnResolved(txn *model.Txn) {
	if txn.ArrivalTime < c.warmup {
		return
	}
	c.resolved++
	switch txn.State {
	case model.TxnCommittedState:
		c.committed++
		c.valueSum += txn.Value
		c.responses = append(c.responses, txn.FinishTime-txn.ArrivalTime)
		if !txn.ReadStale {
			c.committedFresh++
		}
	case model.TxnAbortedStale:
		c.abortedStale++
	case model.TxnAbortedDeadline:
		c.abortedDL++
	default:
		panic(fmt.Sprintf("metrics: resolving transaction in state %v", txn.State))
	}
}

// ChargeCPU records busy CPU time of the given kind over [from, to],
// clipped to the post-warm-up window.
func (c *Collector) ChargeCPU(kind CPUKind, from, to float64) {
	if d := clip(from, to, c.warmup); d > 0 {
		c.cpu[kind] += d
	}
}

// UpdateInstalled counts an update applied to the database.
func (c *Collector) UpdateInstalled() { c.installed++ }

// UpdateSkippedUnworthy counts an update discarded by the worthiness
// check (the database already held a newer generation).
func (c *Collector) UpdateSkippedUnworthy() { c.skippedUnworthy++ }

// UpdateExpired counts an update discarded because it exceeded the
// maximum age while queued (MA only).
func (c *Collector) UpdateExpired() { c.expiredDiscarded++ }

// UpdateOverflowDropped counts an update evicted by a full update
// queue (or coalesced away).
func (c *Collector) UpdateOverflowDropped() { c.overflowDropped++ }

// UpdateOSDropped counts an arrival rejected by the full OS queue.
func (c *Collector) UpdateOSDropped() { c.osDropped++ }

// PageAccess records one buffer pool access (disk-resident extension).
func (c *Collector) PageAccess(hit bool) {
	if hit {
		c.pageHits++
	} else {
		c.pageMisses++
	}
}

// SampleQueueLen records the update-queue length at a scheduling point.
func (c *Collector) SampleQueueLen(n int) {
	c.queueLenSum += float64(n)
	c.queueLenSamples++
}

// Finish freezes the collector at the given end time.
func (c *Collector) Finish(end float64) {
	c.end = end
	c.finished = true
}

// Result is the immutable outcome of one simulation run: the metrics
// of §3.5 plus the diagnostics used by the experiments.
type Result struct {
	// Params echoes the configuration that produced the result.
	Params model.Params

	// Duration is the measured window (run length minus warm-up).
	Duration float64

	// FOldLow and FOldHigh are fold_l and fold_h: the time-averaged
	// fraction of stale objects per class.
	FOldLow, FOldHigh float64

	// PMissedDeadline (pMD) is the fraction of resolved transactions
	// that did not commit by their deadline.
	PMissedDeadline float64
	// PSuccess is the fraction that committed in time having read
	// only fresh data.
	PSuccess float64
	// PSuccessGivenNonTardy (psuc|nontardy) is, among transactions
	// that committed in time, the fraction that read only fresh data.
	PSuccessGivenNonTardy float64
	// AvgValuePerSecond (AV) is committed value per measured second.
	AvgValuePerSecond float64

	// RhoTxn and RhoUpdate are the CPU utilization split of Fig. 3.
	RhoTxn, RhoUpdate float64

	// Transaction counts.
	TxnsArrived, TxnsResolved, TxnsCommitted int
	TxnsAbortedDeadline, TxnsAbortedStale    int
	TxnsCommittedFresh                       int

	// Update counts.
	UpdatesArrived, UpdatesInstalled         int
	UpdatesSkippedUnworthy, UpdatesExpired   int
	UpdatesOverflowDropped, UpdatesOSDropped int

	// MeanQueueLen is the average update-queue length over sampled
	// scheduling points.
	MeanQueueLen float64

	// ResponseMean and ResponseP95 summarize the response time
	// (commit time minus arrival time) of committed transactions, in
	// seconds.
	ResponseMean, ResponseP95 float64

	// PageHits and PageMisses count buffer pool accesses under the
	// disk-resident extension (both zero in the main-memory
	// baseline); BufferHitRatio is hits over accesses.
	PageHits, PageMisses int
	BufferHitRatio       float64
}

// Result computes the final metrics. Finish must have been called and
// the tracker must already be finished.
func (c *Collector) Result(tracker Tracker) Result {
	if !c.finished {
		panic("metrics: Result called before Finish")
	}
	dur := c.end - c.warmup
	if dur < 0 {
		dur = 0
	}
	r := Result{
		Params:                 *c.params,
		Duration:               dur,
		TxnsArrived:            c.arrivedTxns,
		TxnsResolved:           c.resolved,
		TxnsCommitted:          c.committed,
		TxnsCommittedFresh:     c.committedFresh,
		TxnsAbortedDeadline:    c.abortedDL,
		TxnsAbortedStale:       c.abortedStale,
		UpdatesArrived:         c.arrivedUpdates,
		UpdatesInstalled:       c.installed,
		UpdatesSkippedUnworthy: c.skippedUnworthy,
		UpdatesExpired:         c.expiredDiscarded,
		UpdatesOverflowDropped: c.overflowDropped,
		UpdatesOSDropped:       c.osDropped,
	}
	if dur > 0 {
		if c.params.NLow > 0 {
			r.FOldLow = tracker.StaleSeconds(model.Low) / (dur * float64(c.params.NLow))
		}
		if c.params.NHigh > 0 {
			r.FOldHigh = tracker.StaleSeconds(model.High) / (dur * float64(c.params.NHigh))
		}
		r.AvgValuePerSecond = c.valueSum / dur
		r.RhoTxn = c.cpu[CPUTxn] / dur
		r.RhoUpdate = c.cpu[CPUUpdate] / dur
	}
	if c.resolved > 0 {
		r.PMissedDeadline = float64(c.resolved-c.committed) / float64(c.resolved)
		r.PSuccess = float64(c.committedFresh) / float64(c.resolved)
	}
	if c.committed > 0 {
		r.PSuccessGivenNonTardy = float64(c.committedFresh) / float64(c.committed)
	}
	if c.queueLenSamples > 0 {
		r.MeanQueueLen = c.queueLenSum / float64(c.queueLenSamples)
	}
	if len(c.responses) > 0 {
		mean, _ := stats.MeanStd(c.responses)
		r.ResponseMean = mean
		r.ResponseP95 = stats.Quantile(c.responses, 0.95)
	}
	r.PageHits, r.PageMisses = c.pageHits, c.pageMisses
	if total := c.pageHits + c.pageMisses; total > 0 {
		r.BufferHitRatio = float64(c.pageHits) / float64(total)
	}
	return r
}
