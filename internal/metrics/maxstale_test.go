package metrics

import "testing"

func TestMaxStaleness(t *testing.T) {
	m := NewMaxStaleness()
	if m.Max() != 0 || m.Objects() != 0 {
		t.Fatalf("empty tracker: Max=%v Objects=%d", m.Max(), m.Objects())
	}
	if m.Object(5) != 0 {
		t.Fatal("unknown object should report zero")
	}

	m.Observe(2, 0.5)
	m.Observe(0, 1.25)
	m.Observe(2, 0.1) // smaller than the recorded max: no change
	m.Observe(2, 2.0)
	m.Observe(1, -3) // clock step clamps to zero

	if got := m.Object(0); got != 1.25 {
		t.Fatalf("Object(0) = %v, want 1.25", got)
	}
	if got := m.Object(1); got != 0 {
		t.Fatalf("Object(1) = %v, want 0", got)
	}
	if got := m.Object(2); got != 2.0 {
		t.Fatalf("Object(2) = %v, want 2", got)
	}
	if got := m.Max(); got != 2.0 {
		t.Fatalf("Max = %v, want 2", got)
	}
	if got := m.Objects(); got != 3 {
		t.Fatalf("Objects = %d, want 3", got)
	}
	if m.Object(-1) != 0 {
		t.Fatal("negative id should report zero")
	}
}
